file(REMOVE_RECURSE
  "CMakeFiles/mac_ablation.dir/mac_ablation.cpp.o"
  "CMakeFiles/mac_ablation.dir/mac_ablation.cpp.o.d"
  "mac_ablation"
  "mac_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
