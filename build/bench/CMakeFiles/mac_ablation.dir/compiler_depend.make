# Empty compiler generated dependencies file for mac_ablation.
# This may be replaced when dependencies are built.
