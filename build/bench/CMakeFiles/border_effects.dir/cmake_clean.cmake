file(REMOVE_RECURSE
  "CMakeFiles/border_effects.dir/border_effects.cpp.o"
  "CMakeFiles/border_effects.dir/border_effects.cpp.o.d"
  "border_effects"
  "border_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/border_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
