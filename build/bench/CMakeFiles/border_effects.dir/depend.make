# Empty dependencies file for border_effects.
# This may be replaced when dependencies are built.
