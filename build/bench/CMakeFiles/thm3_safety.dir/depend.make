# Empty dependencies file for thm3_safety.
# This may be replaced when dependencies are built.
