file(REMOVE_RECURSE
  "CMakeFiles/thm3_safety.dir/thm3_safety.cpp.o"
  "CMakeFiles/thm3_safety.dir/thm3_safety.cpp.o.d"
  "thm3_safety"
  "thm3_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm3_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
