file(REMOVE_RECURSE
  "CMakeFiles/verifier_sensitivity.dir/verifier_sensitivity.cpp.o"
  "CMakeFiles/verifier_sensitivity.dir/verifier_sensitivity.cpp.o.d"
  "verifier_sensitivity"
  "verifier_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
