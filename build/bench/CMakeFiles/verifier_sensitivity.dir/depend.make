# Empty dependencies file for verifier_sensitivity.
# This may be replaced when dependencies are built.
