file(REMOVE_RECURSE
  "CMakeFiles/fig3_threshold.dir/fig3_threshold.cpp.o"
  "CMakeFiles/fig3_threshold.dir/fig3_threshold.cpp.o.d"
  "fig3_threshold"
  "fig3_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
