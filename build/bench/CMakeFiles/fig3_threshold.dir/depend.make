# Empty dependencies file for fig3_threshold.
# This may be replaced when dependencies are built.
