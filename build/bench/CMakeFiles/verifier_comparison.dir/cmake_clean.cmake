file(REMOVE_RECURSE
  "CMakeFiles/verifier_comparison.dir/verifier_comparison.cpp.o"
  "CMakeFiles/verifier_comparison.dir/verifier_comparison.cpp.o.d"
  "verifier_comparison"
  "verifier_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
