# Empty dependencies file for verifier_comparison.
# This may be replaced when dependencies are built.
