file(REMOVE_RECURSE
  "CMakeFiles/thm12_impossibility.dir/thm12_impossibility.cpp.o"
  "CMakeFiles/thm12_impossibility.dir/thm12_impossibility.cpp.o.d"
  "thm12_impossibility"
  "thm12_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm12_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
