# Empty dependencies file for thm12_impossibility.
# This may be replaced when dependencies are built.
