file(REMOVE_RECURSE
  "CMakeFiles/app_impact.dir/app_impact.cpp.o"
  "CMakeFiles/app_impact.dir/app_impact.cpp.o.d"
  "app_impact"
  "app_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
