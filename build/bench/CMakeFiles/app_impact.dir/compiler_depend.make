# Empty compiler generated dependencies file for app_impact.
# This may be replaced when dependencies are built.
