file(REMOVE_RECURSE
  "CMakeFiles/thm4_update_safety.dir/thm4_update_safety.cpp.o"
  "CMakeFiles/thm4_update_safety.dir/thm4_update_safety.cpp.o.d"
  "thm4_update_safety"
  "thm4_update_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm4_update_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
