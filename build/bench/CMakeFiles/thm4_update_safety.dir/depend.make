# Empty dependencies file for thm4_update_safety.
# This may be replaced when dependencies are built.
