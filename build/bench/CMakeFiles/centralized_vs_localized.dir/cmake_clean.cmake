file(REMOVE_RECURSE
  "CMakeFiles/centralized_vs_localized.dir/centralized_vs_localized.cpp.o"
  "CMakeFiles/centralized_vs_localized.dir/centralized_vs_localized.cpp.o.d"
  "centralized_vs_localized"
  "centralized_vs_localized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_vs_localized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
