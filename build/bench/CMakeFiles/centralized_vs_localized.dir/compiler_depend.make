# Empty compiler generated dependencies file for centralized_vs_localized.
# This may be replaced when dependencies are built.
