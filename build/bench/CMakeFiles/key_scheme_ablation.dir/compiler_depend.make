# Empty compiler generated dependencies file for key_scheme_ablation.
# This may be replaced when dependencies are built.
