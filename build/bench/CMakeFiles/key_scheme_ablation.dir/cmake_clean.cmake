file(REMOVE_RECURSE
  "CMakeFiles/key_scheme_ablation.dir/key_scheme_ablation.cpp.o"
  "CMakeFiles/key_scheme_ablation.dir/key_scheme_ablation.cpp.o.d"
  "key_scheme_ablation"
  "key_scheme_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_scheme_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
