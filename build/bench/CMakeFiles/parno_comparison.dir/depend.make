# Empty dependencies file for parno_comparison.
# This may be replaced when dependencies are built.
