file(REMOVE_RECURSE
  "CMakeFiles/parno_comparison.dir/parno_comparison.cpp.o"
  "CMakeFiles/parno_comparison.dir/parno_comparison.cpp.o.d"
  "parno_comparison"
  "parno_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parno_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
