file(REMOVE_RECURSE
  "CMakeFiles/hostile_accuracy.dir/hostile_accuracy.cpp.o"
  "CMakeFiles/hostile_accuracy.dir/hostile_accuracy.cpp.o.d"
  "hostile_accuracy"
  "hostile_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostile_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
