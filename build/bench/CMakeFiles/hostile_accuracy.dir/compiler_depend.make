# Empty compiler generated dependencies file for hostile_accuracy.
# This may be replaced when dependencies are built.
