# Empty compiler generated dependencies file for key_exposure.
# This may be replaced when dependencies are built.
