file(REMOVE_RECURSE
  "CMakeFiles/key_exposure.dir/key_exposure.cpp.o"
  "CMakeFiles/key_exposure.dir/key_exposure.cpp.o.d"
  "key_exposure"
  "key_exposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
