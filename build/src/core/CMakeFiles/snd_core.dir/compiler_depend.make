# Empty compiler generated dependencies file for snd_core.
# This may be replaced when dependencies are built.
