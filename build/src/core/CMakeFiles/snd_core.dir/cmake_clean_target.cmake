file(REMOVE_RECURSE
  "libsnd_core.a"
)
