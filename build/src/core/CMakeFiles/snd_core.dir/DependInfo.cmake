
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binding_record.cpp" "src/core/CMakeFiles/snd_core.dir/binding_record.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/binding_record.cpp.o.d"
  "/root/repo/src/core/commitment.cpp" "src/core/CMakeFiles/snd_core.dir/commitment.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/commitment.cpp.o.d"
  "/root/repo/src/core/deployment_driver.cpp" "src/core/CMakeFiles/snd_core.dir/deployment_driver.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/deployment_driver.cpp.o.d"
  "/root/repo/src/core/messenger.cpp" "src/core/CMakeFiles/snd_core.dir/messenger.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/messenger.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/snd_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/safety.cpp" "src/core/CMakeFiles/snd_core.dir/safety.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/safety.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/snd_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/validation.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/snd_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/snd_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/snd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/snd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/snd_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
