file(REMOVE_RECURSE
  "CMakeFiles/snd_core.dir/binding_record.cpp.o"
  "CMakeFiles/snd_core.dir/binding_record.cpp.o.d"
  "CMakeFiles/snd_core.dir/commitment.cpp.o"
  "CMakeFiles/snd_core.dir/commitment.cpp.o.d"
  "CMakeFiles/snd_core.dir/deployment_driver.cpp.o"
  "CMakeFiles/snd_core.dir/deployment_driver.cpp.o.d"
  "CMakeFiles/snd_core.dir/messenger.cpp.o"
  "CMakeFiles/snd_core.dir/messenger.cpp.o.d"
  "CMakeFiles/snd_core.dir/protocol.cpp.o"
  "CMakeFiles/snd_core.dir/protocol.cpp.o.d"
  "CMakeFiles/snd_core.dir/safety.cpp.o"
  "CMakeFiles/snd_core.dir/safety.cpp.o.d"
  "CMakeFiles/snd_core.dir/validation.cpp.o"
  "CMakeFiles/snd_core.dir/validation.cpp.o.d"
  "CMakeFiles/snd_core.dir/wire.cpp.o"
  "CMakeFiles/snd_core.dir/wire.cpp.o.d"
  "libsnd_core.a"
  "libsnd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
