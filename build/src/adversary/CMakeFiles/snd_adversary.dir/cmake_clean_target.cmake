file(REMOVE_RECURSE
  "libsnd_adversary.a"
)
