file(REMOVE_RECURSE
  "CMakeFiles/snd_adversary.dir/attacker.cpp.o"
  "CMakeFiles/snd_adversary.dir/attacker.cpp.o.d"
  "CMakeFiles/snd_adversary.dir/chaff.cpp.o"
  "CMakeFiles/snd_adversary.dir/chaff.cpp.o.d"
  "CMakeFiles/snd_adversary.dir/malicious_agent.cpp.o"
  "CMakeFiles/snd_adversary.dir/malicious_agent.cpp.o.d"
  "CMakeFiles/snd_adversary.dir/theorem_attack.cpp.o"
  "CMakeFiles/snd_adversary.dir/theorem_attack.cpp.o.d"
  "CMakeFiles/snd_adversary.dir/wormhole.cpp.o"
  "CMakeFiles/snd_adversary.dir/wormhole.cpp.o.d"
  "libsnd_adversary.a"
  "libsnd_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
