# Empty compiler generated dependencies file for snd_adversary.
# This may be replaced when dependencies are built.
