
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/attacker.cpp" "src/adversary/CMakeFiles/snd_adversary.dir/attacker.cpp.o" "gcc" "src/adversary/CMakeFiles/snd_adversary.dir/attacker.cpp.o.d"
  "/root/repo/src/adversary/chaff.cpp" "src/adversary/CMakeFiles/snd_adversary.dir/chaff.cpp.o" "gcc" "src/adversary/CMakeFiles/snd_adversary.dir/chaff.cpp.o.d"
  "/root/repo/src/adversary/malicious_agent.cpp" "src/adversary/CMakeFiles/snd_adversary.dir/malicious_agent.cpp.o" "gcc" "src/adversary/CMakeFiles/snd_adversary.dir/malicious_agent.cpp.o.d"
  "/root/repo/src/adversary/theorem_attack.cpp" "src/adversary/CMakeFiles/snd_adversary.dir/theorem_attack.cpp.o" "gcc" "src/adversary/CMakeFiles/snd_adversary.dir/theorem_attack.cpp.o.d"
  "/root/repo/src/adversary/wormhole.cpp" "src/adversary/CMakeFiles/snd_adversary.dir/wormhole.cpp.o" "gcc" "src/adversary/CMakeFiles/snd_adversary.dir/wormhole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/snd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/snd_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
