file(REMOVE_RECURSE
  "libsnd_analysis.a"
)
