file(REMOVE_RECURSE
  "CMakeFiles/snd_analysis.dir/model.cpp.o"
  "CMakeFiles/snd_analysis.dir/model.cpp.o.d"
  "libsnd_analysis.a"
  "libsnd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
