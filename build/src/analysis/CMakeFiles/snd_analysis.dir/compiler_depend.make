# Empty compiler generated dependencies file for snd_analysis.
# This may be replaced when dependencies are built.
