
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/aggregation.cpp" "src/apps/CMakeFiles/snd_apps.dir/aggregation.cpp.o" "gcc" "src/apps/CMakeFiles/snd_apps.dir/aggregation.cpp.o.d"
  "/root/repo/src/apps/clustering.cpp" "src/apps/CMakeFiles/snd_apps.dir/clustering.cpp.o" "gcc" "src/apps/CMakeFiles/snd_apps.dir/clustering.cpp.o.d"
  "/root/repo/src/apps/flooding.cpp" "src/apps/CMakeFiles/snd_apps.dir/flooding.cpp.o" "gcc" "src/apps/CMakeFiles/snd_apps.dir/flooding.cpp.o.d"
  "/root/repo/src/apps/georouting.cpp" "src/apps/CMakeFiles/snd_apps.dir/georouting.cpp.o" "gcc" "src/apps/CMakeFiles/snd_apps.dir/georouting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/snd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/snd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
