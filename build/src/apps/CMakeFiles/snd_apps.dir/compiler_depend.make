# Empty compiler generated dependencies file for snd_apps.
# This may be replaced when dependencies are built.
