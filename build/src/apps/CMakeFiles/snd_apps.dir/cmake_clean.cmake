file(REMOVE_RECURSE
  "CMakeFiles/snd_apps.dir/aggregation.cpp.o"
  "CMakeFiles/snd_apps.dir/aggregation.cpp.o.d"
  "CMakeFiles/snd_apps.dir/clustering.cpp.o"
  "CMakeFiles/snd_apps.dir/clustering.cpp.o.d"
  "CMakeFiles/snd_apps.dir/flooding.cpp.o"
  "CMakeFiles/snd_apps.dir/flooding.cpp.o.d"
  "CMakeFiles/snd_apps.dir/georouting.cpp.o"
  "CMakeFiles/snd_apps.dir/georouting.cpp.o.d"
  "libsnd_apps.a"
  "libsnd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
