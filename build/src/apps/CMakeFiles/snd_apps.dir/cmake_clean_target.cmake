file(REMOVE_RECURSE
  "libsnd_apps.a"
)
