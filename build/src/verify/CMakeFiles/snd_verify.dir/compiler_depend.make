# Empty compiler generated dependencies file for snd_verify.
# This may be replaced when dependencies are built.
