file(REMOVE_RECURSE
  "CMakeFiles/snd_verify.dir/rtt_probe.cpp.o"
  "CMakeFiles/snd_verify.dir/rtt_probe.cpp.o.d"
  "CMakeFiles/snd_verify.dir/verifier.cpp.o"
  "CMakeFiles/snd_verify.dir/verifier.cpp.o.d"
  "libsnd_verify.a"
  "libsnd_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
