file(REMOVE_RECURSE
  "libsnd_verify.a"
)
