
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/rtt_probe.cpp" "src/verify/CMakeFiles/snd_verify.dir/rtt_probe.cpp.o" "gcc" "src/verify/CMakeFiles/snd_verify.dir/rtt_probe.cpp.o.d"
  "/root/repo/src/verify/verifier.cpp" "src/verify/CMakeFiles/snd_verify.dir/verifier.cpp.o" "gcc" "src/verify/CMakeFiles/snd_verify.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/snd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
