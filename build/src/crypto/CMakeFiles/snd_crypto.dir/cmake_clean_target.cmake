file(REMOVE_RECURSE
  "libsnd_crypto.a"
)
