# Empty dependencies file for snd_crypto.
# This may be replaced when dependencies are built.
