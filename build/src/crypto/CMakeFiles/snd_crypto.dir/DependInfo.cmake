
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/blundo.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/blundo.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/blundo.cpp.o.d"
  "/root/repo/src/crypto/eg_pool.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/eg_pool.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/eg_pool.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/kdf.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/kdf.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/kdf.cpp.o.d"
  "/root/repo/src/crypto/key.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/key.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/key.cpp.o.d"
  "/root/repo/src/crypto/keypredist.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/keypredist.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/keypredist.cpp.o.d"
  "/root/repo/src/crypto/secure_channel.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/secure_channel.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/secure_channel.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sim_signature.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/sim_signature.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/sim_signature.cpp.o.d"
  "/root/repo/src/crypto/stream_cipher.cpp" "src/crypto/CMakeFiles/snd_crypto.dir/stream_cipher.cpp.o" "gcc" "src/crypto/CMakeFiles/snd_crypto.dir/stream_cipher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
