file(REMOVE_RECURSE
  "CMakeFiles/snd_crypto.dir/blundo.cpp.o"
  "CMakeFiles/snd_crypto.dir/blundo.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/eg_pool.cpp.o"
  "CMakeFiles/snd_crypto.dir/eg_pool.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/hmac.cpp.o"
  "CMakeFiles/snd_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/kdf.cpp.o"
  "CMakeFiles/snd_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/key.cpp.o"
  "CMakeFiles/snd_crypto.dir/key.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/keypredist.cpp.o"
  "CMakeFiles/snd_crypto.dir/keypredist.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/secure_channel.cpp.o"
  "CMakeFiles/snd_crypto.dir/secure_channel.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/sha256.cpp.o"
  "CMakeFiles/snd_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/sim_signature.cpp.o"
  "CMakeFiles/snd_crypto.dir/sim_signature.cpp.o.d"
  "CMakeFiles/snd_crypto.dir/stream_cipher.cpp.o"
  "CMakeFiles/snd_crypto.dir/stream_cipher.cpp.o.d"
  "libsnd_crypto.a"
  "libsnd_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
