
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/deployment.cpp" "src/sim/CMakeFiles/snd_sim.dir/deployment.cpp.o" "gcc" "src/sim/CMakeFiles/snd_sim.dir/deployment.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/snd_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/snd_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/snd_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/snd_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/propagation.cpp" "src/sim/CMakeFiles/snd_sim.dir/propagation.cpp.o" "gcc" "src/sim/CMakeFiles/snd_sim.dir/propagation.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/snd_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/snd_sim.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
