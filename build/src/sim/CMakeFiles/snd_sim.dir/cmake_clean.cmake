file(REMOVE_RECURSE
  "CMakeFiles/snd_sim.dir/deployment.cpp.o"
  "CMakeFiles/snd_sim.dir/deployment.cpp.o.d"
  "CMakeFiles/snd_sim.dir/metrics.cpp.o"
  "CMakeFiles/snd_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/snd_sim.dir/network.cpp.o"
  "CMakeFiles/snd_sim.dir/network.cpp.o.d"
  "CMakeFiles/snd_sim.dir/propagation.cpp.o"
  "CMakeFiles/snd_sim.dir/propagation.cpp.o.d"
  "CMakeFiles/snd_sim.dir/scheduler.cpp.o"
  "CMakeFiles/snd_sim.dir/scheduler.cpp.o.d"
  "libsnd_sim.a"
  "libsnd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
