file(REMOVE_RECURSE
  "libsnd_sim.a"
)
