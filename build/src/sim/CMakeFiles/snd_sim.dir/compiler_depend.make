# Empty compiler generated dependencies file for snd_sim.
# This may be replaced when dependencies are built.
