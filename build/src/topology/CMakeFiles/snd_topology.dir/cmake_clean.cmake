file(REMOVE_RECURSE
  "CMakeFiles/snd_topology.dir/graph.cpp.o"
  "CMakeFiles/snd_topology.dir/graph.cpp.o.d"
  "CMakeFiles/snd_topology.dir/partition.cpp.o"
  "CMakeFiles/snd_topology.dir/partition.cpp.o.d"
  "CMakeFiles/snd_topology.dir/stats.cpp.o"
  "CMakeFiles/snd_topology.dir/stats.cpp.o.d"
  "libsnd_topology.a"
  "libsnd_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
