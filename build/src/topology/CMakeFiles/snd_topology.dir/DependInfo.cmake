
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/snd_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/snd_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/partition.cpp" "src/topology/CMakeFiles/snd_topology.dir/partition.cpp.o" "gcc" "src/topology/CMakeFiles/snd_topology.dir/partition.cpp.o.d"
  "/root/repo/src/topology/stats.cpp" "src/topology/CMakeFiles/snd_topology.dir/stats.cpp.o" "gcc" "src/topology/CMakeFiles/snd_topology.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
