file(REMOVE_RECURSE
  "libsnd_topology.a"
)
