# Empty dependencies file for snd_topology.
# This may be replaced when dependencies are built.
