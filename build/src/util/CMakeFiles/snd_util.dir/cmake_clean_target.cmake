file(REMOVE_RECURSE
  "libsnd_util.a"
)
