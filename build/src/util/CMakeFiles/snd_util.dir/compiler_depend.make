# Empty compiler generated dependencies file for snd_util.
# This may be replaced when dependencies are built.
