file(REMOVE_RECURSE
  "CMakeFiles/snd_util.dir/bytes.cpp.o"
  "CMakeFiles/snd_util.dir/bytes.cpp.o.d"
  "CMakeFiles/snd_util.dir/cli.cpp.o"
  "CMakeFiles/snd_util.dir/cli.cpp.o.d"
  "CMakeFiles/snd_util.dir/geometry.cpp.o"
  "CMakeFiles/snd_util.dir/geometry.cpp.o.d"
  "CMakeFiles/snd_util.dir/log.cpp.o"
  "CMakeFiles/snd_util.dir/log.cpp.o.d"
  "CMakeFiles/snd_util.dir/rng.cpp.o"
  "CMakeFiles/snd_util.dir/rng.cpp.o.d"
  "CMakeFiles/snd_util.dir/stats.cpp.o"
  "CMakeFiles/snd_util.dir/stats.cpp.o.d"
  "CMakeFiles/snd_util.dir/table.cpp.o"
  "CMakeFiles/snd_util.dir/table.cpp.o.d"
  "libsnd_util.a"
  "libsnd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
