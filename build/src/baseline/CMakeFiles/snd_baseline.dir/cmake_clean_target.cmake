file(REMOVE_RECURSE
  "libsnd_baseline.a"
)
