# Empty compiler generated dependencies file for snd_baseline.
# This may be replaced when dependencies are built.
