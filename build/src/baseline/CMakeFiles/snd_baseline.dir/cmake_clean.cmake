file(REMOVE_RECURSE
  "CMakeFiles/snd_baseline.dir/centralized.cpp.o"
  "CMakeFiles/snd_baseline.dir/centralized.cpp.o.d"
  "CMakeFiles/snd_baseline.dir/parno.cpp.o"
  "CMakeFiles/snd_baseline.dir/parno.cpp.o.d"
  "libsnd_baseline.a"
  "libsnd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
