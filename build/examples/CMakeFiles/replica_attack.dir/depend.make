# Empty dependencies file for replica_attack.
# This may be replaced when dependencies are built.
