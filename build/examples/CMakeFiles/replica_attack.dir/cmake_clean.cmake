file(REMOVE_RECURSE
  "CMakeFiles/replica_attack.dir/replica_attack.cpp.o"
  "CMakeFiles/replica_attack.dir/replica_attack.cpp.o.d"
  "replica_attack"
  "replica_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
