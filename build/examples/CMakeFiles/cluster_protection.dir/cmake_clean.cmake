file(REMOVE_RECURSE
  "CMakeFiles/cluster_protection.dir/cluster_protection.cpp.o"
  "CMakeFiles/cluster_protection.dir/cluster_protection.cpp.o.d"
  "cluster_protection"
  "cluster_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
