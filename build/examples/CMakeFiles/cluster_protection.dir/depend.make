# Empty dependencies file for cluster_protection.
# This may be replaced when dependencies are built.
