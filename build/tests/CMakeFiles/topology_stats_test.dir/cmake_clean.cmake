file(REMOVE_RECURSE
  "CMakeFiles/topology_stats_test.dir/topology_stats_test.cpp.o"
  "CMakeFiles/topology_stats_test.dir/topology_stats_test.cpp.o.d"
  "topology_stats_test"
  "topology_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
