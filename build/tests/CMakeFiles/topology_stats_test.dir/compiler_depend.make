# Empty compiler generated dependencies file for topology_stats_test.
# This may be replaced when dependencies are built.
