
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_geometry_test.cpp" "tests/CMakeFiles/util_geometry_test.dir/util_geometry_test.cpp.o" "gcc" "tests/CMakeFiles/util_geometry_test.dir/util_geometry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/snd_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/snd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/snd_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/snd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/snd_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/snd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
