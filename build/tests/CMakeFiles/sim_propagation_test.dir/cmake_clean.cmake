file(REMOVE_RECURSE
  "CMakeFiles/sim_propagation_test.dir/sim_propagation_test.cpp.o"
  "CMakeFiles/sim_propagation_test.dir/sim_propagation_test.cpp.o.d"
  "sim_propagation_test"
  "sim_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
