# Empty dependencies file for sim_propagation_test.
# This may be replaced when dependencies are built.
