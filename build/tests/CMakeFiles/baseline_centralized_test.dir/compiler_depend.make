# Empty compiler generated dependencies file for baseline_centralized_test.
# This may be replaced when dependencies are built.
