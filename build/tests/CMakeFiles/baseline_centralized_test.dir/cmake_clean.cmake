file(REMOVE_RECURSE
  "CMakeFiles/baseline_centralized_test.dir/baseline_centralized_test.cpp.o"
  "CMakeFiles/baseline_centralized_test.dir/baseline_centralized_test.cpp.o.d"
  "baseline_centralized_test"
  "baseline_centralized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
