# Empty dependencies file for sim_deployment_test.
# This may be replaced when dependencies are built.
