file(REMOVE_RECURSE
  "CMakeFiles/sim_deployment_test.dir/sim_deployment_test.cpp.o"
  "CMakeFiles/sim_deployment_test.dir/sim_deployment_test.cpp.o.d"
  "sim_deployment_test"
  "sim_deployment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_deployment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
