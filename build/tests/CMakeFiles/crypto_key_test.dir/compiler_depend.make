# Empty compiler generated dependencies file for crypto_key_test.
# This may be replaced when dependencies are built.
