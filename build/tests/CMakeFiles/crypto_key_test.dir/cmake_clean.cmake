file(REMOVE_RECURSE
  "CMakeFiles/crypto_key_test.dir/crypto_key_test.cpp.o"
  "CMakeFiles/crypto_key_test.dir/crypto_key_test.cpp.o.d"
  "crypto_key_test"
  "crypto_key_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
