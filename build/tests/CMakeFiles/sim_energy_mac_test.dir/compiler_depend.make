# Empty compiler generated dependencies file for sim_energy_mac_test.
# This may be replaced when dependencies are built.
