file(REMOVE_RECURSE
  "CMakeFiles/sim_energy_mac_test.dir/sim_energy_mac_test.cpp.o"
  "CMakeFiles/sim_energy_mac_test.dir/sim_energy_mac_test.cpp.o.d"
  "sim_energy_mac_test"
  "sim_energy_mac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_energy_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
