file(REMOVE_RECURSE
  "CMakeFiles/core_record_exchange_test.dir/core_record_exchange_test.cpp.o"
  "CMakeFiles/core_record_exchange_test.dir/core_record_exchange_test.cpp.o.d"
  "core_record_exchange_test"
  "core_record_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_record_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
