file(REMOVE_RECURSE
  "CMakeFiles/core_early_erasure_test.dir/core_early_erasure_test.cpp.o"
  "CMakeFiles/core_early_erasure_test.dir/core_early_erasure_test.cpp.o.d"
  "core_early_erasure_test"
  "core_early_erasure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_early_erasure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
