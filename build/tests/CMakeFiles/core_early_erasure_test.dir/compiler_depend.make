# Empty compiler generated dependencies file for core_early_erasure_test.
# This may be replaced when dependencies are built.
