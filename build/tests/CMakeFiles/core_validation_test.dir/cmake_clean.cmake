file(REMOVE_RECURSE
  "CMakeFiles/core_validation_test.dir/core_validation_test.cpp.o"
  "CMakeFiles/core_validation_test.dir/core_validation_test.cpp.o.d"
  "core_validation_test"
  "core_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
