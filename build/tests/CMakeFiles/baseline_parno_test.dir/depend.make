# Empty dependencies file for baseline_parno_test.
# This may be replaced when dependencies are built.
