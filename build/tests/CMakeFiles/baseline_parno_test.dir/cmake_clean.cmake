file(REMOVE_RECURSE
  "CMakeFiles/baseline_parno_test.dir/baseline_parno_test.cpp.o"
  "CMakeFiles/baseline_parno_test.dir/baseline_parno_test.cpp.o.d"
  "baseline_parno_test"
  "baseline_parno_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_parno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
