file(REMOVE_RECURSE
  "CMakeFiles/adversary_wormhole_test.dir/adversary_wormhole_test.cpp.o"
  "CMakeFiles/adversary_wormhole_test.dir/adversary_wormhole_test.cpp.o.d"
  "adversary_wormhole_test"
  "adversary_wormhole_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_wormhole_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
