# Empty dependencies file for adversary_wormhole_test.
# This may be replaced when dependencies are built.
