file(REMOVE_RECURSE
  "CMakeFiles/crypto_keypredist_test.dir/crypto_keypredist_test.cpp.o"
  "CMakeFiles/crypto_keypredist_test.dir/crypto_keypredist_test.cpp.o.d"
  "crypto_keypredist_test"
  "crypto_keypredist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_keypredist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
