# Empty compiler generated dependencies file for topology_partition_test.
# This may be replaced when dependencies are built.
