file(REMOVE_RECURSE
  "CMakeFiles/topology_partition_test.dir/topology_partition_test.cpp.o"
  "CMakeFiles/topology_partition_test.dir/topology_partition_test.cpp.o.d"
  "topology_partition_test"
  "topology_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
