file(REMOVE_RECURSE
  "CMakeFiles/topology_graph_test.dir/topology_graph_test.cpp.o"
  "CMakeFiles/topology_graph_test.dir/topology_graph_test.cpp.o.d"
  "topology_graph_test"
  "topology_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
