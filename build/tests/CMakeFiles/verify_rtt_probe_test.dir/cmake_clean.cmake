file(REMOVE_RECURSE
  "CMakeFiles/verify_rtt_probe_test.dir/verify_rtt_probe_test.cpp.o"
  "CMakeFiles/verify_rtt_probe_test.dir/verify_rtt_probe_test.cpp.o.d"
  "verify_rtt_probe_test"
  "verify_rtt_probe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_rtt_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
