# Empty dependencies file for verify_rtt_probe_test.
# This may be replaced when dependencies are built.
