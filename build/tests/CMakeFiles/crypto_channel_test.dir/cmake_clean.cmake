file(REMOVE_RECURSE
  "CMakeFiles/crypto_channel_test.dir/crypto_channel_test.cpp.o"
  "CMakeFiles/crypto_channel_test.dir/crypto_channel_test.cpp.o.d"
  "crypto_channel_test"
  "crypto_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
