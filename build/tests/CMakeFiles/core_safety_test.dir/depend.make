# Empty dependencies file for core_safety_test.
# This may be replaced when dependencies are built.
