file(REMOVE_RECURSE
  "CMakeFiles/core_safety_test.dir/core_safety_test.cpp.o"
  "CMakeFiles/core_safety_test.dir/core_safety_test.cpp.o.d"
  "core_safety_test"
  "core_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
