# Empty compiler generated dependencies file for core_messenger_test.
# This may be replaced when dependencies are built.
