file(REMOVE_RECURSE
  "CMakeFiles/core_messenger_test.dir/core_messenger_test.cpp.o"
  "CMakeFiles/core_messenger_test.dir/core_messenger_test.cpp.o.d"
  "core_messenger_test"
  "core_messenger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_messenger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
