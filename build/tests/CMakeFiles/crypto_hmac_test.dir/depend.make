# Empty dependencies file for crypto_hmac_test.
# This may be replaced when dependencies are built.
