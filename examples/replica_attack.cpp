// Replica attack demonstration (paper §4.2, Theorem 3).
//
// An attacker compromises one node *after* it completed neighbor discovery
// (and erased the master key K), clones it at the far corner of a larger
// field, and waits for a second deployment round. The stolen binding record
// names the original neighborhood, so newly deployed nodes next to the
// replica find no overlap and reject it: the identity's impact stays inside
// a 2R circle.
//
// Run with --leak-master to violate the deployment-time trust window
// (compromise before key erasure): the attacker then forges binding records
// and relation commitments, and containment collapses -- the §6 caveat.
#include <iostream>

#include "adversary/attacker.h"
#include "core/deployment_driver.h"
#include "core/safety.h"
#include "util/driver_spec.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace snd;

  util::cli::DriverSpec driver_spec(
      "replica_attack",
      "Node-replication attack demo: clone a compromised node at a remote\n"
      "site and watch validation reject (or, with --leak-master, admit) it.");
  driver_spec.bool_flag("leak-master", "leak the master key to the adversary")
      .int_flag("seed", 7, "S", "deployment seed")
      .int_flag("threshold", 8, "T", "security threshold t", 0);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const bool leak_master = cli.get_bool("leak-master");

  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {400.0, 400.0}};
  config.radio_range = 50.0;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.protocol.threshold_t = static_cast<std::size_t>(cli.get_int("threshold"));

  core::SndDeployment deployment(config);
  deployment.deploy_round(600);  // ~ one node per 267 m^2

  if (leak_master) {
    // Compromise mid-discovery: run only until Hellos are out, then strike.
    deployment.run_for(sim::Time::milliseconds(50));
  } else {
    deployment.run();  // all nodes finish and erase K first
  }

  // Compromise the node nearest the field center and replicate it at the
  // four corners.
  const NodeId victim = [&]() {
    NodeId best = 1;
    double best_distance = 1e18;
    for (const sim::Device& d : deployment.network().devices()) {
      const double dist = util::distance(d.position, config.field.center());
      if (dist < best_distance) {
        best_distance = dist;
        best = d.identity;
      }
    }
    return best;
  }();

  adversary::Attacker attacker(deployment);
  attacker.compromise(victim);
  std::cout << "compromised node " << victim
            << " (master key stolen: " << std::boolalpha << attacker.master_key_leaked()
            << ")\n";

  for (const util::Vec2 corner : {util::Vec2{30, 30}, util::Vec2{370, 30},
                                  util::Vec2{30, 370}, util::Vec2{370, 370}}) {
    attacker.place_replica(victim, corner);
  }
  deployment.run();

  // Second deployment round: fresh nodes everywhere, including next to the
  // replicas -- the nodes the attacker hopes to fool.
  deployment.deploy_round(300);
  deployment.run();

  const core::SafetyReport report = core::audit_safety(deployment, 2.0 * config.radio_range);
  for (const auto& identity_report : report.identities) {
    std::cout << "identity " << identity_report.identity << ": accepted by "
              << identity_report.accepting_nodes.size()
              << " benign node(s), impact radius = "
              << util::Table::num(identity_report.impact_radius(), 1) << " m (limit "
              << 2.0 * config.radio_range << " m) -> "
              << (identity_report.violates ? "2R-SAFETY VIOLATED" : "contained") << "\n";
  }
  std::cout << (report.holds() ? "\nresult: 2R-safety holds\n"
                               : "\nresult: 2R-safety UNDER ATTACK FAILED\n");
  return report.holds() == !leak_master ? 0 : 1;
}
