// The introduction's motivating scenario end-to-end: smallest-ID clustering
// over a sensor field under a node replication attack, with and without
// secure neighbor discovery.
//
// Without validation (clustering on the raw tentative topology), replicas
// of a low-ID compromised node pull members from across the field into one
// "cluster" whose head is hundreds of meters away. With SND validation the
// replicas are rejected and every cluster stays radio-local.
//
//   ./cluster_protection [--seed 3]
#include <iostream>
#include <map>

#include "adversary/attacker.h"
#include "apps/clustering.h"
#include "core/deployment_driver.h"
#include "util/driver_spec.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace snd;

  util::cli::DriverSpec driver_spec(
      "cluster_protection",
      "Cluster-head protection demo: the functional topology keeps a\n"
      "cluster head from adopting far-away members.");
  driver_spec.int_flag("seed", 3, "S", "deployment seed");
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();

  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {300.0, 300.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 5;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Identity 1 -- the smallest ID in the network, i.e. a guaranteed cluster
  // head wherever it is believed to be a neighbor -- is the attacker's
  // choice of victim.
  core::SndDeployment deployment(config);
  const NodeId victim = deployment.deploy_node_at({40.0, 40.0});
  deployment.deploy_round(400);
  deployment.run();

  adversary::Attacker attacker(deployment);
  attacker.compromise(victim);
  for (const util::Vec2 site : {util::Vec2{260, 260}, util::Vec2{40, 260}, util::Vec2{260, 40}}) {
    attacker.place_replica(victim, site);
  }
  deployment.run();
  // Fresh nodes near each replica site: the nodes the attack targets.
  for (const util::Vec2 site : {util::Vec2{260, 260}, util::Vec2{40, 260}, util::Vec2{260, 40}}) {
    for (int i = 0; i < 5; ++i) deployment.deploy_node_at({site.x - 8 + 4 * i, site.y + 6});
  }
  deployment.run();

  std::map<NodeId, util::Vec2> positions;
  for (const sim::Device& d : deployment.network().devices()) {
    if (!d.replica) positions.emplace(d.identity, d.position);
  }

  std::cout << "== Clustering under a replication attack on the smallest ID ==\n"
            << "victim = node " << victim << " at (40,40), replicated at 3 remote sites\n\n";

  util::Table table({"neighbor source", "clusters", "members of cluster " +
                                                         std::to_string(victim),
                     "max cluster diameter (m)"});
  for (const auto& [name, graph] :
       std::initializer_list<std::pair<const char*, topology::Digraph>>{
           {"tentative (no validation)", deployment.tentative_graph()},
           {"functional (SND)", deployment.functional_graph()}}) {
    const apps::Clustering clustering = apps::smallest_id_clustering(graph);
    const apps::ClusterQuality quality = apps::evaluate_clusters(clustering, positions);
    const auto it = clustering.clusters.find(victim);
    const std::size_t victim_members = it != clustering.clusters.end() ? it->second.size() : 0;
    table.add_row({name, util::Table::integer(static_cast<long long>(clustering.cluster_count())),
                   util::Table::integer(static_cast<long long>(victim_members)),
                   util::Table::num(quality.max_diameter_m, 1)});
  }
  table.print(std::cout);

  std::cout << "\nThe tentative row shows the paper's motivating failure: \"many sensor\n"
            << "nodes far from each other may be included in the same cluster\". The\n"
            << "functional row keeps every cluster within the radio neighborhood.\n";
  return 0;
}
