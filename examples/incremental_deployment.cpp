// Incremental deployment with the binding-record update extension (§4.4).
//
// A long-lived network loses nodes to battery exhaustion while new rounds
// of sensors arrive. Without updates, an old node's frozen binding record
// slowly empties of *active* tentative neighbors and new arrivals can no
// longer find t+1 common neighbors with it. With the extension, freshly
// deployed nodes re-issue old records (verifying hash evidences with K), so
// old and new nodes keep forming functional relations.
//
//   ./incremental_deployment [--rounds 4] [--deaths 12] [--updates 3]
#include <iostream>

#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace snd;

struct RoundStats {
  std::size_t new_nodes = 0;
  double new_to_old_links = 0.0;  // mean functional links from new to old nodes
  double mean_record_version = 0.0;
};

std::vector<RoundStats> simulate(std::uint32_t max_updates, std::size_t rounds,
                                 std::size_t deaths_per_round, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {150.0, 150.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 12;
  config.protocol.max_updates = max_updates;
  config.seed = seed;

  core::SndDeployment deployment(config);
  std::vector<NodeId> old_nodes = deployment.deploy_round(180);
  deployment.run();
  for (NodeId id : old_nodes) deployment.agent(id)->set_auto_update(true);

  std::vector<RoundStats> per_round;
  util::Rng death_rng(seed ^ 0xdead);
  for (std::size_t round = 0; round < rounds; ++round) {
    // Battery deaths thin the original population.
    for (std::size_t d = 0; d < deaths_per_round; ++d) {
      const auto index = death_rng.uniform_int(old_nodes.size());
      if (const core::SndNode* agent = deployment.agent(old_nodes[index])) {
        deployment.kill_device(agent->device());
      }
    }

    const std::vector<NodeId> fresh = deployment.deploy_round(20);
    deployment.run();
    for (NodeId id : fresh) deployment.agent(id)->set_auto_update(true);

    RoundStats stats;
    stats.new_nodes = fresh.size();
    double links = 0.0;
    for (NodeId id : fresh) {
      for (NodeId v : deployment.agent(id)->functional_neighbors()) {
        if (v <= old_nodes.back()) links += 1.0;
      }
    }
    stats.new_to_old_links = links / static_cast<double>(fresh.size());
    double versions = 0.0;
    std::size_t alive = 0;
    for (NodeId id : old_nodes) {
      const core::SndNode* agent = deployment.agent(id);
      if (agent == nullptr) continue;
      if (!deployment.network().device(agent->device()).alive) continue;
      versions += agent->record_version();
      ++alive;
    }
    stats.mean_record_version = alive > 0 ? versions / static_cast<double>(alive) : 0.0;
    per_round.push_back(stats);
  }
  return per_round;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 4));
  const auto deaths = static_cast<std::size_t>(cli.get_int("deaths", 12));
  const auto updates = static_cast<std::uint32_t>(cli.get_int("updates", 3));

  std::cout << "== Incremental deployment with battery deaths ==\n"
            << "180 initial nodes, " << deaths << " deaths + 20 arrivals per round, t = 12\n\n";

  const auto without = simulate(0, rounds, deaths, 42);
  const auto with = simulate(updates, rounds, deaths, 42);

  util::Table table({"round", "new-to-old links (no updates)",
                     "new-to-old links (m=" + std::to_string(updates) + ")",
                     "mean record version (m=" + std::to_string(updates) + ")"});
  for (std::size_t r = 0; r < rounds; ++r) {
    table.add_row({util::Table::integer(static_cast<long long>(r + 1)),
                   util::Table::num(without[r].new_to_old_links, 1),
                   util::Table::num(with[r].new_to_old_links, 1),
                   util::Table::num(with[r].mean_record_version, 2)});
  }
  table.print(std::cout);

  std::cout << "\nWith updates enabled, old nodes keep absorbing each round's arrivals\n"
            << "into their binding records, so later rounds still validate them; with\n"
            << "the extension off, new-to-old connectivity decays as the original\n"
            << "cohort dies out (the §4.4 motivation).\n";
  return 0;
}
