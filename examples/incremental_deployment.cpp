// Incremental deployment with the binding-record update extension (§4.4).
//
// A long-lived network loses nodes to battery exhaustion while new rounds
// of sensors arrive. Without updates, an old node's frozen binding record
// slowly empties of *active* tentative neighbors and new arrivals can no
// longer find t+1 common neighbors with it. With the extension, freshly
// deployed nodes re-issue old records (verifying hash evidences with K), so
// old and new nodes keep forming functional relations.
//
//   ./incremental_deployment [--rounds 4] [--deaths 12] [--updates 3] [--seeds 1] [--jobs N]
//
// The with/without-updates arms (x --seeds deployments) are independent
// trials sharded across workers by runner::TrialRunner; both arms of a seed
// share the same deployment so the comparison stays paired.
#include <iostream>

#include "core/deployment_driver.h"
#include "obs/config.h"
#include "runner/trial_runner.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct RoundStats {
  std::size_t new_nodes = 0;
  double new_to_old_links = 0.0;  // mean functional links from new to old nodes
  double mean_record_version = 0.0;
};

std::vector<RoundStats> simulate(std::uint32_t max_updates, std::size_t rounds,
                                 std::size_t deaths_per_round, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {150.0, 150.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 12;
  config.protocol.max_updates = max_updates;
  config.seed = seed;

  core::SndDeployment deployment(config);
  std::vector<NodeId> old_nodes = deployment.deploy_round(180);
  deployment.run();
  for (NodeId id : old_nodes) deployment.agent(id)->set_auto_update(true);

  std::vector<RoundStats> per_round;
  util::Rng death_rng(seed ^ 0xdead);
  for (std::size_t round = 0; round < rounds; ++round) {
    // Battery deaths thin the original population.
    for (std::size_t d = 0; d < deaths_per_round; ++d) {
      const auto index = death_rng.uniform_int(old_nodes.size());
      if (const core::SndNode* agent = deployment.agent(old_nodes[index])) {
        deployment.kill_device(agent->device());
      }
    }

    const std::vector<NodeId> fresh = deployment.deploy_round(20);
    deployment.run();
    for (NodeId id : fresh) deployment.agent(id)->set_auto_update(true);

    RoundStats stats;
    stats.new_nodes = fresh.size();
    double links = 0.0;
    for (NodeId id : fresh) {
      for (NodeId v : deployment.agent(id)->functional_neighbors()) {
        if (v <= old_nodes.back()) links += 1.0;
      }
    }
    stats.new_to_old_links = links / static_cast<double>(fresh.size());
    double versions = 0.0;
    std::size_t alive = 0;
    for (NodeId id : old_nodes) {
      const core::SndNode* agent = deployment.agent(id);
      if (agent == nullptr) continue;
      if (!deployment.network().device(agent->device()).alive) continue;
      versions += agent->record_version();
      ++alive;
    }
    stats.mean_record_version = alive > 0 ? versions / static_cast<double>(alive) : 0.0;
    per_round.push_back(stats);
  }
  return per_round;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  util::cli::DriverSpec driver_spec(
      "incremental_deployment",
      "Incremental-deployment walkthrough (paper Theorem 4): deploy in\n"
      "rounds, kill batteries, update survivors, revalidate each round.");
  driver_spec.int_flag("rounds", 4, "N", "deployment rounds", 1)
      .int_flag("deaths", 12, "N", "battery deaths per round", 0)
      .int_flag("updates", 3, "N", "position updates per round", 0)
      .int_flag("seeds", 1, "N", "independent seeds", 1)
      .group(util::cli::jobs_group(&jobs))
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  const auto deaths = static_cast<std::size_t>(cli.get_int("deaths"));
  const auto updates = static_cast<std::uint32_t>(cli.get_int("updates"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  runner::TrialRunner pool(jobs);

  std::cout << "== Incremental deployment with battery deaths ==\n"
            << "180 initial nodes, " << deaths << " deaths + 20 arrivals per round, t = 12, "
            << seeds << " seed(s), " << pool.jobs() << " jobs\n\n";

  // One flat (arm, seed) trial space: arm 0 disables updates, arm 1 caps
  // them at --updates. Both arms of seed s reuse the same deployment seed so
  // the table stays a paired comparison.
  const auto results = pool.run(
      2 * seeds, /*base_seed=*/42, [&](std::size_t i, std::uint64_t) {
        const std::uint32_t m = i / seeds == 0 ? 0 : updates;
        return simulate(m, rounds, deaths, util::derive_seed(42, i % seeds));
      });

  auto mean_over_seeds = [&](std::size_t arm, std::size_t round, auto field) {
    util::RunningStats stats;
    for (std::size_t s = 0; s < seeds; ++s) {
      if (const auto& per_round = results[arm * seeds + s]) stats.add(field((*per_round)[round]));
    }
    return stats.mean();
  };

  util::Table table({"round", "new-to-old links (no updates)",
                     "new-to-old links (m=" + std::to_string(updates) + ")",
                     "mean record version (m=" + std::to_string(updates) + ")"});
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto links = [](const RoundStats& s) { return s.new_to_old_links; };
    const auto version = [](const RoundStats& s) { return s.mean_record_version; };
    table.add_row({util::Table::integer(static_cast<long long>(r + 1)),
                   util::Table::num(mean_over_seeds(0, r, links), 1),
                   util::Table::num(mean_over_seeds(1, r, links), 1),
                   util::Table::num(mean_over_seeds(1, r, version), 2)});
  }
  table.print(std::cout);

  std::cout << "\nWith updates enabled, old nodes keep absorbing each round's arrivals\n"
            << "into their binding records, so later rounds still validate them; with\n"
            << "the extension off, new-to-old connectivity decays as the original\n"
            << "cohort dies out (the §4.4 motivation).\n";
  return 0;
}
