// Walkthrough of the paper's Section 3: why topology information alone can
// never secure localized neighbor discovery (Theorems 1 and 2), shown on
// concrete graphs small enough to print.
//
//   ./impossibility_demo [--threshold 2]
#include <iostream>

#include "adversary/theorem_attack.h"
#include "util/driver_spec.h"

namespace {

using namespace snd;

void print_graph(const char* name, const topology::Digraph& g) {
  std::cout << name << ": nodes {";
  bool first = true;
  for (NodeId n : g.nodes()) {
    std::cout << (first ? "" : ", ") << n;
    first = false;
  }
  std::cout << "}\n  edges:";
  for (const auto& [u, v] : g.edges()) std::cout << " " << u << "->" << v;
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "impossibility_demo",
      "Theorem 1 demo: two indistinguishable worlds defeat topology-only\n"
      "neighbor validation.");
  driver_spec.int_flag("threshold", 2, "T", "security threshold t", 0);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto t = static_cast<std::size_t>(cli.get_int("threshold"));

  core::CommonNeighborValidator validator(t);
  std::cout << "Validation function F: " << validator.name()
            << "  (accept iff the two nodes share >= t+1 = " << t + 1
            << " tentative neighbors)\n"
            << "Minimum deployment size m = " << validator.minimum_deployment_size() << "\n\n";

  // ---- Theorem 1 -----------------------------------------------------
  std::cout << "=== Theorem 1: the graph-cloning attack ===\n";
  const auto attack =
      adversary::build_theorem1_attack(validator, 2 * validator.minimum_deployment_size() - 1);

  std::cout << "The attacker compromises w = " << attack.w << ".\n";
  print_graph("G_A (minimum deployment; all nodes initially benign)", attack.original_view);
  std::cout << "F(u=" << attack.u << ", w=" << attack.w << ", G_A) = "
            << validator.validate(attack.u, attack.w, attack.original_view) << "  -- u accepts w\n\n";

  print_graph("forged relations G(w) (w's edges transported into clone B)",
              attack.forged_relations);
  print_graph("victim view G_B + G(w) (isomorphic to G_A except w)", attack.victim_view);
  std::cout << "F(f(u)=" << attack.fu << ", w=" << attack.w << ", G_B+G(w)) = "
            << validator.validate(attack.fu, attack.w, attack.victim_view)
            << "  -- the far-away f(u) also accepts w\n\n"
            << "Definition 3 (isomorphism invariance) forces the second accept: the\n"
            << "victim's view is connected exactly like G_A, so any F deciding from\n"
            << "topology alone must repeat its decision. Nodes " << attack.u << " and "
            << attack.fu << " can be placed arbitrarily far apart: no d-safety for any d.\n\n";

  // ---- Theorem 2 ------------------------------------------------------
  std::cout << "=== Theorem 2: attacking an existing network ===\n";
  topology::Digraph g;
  for (NodeId c = 2; c <= 2 + static_cast<NodeId>(t) + 2; ++c) {
    g.add_edge(1, c);
    g.add_edge(c, 1);
  }
  g.add_node(99);  // the remote node the attacker will compromise
  print_graph("benign network G (u = 1 is extendable; 99 is far away)", g);
  std::cout << "F(1, 99, G) = " << validator.validate(1, 99, g) << "  -- rejected, as it should\n";

  std::vector<NodeId> hood;
  for (NodeId c = 2; c <= 2 + static_cast<NodeId>(t); ++c) hood.push_back(c);
  const auto t2 = adversary::build_theorem2_attack(g, 1, hood, 99);
  std::cout << "Attacker compromises 99 and forges the relations a new node beside 1\n"
            << "would have had, renamed to 99 (X_{x->v} in the proof):\n";
  std::cout << "F(1, 99, G + forged) = " << t2.succeeds(validator)
            << "  -- the remote node is now accepted\n\n"
            << "Conclusion (paper section 3.3): a localized F would need to consult all\n"
            << "non-isolated benign nodes farther than d+R away -- i.e. the entire\n"
            << "topology -- so extra knowledge is required. The protocol in src/core\n"
            << "adds exactly one assumption: a deployment-time trusted window in which\n"
            << "the master key K binds each node to its birthplace, then disappears.\n";
  return 0;
}
