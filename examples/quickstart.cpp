// Quickstart: deploy a field of sensors, run secure neighbor discovery, and
// inspect the resulting topologies.
//
//   ./quickstart [--nodes 200] [--threshold 10] [--seed 1]
//
// This is the paper's §4.5.1 setting: 200 nodes uniform in a 100x100 m
// field (one node per 50 m^2), radio range R = 50 m.
#include <iostream>

#include "core/deployment_driver.h"
#include "topology/partition.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace snd;

  util::cli::DriverSpec driver_spec(
      "quickstart",
      "Smallest end-to-end run: deploy a field, run discovery, print the\n"
      "functional topology summary.");
  driver_spec.int_flag("nodes", 200, "N", "deployed node count", 1)
      .int_flag("threshold", 10, "T", "security threshold t", 0)
      .int_flag("seed", 1, "S", "deployment seed");
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  core::DeploymentConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.protocol.threshold_t = static_cast<std::size_t>(cli.get_int("threshold"));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));

  std::cout << "== SND quickstart ==\n"
            << "field:     " << config.field.width() << " x " << config.field.height()
            << " m\n"
            << "nodes:     " << nodes << "\n"
            << "radio R:   " << config.radio_range << " m\n"
            << "threshold: t = " << config.protocol.threshold_t << "\n\n";

  // 1. Deploy and run every protocol phase to completion.
  core::SndDeployment deployment(config);
  deployment.deploy_round(nodes);
  deployment.run();

  // 2. Extract the three topology views.
  const topology::Digraph actual = deployment.actual_benign_graph();
  const topology::Digraph tentative = deployment.tentative_graph();
  const topology::Digraph functional = deployment.functional_graph();

  util::Table table({"topology", "nodes", "edges", "mean out-degree"});
  for (const auto& [name, graph] :
       std::initializer_list<std::pair<const char*, const topology::Digraph*>>{
           {"actual (ground truth)", &actual},
           {"tentative (discovered)", &tentative},
           {"functional (validated)", &functional}}) {
    const auto stats = topology::degree_stats(*graph);
    table.add_row({name, util::Table::integer(static_cast<long long>(graph->node_count())),
                   util::Table::integer(static_cast<long long>(graph->edge_count())),
                   util::Table::num(stats.mean_out_degree, 1)});
  }
  table.print(std::cout);

  // 3. The paper's headline metrics.
  std::cout << "\naccuracy (fraction of actual relations validated): "
            << util::Table::percent(topology::edge_recall(actual, functional)) << "\n"
            << "precision (validated relations that are genuine):  "
            << util::Table::percent(topology::edge_precision(actual, functional)) << "\n";

  const auto partitions = topology::analyze_partitions(functional);
  std::cout << "functional partitions: " << partitions.useful_count() + 0
            << " useful (largest = " << partitions.partitions.front().size() << " nodes), "
            << partitions.isolated.size() << " isolated node(s)\n";

  // 4. Per-node view of one sensor.
  const core::SndNode* sample = deployment.agent(1);
  std::cout << "\nnode 1: |N| = " << sample->tentative_neighbors().size()
            << " tentative, |F| = " << sample->functional_neighbors().size()
            << " functional, master key erased = " << std::boolalpha
            << !sample->master_key_present() << "\n";

  const auto traffic = deployment.network().metrics().total();
  std::cout << "traffic: " << traffic.messages << " messages, " << traffic.bytes
            << " bytes across all protocol phases\n";
  return 0;
}
