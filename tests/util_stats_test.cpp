#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace snd::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stdev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MinMaxTracking) {
  RunningStats stats;
  for (double v : {3.0, -1.0, 10.0, 2.0}) stats.add(v);
  EXPECT_EQ(stats.min(), -1.0);
  EXPECT_EQ(stats.max(), 10.0);
}

TEST(RunningStatsTest, SumMatches) {
  RunningStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(static_cast<double>(i));
  EXPECT_NEAR(stats.sum(), 5050.0, 1e-9);
}

TEST(RunningStatsTest, SemShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 4; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 400; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.sem(), large.sem());
}

TEST(RunningStatsTest, SummaryFormat) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  EXPECT_EQ(stats.summary(1), "2.0 ± 1.4");
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  // Welford handles a large common offset without catastrophic cancellation.
  for (double v : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) stats.add(v);
  EXPECT_NEAR(stats.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(stats.variance(), 30.0, 1e-6);
}

TEST(SeriesTest, MeanAndStdev) {
  Series series;
  for (double v : {1.0, 2.0, 3.0, 4.0}) series.add(v);
  EXPECT_DOUBLE_EQ(series.mean(), 2.5);
  EXPECT_NEAR(series.stdev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SeriesTest, MedianOddCount) {
  Series series;
  for (double v : {9.0, 1.0, 5.0}) series.add(v);
  EXPECT_DOUBLE_EQ(series.median(), 5.0);
}

TEST(SeriesTest, MedianEvenCountInterpolates) {
  Series series;
  for (double v : {1.0, 2.0, 3.0, 4.0}) series.add(v);
  EXPECT_DOUBLE_EQ(series.median(), 2.5);
}

TEST(SeriesTest, PercentileExtremes) {
  Series series;
  for (double v : {10.0, 20.0, 30.0}) series.add(v);
  EXPECT_DOUBLE_EQ(series.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(series.percentile(100.0), 30.0);
}

TEST(SeriesTest, PercentileInterpolation) {
  Series series;
  for (double v : {0.0, 10.0}) series.add(v);
  EXPECT_DOUBLE_EQ(series.percentile(25.0), 2.5);
}

TEST(SeriesTest, SingleElementAllPercentiles) {
  Series series;
  series.add(42.0);
  for (double p : {0.0, 50.0, 99.0, 100.0}) EXPECT_DOUBLE_EQ(series.percentile(p), 42.0);
}

}  // namespace
}  // namespace snd::util
