#include "crypto/secure_channel.h"

#include <gtest/gtest.h>

#include "crypto/stream_cipher.h"

namespace snd::crypto {
namespace {

class SecureChannelTest : public ::testing::Test {
 protected:
  SymmetricKey pairwise_ = SymmetricKey::from_seed(99);
  SecureChannel alice_{1, 2, pairwise_};
  SecureChannel bob_{2, 1, pairwise_};
};

TEST_F(SecureChannelTest, RoundTrip) {
  const util::Bytes message = {1, 2, 3, 4, 5};
  const util::Bytes sealed = alice_.seal(message);
  EXPECT_EQ(bob_.open(sealed), message);
}

TEST_F(SecureChannelTest, EmptyPayloadRoundTrips) {
  const util::Bytes sealed = alice_.seal(util::Bytes{});
  const auto opened = bob_.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST_F(SecureChannelTest, CiphertextDiffersFromPlaintext) {
  const util::Bytes message(64, 0x00);
  const util::Bytes sealed = alice_.seal(message);
  // The ciphertext portion (after the 8-byte seq) must not be all zeros.
  bool any_nonzero = false;
  for (std::size_t i = 8; i < 8 + message.size(); ++i) any_nonzero |= sealed[i] != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST_F(SecureChannelTest, BidirectionalTrafficIndependent) {
  const util::Bytes a_to_b = {'a'};
  const util::Bytes b_to_a = {'b'};
  EXPECT_EQ(bob_.open(alice_.seal(a_to_b)), a_to_b);
  EXPECT_EQ(alice_.open(bob_.seal(b_to_a)), b_to_a);
}

TEST_F(SecureChannelTest, ReplayRejected) {
  const util::Bytes sealed = alice_.seal(util::Bytes{1, 2, 3});
  EXPECT_TRUE(bob_.open(sealed).has_value());
  EXPECT_FALSE(bob_.open(sealed).has_value());
}

TEST_F(SecureChannelTest, OldSequenceRejectedAfterNewer) {
  const util::Bytes first = alice_.seal(util::Bytes{1});
  const util::Bytes second = alice_.seal(util::Bytes{2});
  EXPECT_TRUE(bob_.open(second).has_value());
  EXPECT_FALSE(bob_.open(first).has_value());  // arrived late: below window
}

TEST_F(SecureChannelTest, TamperedCiphertextRejected) {
  util::Bytes sealed = alice_.seal(util::Bytes{1, 2, 3});
  sealed[9] ^= 0x01;
  EXPECT_FALSE(bob_.open(sealed).has_value());
}

TEST_F(SecureChannelTest, TamperedMacRejected) {
  util::Bytes sealed = alice_.seal(util::Bytes{1, 2, 3});
  sealed.back() ^= 0x01;
  EXPECT_FALSE(bob_.open(sealed).has_value());
}

TEST_F(SecureChannelTest, TamperedSequenceRejected) {
  util::Bytes sealed = alice_.seal(util::Bytes{1, 2, 3});
  sealed[7] ^= 0x01;
  EXPECT_FALSE(bob_.open(sealed).has_value());
}

TEST_F(SecureChannelTest, TruncatedMessageRejected) {
  const util::Bytes sealed = alice_.seal(util::Bytes{1, 2, 3});
  const util::Bytes truncated(sealed.begin(), sealed.begin() + 4);
  EXPECT_FALSE(bob_.open(truncated).has_value());
}

TEST_F(SecureChannelTest, WrongPairwiseKeyRejected) {
  SecureChannel eve{2, 1, SymmetricKey::from_seed(1234)};
  EXPECT_FALSE(eve.open(alice_.seal(util::Bytes{1, 2, 3})).has_value());
}

TEST_F(SecureChannelTest, SelfOpenRejected) {
  // Alice cannot open her own message (directional keys differ).
  SecureChannel alice_again{1, 2, pairwise_};
  EXPECT_FALSE(alice_again.open(alice_.seal(util::Bytes{5})).has_value());
}

TEST_F(SecureChannelTest, CountersAdvance) {
  EXPECT_EQ(alice_.messages_sent(), 0u);
  (void)alice_.seal(util::Bytes{});
  (void)alice_.seal(util::Bytes{});
  EXPECT_EQ(alice_.messages_sent(), 2u);
  EXPECT_EQ(bob_.last_accepted_seq(), 0u);
}

TEST(StreamCipherTest, TwiceIsIdentity) {
  const SymmetricKey key = SymmetricKey::from_seed(7);
  const util::Bytes plain = {0, 1, 2, 3, 255, 128};
  const util::Bytes once = ctr_crypt(key, 9, plain);
  EXPECT_NE(once, plain);
  EXPECT_EQ(ctr_crypt(key, 9, once), plain);
}

TEST(StreamCipherTest, DifferentNoncesDifferentKeystream) {
  const SymmetricKey key = SymmetricKey::from_seed(8);
  const util::Bytes plain(32, 0);
  EXPECT_NE(ctr_crypt(key, 1, plain), ctr_crypt(key, 2, plain));
}

TEST(StreamCipherTest, LongMessageSpansBlocks) {
  const SymmetricKey key = SymmetricKey::from_seed(9);
  const util::Bytes plain(1000, 0xaa);
  const util::Bytes cipher = ctr_crypt(key, 3, plain);
  EXPECT_EQ(cipher.size(), plain.size());
  EXPECT_EQ(ctr_crypt(key, 3, cipher), plain);
}

// Round-trip across payload sizes spanning keystream block boundaries.
class ChannelSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSizeTest, RoundTripsAtSize) {
  const SymmetricKey pairwise = SymmetricKey::from_seed(77);
  SecureChannel sender{10, 20, pairwise};
  SecureChannel receiver{20, 10, pairwise};
  util::Bytes message(GetParam());
  for (std::size_t i = 0; i < message.size(); ++i) message[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(receiver.open(sender.seal(message)), message);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizeTest,
                         ::testing::Values(0, 1, 31, 32, 33, 63, 64, 65, 500));

}  // namespace
}  // namespace snd::crypto
