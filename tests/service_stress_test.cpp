// Concurrent reader/ingester stress for the service's snapshot path.
// Readers must never block ingestion, never see a half-published epoch, and
// a retained snapshot must stay self-consistent while the world moves on.
// Run under -DSND_SANITIZE=thread to have TSan check the claim.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "service/events.h"
#include "service/validation_service.h"
#include "util/rng.h"

namespace snd::service {
namespace {

TEST(ServiceStressTest, ConcurrentReadersDuringIngestion) {
  const util::Rect field{{0.0, 0.0}, {120.0, 120.0}};
  ValidationService service({25.0, 2});

  util::Rng rng(7);
  std::vector<std::pair<NodeId, util::Vec2>> initial;
  std::vector<NodeId> live;
  for (NodeId id = 1; id <= 150; ++id) {
    initial.emplace_back(id, util::Vec2{rng.uniform(0.0, 120.0), rng.uniform(0.0, 120.0)});
    live.push_back(id);
  }
  service.seed_topology(initial);
  const auto events = random_events(600, field, std::move(live), 8);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<bool> failed{false};

  const auto reader = [&](std::uint64_t seed) {
    util::Rng local(seed);
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snapshot = service.snapshot();
      // Epochs only move forward.
      if (snapshot->epoch() < last_epoch) failed.store(true);
      last_epoch = snapshot->epoch();
      // A snapshot is internally consistent: a validated neighbor is a
      // tentative neighbor of a node the snapshot knows.
      const NodeId u = static_cast<NodeId>(local.uniform_int(200)) + 1;
      const NodeState* state = snapshot->find(u);
      if (state != nullptr && !state->validated.empty()) {
        const NodeId v = state->validated[local.uniform_int(state->validated.size())];
        if (!snapshot->validate(u, v)) failed.store(true);
        if (!topology::contains(state->neighbors, v)) failed.store(true);
      }
      queries.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto retained = service.snapshot();  // pin the seed epoch for the whole run
  const std::string retained_json = retained->canonical_json();

  std::vector<std::thread> readers;
  for (std::uint64_t i = 0; i < 4; ++i) {
    readers.emplace_back(reader, util::derive_seed(123, i));
  }

  std::size_t applied = 0;
  for (const TopologyEvent& event : events) {
    if (service.apply(event).ok) ++applied;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(applied, events.size());
  EXPECT_GT(queries.load(), 0u);
  // The pinned snapshot never changed underneath the readers.
  EXPECT_EQ(retained->canonical_json(), retained_json);
  EXPECT_EQ(service.snapshot()->epoch(), retained->epoch() + events.size());
}

TEST(ServiceStressTest, BatchIngestionPublishesOnce) {
  const util::Rect field{{0.0, 0.0}, {80.0, 80.0}};
  ValidationService service({20.0, 1});
  util::Rng rng(3);
  std::vector<std::pair<NodeId, util::Vec2>> initial;
  std::vector<NodeId> live;
  for (NodeId id = 1; id <= 60; ++id) {
    initial.emplace_back(id, util::Vec2{rng.uniform(0.0, 80.0), rng.uniform(0.0, 80.0)});
    live.push_back(id);
  }
  service.seed_topology(initial);
  const std::uint64_t before = service.snapshot()->epoch();

  std::atomic<bool> done{false};
  std::atomic<bool> saw_intermediate{false};
  std::thread watcher([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t epoch = service.snapshot()->epoch();
      if (epoch != before && epoch != before + 1) saw_intermediate.store(true);
    }
  });

  const auto events = random_events(200, field, std::move(live), 4);
  EXPECT_EQ(service.apply_all(events), events.size());
  done.store(true, std::memory_order_release);
  watcher.join();

  // apply_all publishes exactly one epoch, so readers can never observe a
  // partially-applied batch.
  EXPECT_FALSE(saw_intermediate.load());
  EXPECT_EQ(service.snapshot()->epoch(), before + 1);
}

}  // namespace
}  // namespace snd::service
