// A/B bit-identity of the data-oriented (SoA) core against the seed
// heap-node representation: the same seeded deployment, run once with
// util::set_soa_enabled(true) and once with false, must produce identical
// protocol outcomes and an identical trace summary. The flat containers
// iterate in the same ascending key order as std::map/std::set and the
// packet pool/scheduler cancel bitset change no decision or RNG draw, so
// every observable -- graphs, evidence, drop counts, replay rejects --
// must match exactly, not approximately.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/deployment_driver.h"
#include "util/soa.h"

namespace snd::core {
namespace {

struct Snapshot {
  std::string summary_json;
  std::vector<std::pair<NodeId, topology::NeighborList>> tentative;
  std::vector<std::pair<NodeId, topology::NeighborList>> functional;
  std::vector<std::pair<NodeId, std::string>> evidence;  // (holder, issuer:digest,...)
  std::vector<std::pair<NodeId, std::uint32_t>> record_versions;
  std::uint64_t replay_rejects = 0;
};

struct Variant {
  DeploymentConfig config;
  std::size_t first_round = 14;
  std::size_t second_round = 0;
  bool auto_update = false;
};

Snapshot run_variant(const Variant& variant, bool soa) {
  const bool saved = util::soa_enabled();
  util::set_soa_enabled(soa);
  Snapshot snap;
  {
    SndDeployment deployment(variant.config);
    deployment.deploy_round(variant.first_round);
    deployment.run();
    if (variant.second_round > 0) {
      if (variant.auto_update) {
        for (const SndNode* agent : deployment.agents()) {
          deployment.agent(agent->identity())->set_auto_update(true);
        }
      }
      deployment.deploy_round(variant.second_round);
      deployment.run();
    }
    for (const SndNode* agent : deployment.agents()) {
      snap.tentative.emplace_back(agent->identity(), agent->tentative_neighbors());
      snap.functional.emplace_back(agent->identity(), agent->functional_neighbors());
      std::string evidence;
      for (const auto& [issuer, digest] : agent->evidence_buffer()) {
        evidence += std::to_string(issuer) + ":" + digest.hex() + ",";
      }
      snap.evidence.emplace_back(agent->identity(), std::move(evidence));
      snap.record_versions.emplace_back(agent->identity(), agent->record_version());
      snap.replay_rejects += agent->replay_rejects();
    }
    snap.summary_json = deployment.network().trace_summary().to_json();
  }
  util::set_soa_enabled(saved);
  return snap;
}

void expect_identical(const Variant& variant) {
  const Snapshot flat = run_variant(variant, true);
  const Snapshot seed = run_variant(variant, false);
  EXPECT_EQ(flat.summary_json, seed.summary_json);
  EXPECT_EQ(flat.tentative, seed.tentative);
  EXPECT_EQ(flat.functional, seed.functional);
  EXPECT_EQ(flat.evidence, seed.evidence);
  EXPECT_EQ(flat.record_versions, seed.record_versions);
  EXPECT_EQ(flat.replay_rejects, seed.replay_rejects);
}

Variant base_variant(std::uint64_t seed) {
  Variant variant;
  variant.config.field = {{0.0, 0.0}, {140.0, 140.0}};
  variant.config.radio_range = 50.0;
  variant.config.protocol.threshold_t = 3;
  variant.config.seed = seed;
  return variant;
}

TEST(SoaIdentityTest, CleanDeploymentIdentical) {
  expect_identical(base_variant(11));
  expect_identical(base_variant(12));
}

TEST(SoaIdentityTest, LossyShadowedChannelIdentical) {
  // Loss consumes one RNG draw per delivery candidate, shadowing more per
  // link test -- any container-iteration-order difference between the two
  // representations would desynchronize the stream and diverge the run.
  Variant variant = base_variant(21);
  variant.config.channel_loss = 0.25;
  variant.config.log_normal_shadowing = true;
  variant.config.shadowing_sigma_db = 4.0;
  expect_identical(variant);
}

TEST(SoaIdentityTest, UpdateExtensionIdentical) {
  // Incremental deployment with the §4.4 extension: evidence buffers fill,
  // update requests fire (auto_update), record versions advance. Exercises
  // EvidenceMap iteration (request_update serializes the buffer in issuer
  // order) and the replay table under two-round traffic.
  Variant variant = base_variant(31);
  variant.config.protocol.max_updates = 2;
  variant.second_round = 6;
  variant.auto_update = true;
  expect_identical(variant);
}

TEST(SoaIdentityTest, EarlyErasureHalfDuplexIdentical) {
  Variant variant = base_variant(41);
  variant.config.protocol.early_erasure = true;
  variant.config.half_duplex = true;
  expect_identical(variant);
}

}  // namespace
}  // namespace snd::core
