#include "core/wire.h"

#include <gtest/gtest.h>

namespace snd::core {
namespace {

const crypto::SymmetricKey kMaster = crypto::SymmetricKey::from_seed(1);

TEST(WireTest, RecordReplyRoundTrip) {
  const RecordReplyPayload payload{BindingRecord::make(kMaster, 7, 1, {1, 2, 3})};
  const auto parsed = RecordReplyPayload::parse(payload.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record, payload.record);
}

TEST(WireTest, RelationCommitRoundTrip) {
  const RelationCommitPayload payload{crypto::Sha256::hash("commit")};
  const auto parsed = RelationCommitPayload::parse(payload.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->commitment, payload.commitment);
}

TEST(WireTest, RelationCommitRejectsWrongSize) {
  const RelationCommitPayload payload{crypto::Sha256::hash("commit")};
  util::Bytes data = payload.serialize();
  data.pop_back();
  EXPECT_FALSE(RelationCommitPayload::parse(data).has_value());
  data.push_back(0);
  data.push_back(0);
  EXPECT_FALSE(RelationCommitPayload::parse(data).has_value());
}

TEST(WireTest, EvidenceRoundTrip) {
  const EvidencePayload payload{3, crypto::Sha256::hash("evidence")};
  const auto parsed = EvidencePayload::parse(payload.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record_version, 3u);
  EXPECT_EQ(parsed->evidence, payload.evidence);
}

TEST(WireTest, UpdateRequestRoundTrip) {
  UpdateRequestPayload payload{BindingRecord::make(kMaster, 9, 2, {4, 5}), {}};
  payload.evidences.emplace_back(11, crypto::Sha256::hash("e1"));
  payload.evidences.emplace_back(12, crypto::Sha256::hash("e2"));
  const auto parsed = UpdateRequestPayload::parse(payload.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record, payload.record);
  ASSERT_EQ(parsed->evidences.size(), 2u);
  EXPECT_EQ(parsed->evidences[0].first, 11u);
  EXPECT_EQ(parsed->evidences[1].second, crypto::Sha256::hash("e2"));
}

TEST(WireTest, UpdateRequestEmptyEvidenceList) {
  const UpdateRequestPayload payload{BindingRecord::make(kMaster, 9, 0, {}), {}};
  const auto parsed = UpdateRequestPayload::parse(payload.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->evidences.empty());
}

TEST(WireTest, UpdateReplyRoundTrip) {
  const UpdateReplyPayload payload{BindingRecord::make(kMaster, 9, 3, {4, 5, 6})};
  const auto parsed = UpdateReplyPayload::parse(payload.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record, payload.record);
}

TEST(WireTest, EmptyBufferRejectedEverywhere) {
  const util::Bytes empty;
  EXPECT_FALSE(RecordReplyPayload::parse(empty).has_value());
  EXPECT_FALSE(RelationCommitPayload::parse(empty).has_value());
  EXPECT_FALSE(EvidencePayload::parse(empty).has_value());
  EXPECT_FALSE(UpdateRequestPayload::parse(empty).has_value());
  EXPECT_FALSE(UpdateReplyPayload::parse(empty).has_value());
}

// Truncation fuzz: every strict prefix of a valid serialization must fail
// to parse for every payload type (no partial reads, no crashes).
class WireTruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(WireTruncationTest, AllPrefixesRejected) {
  UpdateRequestPayload payload{BindingRecord::make(kMaster, 9, 2, {4, 5, 6, 7}), {}};
  payload.evidences.emplace_back(11, crypto::Sha256::hash("e1"));
  const util::Bytes full = payload.serialize();
  const std::size_t cut = full.size() * static_cast<std::size_t>(GetParam()) / 10;
  if (cut >= full.size()) return;
  const util::Bytes prefix(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
  EXPECT_FALSE(UpdateRequestPayload::parse(prefix).has_value());
}

INSTANTIATE_TEST_SUITE_P(Cuts, WireTruncationTest, ::testing::Range(0, 10));

TEST(WireTest, MessageTypeValuesAreStable) {
  // Wire compatibility: these are protocol constants.
  EXPECT_EQ(static_cast<int>(MessageType::kHello), 1);
  EXPECT_EQ(static_cast<int>(MessageType::kHelloAck), 2);
  EXPECT_EQ(static_cast<int>(MessageType::kRecordRequest), 3);
  EXPECT_EQ(static_cast<int>(MessageType::kRecordReply), 4);
  EXPECT_EQ(static_cast<int>(MessageType::kRelationCommit), 5);
  EXPECT_EQ(static_cast<int>(MessageType::kEvidence), 6);
  EXPECT_EQ(static_cast<int>(MessageType::kUpdateRequest), 7);
  EXPECT_EQ(static_cast<int>(MessageType::kUpdateReply), 8);
}

}  // namespace
}  // namespace snd::core
