// Tests of the energy accounting and half-duplex MAC options.
#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "sim/network.h"
#include "topology/stats.h"

namespace snd::sim {
namespace {

std::unique_ptr<Network> make_network(ChannelConfig channel, EnergyConfig energy,
                                      double range = 50.0) {
  return std::make_unique<Network>(std::make_unique<UnitDiskModel>(range), channel, 1, energy);
}

Packet ping(NodeId src, std::size_t payload = 0) {
  return Packet{.src = src, .dst = kNoNode, .type = 1, .payload = util::Bytes(payload, 0)};
}

TEST(EnergyTest, DisabledAccountingNeverKills) {
  auto net = make_network({}, {});
  const DeviceId a = net->add_device(1, {0, 0});
  for (int i = 0; i < 1000; ++i) net->transmit(a, ping(1, 100), obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_TRUE(net->device(a).alive);
  EXPECT_DOUBLE_EQ(net->energy_j(a), EnergyConfig{}.initial_j);
}

TEST(EnergyTest, TransmissionDrainsSender) {
  EnergyConfig energy;
  energy.enabled = true;
  energy.initial_j = 1.0;
  auto net = make_network({}, energy);
  const DeviceId a = net->add_device(1, {0, 0});
  net->transmit(a, ping(1, 89), obs::Phase::kOther);  // 100 wire bytes
  net->scheduler().run();
  EXPECT_NEAR(net->energy_j(a), 1.0 - 100 * energy.tx_j_per_byte, 1e-12);
}

TEST(EnergyTest, ReceptionDrainsReceiver) {
  EnergyConfig energy;
  energy.enabled = true;
  energy.initial_j = 1.0;
  auto net = make_network({}, energy);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  net->set_receiver(b, [](const Packet&) {});
  net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_NEAR(net->energy_j(b), 1.0 - 100 * energy.rx_j_per_byte, 1e-12);
}

TEST(EnergyTest, ExhaustedDeviceDies) {
  EnergyConfig energy;
  energy.enabled = true;
  energy.initial_j = 100 * energy.tx_j_per_byte * 2.5;  // budget for ~2.5 sends
  auto net = make_network({}, energy);
  const DeviceId a = net->add_device(1, {0, 0});
  for (int i = 0; i < 5; ++i) net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_FALSE(net->device(a).alive);
  EXPECT_DOUBLE_EQ(net->energy_j(a), 0.0);
  // Only the sends while alive were charged to the air.
  EXPECT_EQ(net->metrics().phase(obs::Phase::kOther).messages, 3u);
}

TEST(EnergyTest, DeadReceiverStopsHearing) {
  EnergyConfig energy;
  energy.enabled = true;
  energy.initial_j = 1.0;  // ample for the sender
  auto net = make_network({}, energy);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  net->set_energy_j(b, 100 * energy.rx_j_per_byte * 1.5);  // ~1.5 receptions
  int heard = 0;
  net->set_receiver(b, [&](const Packet&) { ++heard; });
  for (int i = 0; i < 4; ++i) net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(heard, 1);  // second reception kills it mid-drain
  EXPECT_FALSE(net->device(b).alive);
}

TEST(EnergyTest, ProtocolRunsUnderEnergyBudget) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 3;
  config.energy.enabled = true;
  // Reception dominates in a dense field (~50 neighbors x ~5 kB each), so
  // a healthy battery is ~10 J for one discovery round.
  config.energy.initial_j = 20.0;
  config.seed = 3;
  core::SndDeployment deployment(config);
  deployment.deploy_round(60);
  deployment.run();
  for (const core::SndNode* agent : deployment.agents()) {
    EXPECT_TRUE(deployment.network().device(agent->device()).alive);
    EXPECT_LT(deployment.network().energy_j(agent->device()), 20.0);  // something was spent
  }
  EXPECT_GT(topology::edge_recall(deployment.actual_benign_graph(),
                                  deployment.functional_graph()),
            0.9);
}

TEST(HalfDuplexTest, BackToBackSendsSerialize) {
  ChannelConfig channel;
  channel.half_duplex = true;
  channel.processing_delay = Time::zero();
  auto net = make_network(channel, {});
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  std::vector<Time> arrivals;
  net->set_receiver(b, [&](const Packet&) { arrivals.push_back(net->now()); });

  // Two 100-wire-byte packets queued at t=0: 3.2 ms airtime each.
  net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->scheduler().run();

  ASSERT_EQ(arrivals.size(), 2u);
  const double gap_ms = (arrivals[1] - arrivals[0]).to_milliseconds();
  EXPECT_NEAR(gap_ms, 3.2, 0.1);  // second waited for the first to clear
}

TEST(HalfDuplexTest, FullDuplexDeliversSimultaneously) {
  ChannelConfig channel;
  channel.processing_delay = Time::zero();
  auto net = make_network(channel, {});
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  std::vector<Time> arrivals;
  net->set_receiver(b, [&](const Packet&) { arrivals.push_back(net->now()); });
  net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->transmit(a, ping(1, 89), obs::Phase::kOther);
  net->scheduler().run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);
}

TEST(HalfDuplexTest, TransmittingReceiverMissesPacket) {
  ChannelConfig channel;
  channel.half_duplex = true;
  channel.processing_delay = Time::zero();
  auto net = make_network(channel, {});
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  int a_heard = 0;
  int b_heard = 0;
  net->set_receiver(a, [&](const Packet&) { ++a_heard; });
  net->set_receiver(b, [&](const Packet&) { ++b_heard; });

  // Both start talking at t=0; each is on the air while the other's packet
  // lands, so both miss.
  net->transmit(a, ping(1, 200), obs::Phase::kOther);
  net->transmit(b, ping(2, 200), obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(a_heard, 0);
  EXPECT_EQ(b_heard, 0);
}

TEST(HalfDuplexTest, LateTransmitterStillHearsEarlierPacket) {
  // Regression: the busy check used to read tx_busy_until_ at *delivery*
  // time, so a transmission the receiver queued after the packet's airtime
  // had already ended (but before the ~500 us delivery lag elapsed)
  // retroactively destroyed the packet.
  ChannelConfig channel;
  channel.half_duplex = true;
  auto net = make_network(channel, {});
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  int a_heard = 0;
  int b_heard = 0;
  net->set_receiver(a, [&](const Packet&) { ++a_heard; });
  net->set_receiver(b, [&](const Packet&) { ++b_heard; });

  // a's 211-wire-byte packet occupies the air for 6.752 ms; delivery fires
  // at ~7.252 ms after the processing delay. b starts its own transmission
  // in between: no airtime overlap, so b must still hear a.
  net->transmit(a, ping(1, 200), obs::Phase::kOther);
  net->scheduler().schedule_at(Time::microseconds(6900),
                               [&] { net->transmit(b, ping(2, 200), obs::Phase::kOther); });
  net->scheduler().run();
  EXPECT_EQ(b_heard, 1);
  EXPECT_EQ(a_heard, 1);  // a is idle during b's airtime and hears it too
}

TEST(HalfDuplexTest, OverlappingLateTransmitterStillMisses) {
  // The genuine-collision half stays intact: a receiver that starts
  // transmitting *during* the packet's airtime misses it.
  ChannelConfig channel;
  channel.half_duplex = true;
  auto net = make_network(channel, {});
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  int b_heard = 0;
  net->set_receiver(b, [&](const Packet&) { ++b_heard; });

  net->transmit(a, ping(1, 200), obs::Phase::kOther);  // on the air over [0, 6.752 ms]
  net->scheduler().schedule_at(Time::milliseconds(3),
                               [&] { net->transmit(b, ping(2, 200), obs::Phase::kOther); });
  net->scheduler().run();
  EXPECT_EQ(b_heard, 0);
}

TEST(HalfDuplexTest, IdleReceiverStillHears) {
  ChannelConfig channel;
  channel.half_duplex = true;
  auto net = make_network(channel, {});
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {10, 0});
  int heard = 0;
  net->set_receiver(b, [&](const Packet&) { ++heard; });
  net->transmit(a, ping(1), obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(heard, 1);
}

TEST(HalfDuplexTest, ProtocolSurvivesContention) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.half_duplex = true;
  config.protocol.threshold_t = 3;
  config.protocol.hello_repeats = 3;
  config.seed = 7;
  core::SndDeployment deployment(config);
  deployment.deploy_round(80);
  deployment.run();
  // Contention costs some exchanges but discovery must remain usable.
  EXPECT_GT(topology::edge_recall(deployment.actual_benign_graph(),
                                  deployment.functional_graph()),
            0.5);
}

}  // namespace
}  // namespace snd::sim
