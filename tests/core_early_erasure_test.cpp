// Tests of the early-erasure variant (paper §6 future work: "delete the
// master key K quickly without waiting for the completion of neighbor
// discovery").
#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "topology/stats.h"

namespace snd::core {
namespace {

DeploymentConfig config_with(bool early, double loss = 0.0, std::uint64_t seed = 6) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 60.0;
  config.channel_loss = loss;
  config.protocol.threshold_t = 4;
  config.protocol.early_erasure = early;
  config.seed = seed;
  return config;
}

TEST(EarlyErasureTest, ShrinksExposureWindow) {
  SndDeployment fixed(config_with(false));
  fixed.deploy_round(60);
  fixed.run();
  SndDeployment early(config_with(true));
  early.deploy_round(60);
  early.run();

  double fixed_mean = 0.0;
  double early_mean = 0.0;
  for (const SndNode* agent : fixed.agents()) fixed_mean += agent->key_exposure().to_seconds();
  for (const SndNode* agent : early.agents()) early_mean += agent->key_exposure().to_seconds();
  fixed_mean /= 60.0;
  early_mean /= 60.0;

  EXPECT_LT(early_mean, fixed_mean * 0.8);
}

TEST(EarlyErasureTest, SameFunctionalTopology) {
  SndDeployment fixed(config_with(false));
  fixed.deploy_round(60);
  fixed.run();
  SndDeployment early(config_with(true));
  early.deploy_round(60);
  early.run();
  EXPECT_TRUE(fixed.functional_graph() == early.functional_graph());
}

TEST(EarlyErasureTest, KeyStillErasedEventually) {
  SndDeployment deployment(config_with(true));
  deployment.deploy_round(40);
  deployment.run();
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_FALSE(agent->master_key_present());
  }
}

TEST(EarlyErasureTest, FallsBackToWindowUnderLoss) {
  // With loss, some record replies vanish; those nodes must still erase K
  // when the exchange window closes, not hold it forever.
  SndDeployment deployment(config_with(true, 0.15, 8));
  deployment.deploy_round(80);
  deployment.run();
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_FALSE(agent->master_key_present()) << "node " << agent->identity();
    const double exposure_ms = agent->key_exposure().to_milliseconds();
    EXPECT_LE(exposure_ms, 520.0);  // discovery + exchange window + slack
  }
}

TEST(EarlyErasureTest, ExposureMeasuredFromDeployment) {
  SndDeployment deployment(config_with(false));
  const NodeId first = deployment.deploy_node_at({10, 10});
  deployment.run();
  // Second round deploys later; its exposure must be measured from its own
  // deployment time, not simulation zero.
  const NodeId second = deployment.deploy_node_at({20, 20});
  deployment.run();
  const double first_ms = deployment.agent(first)->key_exposure().to_milliseconds();
  const double second_ms = deployment.agent(second)->key_exposure().to_milliseconds();
  EXPECT_NEAR(first_ms, second_ms, 50.0);
}

TEST(EarlyErasureTest, RunningExposureWhileKeyHeld) {
  SndDeployment deployment(config_with(false));
  deployment.deploy_round(10);
  deployment.run_for(sim::Time::milliseconds(100));
  const SndNode* agent = deployment.agents().front();
  ASSERT_TRUE(agent->master_key_present());
  EXPECT_GT(agent->key_exposure().to_milliseconds(), 50.0);
}

}  // namespace
}  // namespace snd::core
