// End-to-end regression for the sliding replay windows under a delayed
// replay attacker, including across a reboot/boot-epoch boundary.
//
// The window holds 64 slots while a reboot strides the sender's nonce
// counter by kEpochStride = 2^20, so every pre-crash capture replayed after
// the reboot is "too old to distinguish from replay" in the receiver's
// window for that (identity, device) lane -- rejected categorically, while
// the rebooted node's fresh-epoch traffic advances the window and flows.
// The test plants a replayer whose delay lands its injections after a
// scheduled crash/reboot and asserts exactly that split: rejects > 0,
// accepts == 0, re-discovery completes, and the whole run -- including the
// per-thread hash-op accounting the MAC layer feeds -- reproduces exactly.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "adversary/replayer.h"
#include "core/deployment_driver.h"
#include "crypto/sha256.h"

namespace snd::adversary {
namespace {

core::DeploymentConfig dense_config(std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {80.0, 80.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 5;
  // The §4.4 update extension is the post-reboot authenticated traffic:
  // peers hearing the rebooted node's Hello request record updates, and its
  // fresh-epoch replies must pass the very windows rejecting the replays.
  config.protocol.max_updates = 2;
  config.seed = seed;
  return config;
}

struct RunResult {
  std::uint64_t captured = 0;
  std::uint64_t injected = 0;
  std::uint64_t rejects = 0;
  std::uint64_t accepts = 0;
  std::uint32_t victim_epoch = 0;
  /// A peer's record version advanced after the reboot: the victim's
  /// new-epoch authenticated replies crossed the replay windows.
  bool new_epoch_accepted = false;
  std::uint64_t hash_ops = 0;
  std::vector<std::pair<NodeId, topology::NeighborList>> functional;
};

/// One full scenario: deploy, capture round-1 traffic, crash + reboot a
/// victim, then let the attacker replay everything it heard -- the replays
/// land after the reboot, straddling the boot-epoch nonce stride.
RunResult run_replay_across_reboot(std::uint64_t seed) {
  crypto::reset_hash_op_count();
  RunResult result;
  core::SndDeployment deployment(dense_config(seed));
  // Replay every capture 1.5 s later: long after both discovery traffic
  // (validation completes around 500 ms) and the scheduled reboot below.
  ReplayAttacker attacker(deployment.network(), {40.0, 40.0},
                          sim::Time::milliseconds(1500), 4096);
  const std::vector<NodeId> round = deployment.deploy_round(16);
  for (const NodeId id : round) deployment.agent(id)->set_auto_update(true);
  attacker.start();

  const NodeId victim = round.front();
  auto& scheduler = deployment.network().scheduler();
  NodeId newcomer = kNoNode;
  // A second-round node validates ~1050 ms in and leaves evidence about
  // itself with every cohort member (§4.4) -- the material the cohort needs
  // before it may request record updates at all.
  scheduler.schedule_at(sim::Time::milliseconds(550), [&deployment, &newcomer]() {
    newcomer = deployment.deploy_node_at({40.0, 40.0});
  });
  // Crash after that evidence has landed, reboot before the replays do: the
  // victim's reboot Hello now draws update requests from evidence-holding
  // peers, and its fresh-epoch replies (it is the only K-holder left) must
  // cross the very windows that reject the stale copies.
  scheduler.schedule_at(sim::Time::milliseconds(1100), [&deployment, victim]() {
    ASSERT_TRUE(deployment.crash_node(victim));
  });
  scheduler.schedule_at(sim::Time::milliseconds(1300), [&deployment, victim]() {
    ASSERT_TRUE(deployment.reboot_node(victim));
  });
  deployment.run();

  result.captured = attacker.captured();
  result.injected = attacker.injected();
  for (const core::SndNode* agent : deployment.agents()) {
    result.rejects += agent->replay_rejects();
    result.accepts += agent->replay_accepts();
    result.functional.emplace_back(agent->identity(), agent->functional_neighbors());
    // The newcomer's own Hellos arrive before any evidence exists, so it
    // never serves an update; after the reboot the victim is the sole
    // K-holder. Any advanced record version on an old cohort member is
    // therefore the victim's post-reboot, fresh-epoch update reply.
    if (agent->identity() != victim && agent->identity() != newcomer &&
        agent->record_version() > 0) {
      result.new_epoch_accepted = true;
    }
  }
  const core::SndNode* rebooted = deployment.agent(victim);
  result.victim_epoch =
      rebooted != nullptr ? deployment.boot_epoch(rebooted->device()) : 0;
  result.hash_ops = crypto::hash_op_count();
  return result;
}

TEST(ReplayAcrossRebootTest, WindowsRejectEveryStaleCapture) {
  const RunResult result = run_replay_across_reboot(1234);
  ASSERT_GT(result.captured, 0u) << "attacker heard nothing -- scenario degenerate";
  ASSERT_GT(result.injected, 0u);
  EXPECT_GT(result.rejects, 0u) << "no replayed copy was window-flagged";
  EXPECT_EQ(result.accepts, 0u) << "a replay crossed the window";
  // The reboot happened, and the victim's fresh-epoch replies (nonces one
  // kEpochStride = 2^20 ahead, far past the 64-slot window) were accepted by
  // the same windows that categorically reject the stale pre-crash copies.
  EXPECT_EQ(result.victim_epoch, 1u);
  EXPECT_TRUE(result.new_epoch_accepted);
}

TEST(ReplayAcrossRebootTest, HashOpAccountingReproducesExactly) {
  // The attack path costs MAC verifications (authentication runs before the
  // window check), so the accounting must be a pure function of the seeded
  // scenario: two identical runs agree on every counter and on the final
  // neighbor state, bit for bit.
  const RunResult a = run_replay_across_reboot(1234);
  const RunResult b = run_replay_across_reboot(1234);
  EXPECT_EQ(a.hash_ops, b.hash_ops);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.functional, b.functional);
  EXPECT_GT(a.hash_ops, 0u);
}

}  // namespace
}  // namespace snd::adversary
