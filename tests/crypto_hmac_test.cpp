#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace snd::crypto {
namespace {

SymmetricKey key_from_hex(const std::string& hex) {
  const auto bytes = util::from_hex(hex);
  return SymmetricKey::from_bytes(*bytes);
}

// RFC 4231 test case 1: key = 0x0b * 20, data = "Hi There".
TEST(HmacTest, Rfc4231Case1) {
  const SymmetricKey key = key_from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  EXPECT_EQ(hmac_sha256(key, "Hi There").hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: key = "Jefe".
TEST(HmacTest, Rfc4231Case2) {
  const SymmetricKey key = SymmetricKey::from_bytes(
      util::Bytes{'J', 'e', 'f', 'e'});
  EXPECT_EQ(hmac_sha256(key, "what do ya want for nothing?").hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: key = 0xaa * 20, data = 0xdd * 50.
TEST(HmacTest, Rfc4231Case3) {
  const SymmetricKey key = key_from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  const util::Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 4: key = 0x01..0x19 (25 bytes), data = 0xcd * 50.
TEST(HmacTest, Rfc4231Case4) {
  const SymmetricKey key =
      key_from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const util::Bytes data(50, 0xcd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// RFC 4231 test case 5: key = 0x0c * 20; the vector gives the tag truncated
// to 128 bits, so compare the prefix. (Cases 6/7 use 131-byte keys, which
// SymmetricKey's fixed 32-byte material cannot represent.)
TEST(HmacTest, Rfc4231Case5Truncated) {
  const SymmetricKey key = key_from_hex("0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c");
  const Digest full = hmac_sha256(key, "Test With Truncation");
  EXPECT_EQ(full.hex().substr(0, 32), "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacTest, DifferentKeysDifferentTags) {
  const SymmetricKey k1 = SymmetricKey::from_seed(1);
  const SymmetricKey k2 = SymmetricKey::from_seed(2);
  EXPECT_NE(hmac_sha256(k1, "message"), hmac_sha256(k2, "message"));
}

TEST(HmacTest, DifferentMessagesDifferentTags) {
  const SymmetricKey key = SymmetricKey::from_seed(3);
  EXPECT_NE(hmac_sha256(key, "message-a"), hmac_sha256(key, "message-b"));
}

TEST(HmacTest, Deterministic) {
  const SymmetricKey key = SymmetricKey::from_seed(4);
  EXPECT_EQ(hmac_sha256(key, "stable"), hmac_sha256(key, "stable"));
}

TEST(ShortMacTest, IsPrefixOfFullTag) {
  const SymmetricKey key = SymmetricKey::from_seed(5);
  const util::Bytes message = {1, 2, 3};
  const Digest full = hmac_sha256(key, message);
  const ShortMac mac = short_mac(key, message);
  EXPECT_TRUE(std::equal(mac.begin(), mac.end(), full.bytes.begin()));
}

TEST(ShortMacTest, VerifyAcceptsValid) {
  const SymmetricKey key = SymmetricKey::from_seed(6);
  const util::Bytes message = {9, 8, 7};
  const ShortMac mac = short_mac(key, message);
  EXPECT_TRUE(verify_short_mac(key, message, mac));
}

TEST(ShortMacTest, VerifyRejectsTamperedMessage) {
  const SymmetricKey key = SymmetricKey::from_seed(7);
  util::Bytes message = {9, 8, 7};
  const ShortMac mac = short_mac(key, message);
  message[0] ^= 1;
  EXPECT_FALSE(verify_short_mac(key, message, mac));
}

TEST(ShortMacTest, VerifyRejectsTamperedTag) {
  const SymmetricKey key = SymmetricKey::from_seed(8);
  const util::Bytes message = {9, 8, 7};
  ShortMac mac = short_mac(key, message);
  mac[0] ^= 1;
  EXPECT_FALSE(verify_short_mac(key, message, mac));
}

TEST(ShortMacTest, VerifyRejectsWrongKey) {
  const SymmetricKey key = SymmetricKey::from_seed(9);
  const SymmetricKey other = SymmetricKey::from_seed(10);
  const util::Bytes message = {9, 8, 7};
  EXPECT_FALSE(verify_short_mac(other, message, short_mac(key, message)));
}

TEST(ShortMacTest, VerifyRejectsWrongLength) {
  const SymmetricKey key = SymmetricKey::from_seed(11);
  const util::Bytes message = {1};
  const ShortMac mac = short_mac(key, message);
  EXPECT_FALSE(verify_short_mac(key, message, std::span(mac).first(4)));
}

TEST(HmacKeyTest, DefaultConstructedIsAbsent) {
  EXPECT_FALSE(HmacKey().present());
  EXPECT_TRUE(HmacKey(SymmetricKey::from_seed(20)).present());
}

TEST(HmacKeyTest, MidstateMatchesReferenceAcrossMessageSizes) {
  // Sizes straddling the SHA-256 block/padding boundaries: the midstate
  // resume must agree with the from-scratch reference for every shape.
  const SymmetricKey key = SymmetricKey::from_seed(21);
  const HmacKey cached(key);
  for (const std::size_t n : {0, 1, 31, 32, 55, 56, 63, 64, 65, 300}) {
    const util::Bytes message(n, 0x5a);
    EXPECT_EQ(cached.mac(message), hmac_sha256(key, message)) << "size " << n;
    EXPECT_EQ(cached.short_mac(message), short_mac(key, message)) << "size " << n;
    EXPECT_TRUE(cached.verify_short_mac(message, short_mac(key, message))) << "size " << n;
  }
}

TEST(HmacKeyTest, ReusableAcrossManyTags) {
  // The saved midstates are copied, never consumed: repeated use of one
  // HmacKey over different messages keeps producing correct tags.
  const SymmetricKey key = SymmetricKey::from_seed(22);
  const HmacKey cached(key);
  for (std::uint8_t i = 0; i < 8; ++i) {
    const util::Bytes message = {i, 1, 2};
    EXPECT_EQ(cached.mac(message), hmac_sha256(key, message)) << int(i);
  }
}

TEST(HmacKeyTest, StreamingFinishMatchesOneShot) {
  const SymmetricKey key = SymmetricKey::from_seed(23);
  const HmacKey cached(key);
  const util::Bytes head = {1, 2, 3};
  const util::Bytes tail = {4, 5, 6, 7};
  util::Bytes whole = head;
  whole.insert(whole.end(), tail.begin(), tail.end());

  Sha256 ctx = cached.inner_context();
  ctx.update(head);
  ctx.update(tail);
  EXPECT_EQ(cached.finish(std::move(ctx)), hmac_sha256(key, whole));

  Sha256 short_ctx = cached.inner_context();
  short_ctx.update(head);
  short_ctx.update(tail);
  EXPECT_EQ(cached.finish_short(std::move(short_ctx)), short_mac(key, whole));
}

TEST(HmacKeyTest, VerifyRejectsTamperedAndWrongLength) {
  const HmacKey cached(SymmetricKey::from_seed(24));
  const util::Bytes message = {9, 8, 7};
  ShortMac mac = cached.short_mac(message);
  EXPECT_TRUE(cached.verify_short_mac(message, mac));
  mac[0] ^= 1;
  EXPECT_FALSE(cached.verify_short_mac(message, mac));
  mac[0] ^= 1;
  EXPECT_FALSE(cached.verify_short_mac(message, std::span(mac).first(4)));
}

}  // namespace
}  // namespace snd::crypto
