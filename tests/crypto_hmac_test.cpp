#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace snd::crypto {
namespace {

SymmetricKey key_from_hex(const std::string& hex) {
  const auto bytes = util::from_hex(hex);
  return SymmetricKey::from_bytes(*bytes);
}

// RFC 4231 test case 1: key = 0x0b * 20, data = "Hi There".
TEST(HmacTest, Rfc4231Case1) {
  const SymmetricKey key = key_from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  EXPECT_EQ(hmac_sha256(key, "Hi There").hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: key = "Jefe".
TEST(HmacTest, Rfc4231Case2) {
  const SymmetricKey key = SymmetricKey::from_bytes(
      util::Bytes{'J', 'e', 'f', 'e'});
  EXPECT_EQ(hmac_sha256(key, "what do ya want for nothing?").hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: key = 0xaa * 20, data = 0xdd * 50.
TEST(HmacTest, Rfc4231Case3) {
  const SymmetricKey key = key_from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  const util::Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, DifferentKeysDifferentTags) {
  const SymmetricKey k1 = SymmetricKey::from_seed(1);
  const SymmetricKey k2 = SymmetricKey::from_seed(2);
  EXPECT_NE(hmac_sha256(k1, "message"), hmac_sha256(k2, "message"));
}

TEST(HmacTest, DifferentMessagesDifferentTags) {
  const SymmetricKey key = SymmetricKey::from_seed(3);
  EXPECT_NE(hmac_sha256(key, "message-a"), hmac_sha256(key, "message-b"));
}

TEST(HmacTest, Deterministic) {
  const SymmetricKey key = SymmetricKey::from_seed(4);
  EXPECT_EQ(hmac_sha256(key, "stable"), hmac_sha256(key, "stable"));
}

TEST(ShortMacTest, IsPrefixOfFullTag) {
  const SymmetricKey key = SymmetricKey::from_seed(5);
  const util::Bytes message = {1, 2, 3};
  const Digest full = hmac_sha256(key, message);
  const ShortMac mac = short_mac(key, message);
  EXPECT_TRUE(std::equal(mac.begin(), mac.end(), full.bytes.begin()));
}

TEST(ShortMacTest, VerifyAcceptsValid) {
  const SymmetricKey key = SymmetricKey::from_seed(6);
  const util::Bytes message = {9, 8, 7};
  const ShortMac mac = short_mac(key, message);
  EXPECT_TRUE(verify_short_mac(key, message, mac));
}

TEST(ShortMacTest, VerifyRejectsTamperedMessage) {
  const SymmetricKey key = SymmetricKey::from_seed(7);
  util::Bytes message = {9, 8, 7};
  const ShortMac mac = short_mac(key, message);
  message[0] ^= 1;
  EXPECT_FALSE(verify_short_mac(key, message, mac));
}

TEST(ShortMacTest, VerifyRejectsTamperedTag) {
  const SymmetricKey key = SymmetricKey::from_seed(8);
  const util::Bytes message = {9, 8, 7};
  ShortMac mac = short_mac(key, message);
  mac[0] ^= 1;
  EXPECT_FALSE(verify_short_mac(key, message, mac));
}

TEST(ShortMacTest, VerifyRejectsWrongKey) {
  const SymmetricKey key = SymmetricKey::from_seed(9);
  const SymmetricKey other = SymmetricKey::from_seed(10);
  const util::Bytes message = {9, 8, 7};
  EXPECT_FALSE(verify_short_mac(other, message, short_mac(key, message)));
}

TEST(ShortMacTest, VerifyRejectsWrongLength) {
  const SymmetricKey key = SymmetricKey::from_seed(11);
  const util::Bytes message = {1};
  const ShortMac mac = short_mac(key, message);
  EXPECT_FALSE(verify_short_mac(key, message, std::span(mac).first(4)));
}

}  // namespace
}  // namespace snd::crypto
