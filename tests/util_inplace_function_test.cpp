#include "util/inplace_function.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>

namespace snd::util {
namespace {

using Fn = InplaceFunction<int(), 64>;

TEST(InplaceFunctionTest, DefaultAndNullptrAreEmpty) {
  Fn a;
  Fn b = nullptr;
  EXPECT_FALSE(a);
  EXPECT_FALSE(b);
  EXPECT_FALSE(a.heap_allocated());
}

TEST(InplaceFunctionTest, SmallCaptureStoredInline) {
  int x = 41;
  Fn f = [x] { return x + 1; };
  ASSERT_TRUE(f);
  EXPECT_FALSE(f.heap_allocated());
  EXPECT_EQ(f(), 42);
}

TEST(InplaceFunctionTest, OversizedCaptureUsesHeapFallback) {
  std::array<int, 64> big{};  // 256 bytes > 64-byte capacity
  big[0] = 7;
  Fn f = [big] { return big[0]; };
  ASSERT_TRUE(f);
  EXPECT_TRUE(f.heap_allocated());
  EXPECT_EQ(f(), 7);
}

TEST(InplaceFunctionTest, MoveTransfersInlineTarget) {
  Fn f = [] { return 5; };
  Fn g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move) - tested on purpose
  ASSERT_TRUE(g);
  EXPECT_EQ(g(), 5);

  Fn h;
  h = std::move(g);
  EXPECT_FALSE(g);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(h(), 5);
}

TEST(InplaceFunctionTest, MoveTransfersHeapTargetWithoutReallocating) {
  std::array<int, 64> big{};
  big[3] = 9;
  Fn f = [big] { return big[3]; };
  Fn g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(g.heap_allocated());
  EXPECT_EQ(g(), 9);
}

TEST(InplaceFunctionTest, MoveOnlyCapturesSupported) {
  auto p = std::make_unique<int>(9);
  Fn f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 9);
}

TEST(InplaceFunctionTest, DestructionReleasesUninvokedInlineCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InplaceFunction<void(), 64> f = [token = std::move(token)] { (void)token; };
    EXPECT_TRUE(watch.lock());
  }
  EXPECT_FALSE(watch.lock());
}

TEST(InplaceFunctionTest, DestructionReleasesUninvokedHeapCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    std::array<char, 128> pad{};
    InplaceFunction<void(), 64> f = [token = std::move(token), pad] { (void)pad; };
    EXPECT_TRUE(f.heap_allocated());
    EXPECT_TRUE(watch.lock());
  }
  EXPECT_FALSE(watch.lock());
}

TEST(InplaceFunctionTest, MoveAssignmentDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InplaceFunction<void(), 64> f = [token = std::move(token)] { (void)token; };
  f = [] {};
  EXPECT_FALSE(watch.lock());
  ASSERT_TRUE(f);
  f();  // replacement target still callable
}

TEST(InplaceFunctionTest, ArgumentsAndReturnValueForwarded) {
  InplaceFunction<int(int, int), 32> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);

  // Move-only argument passes through the type-erased invoke.
  InplaceFunction<int(std::unique_ptr<int>), 32> deref =
      [](std::unique_ptr<int> p) { return *p; };
  EXPECT_EQ(deref(std::make_unique<int>(6)), 6);
}

TEST(InplaceFunctionTest, MutableLambdaStatePersists) {
  InplaceFunction<int(), 32> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

TEST(InplaceFunctionTest, StdFunctionConvertible) {
  // Callers that still build a std::function can hand it over; it becomes
  // the stored target (inline: libstdc++ std::function is two pointers wide
  // plus the callable wrapper, well under 64 bytes).
  std::function<int()> std_fn = [] { return 3; };
  Fn f = std_fn;
  ASSERT_TRUE(f);
  EXPECT_EQ(f(), 3);
}

}  // namespace
}  // namespace snd::util
