#include "core/messenger.h"

#include <gtest/gtest.h>

namespace snd::core {
namespace {

class MessengerTest : public ::testing::Test {
 protected:
  MessengerTest()
      : network_(std::make_unique<sim::UnitDiskModel>(100.0), sim::ChannelConfig{}, 1),
        keys_(crypto::KdcScheme::from_seed(5)) {
    alice_device_ = network_.add_device(1, {0, 0});
    bob_device_ = network_.add_device(2, {10, 0});
    eve_device_ = network_.add_device(3, {5, 5});
    alice_ = std::make_unique<Messenger>(network_, alice_device_, 1, keys_);
    bob_ = std::make_unique<Messenger>(network_, bob_device_, 2, keys_);
    network_.set_receiver(bob_device_, [this](const sim::Packet& p) {
      last_packet_ = p;
      ++packets_seen_;
      if (auto payload = bob_->open(p)) {
        last_payload_ = *payload;
        ++accepted_;
      }
    });
  }

  void run() { network_.scheduler().run(); }

  sim::Network network_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  sim::DeviceId alice_device_{}, bob_device_{}, eve_device_{};
  std::unique_ptr<Messenger> alice_, bob_;
  sim::Packet last_packet_;
  util::Bytes last_payload_;
  int packets_seen_ = 0;
  int accepted_ = 0;
};

TEST_F(MessengerTest, AuthenticatedRoundTrip) {
  EXPECT_TRUE(alice_->send(2, 9, {1, 2, 3}, snd::obs::Phase::kOther));
  run();
  EXPECT_EQ(accepted_, 1);
  EXPECT_EQ(last_payload_, (util::Bytes{1, 2, 3}));
}

TEST_F(MessengerTest, EmptyPayloadRoundTrip) {
  EXPECT_TRUE(alice_->send(2, 9, {}, snd::obs::Phase::kOther));
  run();
  EXPECT_EQ(accepted_, 1);
  EXPECT_TRUE(last_payload_.empty());
}

TEST_F(MessengerTest, WrongDestinationIgnored) {
  alice_->send(99, 9, {1}, snd::obs::Phase::kOther);  // bob overhears but it is not for him
  run();
  EXPECT_EQ(packets_seen_, 1);
  EXPECT_EQ(accepted_, 0);
}

TEST_F(MessengerTest, ReplayRejected) {
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  run();
  ASSERT_EQ(accepted_, 1);
  // Eve replays the captured packet verbatim from her own radio.
  sim::Packet replay = last_packet_;
  network_.transmit(eve_device_, std::move(replay), "attack");
  run();
  EXPECT_EQ(packets_seen_, 2);
  EXPECT_EQ(accepted_, 1);  // replay must not be accepted again
}

TEST_F(MessengerTest, SpoofedSourceRejected) {
  // Eve fabricates a packet claiming to be identity 1 without the MAC key.
  util::Bytes body = {0xde, 0xad};
  util::put_u64(body, 12345);                         // nonce
  body.insert(body.end(), crypto::kShortMacSize, 0);  // junk MAC
  network_.transmit(eve_device_,
                    sim::Packet{.src = 1, .dst = 2, .type = 9, .payload = std::move(body)},
                    "attack");
  run();
  EXPECT_EQ(packets_seen_, 1);
  EXPECT_EQ(accepted_, 0);
}

TEST_F(MessengerTest, TamperedPayloadRejected) {
  alice_->send(2, 9, {1, 2, 3}, snd::obs::Phase::kOther);
  run();
  sim::Packet tampered = last_packet_;
  tampered.payload[0] ^= 0xff;
  network_.transmit(eve_device_, std::move(tampered), "attack");
  run();
  EXPECT_EQ(accepted_, 1);
}

TEST_F(MessengerTest, TypeIsAuthenticated) {
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  run();
  sim::Packet retyped = last_packet_;
  retyped.type = 7;  // change the message type, keep payload+MAC
  network_.transmit(eve_device_, std::move(retyped), "attack");
  run();
  EXPECT_EQ(accepted_, 1);
}

TEST_F(MessengerTest, UnauthBroadcastHasNoMacOverhead) {
  alice_->broadcast(1, {5, 5}, snd::obs::Phase::kHello);
  run();
  EXPECT_EQ(last_packet_.payload.size(), 2u);
  EXPECT_TRUE(last_packet_.is_broadcast());
}

TEST_F(MessengerTest, SendUnauthAddressesPacket) {
  alice_->send_unauth(2, 2, {7}, snd::obs::Phase::kAck);
  run();
  EXPECT_EQ(last_packet_.dst, 2u);
  EXPECT_EQ(last_packet_.payload, (util::Bytes{7}));
}

TEST_F(MessengerTest, DistinctSendersDistinctNonces) {
  // A second device speaking as identity 1 (replica scenario) must not
  // collide with the original's nonces at the receiver.
  const sim::DeviceId replica = network_.add_replica(1, {20, 0});
  Messenger replica_messenger(network_, replica, 1, keys_);
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  replica_messenger.send(2, 9, {2}, snd::obs::Phase::kOther);
  run();
  EXPECT_EQ(accepted_, 2);
}

TEST_F(MessengerTest, SendFailsWithoutPairwiseKey) {
  // Identity 1 talking to itself has no pairwise key under any scheme.
  EXPECT_FALSE(alice_->send(1, 9, {1}, snd::obs::Phase::kOther));
}

}  // namespace
}  // namespace snd::core
