#include "core/messenger.h"

#include <gtest/gtest.h>

#include "util/simd.h"

namespace snd::core {
namespace {

class MessengerTest : public ::testing::Test {
 protected:
  MessengerTest()
      : network_(std::make_unique<sim::UnitDiskModel>(100.0), sim::ChannelConfig{}, 1),
        keys_(crypto::KdcScheme::from_seed(5)) {
    alice_device_ = network_.add_device(1, {0, 0});
    bob_device_ = network_.add_device(2, {10, 0});
    eve_device_ = network_.add_device(3, {5, 5});
    alice_ = std::make_unique<Messenger>(network_, alice_device_, 1, keys_);
    bob_ = std::make_unique<Messenger>(network_, bob_device_, 2, keys_);
    network_.set_receiver(bob_device_, [this](const sim::Packet& p) {
      last_packet_ = p;
      ++packets_seen_;
      if (auto payload = bob_->open(p)) {
        last_payload_.assign(payload->begin(), payload->end());
        ++accepted_;
      }
    });
  }

  void run() { network_.scheduler().run(); }

  sim::Network network_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  sim::DeviceId alice_device_{}, bob_device_{}, eve_device_{};
  std::unique_ptr<Messenger> alice_, bob_;
  sim::Packet last_packet_;
  util::Bytes last_payload_;
  int packets_seen_ = 0;
  int accepted_ = 0;
};

TEST_F(MessengerTest, AuthenticatedRoundTrip) {
  EXPECT_TRUE(alice_->send(2, 9, {1, 2, 3}, snd::obs::Phase::kOther));
  run();
  EXPECT_EQ(accepted_, 1);
  EXPECT_EQ(last_payload_, (util::Bytes{1, 2, 3}));
}

TEST_F(MessengerTest, EmptyPayloadRoundTrip) {
  EXPECT_TRUE(alice_->send(2, 9, {}, snd::obs::Phase::kOther));
  run();
  EXPECT_EQ(accepted_, 1);
  EXPECT_TRUE(last_payload_.empty());
}

TEST_F(MessengerTest, WrongDestinationIgnored) {
  alice_->send(99, 9, {1}, snd::obs::Phase::kOther);  // bob overhears but it is not for him
  run();
  EXPECT_EQ(packets_seen_, 1);
  EXPECT_EQ(accepted_, 0);
}

TEST_F(MessengerTest, ReplayRejected) {
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  run();
  ASSERT_EQ(accepted_, 1);
  // Eve replays the captured packet verbatim from her own radio.
  sim::Packet replay = last_packet_;
  network_.transmit(eve_device_, std::move(replay), obs::Phase::kAttack);
  run();
  EXPECT_EQ(packets_seen_, 2);
  EXPECT_EQ(accepted_, 1);  // replay must not be accepted again
}

TEST_F(MessengerTest, SpoofedSourceRejected) {
  // Eve fabricates a packet claiming to be identity 1 without the MAC key.
  util::Bytes body = {0xde, 0xad};
  util::put_u64(body, 12345);                         // nonce
  body.insert(body.end(), crypto::kShortMacSize, 0);  // junk MAC
  network_.transmit(eve_device_,
                    sim::Packet{.src = 1, .dst = 2, .type = 9, .payload = std::move(body)},
                    obs::Phase::kAttack);
  run();
  EXPECT_EQ(packets_seen_, 1);
  EXPECT_EQ(accepted_, 0);
}

TEST_F(MessengerTest, TamperedPayloadRejected) {
  alice_->send(2, 9, {1, 2, 3}, snd::obs::Phase::kOther);
  run();
  sim::Packet tampered = last_packet_;
  tampered.payload[0] ^= 0xff;
  network_.transmit(eve_device_, std::move(tampered), obs::Phase::kAttack);
  run();
  EXPECT_EQ(accepted_, 1);
}

TEST_F(MessengerTest, TypeIsAuthenticated) {
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  run();
  sim::Packet retyped = last_packet_;
  retyped.type = 7;  // change the message type, keep payload+MAC
  network_.transmit(eve_device_, std::move(retyped), obs::Phase::kAttack);
  run();
  EXPECT_EQ(accepted_, 1);
}

TEST_F(MessengerTest, UnauthBroadcastHasNoMacOverhead) {
  alice_->broadcast(1, {5, 5}, snd::obs::Phase::kHello);
  run();
  EXPECT_EQ(last_packet_.payload.size(), 2u);
  EXPECT_TRUE(last_packet_.is_broadcast());
}

TEST_F(MessengerTest, SendUnauthAddressesPacket) {
  alice_->send_unauth(2, 2, {7}, snd::obs::Phase::kAck);
  run();
  EXPECT_EQ(last_packet_.dst, 2u);
  EXPECT_EQ(last_packet_.payload, (util::Bytes{7}));
}

TEST_F(MessengerTest, DistinctSendersDistinctNonces) {
  // A second device speaking as identity 1 (replica scenario) must not
  // collide with the original's nonces at the receiver.
  const sim::DeviceId replica = network_.add_replica(1, {20, 0});
  Messenger replica_messenger(network_, replica, 1, keys_);
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  replica_messenger.send(2, 9, {2}, snd::obs::Phase::kOther);
  run();
  EXPECT_EQ(accepted_, 2);
}

TEST_F(MessengerTest, SendFailsWithoutPairwiseKey) {
  // Identity 1 talking to itself has no pairwise key under any scheme.
  EXPECT_FALSE(alice_->send(1, 9, {1}, snd::obs::Phase::kOther));
}

// RAII helper: runs a block with the crypto fast path forced on or off and
// restores the previous setting afterwards.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool enabled) : previous_(crypto::fast_path_enabled()) {
    crypto::set_fast_path_enabled(enabled);
  }
  ~FastPathGuard() { crypto::set_fast_path_enabled(previous_); }

 private:
  bool previous_;
};

TEST_F(MessengerTest, FastAndSlowPathsProduceIdenticalPackets) {
  // Same identity/device/keys => same nonce sequence; the packets (payload,
  // nonce, MAC) must match byte for byte between the two paths.
  const util::Bytes payload = {9, 8, 7, 6, 5};
  sim::Packet fast_packet;
  sim::Packet slow_packet;
  {
    FastPathGuard guard(true);
    Messenger sender(network_, alice_device_, 1, keys_);
    network_.set_receiver(bob_device_, [&](const sim::Packet& p) { fast_packet = p; });
    ASSERT_TRUE(sender.send(2, 9, payload, snd::obs::Phase::kOther));
    run();
  }
  {
    FastPathGuard guard(false);
    Messenger sender(network_, alice_device_, 1, keys_);
    network_.set_receiver(bob_device_, [&](const sim::Packet& p) { slow_packet = p; });
    ASSERT_TRUE(sender.send(2, 9, payload, snd::obs::Phase::kOther));
    run();
  }
  EXPECT_EQ(fast_packet.payload, slow_packet.payload);
  EXPECT_EQ(fast_packet.type, slow_packet.type);

  // And either path's receiver accepts the other path's packet.
  {
    FastPathGuard guard(false);
    Messenger receiver(network_, bob_device_, 2, keys_);
    EXPECT_TRUE(receiver.open(fast_packet).has_value());
  }
  {
    FastPathGuard guard(true);
    Messenger receiver(network_, bob_device_, 2, keys_);
    EXPECT_TRUE(receiver.open(slow_packet).has_value());
  }
}

TEST_F(MessengerTest, SlowPathStillRejectsReplayAndAcceptsFreshTraffic) {
  FastPathGuard guard(false);
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  run();
  ASSERT_EQ(accepted_, 1);
  sim::Packet replay = last_packet_;
  network_.transmit(eve_device_, std::move(replay), obs::Phase::kAttack);
  run();
  EXPECT_EQ(accepted_, 1);
  alice_->send(2, 9, {2}, snd::obs::Phase::kOther);
  run();
  EXPECT_EQ(accepted_, 2);
}

TEST_F(MessengerTest, BootEpochOutrunsStaleTrafficAfterReboot) {
  // Pre-crash traffic from Alice, captured off the air.
  alice_->send(2, 9, {1}, obs::Phase::kOther);
  run();
  ASSERT_EQ(accepted_, 1);
  const sim::Packet stale = last_packet_;

  // Alice reboots: a fresh Messenger on the same device with the next boot
  // epoch. The epoch stride keeps its nonces monotonically ahead of
  // everything sent before the crash, so Bob accepts the fresh traffic
  // without any handshake...
  alice_ = std::make_unique<Messenger>(network_, alice_device_, 1, keys_, /*boot_epoch=*/1);
  EXPECT_TRUE(alice_->send(2, 9, {2}, obs::Phase::kOther));
  run();
  EXPECT_EQ(accepted_, 2);
  EXPECT_EQ(last_payload_, (util::Bytes{2}));

  // ...and a replay of the pre-crash packet now falls far behind Bob's
  // window: rebooting never re-opens the door to stale traffic.
  network_.transmit(eve_device_, sim::Packet(stale), obs::Phase::kAttack);
  run();
  EXPECT_EQ(accepted_, 2);
  EXPECT_EQ(bob_->replay_rejects(), 1u);
  EXPECT_EQ(network_.metrics().drops(obs::DropCause::kReplay), 1u);
}

TEST_F(MessengerTest, ReplayStateStaysBoundedOverLongRuns) {
  // The seed kept every nonce ever seen (one std::set node per message);
  // the sliding window must hold steady at one window per (peer, device)
  // regardless of traffic volume, while still rejecting recent replays.
  std::vector<sim::Packet> captured;
  network_.set_receiver(bob_device_, [&](const sim::Packet& p) {
    captured.push_back(p);
    if (bob_->open(p)) ++accepted_;
  });
  constexpr int kMessages = 5000;
  for (int i = 0; i < kMessages; ++i) {
    alice_->send(2, 9, {static_cast<std::uint8_t>(i)}, snd::obs::Phase::kOther);
  }
  run();
  ASSERT_EQ(accepted_, kMessages);
  EXPECT_EQ(bob_->replay_window_count(), 1u);

  // The freshest packets are inside the window and must still be rejected
  // on replay.
  const std::size_t last = captured.size() - 1;
  EXPECT_FALSE(bob_->open(captured[last]).has_value());
  EXPECT_FALSE(bob_->open(captured[last - 5]).has_value());
  // Ancient packets fall off the window's left edge; they are also
  // rejected (as too-old), so no replay sneaks in either way.
  EXPECT_FALSE(bob_->open(captured[0]).has_value());
  EXPECT_EQ(bob_->replay_window_count(), 1u);
}

TEST_F(MessengerTest, OutOfOrderDeliveryWithinWindowAccepted) {
  // Capture two packets, deliver them newest-first: the older one is within
  // kReplayWindow of the newer and must still be accepted exactly once.
  std::vector<sim::Packet> captured;
  network_.set_receiver(bob_device_, [&](const sim::Packet& p) { captured.push_back(p); });
  alice_->send(2, 9, {1}, snd::obs::Phase::kOther);
  alice_->send(2, 9, {2}, snd::obs::Phase::kOther);
  run();
  ASSERT_EQ(captured.size(), 2u);

  EXPECT_TRUE(bob_->open(captured[1]).has_value());   // newer first
  EXPECT_TRUE(bob_->open(captured[0]).has_value());   // older, in window
  EXPECT_FALSE(bob_->open(captured[0]).has_value());  // replay of the older
  EXPECT_FALSE(bob_->open(captured[1]).has_value());  // replay of the newer
}

// RAII helper for the SIMD batching gate, mirroring FastPathGuard.
class SimdGuard {
 public:
  explicit SimdGuard(bool enabled) : previous_(util::simd_enabled()) {
    util::set_simd_enabled(enabled);
  }
  ~SimdGuard() { util::set_simd_enabled(previous_); }

 private:
  bool previous_;
};

TEST_F(MessengerTest, SendManyMatchesSequentialSendByteForByte) {
  // send_many() must be indistinguishable on the wire from calling send()
  // in a loop: same nonces, same MACs, same packet order -- including a
  // mid-burst message with no establishable pairwise key (to self), which
  // is skipped without consuming a nonce.
  const std::vector<Messenger::Outgoing> burst = {
      {2, 9, {1, 2, 3}, obs::Phase::kCommit},
      {1, 9, {9}, obs::Phase::kCommit},  // no key with ourselves: skipped
      {2, 7, {}, obs::Phase::kEvidence},
      {2, 9, {4, 5, 6, 7}, obs::Phase::kOther},
  };

  std::vector<sim::Packet> captured;
  network_.set_receiver(bob_device_, [&](const sim::Packet& p) { captured.push_back(p); });

  const auto run_sequential = [&]() {
    captured.clear();
    Messenger sender(network_, alice_device_, 1, keys_);
    std::size_t sent = 0;
    for (const Messenger::Outgoing& m : burst) {
      if (sender.send(m.to, m.type, m.payload, m.phase)) ++sent;
    }
    run();
    return std::pair(sent, captured);
  };
  const auto run_batched = [&](bool simd) {
    captured.clear();
    SimdGuard guard(simd);
    Messenger sender(network_, alice_device_, 1, keys_);
    const std::size_t sent = sender.send_many(burst);
    run();
    return std::pair(sent, captured);
  };

  const auto [seq_sent, seq_packets] = run_sequential();
  ASSERT_EQ(seq_sent, 3u);
  ASSERT_EQ(seq_packets.size(), 3u);

  for (const bool simd : {true, false}) {
    const auto [batch_sent, batch_packets] = run_batched(simd);
    EXPECT_EQ(batch_sent, seq_sent) << "simd=" << simd;
    ASSERT_EQ(batch_packets.size(), seq_packets.size()) << "simd=" << simd;
    for (std::size_t i = 0; i < seq_packets.size(); ++i) {
      EXPECT_EQ(batch_packets[i].src, seq_packets[i].src);
      EXPECT_EQ(batch_packets[i].dst, seq_packets[i].dst);
      EXPECT_EQ(batch_packets[i].type, seq_packets[i].type);
      EXPECT_EQ(batch_packets[i].payload, seq_packets[i].payload)
          << "simd=" << simd << " i=" << i;
    }
  }
}

TEST_F(MessengerTest, SendManyPacketsOpenAtTheReceiver) {
  std::vector<Messenger::Outgoing> burst;
  for (std::uint8_t i = 0; i < 5; ++i) {
    burst.push_back({2, 9, {i}, obs::Phase::kCommit});
  }
  EXPECT_EQ(alice_->send_many(burst), 5u);
  run();
  EXPECT_EQ(accepted_, 5);
}

}  // namespace
}  // namespace snd::core
