// The adversary scenario subsystem's own tests: ScenarioConfig canonical
// JSON (round trip, canonicalization, rejection of malformed input), the
// shared --adversary flag group, and each attacker/mobility family armed
// end-to-end against a live deployment with the defense holding.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/mobility.h"
#include "adversary/replayer.h"
#include "adversary/scenario.h"
#include "adversary/sybil.h"
#include "core/deployment_driver.h"
#include "util/driver_spec.h"

namespace snd::adversary {
namespace {

TEST(ScenarioConfigTest, EmptySerializesToEmptyObject) {
  ScenarioConfig config;
  EXPECT_TRUE(config.empty());
  EXPECT_EQ(config.to_json(), "{}");
  const auto parsed = ScenarioConfig::parse("{}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(ScenarioConfigTest, ArmFamilyDefaultsOmitEveryField) {
  ScenarioConfig config;
  ASSERT_TRUE(config.arm_family("relay"));
  EXPECT_EQ(config.to_json(), "{\"relay\":{\"on\":true}}");
  ASSERT_TRUE(config.arm_family("churn"));
  EXPECT_EQ(config.to_json(), "{\"relay\":{\"on\":true},\"churn\":{\"on\":true}}");
  EXPECT_FALSE(config.arm_family("quantum"));
}

TEST(ScenarioConfigTest, RoundTripsAllFamiliesWithNonDefaultFields) {
  ScenarioConfig config;
  config.relay = RelayConfig{0.2, 0.3, 0.8, 0.7, 500'000};
  config.sybil = SybilConfig{0.4, 0.6, 32, 0x5b110000};
  config.replay = ReplayConfig{0.25, 0.75, 80'000'000, 512};
  config.mobility = MobilityConfig{12, 6.5, 10'000'000, 40, 99};
  config.churn = ChurnConfig{3, 2, 300'000'000, 500'000'000, 100'000'000, 7};

  const std::string json = config.to_json();
  const auto parsed = ScenarioConfig::parse(json);
  ASSERT_TRUE(parsed.has_value());
  // parse -> to_json is idempotent: the canonical form reproduces itself.
  EXPECT_EQ(parsed->to_json(), json);
  EXPECT_EQ(parsed->relay->tunnel_latency_ns, 500'000);
  EXPECT_EQ(parsed->sybil->identities, 32u);
  EXPECT_EQ(parsed->replay->max_captures, 512u);
  EXPECT_EQ(parsed->mobility->steps, 40u);
  EXPECT_EQ(parsed->churn->victims, 3u);
}

TEST(ScenarioConfigTest, ParseCanonicalizesDefaultsSpelledOut) {
  // A hand-written config that spells out default values parses fine, but
  // the canonical re-serialization strips them.
  const auto parsed =
      ScenarioConfig::parse("{\"sybil\":{\"on\":true,\"identities\":8,\"x\":0.5}}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), "{\"sybil\":{\"on\":true}}");
}

TEST(ScenarioConfigTest, RejectsMalformedInput) {
  EXPECT_FALSE(ScenarioConfig::parse("[").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("[]").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"wormhole\":{}}").has_value());  // unknown family
  EXPECT_FALSE(ScenarioConfig::parse("{\"relay\":5}").has_value());      // not an object
  EXPECT_FALSE(ScenarioConfig::parse("{\"relay\":{\"ax\":1.5}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"relay\":{\"latency_ns\":-1}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"sybil\":{\"identities\":0}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"sybil\":{\"identities\":5000}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"replay\":{\"delay_ns\":-5}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"replay\":{\"max_captures\":0}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"mobility\":{\"movers\":0}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"mobility\":{\"speed_mps\":-1}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"churn\":{\"period_ns\":0}}").has_value());
  EXPECT_FALSE(ScenarioConfig::parse("{\"churn\":{\"cycles\":0}}").has_value());
}

TEST(ScenarioConfigTest, SaveLoadRoundTrip) {
  ScenarioConfig config;
  ASSERT_TRUE(config.arm_family("replay"));
  config.replay->delay_ns = 123'456'789;
  const std::string path = ::testing::TempDir() + "scenario_roundtrip.json";
  ASSERT_TRUE(config.save(path));
  const auto loaded = ScenarioConfig::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_json(), config.to_json());
  EXPECT_FALSE(ScenarioConfig::load("/no/such/scenario.json").has_value());
}

// -- Flag group -------------------------------------------------------------

util::cli::Driver parse_flags(std::optional<ScenarioConfig>* out,
                              std::initializer_list<const char*> args) {
  util::cli::DriverSpec spec("demo", "scenario flag group under test");
  spec.group(scenario_flag_group(out));
  const std::vector<const char*> argv(args);
  std::ostringstream sink;
  return spec.parse(static_cast<int>(argv.size()), argv.data(), sink, sink);
}

TEST(ScenarioFlagGroupTest, ArmsCommaSeparatedFamilies) {
  std::optional<ScenarioConfig> out;
  const auto cli = parse_flags(&out, {"demo", "--adversary=sybil,churn"});
  ASSERT_TRUE(cli.ok());
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->sybil.has_value());
  EXPECT_TRUE(out->churn.has_value());
  EXPECT_FALSE(out->relay.has_value());
}

TEST(ScenarioFlagGroupTest, AbsentFlagsLeaveNullopt) {
  std::optional<ScenarioConfig> out;
  const auto cli = parse_flags(&out, {"demo"});
  ASSERT_TRUE(cli.ok());
  EXPECT_FALSE(out.has_value());
}

TEST(ScenarioFlagGroupTest, RejectsUnknownFamilyAndExclusiveFlags) {
  std::optional<ScenarioConfig> out;
  EXPECT_FALSE(parse_flags(&out, {"demo", "--adversary=bogus"}).ok());
  EXPECT_FALSE(parse_flags(&out, {"demo", "--adversary=,"}).ok());
  EXPECT_FALSE(
      parse_flags(&out, {"demo", "--adversary=sybil", "--adversary-config=x.json"}).ok());
  EXPECT_FALSE(parse_flags(&out, {"demo", "--adversary-config=/no/such.json"}).ok());
}

TEST(ScenarioFlagGroupTest, LoadsConfigFile) {
  ScenarioConfig config;
  ASSERT_TRUE(config.arm_family("mobility"));
  const std::string path = ::testing::TempDir() + "scenario_flag.json";
  ASSERT_TRUE(config.save(path));
  std::optional<ScenarioConfig> out;
  const auto cli = parse_flags(&out, {"demo", ("--adversary-config=" + path).c_str()});
  ASSERT_TRUE(cli.ok());
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->mobility.has_value());
}

// -- Armed runtimes against live deployments --------------------------------

core::DeploymentConfig small_config(std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 5;
  config.seed = seed;
  return config;
}

/// Deploys `nodes`, arms `scenario` over the round, runs to quiescence.
struct ArmedRun {
  explicit ArmedRun(const core::DeploymentConfig& config, const ScenarioConfig& scenario,
                    std::size_t nodes)
      : deployment(config), runtime(deployment, scenario) {
    pool = deployment.deploy_round(nodes);
    runtime.arm(pool);
    deployment.run();
  }
  core::SndDeployment deployment;
  ScenarioRuntime runtime;
  std::vector<NodeId> pool;
};

TEST(ScenarioRuntimeTest, SybilFloodStaysOutOfTentativeLists) {
  ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("sybil"));
  const SybilConfig& sybil = *scenario.sybil;
  ArmedRun run(small_config(42), scenario, 24);

  EXPECT_GT(run.runtime.sybil_sent(), 0u);
  // The default oracle verifier authenticates positions; no credential-less
  // minted identity may enter any benign tentative list.
  for (const core::SndNode* agent : run.deployment.agents()) {
    for (const NodeId neighbor : agent->tentative_neighbors()) {
      EXPECT_FALSE(neighbor > sybil.base && neighbor <= sybil.base + sybil.identities)
          << "sybil identity " << neighbor << " admitted by node " << agent->identity();
    }
  }
}

TEST(ScenarioRuntimeTest, ReplayAttackerIsFullyRejected) {
  ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("replay"));
  ArmedRun run(small_config(43), scenario, 24);

  EXPECT_GT(run.runtime.replay_captured(), 0u);
  EXPECT_GT(run.runtime.replay_injected(), 0u);
  std::uint64_t rejects = 0;
  std::uint64_t accepts = 0;
  for (const core::SndNode* agent : run.deployment.agents()) {
    rejects += agent->replay_rejects();
    accepts += agent->replay_accepts();
  }
  EXPECT_GT(rejects, 0u) << "replayed copies were never window-flagged";
  EXPECT_EQ(accepts, 0u) << "a window-flagged duplicate reached the protocol";
}

TEST(ScenarioRuntimeTest, ReplayAttackerDoesNotPerturbProtocolState) {
  // The replayed copies authenticate but every one dies at the replay
  // window, so the final protocol state must be exactly the no-attacker
  // run's (the channel is lossless here: no RNG consumption differs).
  const auto snapshot = [](bool attack) {
    ScenarioConfig scenario;
    if (attack) EXPECT_TRUE(scenario.arm_family("replay"));
    ArmedRun run(small_config(44), scenario, 20);
    std::vector<std::pair<NodeId, topology::NeighborList>> state;
    for (const core::SndNode* agent : run.deployment.agents()) {
      state.emplace_back(agent->identity(), agent->functional_neighbors());
    }
    return state;
  };
  EXPECT_EQ(snapshot(true), snapshot(false));
}

TEST(ScenarioRuntimeTest, MobilityWalksStayInsideTheField) {
  ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("mobility"));
  scenario.mobility->movers = 6;
  scenario.mobility->steps = 15;
  const core::DeploymentConfig config = small_config(45);
  ArmedRun run(config, scenario, 24);

  EXPECT_GT(run.runtime.moves_applied(), 0u);
  for (const sim::Device& d : run.deployment.network().devices()) {
    EXPECT_TRUE(config.field.contains(d.position))
        << "device " << d.id << " walked out of the field";
  }
}

TEST(ScenarioRuntimeTest, ChurnCrashesAndRebootsEveryScheduledVictim) {
  ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("churn"));
  scenario.churn->victims = 2;
  scenario.churn->cycles = 2;
  ArmedRun run(small_config(46), scenario, 20);

  EXPECT_EQ(run.runtime.churn_crashes(), 4u);
  EXPECT_EQ(run.runtime.churn_reboots(), 4u);
  // Every rebooted device runs a fresh agent with an advanced boot epoch.
  std::size_t rebooted = 0;
  for (const sim::Device& d : run.deployment.network().devices()) {
    if (run.deployment.boot_epoch(d.id) > 0) ++rebooted;
  }
  EXPECT_GE(rebooted, 1u);
  EXPECT_LE(rebooted, 4u);
}

TEST(ScenarioRuntimeTest, ArmedRunsAreDeterministic) {
  ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("relay"));
  ASSERT_TRUE(scenario.arm_family("replay"));
  const auto summary = [&scenario]() {
    ArmedRun run(small_config(47), scenario, 20);
    return run.deployment.network().trace_summary().to_json();
  };
  EXPECT_EQ(summary(), summary());
}

TEST(SybilAttackerTest, MintedRangeExcludesBaseAndOutsiders) {
  core::SndDeployment deployment(small_config(48));
  SybilAttacker attacker(deployment.network(), {50.0, 50.0}, 0x5b110000, 4);
  EXPECT_FALSE(attacker.minted(0x5b110000));      // the marker identity itself
  EXPECT_TRUE(attacker.minted(0x5b110001));
  EXPECT_TRUE(attacker.minted(0x5b110004));
  EXPECT_FALSE(attacker.minted(0x5b110005));
  EXPECT_FALSE(attacker.minted(7));
}

}  // namespace
}  // namespace snd::adversary
