#include "topology/stats.h"

#include <gtest/gtest.h>

namespace snd::topology {
namespace {

TEST(DegreeStatsTest, EmptyGraph) {
  const auto stats = degree_stats(Digraph{});
  EXPECT_EQ(stats.mean_out_degree, 0.0);
}

TEST(DegreeStatsTest, Star) {
  Digraph g;
  for (NodeId i = 2; i <= 5; ++i) g.add_edge(1, i);
  const auto stats = degree_stats(g);
  EXPECT_EQ(stats.max_out_degree, 4u);
  EXPECT_EQ(stats.min_out_degree, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 4.0 / 5.0);
}

TEST(EdgeRecallTest, IdenticalGraphs) {
  Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  EXPECT_DOUBLE_EQ(edge_recall(g, g), 1.0);
  EXPECT_DOUBLE_EQ(edge_precision(g, g), 1.0);
}

TEST(EdgeRecallTest, HalfKept) {
  Digraph actual;
  actual.add_edge(1, 2);
  actual.add_edge(2, 3);
  Digraph functional;
  functional.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(edge_recall(actual, functional), 0.5);
}

TEST(EdgeRecallTest, EmptyActualIsPerfect) {
  Digraph functional;
  functional.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(edge_recall(Digraph{}, functional), 1.0);
}

TEST(EdgePrecisionTest, FabricatedEdgesLowerPrecision) {
  Digraph actual;
  actual.add_edge(1, 2);
  Digraph functional;
  functional.add_edge(1, 2);
  functional.add_edge(1, 99);  // fabricated
  EXPECT_DOUBLE_EQ(edge_precision(actual, functional), 0.5);
  EXPECT_DOUBLE_EQ(edge_recall(actual, functional), 1.0);
}

TEST(EdgePrecisionTest, EmptyFunctionalIsVacuouslyPrecise) {
  Digraph actual;
  actual.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(edge_precision(actual, Digraph{}), 1.0);
}

}  // namespace
}  // namespace snd::topology
