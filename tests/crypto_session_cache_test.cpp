#include "crypto/session_cache.h"

#include <gtest/gtest.h>

#include <thread>

#include "crypto/blundo.h"
#include "crypto/eg_pool.h"
#include "crypto/sha256.h"

namespace snd::crypto {
namespace {

TEST(FastPathFlagTest, ToggleRoundTrips) {
  const bool before = fast_path_enabled();
  set_fast_path_enabled(!before);
  EXPECT_EQ(fast_path_enabled(), !before);
  set_fast_path_enabled(before);
  EXPECT_EQ(fast_path_enabled(), before);
}

TEST(PairKeyCacheTest, DerivesAndCachesOnFirstLookup) {
  std::shared_ptr<const KeyPredistribution> scheme = KdcScheme::from_seed(7);
  PairKeyCache cache(scheme, 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.self(), 1u);
  const PairKeyCache::Entry& entry = cache.get(2);
  EXPECT_TRUE(entry.key.present());
  EXPECT_TRUE(entry.mac.present());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PairKeyCacheTest, SecondLookupCostsNoHashes) {
  std::shared_ptr<const KeyPredistribution> scheme = KdcScheme::from_seed(7);
  PairKeyCache cache(scheme, 1);
  (void)cache.get(2);
  reset_hash_op_count();
  EXPECT_TRUE(cache.get(2).key.present());
  EXPECT_EQ(hash_op_count(), 0u);  // pure map lookup, no KDF, no pad hashing
}

TEST(PairKeyCacheTest, SymmetricAcrossEndpoints) {
  // pairwise(u,v) == pairwise(v,u): both ends' cached entries must produce
  // identical MACs over the same message (the observable form of equality).
  std::shared_ptr<const KeyPredistribution> kdc = KdcScheme::from_seed(7);
  auto blundo = std::make_shared<BlundoScheme>(3, 5);
  blundo->provision(1);
  blundo->provision(2);
  const util::Bytes message = {1, 2, 3};
  for (std::shared_ptr<const KeyPredistribution> scheme :
       {kdc, std::static_pointer_cast<const KeyPredistribution>(blundo)}) {
    PairKeyCache u(scheme, 1);
    PairKeyCache v(scheme, 2);
    const PairKeyCache::Entry& a = u.get(2);
    const PairKeyCache::Entry& b = v.get(1);
    ASSERT_TRUE(a.key.present());
    ASSERT_TRUE(b.key.present());
    EXPECT_EQ(a.mac.short_mac(message), b.mac.short_mac(message)) << scheme->name();
  }
}

TEST(PairKeyCacheTest, CachedMacMatchesDirectDerivation) {
  auto blundo = std::make_shared<BlundoScheme>(9, 4);
  blundo->provision(5);
  blundo->provision(6);
  PairKeyCache cache(std::static_pointer_cast<const KeyPredistribution>(blundo), 5);
  const util::Bytes message = {4, 4, 4};
  const auto direct = blundo->pairwise(5, 6);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(cache.get(6).mac.short_mac(message), short_mac(*direct, message));
}

TEST(PairKeyCacheTest, InvalidateDropsEntryAndRederives) {
  std::shared_ptr<const KeyPredistribution> scheme = KdcScheme::from_seed(7);
  PairKeyCache cache(scheme, 1);
  (void)cache.get(2);
  (void)cache.get(3);
  EXPECT_EQ(cache.size(), 2u);
  cache.invalidate(2);
  EXPECT_EQ(cache.size(), 1u);
  reset_hash_op_count();
  EXPECT_TRUE(cache.get(2).key.present());
  EXPECT_GT(hash_op_count(), 0u);  // really re-derived
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PairKeyCacheTest, SelfPairIsAbsent) {
  std::shared_ptr<const KeyPredistribution> scheme = KdcScheme::from_seed(7);
  PairKeyCache cache(scheme, 1);
  const PairKeyCache::Entry& entry = cache.get(1);
  EXPECT_FALSE(entry.key.present());
  EXPECT_FALSE(entry.mac.present());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PairKeyCacheTest, AbsentResultNotCachedSoLateProvisioningWorks) {
  // Incremental deployment: the peer provisions after our first attempt.
  // A negative cache would pin the failure; the spec is to re-derive.
  auto eg = std::make_shared<EschenauerGligorScheme>(9, 100, 80);
  eg->provision(1);
  PairKeyCache cache(std::static_pointer_cast<const KeyPredistribution>(eg), 1);
  const PairKeyCache::Entry& miss = cache.get(2);  // peer not provisioned yet
  EXPECT_FALSE(miss.key.present());
  EXPECT_EQ(cache.size(), 0u);

  eg->provision(2);  // rings of 80 from a pool of 100 always intersect
  const PairKeyCache::Entry& hit = cache.get(2);
  EXPECT_TRUE(hit.key.present());
  EXPECT_TRUE(hit.mac.present());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(HashOpCounterTest, IsPerThread) {
  // g_hash_ops became thread_local so parallel Monte-Carlo trials stop
  // contending on (and double-counting into) one atomic. Each thread sees
  // only its own work.
  reset_hash_op_count();
  std::uint64_t worker_ops = 0;
  std::thread worker([&worker_ops] {
    reset_hash_op_count();
    (void)Sha256::hash(util::Bytes{1, 2, 3});
    worker_ops = hash_op_count();
  });
  worker.join();
  EXPECT_GT(worker_ops, 0u);
  EXPECT_EQ(hash_op_count(), 0u);  // the worker's hashing never leaked here
}

}  // namespace
}  // namespace snd::crypto
