#include "core/safety.h"

#include <gtest/gtest.h>

#include "adversary/attacker.h"

namespace snd::core {
namespace {

DeploymentConfig small_config() {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {300.0, 300.0}};
  config.radio_range = 60.0;
  config.protocol.threshold_t = 2;
  config.seed = 3;
  return config;
}

TEST(SafetyAuditTest, NoCompromisedNodesEmptyReport) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(50);
  deployment.run();
  const SafetyReport report = audit_safety(deployment, 120.0);
  EXPECT_TRUE(report.identities.empty());
  EXPECT_TRUE(report.holds());
  EXPECT_EQ(report.max_impact_radius(), 0.0);
}

TEST(SafetyAuditTest, BenignIdentityImpactIsLocal) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(80);
  deployment.run();
  // Even for an uncompromised node, the accepting neighbors sit within R,
  // so the enclosing circle has radius <= R.
  const IdentitySafetyReport report = audit_identity(deployment, 1, 60.0);
  EXPECT_FALSE(report.violates);
  EXPECT_LE(report.impact_radius(), 60.0 + 1e-6);
}

TEST(SafetyAuditTest, CompromisedNodeAppearsInReport) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(60);
  deployment.run();
  adversary::Attacker attacker(deployment);
  ASSERT_TRUE(attacker.compromise(5));
  const SafetyReport report = audit_safety(deployment, 120.0);
  ASSERT_EQ(report.identities.size(), 1u);
  EXPECT_EQ(report.identities[0].identity, 5u);
}

TEST(SafetyAuditTest, AcceptingNodesAreBenignOnly) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(60);
  deployment.run();
  adversary::Attacker attacker(deployment);
  attacker.compromise(5);
  attacker.compromise(6);
  const SafetyReport report = audit_safety(deployment, 120.0);
  for (const auto& identity_report : report.identities) {
    for (NodeId acceptor : identity_report.accepting_nodes) {
      EXPECT_NE(acceptor, 5u);
      EXPECT_NE(acceptor, 6u);
    }
  }
}

TEST(SafetyAuditTest, ViolationFlaggedWhenRadiusExceeded) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(60);
  deployment.run();
  adversary::Attacker attacker(deployment);
  attacker.compromise(5);
  // With an absurdly small d, the genuine neighborhood itself violates.
  const SafetyReport tight = audit_safety(deployment, 0.5);
  ASSERT_EQ(tight.identities.size(), 1u);
  if (!tight.identities[0].accepting_nodes.empty()) {
    EXPECT_TRUE(tight.identities[0].violates);
    EXPECT_FALSE(tight.holds());
    EXPECT_EQ(tight.violation_count(), 1u);
  }
}

TEST(SafetyAuditTest, MaxImpactRadiusIsMaxOverIdentities) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(60);
  deployment.run();
  adversary::Attacker attacker(deployment);
  attacker.compromise(3);
  attacker.compromise(9);
  const SafetyReport report = audit_safety(deployment, 120.0);
  double expected = 0.0;
  for (const auto& r : report.identities) expected = std::max(expected, r.impact_radius());
  EXPECT_DOUBLE_EQ(report.max_impact_radius(), expected);
}

}  // namespace
}  // namespace snd::core
