#include <gtest/gtest.h>

#include <cmath>

#include "apps/aggregation.h"
#include "apps/clustering.h"
#include "apps/flooding.h"
#include "apps/georouting.h"

namespace snd::apps {
namespace {

std::unique_ptr<sim::Network> line_network(std::size_t n, double spacing, double range) {
  auto network = std::make_unique<sim::Network>(std::make_unique<sim::UnitDiskModel>(range),
                                                sim::ChannelConfig{}, 1);
  for (std::size_t i = 0; i < n; ++i) {
    network->add_device(static_cast<NodeId>(i + 1), {static_cast<double>(i) * spacing, 0.0});
  }
  return network;
}

TEST(GeoRouterTest, RoutesAlongALine) {
  auto network = line_network(10, 10.0, 15.0);
  GeoRouter router(*network);
  const Route route = router.route(0, 9);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.path.front(), 0u);
  EXPECT_EQ(route.path.back(), 9u);
  EXPECT_EQ(route.hops(), 9u);
  EXPECT_NEAR(route.length_m, 90.0, 1e-9);
}

TEST(GeoRouterTest, GreedyTakesLongestProgressHop) {
  auto network = line_network(10, 10.0, 25.0);  // can skip every other node
  GeoRouter router(*network);
  const Route route = router.route(0, 9);
  EXPECT_TRUE(route.success);
  EXPECT_LE(route.hops(), 5u);
}

TEST(GeoRouterTest, FailsAcrossAGap) {
  auto network = std::make_unique<sim::Network>(std::make_unique<sim::UnitDiskModel>(15.0),
                                                sim::ChannelConfig{}, 1);
  network->add_device(1, {0, 0});
  network->add_device(2, {10, 0});
  network->add_device(3, {60, 0});  // unreachable island
  GeoRouter router(*network);
  const Route route = router.route(0, 2);
  EXPECT_FALSE(route.success);
  EXPECT_EQ(route.path.back(), 1u);  // got as close as possible
}

TEST(GeoRouterTest, RouteToSelfIsTrivial) {
  auto network = line_network(3, 10.0, 15.0);
  GeoRouter router(*network);
  const Route route = router.route(1, 1);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.hops(), 0u);
}

TEST(GeoRouterTest, RestrictedTopologyBlocksForbiddenEdges) {
  auto network = line_network(4, 10.0, 15.0);
  // Allowed graph omits the 2 -> 3 identity edge, severing the line.
  topology::Digraph allowed;
  allowed.add_edge(1, 2);
  allowed.add_edge(2, 1);
  allowed.add_edge(3, 4);
  allowed.add_edge(4, 3);
  GeoRouter router(*network, allowed);
  const Route route = router.route(0, 3);
  EXPECT_FALSE(route.success);
  EXPECT_EQ(route.path.back(), 1u);  // device index of identity 2
}

TEST(GeoRouterTest, RouteToPositionStopsAtClosestNode) {
  auto network = line_network(5, 10.0, 15.0);
  GeoRouter router(*network);
  const Route route = router.route_to_position(0, {100.0, 0.0});
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.path.back(), 4u);  // last device on the line
}

TEST(GeoRouterTest, DeadDevicesNotUsed) {
  auto network = line_network(5, 10.0, 15.0);
  network->device(2).alive = false;  // middle of the line
  GeoRouter router(*network);
  const Route route = router.route(0, 4);
  EXPECT_FALSE(route.success);
}

// --- Clustering ---------------------------------------------------------

topology::Digraph complete_graph(NodeId first, NodeId last) {
  topology::Digraph g;
  for (NodeId u = first; u <= last; ++u) {
    for (NodeId v = first; v <= last; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  return g;
}

TEST(ClusteringTest, CompleteGraphOneCluster) {
  const Clustering clustering = smallest_id_clustering(complete_graph(1, 6));
  EXPECT_EQ(clustering.cluster_count(), 1u);
  EXPECT_TRUE(clustering.is_head(1));
  for (NodeId u = 2; u <= 6; ++u) {
    EXPECT_EQ(clustering.head_of.at(u), 1u);
    EXPECT_FALSE(clustering.is_head(u));
  }
}

TEST(ClusteringTest, IsolatedNodeHeadsItself) {
  topology::Digraph g;
  g.add_node(5);
  const Clustering clustering = smallest_id_clustering(g);
  EXPECT_TRUE(clustering.is_head(5));
}

TEST(ClusteringTest, TwoIslandsTwoClusters) {
  topology::Digraph g = complete_graph(1, 3);
  for (const auto& [u, v] : complete_graph(10, 12).edges()) g.add_edge(u, v);
  const Clustering clustering = smallest_id_clustering(g);
  EXPECT_EQ(clustering.cluster_count(), 2u);
  EXPECT_TRUE(clustering.is_head(1));
  EXPECT_TRUE(clustering.is_head(10));
}

TEST(ClusteringTest, NonHeadWithNoHeadNeighborBecomesHead) {
  // Chain 1-2-3: 1 is head; 2 joins 1; 3's only neighbor 2 is not a head,
  // and 3 is not locally smallest... 3's neighbors = {2}, 2 < 3, so 3 is
  // not a head by rule 1, and must self-head by rule 2.
  topology::Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const Clustering clustering = smallest_id_clustering(g);
  EXPECT_EQ(clustering.head_of.at(1), 1u);
  EXPECT_EQ(clustering.head_of.at(2), 1u);
  EXPECT_EQ(clustering.head_of.at(3), 3u);
}

TEST(ClusteringTest, EveryNodeAssigned) {
  const topology::Digraph g = complete_graph(1, 20);
  const Clustering clustering = smallest_id_clustering(g);
  EXPECT_EQ(clustering.head_of.size(), 20u);
  std::size_t members = 0;
  for (const auto& [head, cluster] : clustering.clusters) members += cluster.size();
  EXPECT_EQ(members, 20u);
}

TEST(ClusterQualityTest, TightClusterSmallDiameter) {
  Clustering clustering;
  clustering.head_of = {{1, 1}, {2, 1}, {3, 1}};
  clustering.clusters[1] = {1, 2, 3};
  const std::map<NodeId, util::Vec2> positions = {
      {1, {0, 0}}, {2, {1, 0}}, {3, {0, 1}}};
  const ClusterQuality quality = evaluate_clusters(clustering, positions);
  EXPECT_EQ(quality.cluster_count, 1u);
  EXPECT_NEAR(quality.max_diameter_m, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(quality.max_member_to_head_m, 1.0, 1e-9);
}

TEST(ClusterQualityTest, FabricatedRelationInflatesDiameter) {
  // The paper's motivating failure: a remote member joins a local cluster.
  Clustering clustering;
  clustering.head_of = {{1, 1}, {2, 1}, {99, 1}};
  clustering.clusters[1] = {1, 2, 99};
  const std::map<NodeId, util::Vec2> positions = {
      {1, {0, 0}}, {2, {5, 0}}, {99, {400, 400}}};
  const ClusterQuality quality = evaluate_clusters(clustering, positions);
  EXPECT_GT(quality.max_diameter_m, 500.0);
}

TEST(ClusterQualityTest, UnknownPositionsSkipped) {
  Clustering clustering;
  clustering.head_of = {{1, 1}, {2, 1}};
  clustering.clusters[1] = {1, 2};
  const ClusterQuality quality = evaluate_clusters(clustering, {{1, {0, 0}}});
  EXPECT_EQ(quality.max_diameter_m, 0.0);
}

// --- Aggregation ---------------------------------------------------------

TEST(AggregationTest, SyntheticFieldVariesOverSpace) {
  EXPECT_NE(synthetic_field({0, 0}), synthetic_field({400, 400}));
  // Hot spot is the maximum neighborhood.
  EXPECT_GT(synthetic_field({120, 80}), synthetic_field({350, 20}));
}

TEST(AggregationTest, TightClusterHasSmallError) {
  Clustering clustering;
  clustering.clusters[1] = {1, 2, 3};
  const std::map<NodeId, util::Vec2> positions = {{1, {10, 10}}, {2, {12, 10}}, {3, {10, 13}}};
  const AggregationReport report = evaluate_aggregation(clustering, positions);
  EXPECT_EQ(report.clusters_evaluated, 1u);
  EXPECT_LT(report.mean_error, 0.5);
}

TEST(AggregationTest, RemoteMemberCorruptsAverage) {
  Clustering local;
  local.clusters[1] = {1, 2};
  Clustering poisoned;
  poisoned.clusters[1] = {1, 2, 99};
  const std::map<NodeId, util::Vec2> positions = {
      {1, {10, 10}}, {2, {12, 10}}, {99, {400, 400}}};
  const double clean_error = evaluate_aggregation(local, positions).mean_error;
  const double poisoned_error = evaluate_aggregation(poisoned, positions).mean_error;
  EXPECT_GT(poisoned_error, clean_error + 1.0);
}

TEST(AggregationTest, HeadWithoutPositionSkipped) {
  Clustering clustering;
  clustering.clusters[7] = {7, 8};
  const AggregationReport report =
      evaluate_aggregation(clustering, {{8, {0.0, 0.0}}});
  EXPECT_EQ(report.clusters_evaluated, 0u);
  EXPECT_EQ(report.mean_error, 0.0);
}

// --- Flooding -----------------------------------------------------------

TEST(FloodingTest, ReachesWholeConnectedComponent) {
  auto network = line_network(6, 10.0, 15.0);
  const FloodCost cost = estimate_flood(*network, 0, 50);
  EXPECT_EQ(cost.reached, 6u);
  EXPECT_EQ(cost.transmissions, 6u);
  EXPECT_EQ(cost.bytes, 6u * (50 + sim::Packet::kHeaderBytes));
}

TEST(FloodingTest, StopsAtPartitionBoundary) {
  auto network = std::make_unique<sim::Network>(std::make_unique<sim::UnitDiskModel>(15.0),
                                                sim::ChannelConfig{}, 1);
  network->add_device(1, {0, 0});
  network->add_device(2, {10, 0});
  network->add_device(3, {100, 0});  // unreachable island
  const FloodCost cost = estimate_flood(*network, 0, 10);
  EXPECT_EQ(cost.reached, 2u);
}

TEST(FloodingTest, DeadOriginCostsNothing) {
  auto network = line_network(4, 10.0, 15.0);
  network->device(0).alive = false;
  const FloodCost cost = estimate_flood(*network, 0, 10);
  EXPECT_EQ(cost.reached, 0u);
  EXPECT_EQ(cost.bytes, 0u);
}

TEST(FloodingTest, DeadNodesDoNotRelay) {
  auto network = line_network(5, 10.0, 15.0);
  network->device(2).alive = false;  // severs the chain
  const FloodCost cost = estimate_flood(*network, 0, 10);
  EXPECT_EQ(cost.reached, 2u);
}

TEST(AggregationTest, MaxErrorAtLeastMean) {
  Clustering clustering;
  clustering.clusters[1] = {1, 2};
  clustering.clusters[5] = {5, 99};
  const std::map<NodeId, util::Vec2> positions = {
      {1, {10, 10}}, {2, {11, 10}}, {5, {50, 50}}, {99, {390, 10}}};
  const AggregationReport report = evaluate_aggregation(clustering, positions);
  EXPECT_EQ(report.clusters_evaluated, 2u);
  EXPECT_GE(report.max_error, report.mean_error);
}

}  // namespace
}  // namespace snd::apps
