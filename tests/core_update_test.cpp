// Tests of the §4.4 binding-record update extension.
#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "core/protocol.h"

namespace snd::core {
namespace {

DeploymentConfig extension_config(std::uint32_t m, std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {60.0, 60.0}};
  config.radio_range = 100.0;
  config.protocol.threshold_t = 2;
  config.protocol.max_updates = m;
  config.seed = seed;
  return config;
}

TEST(UpdateExtensionTest, EvidenceBufferedByOldNodes) {
  SndDeployment deployment(extension_config(2));
  deployment.deploy_round(8);
  deployment.run();
  const NodeId fresh = deployment.deploy_node_at({30, 30});
  deployment.run();
  // Every old node got E(fresh, old) from the new node.
  for (NodeId old_id = 1; old_id <= 8; ++old_id) {
    const auto& buffer = deployment.agent(old_id)->evidence_buffer();
    EXPECT_TRUE(buffer.contains(fresh)) << "old node " << old_id;
  }
}

TEST(UpdateExtensionTest, NoEvidenceWhenExtensionOff) {
  SndDeployment deployment(extension_config(0));
  deployment.deploy_round(8);
  deployment.run();
  deployment.deploy_node_at({30, 30});
  deployment.run();
  for (NodeId old_id = 1; old_id <= 8; ++old_id) {
    EXPECT_TRUE(deployment.agent(old_id)->evidence_buffer().empty());
  }
}

TEST(UpdateExtensionTest, AutoUpdateRefreshesRecord) {
  SndDeployment deployment(extension_config(2));
  deployment.deploy_round(8);
  deployment.run();

  // Round 2 leaves evidence with the old nodes.
  const NodeId r2 = deployment.deploy_node_at({30, 30});
  deployment.run();
  SndNode* old_node = deployment.agent(1);
  old_node->set_auto_update(true);
  EXPECT_EQ(old_node->record_version(), 0u);

  // Round 3: the old node hears the newcomer's Hello and requests an
  // update; the newcomer still holds K and re-issues the record.
  const NodeId r3 = deployment.deploy_node_at({25, 25});
  deployment.run();

  EXPECT_EQ(old_node->record_version(), 1u);
  EXPECT_TRUE(topology::contains(old_node->record().neighbors, r2));
  EXPECT_TRUE(old_node->record().verify(deployment.master_key()));
  EXPECT_TRUE(old_node->evidence_buffer().empty() ||
              !old_node->evidence_buffer().contains(r2));
  (void)r3;
}

TEST(UpdateExtensionTest, ManualRequestUpdate) {
  SndDeployment deployment(extension_config(3));
  deployment.deploy_round(6);
  deployment.run();
  const NodeId r2 = deployment.deploy_node_at({30, 30});
  deployment.run();

  SndNode* old_node = deployment.agent(2);
  ASSERT_TRUE(old_node->evidence_buffer().contains(r2));

  // A third round provides a K-holding server; ask it explicitly.
  const NodeId server = deployment.deploy_node_at({28, 28});
  deployment.run_for(sim::Time::milliseconds(50));  // server deployed, K alive
  EXPECT_TRUE(old_node->request_update(server));
  deployment.run();
  EXPECT_EQ(old_node->record_version(), 1u);
}

TEST(UpdateExtensionTest, RequestUpdateFailsWithoutEvidence) {
  SndDeployment deployment(extension_config(3));
  deployment.deploy_round(6);
  deployment.run();
  // No second round ever happened: nothing to add.
  EXPECT_FALSE(deployment.agent(1)->request_update(2));
}

TEST(UpdateExtensionTest, VersionCapEnforcedClientSide) {
  SndDeployment deployment(extension_config(1));
  deployment.deploy_round(6);
  deployment.run();
  SndNode* old_node = deployment.agent(1);
  old_node->set_auto_update(true);

  deployment.deploy_node_at({30, 30});
  deployment.run();
  deployment.deploy_node_at({25, 25});
  deployment.run();
  EXPECT_EQ(old_node->record_version(), 1u);  // reached the cap m = 1

  // Another round leaves fresh evidence, but the cap blocks any update.
  deployment.deploy_node_at({20, 20});
  deployment.run();
  deployment.deploy_node_at({35, 35});
  deployment.run();
  EXPECT_EQ(old_node->record_version(), 1u);
}

TEST(UpdateExtensionTest, ServerFiltersForgedEvidence) {
  SndDeployment deployment(extension_config(2));
  deployment.deploy_round(6);
  deployment.run();
  const NodeId r2 = deployment.deploy_node_at({30, 30});
  deployment.run();

  SndNode* old_node = deployment.agent(1);
  ASSERT_TRUE(old_node->evidence_buffer().contains(r2));
  const crypto::Digest genuine = old_node->evidence_buffer().at(r2);

  // Hand-roll an update request mixing the genuine evidence with a forged
  // entry for a never-deployed issuer 9999. The K-holding server must admit
  // the genuine issuer and silently drop the forged one.
  const NodeId server = deployment.deploy_node_at({28, 28});
  deployment.run_for(sim::Time::milliseconds(20));

  UpdateRequestPayload request{old_node->record(), {}};
  request.evidences.emplace_back(r2, genuine);
  request.evidences.emplace_back(9999, crypto::Sha256::hash("forged"));

  Messenger as_old(deployment.network(), old_node->device(), 1, deployment.key_scheme());
  as_old.send(server, static_cast<std::uint8_t>(MessageType::kUpdateRequest),
              request.serialize(), snd::obs::Phase::kOther);
  deployment.run();

  EXPECT_EQ(old_node->record_version(), 1u);
  EXPECT_TRUE(topology::contains(old_node->record().neighbors, r2));
  EXPECT_FALSE(topology::contains(old_node->record().neighbors, 9999));
}

TEST(UpdateExtensionTest, UpdatedRecordEnablesNewFunctionalRelations) {
  // The §4.4 motivation: old nodes whose binding records grow can form
  // functional relations with later deployments.
  DeploymentConfig config = extension_config(3, 5);
  config.protocol.threshold_t = 6;  // too strict for round-1 records alone
  SndDeployment deployment(config);

  // Round 1: only 5 nodes -> overlap 3 < t+1 = 7; nothing validates.
  deployment.deploy_round(5);
  deployment.run();
  EXPECT_TRUE(deployment.agent(1)->functional_neighbors().empty());
  for (NodeId id = 1; id <= 5; ++id) deployment.agent(id)->set_auto_update(true);

  // Rounds 2..4 add nodes; old records absorb them via updates, so
  // eventually new nodes find >= 7 common neighbors with old nodes.
  for (int round = 0; round < 4; ++round) {
    deployment.deploy_round(3);
    deployment.run();
  }

  const SndNode* old_node = deployment.agent(1);
  EXPECT_GT(old_node->record_version(), 0u);
  EXPECT_FALSE(old_node->functional_neighbors().empty());
}

}  // namespace
}  // namespace snd::core
