#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace snd::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differences;
  }
  EXPECT_GT(differences, 30);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(47);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(53);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(59);
  Rng child = parent.fork();
  // Child stream must differ from the parent's continuation.
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (parent.next() != child.next()) ++differences;
  }
  EXPECT_GT(differences, 14);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(61);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(67);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(71);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled.begin(), shuffled.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

// Statistical sanity across a sweep of seeds: mean of uniform stays near
// 0.5 for every stream (catches broken seeding producing degenerate states).
class RngSeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweepTest, UniformMeanStable) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweepTest,
                         ::testing::Values(0, 1, 2, 1000, 0xffffffffffffffffULL,
                                           0x123456789abcdefULL));

}  // namespace
}  // namespace snd::util
