// Multi-buffer SHA-256 engine: digests must be bit-identical to the scalar
// crypto::Sha256 for every batch shape, lane width, and dispatch tier, and
// the per-thread compression counter must attribute identically batched vs
// serial (the §4.3 overhead bench depends on it).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_mb.h"
#include "util/rng.h"
#include "util/simd.h"

namespace snd::crypto {
namespace {

class Sha256MbTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_simd_enabled(true); }
  void TearDown() override {
    util::set_simd_enabled(true);
    util::set_forced_simd_tier(std::nullopt);
  }
};

util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256}));
  return out;
}

// NIST FIPS 180-4 / CAVP one- and two-block vectors, replicated so each
// occupies a different lane of one wide pass.
TEST_F(Sha256MbTest, NistVectorsAcrossLanes) {
  const std::string one = "abc";
  const std::string two = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const std::string one_hex =
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  const std::string two_hex =
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";

  HashBatch batch;
  for (int i = 0; i < 4; ++i) {
    batch.add().update(one);
    batch.add().update(two);
  }
  batch.run();
  for (std::size_t i = 0; i < 8; i += 2) {
    EXPECT_EQ(batch.digest(i).hex(), one_hex);
    EXPECT_EQ(batch.digest(i + 1).hex(), two_hex);
  }

  // Empty-message lane mixed with the long CAVP vector.
  batch.clear();
  batch.add();
  batch.add().update(std::string(1'000'000, 'a'));
  batch.run();
  EXPECT_EQ(batch.digest(0).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(batch.digest(1).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Ragged batches: every batch size 1..9 over messages straddling all the
// padding boundaries (0, 55, 56, 63, 64, 65, ...) must match scalar Sha256.
TEST_F(Sha256MbTest, RaggedBatchesMatchScalar) {
  const std::size_t lengths[] = {0, 1, 3, 31, 55, 56, 63, 64, 65, 119, 120, 127, 128, 300};
  util::Rng rng(0x5a5a);
  std::vector<util::Bytes> messages;
  for (const std::size_t n : lengths) messages.push_back(random_bytes(rng, n));

  for (std::size_t size = 1; size <= 9; ++size) {
    HashBatch batch;
    std::vector<Digest> expected;
    for (std::size_t i = 0; i < size; ++i) {
      const util::Bytes& msg = messages[(size + i * 5) % messages.size()];
      batch.add().update(msg);
      expected.push_back(Sha256::hash(msg));
    }
    batch.run();
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(batch.digest(i), expected[i]) << "size=" << size << " i=" << i;
    }
  }
}

// Randomized equivalence sweep, including jobs resumed from mid-stream
// Sha256 contexts (arbitrary buffered tails) and the framed/u64 writers.
TEST_F(Sha256MbTest, RandomizedSerialVsBatched) {
  util::Rng rng(0xfeedbeef);
  for (int round = 0; round < 50; ++round) {
    const std::size_t size = 1 + rng.uniform_int(std::uint64_t{12});
    HashBatch batch;
    std::vector<Digest> expected;
    for (std::size_t i = 0; i < size; ++i) {
      const util::Bytes prefix = random_bytes(rng, rng.uniform_int(std::uint64_t{150}));
      const util::Bytes body = random_bytes(rng, rng.uniform_int(std::uint64_t{300}));
      const std::uint64_t word = rng.next();

      Sha256 base;
      base.update(prefix);
      HashBatch::Job job = batch.add(base);
      job.update_framed(body);
      job.update_u64(word);

      Sha256 scalar;
      scalar.update(prefix);
      scalar.update_framed(body);
      scalar.update_u64(word);
      expected.push_back(scalar.finalize());
    }
    batch.run();
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(batch.digest(i), expected[i]) << "round=" << round << " i=" << i;
    }
  }
}

// Every dispatch tier at or below the CPU's ceiling produces the same
// digests (the forced-tier override is how benches pin widths 4 and 8).
TEST_F(Sha256MbTest, AllTiersAgree) {
  util::Rng rng(0x7e57);
  std::vector<util::Bytes> messages;
  for (int i = 0; i < 7; ++i) messages.push_back(random_bytes(rng, 17 * static_cast<std::size_t>(i) + 1));

  std::vector<Digest> scalar;
  for (const auto& msg : messages) scalar.push_back(Sha256::hash(msg));

  for (const util::SimdTier tier :
       {util::SimdTier::kScalar, util::SimdTier::kSse2, util::SimdTier::kAvx2}) {
    util::set_forced_simd_tier(tier);
    HashBatch batch;
    for (const auto& msg : messages) batch.add().update(msg);
    batch.run();
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(batch.digest(i), scalar[i]) << "tier=" << static_cast<int>(tier) << " i=" << i;
    }
  }
}

// SND_SIMD=0 (the runtime gate) must select the serial seed path and still
// agree, and the batch must behave identically through a clear() cycle.
TEST_F(Sha256MbTest, GateOffMatchesAndClearRecycles) {
  util::Rng rng(0x90a7);
  HashBatch batch;
  for (int cycle = 0; cycle < 3; ++cycle) {
    util::set_simd_enabled(cycle != 1);
    batch.clear();
    std::vector<Digest> expected;
    for (int i = 0; i < 5; ++i) {
      const util::Bytes msg = random_bytes(rng, 40 * static_cast<std::size_t>(i) + 3);
      batch.add().update(msg);
      expected.push_back(Sha256::hash(msg));
    }
    batch.run();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch.digest(i), expected[i]) << "cycle=" << cycle;
    }
  }
}

// The op counter must attribute a digest the same number of compressions
// whether it ran in a wide batch or serially -- including jobs resumed from
// HMAC midstates, whose pad blocks were counted at HmacKey construction.
TEST_F(Sha256MbTest, HashOpCountParity) {
  util::Rng rng(0xc0de);
  std::vector<util::Bytes> messages;
  for (int i = 0; i < 9; ++i) {
    messages.push_back(random_bytes(rng, rng.uniform_int(std::uint64_t{400})));
  }
  const SymmetricKey key = SymmetricKey::from_seed(rng.next());
  const HmacKey hmac(key);

  const auto run_once = [&](bool wide) {
    util::set_simd_enabled(wide);
    reset_hash_op_count();
    HashBatch batch;
    for (const auto& msg : messages) batch.add().update(msg);
    for (const auto& msg : messages) batch.add(hmac.inner_context()).update(msg);
    batch.run();
    std::vector<Digest> digests;
    for (std::size_t i = 0; i < batch.size(); ++i) digests.push_back(batch.digest(i));
    return std::pair(hash_op_count(), digests);
  };

  const auto [serial_ops, serial_digests] = run_once(false);
  const auto [wide_ops, wide_digests] = run_once(true);
  EXPECT_EQ(serial_ops, wide_ops);
  EXPECT_EQ(serial_digests, wide_digests);
  EXPECT_GT(serial_ops, 0u);
}

// RFC 4231-equivalent check through the midstate-resume interface: a
// batched HMAC (inner batch then outer batch) equals hmac_sha256().
TEST_F(Sha256MbTest, BatchedHmacMatchesScalar) {
  util::Rng rng(0x4231);
  const SymmetricKey key = SymmetricKey::from_seed(rng.next());
  const HmacKey hmac(key);
  std::vector<util::Bytes> messages;
  for (int i = 0; i < 6; ++i) {
    messages.push_back(random_bytes(rng, rng.uniform_int(std::uint64_t{200})));
  }

  HashBatch inner;
  for (const auto& msg : messages) inner.add(hmac.inner_context()).update(msg);
  inner.run();
  HashBatch outer;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    outer.add(hmac.outer_context()).update(inner.digest(i).bytes);
  }
  outer.run();
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(outer.digest(i), hmac_sha256(key, messages[i]));
  }
}

// Midstate snapshot/resume round-trips exactly (same digest, same op count).
TEST_F(Sha256MbTest, MidstateResumeRoundTrip) {
  util::Rng rng(0x51d3);
  for (const std::size_t prefix_len : {std::size_t{0}, std::size_t{7}, std::size_t{64},
                                       std::size_t{100}, std::size_t{129}}) {
    const util::Bytes prefix = random_bytes(rng, prefix_len);
    const util::Bytes suffix = random_bytes(rng, 90);
    Sha256 original;
    original.update(prefix);
    Sha256 resumed = Sha256::resume(original.midstate());
    original.update(suffix);
    resumed.update(suffix);
    EXPECT_EQ(original.finalize(), resumed.finalize());
  }
}

}  // namespace
}  // namespace snd::crypto
