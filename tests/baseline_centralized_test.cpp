#include "baseline/centralized.h"

#include <gtest/gtest.h>

#include "topology/stats.h"

namespace snd::baseline {
namespace {

class CentralizedTest : public ::testing::Test {
 protected:
  CentralizedTest() : deployment_(make_config()) {
    base_station_ = deployment_.network().add_device(0, {100.0, 100.0});
    deployment_.deploy_round(200);
    deployment_.run();
  }

  static core::DeploymentConfig make_config() {
    core::DeploymentConfig config;
    config.field = {{0.0, 0.0}, {200.0, 200.0}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 6;
    config.seed = 9;
    return config;
  }

  core::SndDeployment deployment_;
  sim::DeviceId base_station_{};
};

TEST_F(CentralizedTest, DecisionsMatchLocalizedProtocol) {
  const CentralizedResult result =
      run_centralized_validation(deployment_, base_station_, 6);
  // Same rule, same records: on a connected field the central functional
  // topology contains exactly the localized one.
  const topology::Digraph local = deployment_.functional_graph();
  EXPECT_DOUBLE_EQ(topology::edge_recall(local, result.functional), 1.0);
  EXPECT_DOUBLE_EQ(topology::edge_recall(result.functional, local), 1.0);
}

TEST_F(CentralizedTest, CostsAreAccounted) {
  const CentralizedResult result =
      run_centralized_validation(deployment_, base_station_, 6);
  EXPECT_GT(result.uplink_messages, 200u);  // multi-hop: more messages than nodes
  EXPECT_GT(result.uplink_bytes, result.uplink_messages);
  EXPECT_GT(result.downlink_messages, 0u);
  EXPECT_EQ(result.total_messages(), result.uplink_messages + result.downlink_messages);
  EXPECT_GT(result.max_relayed_bytes, 0u);
}

TEST_F(CentralizedTest, HotspotExceedsMeanLoad) {
  const CentralizedResult result =
      run_centralized_validation(deployment_, base_station_, 6);
  const double mean_load =
      static_cast<double>(result.total_bytes()) / static_cast<double>(200);
  EXPECT_GT(static_cast<double>(result.max_relayed_bytes), 2.0 * mean_load);
}

TEST_F(CentralizedTest, StricterThresholdFewerEdges) {
  const CentralizedResult loose = run_centralized_validation(deployment_, base_station_, 2);
  const CentralizedResult strict = run_centralized_validation(deployment_, base_station_, 40);
  EXPECT_GT(loose.functional.edge_count(), strict.functional.edge_count());
}

TEST(CentralizedIsolatedTest, UnreachableNodesReported) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {400.0, 50.0}};
  config.radio_range = 30.0;
  config.protocol.threshold_t = 1;
  config.seed = 4;
  core::SndDeployment deployment(config);
  const sim::DeviceId bs = deployment.network().add_device(0, {10.0, 25.0});
  // Two pockets with a gap greedy routing cannot cross.
  for (int i = 0; i < 8; ++i) {
    deployment.deploy_node_at({20.0 + 8.0 * i, 25.0});
    deployment.deploy_node_at({330.0 + 8.0 * i, 25.0});
  }
  deployment.run();
  const CentralizedResult result = run_centralized_validation(deployment, bs, 1);
  EXPECT_GT(result.unreachable_nodes, 0u);
  EXPECT_LT(result.unreachable_nodes, 16u);
}

}  // namespace
}  // namespace snd::baseline
