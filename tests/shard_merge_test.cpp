// shard::merge_shards validation and byte-identity, and the shard::Session
// driver glue: a sweep run as N shards (with failures, checkpoints, and a
// simulated crash + resume) must merge into a canonical report
// byte-identical to the one an unsharded run of the same sweep produces.
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/trial_runner.h"
#include "shard/merge.h"
#include "shard/session.h"
#include "util/rng.h"

namespace snd::shard {
namespace {

constexpr std::uint64_t kBaseSeed = 4242;
constexpr std::uint64_t kTrials = 29;

ShardSpec sweep_spec() {
  ShardSpec spec;
  spec.sweep_id = "merge_sweep";
  spec.base_seed = kBaseSeed;
  spec.total_trials = kTrials;
  spec.metric_names = {"score"};
  return spec;
}

/// The deterministic per-trial "simulation" both the sharded and unsharded
/// paths run: a seed-derived score, with trials divisible by 9 failing.
double trial_score(std::size_t i, std::uint64_t seed) {
  if (i % 9 == 4) throw std::runtime_error("synthetic failure " + std::to_string(i));
  util::Rng rng(seed);
  return rng.uniform() + static_cast<double>(i) * 1e-6;
}

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

SessionOptions options_for(const std::string& path, std::uint32_t index,
                           std::uint32_t count, bool resume = false) {
  SessionOptions options;
  options.enabled = true;
  options.shard_index = index;
  options.shard_count = count;
  options.checkpoint_path = path;
  options.resume = resume;
  options.checkpoint_every = 3;
  return options;
}

/// Runs one shard of the sweep through a Session (the same shape the fig3 /
/// fig4 drivers use), returning the runner's report.
runner::SweepReport run_shard(const SessionOptions& options) {
  runner::TrialRunner pool(2);
  runner::SweepReport report;
  report.name = "merge_sweep";
  Session session(options, sweep_spec());
  EXPECT_TRUE(session.open(std::cerr));
  (void)pool.run_subset(
      session.pending(), kBaseSeed,
      [&](std::size_t i, std::uint64_t seed) {
        try {
          const double score = trial_score(i, seed);
          session.record_success(i, {score}, obs::TraceSummary{});
          return score;
        } catch (const std::exception& e) {
          session.record_failure(i, e.what());
          throw;
        }
      },
      &report);
  EXPECT_TRUE(session.finish(std::cerr));
  return report;
}

/// The unsharded reference: same sweep through the plain runner path.
std::string unsharded_canonical() {
  runner::TrialRunner pool(2);
  runner::SweepReport report;
  report.name = "merge_sweep";
  const auto values = pool.run(kTrials, kBaseSeed, trial_score, &report);
  obs::Registry registry(kTrials);
  report.attach_trace(registry.fold());
  report.metric("score");
  for (const auto& value : values) {
    if (value.has_value()) report.metric("score").add(*value);
  }
  return report.to_canonical_json();
}

TEST(ShardMerge, ShardedRunMergesByteIdenticalToUnsharded) {
  const std::uint32_t kShards = 4;
  std::vector<std::string> paths;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    paths.push_back(temp_path("merge_ok_" + std::to_string(k) + ".sndshard"));
    run_shard(options_for(paths.back(), k, kShards));
  }

  std::string error;
  const auto merged = merge_shards(paths, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->report.trials, kTrials);
  EXPECT_EQ(merged->report.failed, 3u);  // trials 4, 13, 22
  EXPECT_EQ(merged->shards.size(), kShards);
  EXPECT_EQ(merged->report.to_canonical_json(), unsharded_canonical());
}

TEST(ShardMerge, CrashedShardResumesAndStillMergesByteIdentical) {
  const std::uint32_t kShards = 3;
  std::vector<std::string> paths;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    paths.push_back(temp_path("merge_resume_" + std::to_string(k) + ".sndshard"));
    run_shard(options_for(paths.back(), k, kShards));
  }

  // Simulate a crash of shard 1: cut its file mid-chunk, then resume it.
  const auto size = std::filesystem::file_size(paths[1]);
  std::filesystem::resize_file(paths[1], size - 9);
  std::string error;
  {
    const auto partial = read_shard_file(paths[1], &error);
    ASSERT_TRUE(partial.has_value()) << error;
    ASSERT_LT(partial->records.size(), sweep_spec().trial_indices().size());
  }
  const auto incomplete = merge_shards(paths, &error);
  EXPECT_FALSE(incomplete.has_value());
  EXPECT_NE(error.find("incomplete coverage"), std::string::npos) << error;

  run_shard(options_for(paths[1], 1, kShards, /*resume=*/true));

  const auto merged = merge_shards(paths, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->report.to_canonical_json(), unsharded_canonical());
}

TEST(ShardMerge, RejectsOverlappingShards) {
  const std::string a = temp_path("overlap_a.sndshard");
  const std::string b = temp_path("overlap_b.sndshard");
  run_shard(options_for(a, 0, 2));
  run_shard(options_for(b, 0, 2));  // same shard index twice
  std::string error;
  EXPECT_FALSE(merge_shards({a, b}, &error).has_value());
  EXPECT_NE(error.find("overlapping"), std::string::npos) << error;
}

TEST(ShardMerge, RejectsMismatchedSpecs) {
  const std::string a = temp_path("spec_a.sndshard");
  const std::string b = temp_path("spec_b.sndshard");
  run_shard(options_for(a, 0, 2));

  // Same path shape, different base seed: a different sweep entirely.
  SessionOptions other = options_for(b, 1, 2);
  ShardSpec spec = sweep_spec();
  spec.base_seed ^= 99;
  Session session(other, spec);
  ASSERT_TRUE(session.open(std::cerr));
  ASSERT_TRUE(session.finish(std::cerr));

  std::string error;
  EXPECT_FALSE(merge_shards({a, b}, &error).has_value());
  EXPECT_NE(error.find("base_seed"), std::string::npos) << error;
}

TEST(ShardMerge, RejectsMismatchedShardCounts) {
  const std::string a = temp_path("count_a.sndshard");
  const std::string b = temp_path("count_b.sndshard");
  run_shard(options_for(a, 0, 2));
  run_shard(options_for(b, 1, 3));
  std::string error;
  EXPECT_FALSE(merge_shards({a, b}, &error).has_value());
  EXPECT_NE(error.find("shard_count"), std::string::npos) << error;
}

TEST(ShardMerge, ReportsMissingTrialsPrecisely) {
  const std::string a = temp_path("missing_a.sndshard");
  run_shard(options_for(a, 0, 2));
  std::string error;
  EXPECT_FALSE(merge_shards({a}, &error).has_value());
  EXPECT_NE(error.find("incomplete coverage"), std::string::npos) << error;
  EXPECT_NE(error.find("1"), std::string::npos);  // first missing trial listed
}

TEST(ShardMerge, SummaryMarkdownListsMetricsAndShards) {
  const std::uint32_t kShards = 2;
  std::vector<std::string> paths;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    paths.push_back(temp_path("md_" + std::to_string(k) + ".sndshard"));
    run_shard(options_for(paths[k], k, kShards));
  }
  std::string error;
  const auto merged = merge_shards(paths, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  const std::string md = summary_markdown(*merged);
  EXPECT_NE(md.find("merge_sweep"), std::string::npos);
  EXPECT_NE(md.find("| score |"), std::string::npos);
  EXPECT_NE(md.find("| shard | trials | wall seconds |"), std::string::npos);
}

TEST(Session, ResolveSessionRejectsBadCombinations) {
  const auto check_errors = [](std::vector<const char*> argv, bool expect_error) {
    argv.insert(argv.begin(), "prog");
    const util::Cli cli(static_cast<int>(argv.size()), argv.data());
    (void)resolve_session(cli);
    EXPECT_EQ(!cli.errors().empty(), expect_error);
  };
  check_errors({"--shard", "1/4", "--checkpoint", "x.sndshard"}, false);
  check_errors({"--shard", "1/4"}, true);               // shard without checkpoint
  check_errors({"--resume"}, true);                     // resume without checkpoint
  check_errors({"--shard", "9/4", "--checkpoint", "x"}, true);  // index out of range
  check_errors({"--shard", "nope", "--checkpoint", "x"}, true);
  check_errors({"--checkpoint", "x", "--checkpoint-every", "0"}, true);
  check_errors({"--checkpoint", "x", "--checkpoint-every", "5"}, false);
}

}  // namespace
}  // namespace snd::shard
