// The property harness's own tests: every invariant oracle provably fires
// on a hand-built violating observation (no vacuous oracles), trials are
// deterministic, and the planted-bug pipeline -- catch, shrink to a minimal
// plan, emit a FAILCASE, replay it bit-identically -- works end to end.
#include <gtest/gtest.h>

#include <cstdio>

#include "proptest/oracles.h"
#include "proptest/runner.h"
#include "proptest/scenario.h"
#include "proptest/shrink.h"
#include "util/rng.h"

namespace snd::proptest {
namespace {

std::size_t drop_index(obs::DropCause cause) { return static_cast<std::size_t>(cause); }

/// A consistent all-green observation the violation tests perturb.
Observation green_observation() {
  Observation o;
  o.trial_seed = 1;
  o.candidates = 100;
  o.deliveries = 80;
  o.drops[drop_index(obs::DropCause::kLoss)] = 10;
  o.drops[drop_index(obs::DropCause::kCollision)] = 4;
  o.drops[drop_index(obs::DropCause::kInjected)] = 6;
  o.drops[drop_index(obs::DropCause::kReplay)] = 3;
  o.fault_plan_armed = true;
  o.injected_drops = 5;
  o.injected_bursts = 1;
  o.safety_d = 100.0;
  o.safety_holds = true;

  AgentObservation alive;
  alive.id = 1;
  alive.alive = true;
  alive.discovery_complete = true;
  alive.has_record = true;
  alive.record_valid = true;
  alive.record_lists_tentative = true;
  alive.master_present = false;
  alive.replay_rejects = 3;
  o.agents.push_back(alive);

  AgentObservation dead;
  dead.id = 2;
  dead.alive = false;
  dead.discovery_complete = false;
  dead.master_present = true;  // crashed before erasure: exempt
  o.agents.push_back(dead);
  return o;
}

std::vector<std::string> firing_oracles(const Observation& o) {
  std::vector<std::string> names;
  for (const Violation& v : check_all(o)) names.push_back(v.oracle);
  return names;
}

TEST(OracleTest, GreenObservationPasses) {
  EXPECT_TRUE(check_all(green_observation()).empty());
}

TEST(OracleTest, ChannelConservationFires) {
  Observation o = green_observation();
  o.candidates += 1;  // one candidate unaccounted for
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"conservation.channel"});
}

TEST(OracleTest, InjectedConservationFires) {
  Observation o = green_observation();
  o.injected_drops -= 1;  // injector under-reports (the planted bug's shape)
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"conservation.injected"});
}

TEST(OracleTest, ReplayBoundedFiresOnImpossibleCounts) {
  Observation o = green_observation();
  o.drops[drop_index(obs::DropCause::kReplay)] = o.deliveries + 1;
  auto names = firing_oracles(o);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names[0], "replay.bounded");

  Observation p = green_observation();
  p.agents[0].replay_rejects = 50;  // agents report more rejects than counted
  EXPECT_EQ(firing_oracles(p), std::vector<std::string>{"replay.bounded"});
}

TEST(OracleTest, RecordConsistencyFires) {
  Observation missing = green_observation();
  missing.agents[0].has_record = false;  // completed discovery, no record
  EXPECT_EQ(firing_oracles(missing), std::vector<std::string>{"record.consistency"});

  Observation invalid = green_observation();
  invalid.agents[0].record_valid = false;  // commitment fails under K
  EXPECT_EQ(firing_oracles(invalid), std::vector<std::string>{"record.consistency"});

  Observation wrong_list = green_observation();
  wrong_list.agents[0].record_lists_tentative = false;
  EXPECT_EQ(firing_oracles(wrong_list), std::vector<std::string>{"record.consistency"});
}

TEST(OracleTest, KeyErasureFires) {
  Observation o = green_observation();
  o.agents[0].master_present = true;  // alive + complete + K still in memory
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"key.erasure"});
  // The dead agent's K is exempt (set in green_observation already).
}

TEST(OracleTest, SafetyFires) {
  Observation o = green_observation();
  o.safety_holds = false;
  o.safety_violations = 2;
  o.max_impact_radius = 140.0;
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"safety.d"});
}

TEST(OracleTest, RelayBoundedFires) {
  Observation o = green_observation();
  o.adversary_armed = true;
  o.verifier_authenticated = true;
  o.relay_armed = true;
  o.relay_tunneled = 40;
  o.relay_overreach = 3;  // out-of-range identities in benign tentative lists
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"relay.bounded"});

  // Not gated on relay_armed: any armed adversary admitting an unreachable
  // identity under claimed authentication is the same defect.
  Observation sybil_only = o;
  sybil_only.relay_armed = false;
  EXPECT_EQ(firing_oracles(sybil_only), std::vector<std::string>{"relay.bounded"});

  // Overreach is undefined once nodes move after acceptance: exempt.
  Observation moving = o;
  moving.mobility_armed = true;
  EXPECT_TRUE(firing_oracles(moving).empty());

  // A naive (non-authenticating) verifier is *expected* to admit relays.
  Observation naive = o;
  naive.verifier_authenticated = false;
  EXPECT_TRUE(firing_oracles(naive).empty());
}

TEST(OracleTest, SybilBoundedFires) {
  Observation o = green_observation();
  o.adversary_armed = true;
  o.verifier_authenticated = true;
  o.sybil_armed = true;
  o.sybil_admitted = 5;  // credential-less identities admitted anyway
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"sybil.bounded"});

  Observation naive = o;
  naive.verifier_authenticated = false;
  EXPECT_TRUE(firing_oracles(naive).empty());
}

TEST(OracleTest, ReplayNeverAcceptedFires) {
  // Unconditional: a window-flagged duplicate delivered to the protocol is
  // a transport defect whether or not any adversary is armed.
  Observation o = green_observation();
  o.agents[0].replay_accepts = 1;
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"replay.never_accepted"});
}

TEST(OracleTest, RecordVersionBoundFires) {
  Observation o = green_observation();
  o.max_updates = 2;
  o.agents[0].record_version = 3;  // one past the server's allowance
  EXPECT_EQ(firing_oracles(o), std::vector<std::string>{"record.version_bound"});

  Observation at_bound = green_observation();
  at_bound.max_updates = 2;
  at_bound.agents[0].record_version = 2;
  EXPECT_TRUE(firing_oracles(at_bound).empty());

  // Dead agents that never formed a record are exempt (has_record gates).
  Observation no_record = green_observation();
  no_record.agents[1].record_version = 9;
  EXPECT_TRUE(firing_oracles(no_record).empty());
}

TEST(ObservationTest, DigestIsCanonical) {
  const Observation a = green_observation();
  const Observation b = green_observation();
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.digest(), b.digest());
  Observation c = green_observation();
  c.deliveries += 1;
  EXPECT_NE(a.digest(), c.digest());
}

TEST(ScenarioTest, FullyDerivedFromSeed) {
  const Scenario a = make_scenario(0xfeedface);
  const Scenario b = make_scenario(0xfeedface);
  EXPECT_EQ(a.deployment.seed, b.deployment.seed);
  EXPECT_EQ(a.round1_nodes, b.round1_nodes);
  EXPECT_EQ(a.round2_nodes, b.round2_nodes);
  EXPECT_EQ(a.attack, b.attack);
  EXPECT_EQ(a.plan.to_json(), b.plan.to_json());
  EXPECT_NE(a.plan.to_json(), make_scenario(0xfeedfacf).plan.to_json());
}

TEST(ScenarioTest, RunTrialIsDeterministic) {
  const std::uint64_t seed = util::derive_seed(1, 0);
  const TrialOutcome a = run_trial(seed);
  const TrialOutcome b = run_trial(seed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.observation.to_json(), b.observation.to_json());
  EXPECT_TRUE(a.passed()) << (a.violations.empty() ? std::string() : a.violations[0].message);
}

TEST(ScenarioTest, PlanOverrideOnlyChangesThePlan) {
  // Shrinking depends on this: overriding the plan must hold deployment,
  // attack, and every non-plan random choice fixed.
  const std::uint64_t seed = util::derive_seed(99, 3);
  fault::FaultPlan empty;
  const TrialOutcome a = run_trial(seed, empty);
  const TrialOutcome b = run_trial(seed, empty);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_FALSE(a.observation.fault_plan_armed);
}

/// Scoped planted-bug arm/disarm so a failing test cannot poison the rest
/// of the process.
struct PlantedBugGuard {
  explicit PlantedBugGuard(fault::PlantedBug bug) { fault::set_planted_bug(bug); }
  ~PlantedBugGuard() { fault::set_planted_bug(fault::PlantedBug::kNone); }
};

TEST(PropSuiteTest, CleanSuiteIsAllGreen) {
  PropConfig config;
  config.trials = 16;
  config.base_seed = 7;
  config.jobs = 1;
  config.ab_every = 8;
  config.failcase_dir.clear();  // no artifacts from the green path
  const PropReport report = run_property_suite(config);
  EXPECT_EQ(report.passed, 16u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.errored, 0u);
  EXPECT_EQ(report.ab_mismatches, 0u);
  EXPECT_GE(report.ab_checked, 2u);
  EXPECT_TRUE(report.all_green());
  EXPECT_TRUE(report.failcases.empty());
}

TEST(PropSuiteTest, PlantedBugIsCaughtShrunkAndReplayedBitIdentically) {
  const PlantedBugGuard guard(fault::PlantedBug::kUncountedDrop);

  PropConfig config;
  config.trials = 30;
  config.base_seed = 1;
  config.jobs = 1;
  config.ab_every = 0;  // the A/B pass is exercised by CleanSuiteIsAllGreen
  config.max_failures = 2;
  config.failcase_dir = ::testing::TempDir();
  const PropReport report = run_property_suite(config);

  ASSERT_GT(report.failed, 0u) << "planted bug not caught";
  ASSERT_FALSE(report.failcases.empty());
  const FailCase& failcase = report.failcases.front();
  EXPECT_EQ(failcase.kind, "invariant");
  ASSERT_FALSE(failcase.violations.empty());
  EXPECT_EQ(failcase.violations[0].oracle, "conservation.injected");
  // Shrunk to the minimal reproduction: a single injection action.
  EXPECT_EQ(failcase.plan.actions.size(), 1u);
  EXPECT_GT(failcase.unshrunk_actions, 0u);

  // The artifact replays bit-identically while the bug is still armed.
  ASSERT_FALSE(failcase.path.empty());
  const ReplayResult replay = replay_failcase(failcase.path);
  ASSERT_TRUE(replay.loaded) << replay.error;
  EXPECT_TRUE(replay.reproduced);
  EXPECT_TRUE(replay.digest_matches);
  EXPECT_EQ(replay.outcome.digest, failcase.digest);
}

/// Scoped adversary-scenario override (process-global like the planted
/// bug); restores the previous override on scope exit.
struct ScenarioOverrideGuard {
  explicit ScenarioOverrideGuard(adversary::ScenarioConfig config)
      : previous_(scenario_override()) {
    set_scenario_override(std::move(config));
  }
  ~ScenarioOverrideGuard() { set_scenario_override(previous_); }
  std::optional<adversary::ScenarioConfig> previous_;
};

TEST(PropSuiteTest, PlantedReplayWindowBypassIsCaughtAndReplayed) {
  // Force the delayed-replay attacker into every trial so window-flagged
  // duplicates actually occur, then let the planted bug deliver them.
  adversary::ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("replay"));
  const ScenarioOverrideGuard scenario_guard(scenario);
  const PlantedBugGuard guard(fault::PlantedBug::kReplayWindowBypass);

  PropConfig config;
  config.trials = 8;
  config.base_seed = 7;
  config.jobs = 1;
  config.ab_every = 0;
  config.max_failures = 1;
  config.failcase_dir = ::testing::TempDir();
  const PropReport report = run_property_suite(config);

  ASSERT_GT(report.failed, 0u) << "planted replay-window bypass not caught";
  ASSERT_FALSE(report.failcases.empty());
  const FailCase& failcase = report.failcases.front();
  bool found = false;
  for (const Violation& v : failcase.violations) {
    found = found || v.oracle == "replay.never_accepted";
  }
  EXPECT_TRUE(found) << "replay.never_accepted did not fire";

  // The artifact records the scenario override, so replay is self-contained
  // and bit-identical while the bug stays armed.
  ASSERT_FALSE(failcase.path.empty());
  const ReplayResult replay = replay_failcase(failcase.path);
  ASSERT_TRUE(replay.loaded) << replay.error;
  EXPECT_TRUE(replay.reproduced);
  EXPECT_TRUE(replay.digest_matches);
  EXPECT_EQ(replay.outcome.digest, failcase.digest);
}

TEST(PropSuiteTest, PlantedVerifyBypassIsCaughtUnderSybilFlood) {
  // verify_bypass silently swaps in the naive verifier while the
  // observation still claims authentication; with a sybil flood armed the
  // minted identities land in tentative lists and sybil.bounded objects.
  adversary::ScenarioConfig scenario;
  ASSERT_TRUE(scenario.arm_family("sybil"));
  const ScenarioOverrideGuard scenario_guard(scenario);
  const PlantedBugGuard guard(fault::PlantedBug::kVerifyBypass);

  PropConfig config;
  config.trials = 8;
  config.base_seed = 3;
  config.jobs = 1;
  config.ab_every = 0;
  config.max_failures = 1;
  config.failcase_dir = ::testing::TempDir();
  const PropReport report = run_property_suite(config);

  ASSERT_GT(report.failed, 0u) << "planted verifier bypass not caught";
  ASSERT_FALSE(report.failcases.empty());
  const FailCase& failcase = report.failcases.front();
  bool found = false;
  for (const Violation& v : failcase.violations) {
    found = found || v.oracle == "sybil.bounded";
  }
  EXPECT_TRUE(found) << "sybil.bounded did not fire";

  ASSERT_FALSE(failcase.path.empty());
  const ReplayResult replay = replay_failcase(failcase.path);
  ASSERT_TRUE(replay.loaded) << replay.error;
  EXPECT_TRUE(replay.reproduced);
  EXPECT_TRUE(replay.digest_matches);
}

TEST(ShrinkTest, PassingPlanShrinksToNothing) {
  // A trial that passes has nothing to shrink; the shrinker reports the
  // original outcome untouched.
  const std::uint64_t seed = util::derive_seed(1, 0);
  const Scenario scenario = make_scenario(seed);
  const ShrinkResult result = shrink_failing_plan(seed, scenario.plan);
  EXPECT_TRUE(result.outcome.passed());
  EXPECT_EQ(result.removed_actions, 0u);
  EXPECT_EQ(result.runs, 1u);
}

TEST(ReplayTest, RejectsGarbageArtifacts) {
  EXPECT_FALSE(replay_failcase("/no/such/file.json").loaded);
  const std::string path = ::testing::TempDir() + "bad_failcase.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"kind\":\"invariant\"}", f);
  std::fclose(f);
  const ReplayResult result = replay_failcase(path);
  EXPECT_FALSE(result.loaded);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace snd::proptest
