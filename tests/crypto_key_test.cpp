#include "crypto/key.h"

#include <gtest/gtest.h>

namespace snd::crypto {
namespace {

TEST(SymmetricKeyTest, DefaultIsAbsent) {
  const SymmetricKey key;
  EXPECT_FALSE(key.present());
  EXPECT_EQ(key.hex(), "<erased>");
}

TEST(SymmetricKeyTest, FromSeedIsDeterministic) {
  EXPECT_EQ(SymmetricKey::from_seed(42), SymmetricKey::from_seed(42));
  EXPECT_FALSE(SymmetricKey::from_seed(42) == SymmetricKey::from_seed(43));
}

TEST(SymmetricKeyTest, FromBytesShortInputZeroPads) {
  const SymmetricKey key = SymmetricKey::from_bytes(util::Bytes{0xab});
  ASSERT_TRUE(key.present());
  EXPECT_EQ(key.material()[0], 0xab);
  EXPECT_EQ(key.material()[1], 0x00);
  EXPECT_EQ(key.material().size(), kKeySize);
}

TEST(SymmetricKeyTest, FromBytesLongInputIsHashed) {
  const util::Bytes long_material(100, 0x11);
  const SymmetricKey key = SymmetricKey::from_bytes(long_material);
  EXPECT_EQ(key.material().size(), kKeySize);
  EXPECT_EQ(SymmetricKey::from_bytes(long_material), key);
}

TEST(SymmetricKeyTest, EraseZeroizesAndMarksAbsent) {
  SymmetricKey key = SymmetricKey::from_seed(1);
  key.erase();
  EXPECT_FALSE(key.present());
}

// This is the security property Theorems 3/4 rest on: once erased, the key
// is unrecoverable from the object.
TEST(SymmetricKeyTest, ErasedKeyLeavesNoMaterial) {
  SymmetricKey key = SymmetricKey::from_seed(2);
  const SymmetricKey reference = SymmetricKey::from_seed(2);
  key.erase();
  // A fresh absent key equals the erased one: nothing distinguishes them.
  EXPECT_TRUE(key == SymmetricKey());
  EXPECT_FALSE(key == reference);
}

TEST(SymmetricKeyTest, CopyPreservesMaterial) {
  const SymmetricKey original = SymmetricKey::from_seed(3);
  const SymmetricKey copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy == original);
  EXPECT_TRUE(original.present());
}

TEST(SymmetricKeyTest, MoveErasesSource) {
  SymmetricKey source = SymmetricKey::from_seed(4);
  const SymmetricKey reference = SymmetricKey::from_seed(4);
  const SymmetricKey target = std::move(source);
  EXPECT_TRUE(target == reference);
  EXPECT_FALSE(source.present());  // NOLINT(bugprone-use-after-move): contract under test
}

TEST(SymmetricKeyTest, MoveAssignErasesSource) {
  SymmetricKey source = SymmetricKey::from_seed(5);
  SymmetricKey target;
  target = std::move(source);
  EXPECT_TRUE(target.present());
  EXPECT_FALSE(source.present());  // NOLINT(bugprone-use-after-move): contract under test
}

TEST(SymmetricKeyTest, SelfMoveAssignIsSafe) {
  SymmetricKey key = SymmetricKey::from_seed(6);
  SymmetricKey& alias = key;
  key = std::move(alias);
  EXPECT_TRUE(key.present());
}

TEST(SymmetricKeyTest, TwoAbsentKeysCompareEqual) {
  EXPECT_TRUE(SymmetricKey() == SymmetricKey());
}

TEST(SymmetricKeyTest, FromDigestRoundTrip) {
  const Digest digest = Sha256::hash("key material");
  const SymmetricKey key = SymmetricKey::from_digest(digest);
  EXPECT_TRUE(std::equal(digest.bytes.begin(), digest.bytes.end(), key.material().begin()));
}

}  // namespace
}  // namespace snd::crypto
