#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace snd::crypto {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::hash("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::hash("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, FourBlockMessage) {
  EXPECT_EQ(Sha256::hash("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                         "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")
                .hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(ctx.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string message = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha256 ctx;
    ctx.update(message.substr(0, split));
    ctx.update(message.substr(split));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(message)) << "split at " << split;
  }
}

TEST(Sha256Test, BlockBoundarySizes) {
  // Exercise the padding logic around the 55/56/64-byte boundaries.
  for (std::size_t size : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string message(size, 'x');
    Sha256 incremental;
    for (char c : message) incremental.update(std::string(1, c));
    EXPECT_EQ(incremental.finalize(), Sha256::hash(message)) << "size " << size;
  }
}

TEST(Sha256Test, FramedFieldsAreInjective) {
  // H(frame("ab") | frame("c")) != H(frame("a") | frame("bc")).
  const Digest split_one = Sha256().update_framed("ab").update_framed("c").finalize();
  const Digest split_two = Sha256().update_framed("a").update_framed("bc").finalize();
  EXPECT_NE(split_one, split_two);
  // Whereas unframed concatenation would collide:
  const Digest concat_one = Sha256().update("ab").update("c").finalize();
  const Digest concat_two = Sha256().update("a").update("bc").finalize();
  EXPECT_EQ(concat_one, concat_two);
}

TEST(Sha256Test, UpdateU64BigEndian) {
  const Digest via_u64 = Sha256().update_u64(0x0102030405060708ULL).finalize();
  const util::Bytes raw = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(via_u64, Sha256::hash(raw));
}

TEST(Sha256Test, DigestEqualityAndPrefix) {
  const Digest a = Sha256::hash("abc");
  const Digest b = Sha256::hash("abc");
  const Digest c = Sha256::hash("abd");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.prefix64(), 0xba7816bf8f01cfeaULL);
}

TEST(Sha256Test, OpCounterAdvances) {
  reset_hash_op_count();
  (void)Sha256::hash("abc");  // one block
  EXPECT_EQ(hash_op_count(), 1u);
  (void)Sha256::hash(std::string(100, 'a'));  // 100 bytes + padding = 2 blocks
  EXPECT_EQ(hash_op_count(), 3u);
  reset_hash_op_count();
  EXPECT_EQ(hash_op_count(), 0u);
}

// Avalanche property: flipping one input bit flips ~half the output bits.
class Sha256AvalancheTest : public ::testing::TestWithParam<int> {};

TEST_P(Sha256AvalancheTest, SingleBitFlipChangesManyBits) {
  util::Bytes message(32, 0x42);
  const Digest base = Sha256::hash(message);
  const int bit = GetParam();
  message[static_cast<std::size_t>(bit / 8)] ^= static_cast<std::uint8_t>(1 << (bit % 8));
  const Digest flipped = Sha256::hash(message);

  int differing_bits = 0;
  for (std::size_t i = 0; i < kDigestSize; ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(base.bytes[i] ^ flipped.bytes[i]));
  }
  EXPECT_GT(differing_bits, 80);
  EXPECT_LT(differing_bits, 176);
}

INSTANTIATE_TEST_SUITE_P(BitPositions, Sha256AvalancheTest,
                         ::testing::Values(0, 1, 7, 8, 63, 100, 255));

}  // namespace
}  // namespace snd::crypto
