// Tests for the observability pipeline: typed Metrics, drop-cause
// accounting, the Tracer ring and sinks, the shared --log/--trace config
// surface, and the determinism of Registry folds across worker counts.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/deployment_driver.h"
#include "obs/config.h"
#include "obs/sink.h"
#include "obs/tracer.h"
#include "runner/trial_runner.h"
#include "sim/network.h"
#include "util/cli.h"
#include "util/log.h"

namespace snd {
namespace {

using sim::DeviceId;
using sim::Packet;

std::unique_ptr<sim::Network> make_network(double range = 10.0,
                                           sim::ChannelConfig config = {}) {
  return std::make_unique<sim::Network>(std::make_unique<sim::UnitDiskModel>(range), config, 1);
}

// -- Typed Metrics ----------------------------------------------------------

TEST(MetricsTypedTest, PhaseCountersAccumulate) {
  sim::Metrics metrics;
  metrics.count_tx(obs::Phase::kHello, 10);
  metrics.count_tx(obs::Phase::kHello, 5);
  EXPECT_EQ(metrics.phase(obs::Phase::kHello).messages, 2u);
  EXPECT_EQ(metrics.phase(obs::Phase::kHello).bytes, 15u);
  EXPECT_EQ(metrics.total().messages, 2u);
}

TEST(MetricsTypedTest, ByCategoryExportsNonZeroPhaseNames) {
  sim::Metrics metrics;
  metrics.count_tx(obs::Phase::kCommit, 3);
  metrics.count_tx(obs::Phase::kOther, 7);
  const auto exported = metrics.by_category();
  EXPECT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported.at("snd.commit").bytes, 3u);
  EXPECT_EQ(exported.at("other").bytes, 7u);
}

TEST(MetricsTypedTest, AccumulateIntoPreservesTotals) {
  sim::Metrics metrics;
  metrics.count_tx(obs::Phase::kHello, 4);
  metrics.count_tx(obs::Phase::kOther, 6);
  obs::TraceSummary summary;
  metrics.accumulate_into(summary);
  EXPECT_EQ(summary.tx[static_cast<std::size_t>(obs::Phase::kHello)].bytes, 4u);
  EXPECT_EQ(summary.tx[static_cast<std::size_t>(obs::Phase::kOther)].bytes, 6u);
  EXPECT_EQ(summary.total_messages(), metrics.total().messages);
}

// -- Drop-cause accounting --------------------------------------------------

TEST(DropCauseTest, ChannelLossIsCountedAsLoss) {
  sim::ChannelConfig config;
  config.loss_probability = 1.0;
  auto net = make_network(10.0, config);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {1, 0});
  net->set_receiver(b, [](const Packet&) {});
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}},
                obs::Phase::kHello);
  net->scheduler().run();
  EXPECT_EQ(net->metrics().deliveries(), 0u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kLoss), 1u);
  EXPECT_EQ(net->metrics().total_drops(), 1u);
}

TEST(DropCauseTest, JammingIsCountedAsCollision) {
  auto net = make_network();
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {1, 0});
  net->set_receiver(b, [](const Packet&) {});
  net->add_jammer({{1, 0}, 2.0});
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}},
                obs::Phase::kHello);
  net->scheduler().run();
  EXPECT_EQ(net->metrics().deliveries(), 0u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kCollision), 1u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kLoss), 0u);
}

TEST(DropCauseTest, HalfDuplexMissIsDistinguished) {
  sim::ChannelConfig config;
  config.half_duplex = true;
  auto net = make_network(10.0, config);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {1, 0});
  net->set_receiver(a, [](const Packet&) {});
  net->set_receiver(b, [](const Packet&) {});
  // Both devices transmit in the same instant: each is mid-transmission
  // during the other's airtime, so both copies are half-duplex misses.
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = util::Bytes(64, 0)},
                obs::Phase::kHello);
  net->transmit(b, Packet{.src = 2, .dst = kNoNode, .type = 1, .payload = util::Bytes(64, 0)},
                obs::Phase::kHello);
  net->scheduler().run();
  EXPECT_EQ(net->metrics().deliveries(), 0u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kHalfDuplex), 2u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kCollision), 0u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kLoss), 0u);
}

TEST(DropCauseTest, NoLinkCandidatesAreOutOfRange) {
  auto net = make_network(10.0);
  net->set_spatial_index_enabled(false);  // whole field enumerated
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId near = net->add_device(2, {1, 0});
  const DeviceId far = net->add_device(3, {50, 0});
  net->set_receiver(near, [](const Packet&) {});
  net->set_receiver(far, [](const Packet&) {});
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}},
                obs::Phase::kHello);
  net->scheduler().run();
  EXPECT_EQ(net->metrics().deliveries(), 1u);
  EXPECT_EQ(net->metrics().drops(obs::DropCause::kOutOfRange), 1u);
}

// -- Tracer ring and sinks --------------------------------------------------

#if SND_TRACE
obs::Event make_event(std::uint8_t i) {
  return obs::Event{.kind = obs::EventKind::kPhase,
                    .code = 0,
                    .node = i,
                    .peer = kNoNode,
                    .bytes = 0,
                    .t_ns = i};
}

TEST(TracerTest, RingOverflowIsCountedNotSilent) {
  obs::Tracer tracer(obs::TraceLevel::kEvents, nullptr, /*ring_capacity=*/4);
  for (std::uint8_t i = 0; i < 6; ++i) tracer.emit(make_event(i));
  EXPECT_EQ(tracer.events(), 6u);
  EXPECT_EQ(tracer.ring_overflow(), 2u);
  const auto recent = tracer.recent();
  ASSERT_EQ(recent.size(), 4u);
  // Chronological: the two oldest events were overwritten.
  EXPECT_EQ(recent.front().t_ns, 2);
  EXPECT_EQ(recent.back().t_ns, 5);
}

TEST(TracerTest, CountersLevelSkipsRingAndSink) {
  auto sink = std::make_shared<obs::CountingSink>();
  obs::Tracer tracer(obs::TraceLevel::kCounters, sink, 4);
  for (std::uint8_t i = 0; i < 3; ++i) tracer.emit(make_event(i));
  EXPECT_EQ(tracer.events(), 3u);
  EXPECT_TRUE(tracer.recent().empty());
  EXPECT_EQ(sink->summary().events, 0u);  // sink only fed at kEvents

  obs::TraceSummary summary;
  tracer.accumulate_into(summary);
  EXPECT_EQ(summary.node_phases[0], 3u);
}

TEST(TracerTest, OffLevelIsInert) {
  obs::Tracer tracer(obs::TraceLevel::kOff, nullptr, 4);
  for (std::uint8_t i = 0; i < 5; ++i) tracer.emit(make_event(i));
  EXPECT_EQ(tracer.events(), 0u);
  EXPECT_FALSE(tracer.active());
}

TEST(TracerTest, CountingSinkAggregatesByKind) {
  auto sink = std::make_shared<obs::CountingSink>();
  obs::Tracer tracer(obs::TraceLevel::kEvents, sink, 64);
  tracer.emit(obs::Event{.kind = obs::EventKind::kTx,
                         .code = static_cast<std::uint8_t>(obs::Phase::kHello),
                         .node = 1,
                         .peer = kNoNode,
                         .bytes = 11,
                         .t_ns = 0});
  tracer.emit(obs::Event{.kind = obs::EventKind::kDrop,
                         .code = static_cast<std::uint8_t>(obs::DropCause::kLoss),
                         .node = 2,
                         .peer = 1,
                         .bytes = 11,
                         .t_ns = 1});
  const obs::TraceSummary summary = sink->summary();
  EXPECT_EQ(summary.tx[static_cast<std::size_t>(obs::Phase::kHello)].messages, 1u);
  EXPECT_EQ(summary.tx[static_cast<std::size_t>(obs::Phase::kHello)].bytes, 11u);
  EXPECT_EQ(summary.drops[static_cast<std::size_t>(obs::DropCause::kLoss)], 1u);
  EXPECT_EQ(summary.events, 2u);
}

TEST(TracerTest, ProtocolRunEmitsLifecycleEvents) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {30.0, 30.0}};
  config.radio_range = 15.0;
  config.protocol.threshold_t = 0;
  config.seed = 7;
  core::SndDeployment deployment(config);
  deployment.deploy_round(8);
  deployment.run();

  const obs::TraceSummary summary = deployment.network().trace_summary();
  using NP = obs::NodePhase;
  EXPECT_EQ(summary.node_phases[static_cast<std::size_t>(NP::kDeployed)], 8u);
  EXPECT_EQ(summary.node_phases[static_cast<std::size_t>(NP::kDiscoveryDone)], 8u);
  EXPECT_EQ(summary.node_phases[static_cast<std::size_t>(NP::kValidated)], 8u);
  EXPECT_EQ(summary.node_phases[static_cast<std::size_t>(NP::kKeyErased)], 8u);
  std::uint64_t accepts = 0;
  for (const std::uint64_t n : summary.accepts) accepts += n;
  EXPECT_GT(accepts, 0u);
  EXPECT_GT(summary.tx[static_cast<std::size_t>(obs::Phase::kHello)].messages, 0u);
}
#endif  // SND_TRACE

TEST(JsonLinesSinkTest, EventSerializationMatchesDocumentedSchema) {
  const obs::Event event{.kind = obs::EventKind::kDrop,
                         .code = static_cast<std::uint8_t>(obs::DropCause::kHalfDuplex),
                         .node = 3,
                         .peer = 9,
                         .bytes = 42,
                         .t_ns = 1234};
  EXPECT_EQ(obs::JsonLinesSink::to_json(event),
            R"({"kind":"drop","t_ns":1234,"code":"half_duplex","node":3,"peer":9,"bytes":42})");

  // Optional fields are omitted, not null.
  const obs::Event bare{.kind = obs::EventKind::kTx,
                        .code = static_cast<std::uint8_t>(obs::Phase::kAck),
                        .node = kNoNode,
                        .peer = kNoNode,
                        .bytes = 0,
                        .t_ns = 0};
  EXPECT_EQ(obs::JsonLinesSink::to_json(bare), R"({"kind":"tx","t_ns":0,"code":"snd.ack"})");
}

TEST(BinaryEventSinkTest, StreamRoundTripsEventsAndLogs) {
  const std::string path = ::testing::TempDir() + "events.sndtrace";
  std::vector<obs::Event> events;
  events.push_back({.kind = obs::EventKind::kDrop,
                    .code = static_cast<std::uint8_t>(obs::DropCause::kHalfDuplex),
                    .node = 3,
                    .peer = 9,
                    .bytes = 42,
                    .t_ns = 1234});
  events.push_back({.kind = obs::EventKind::kTx,
                    .code = static_cast<std::uint8_t>(obs::Phase::kAck),
                    .node = kNoNode,
                    .peer = kNoNode,
                    .bytes = 0,
                    .t_ns = -7});  // negative times survive (ZigZag varint)
  events.push_back({.kind = obs::EventKind::kAccept,
                    .code = static_cast<std::uint8_t>(obs::AcceptVia::kCommitment),
                    .node = 0xfffffffeu,
                    .peer = 1,
                    .bytes = 0xffffffffu,
                    .t_ns = std::numeric_limits<std::int64_t>::max()});
  {
    obs::BinaryEventSink sink(path);
    ASSERT_TRUE(sink.ok());
    for (const obs::Event& event : events) sink.on_event(event);
    sink.on_log(util::LogLevel::kWarn, "something \"odd\"\nhappened");
    sink.flush();
  }

  std::ifstream in(path, std::ios::binary);
  const std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                       std::istreambuf_iterator<char>());
  std::string error;
  const auto decoded = obs::BinaryEventSink::decode(data, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_EQ(decoded->events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded->events[i].kind, events[i].kind);
    EXPECT_EQ(decoded->events[i].code, events[i].code);
    EXPECT_EQ(decoded->events[i].node, events[i].node);
    EXPECT_EQ(decoded->events[i].peer, events[i].peer);
    EXPECT_EQ(decoded->events[i].bytes, events[i].bytes);
    EXPECT_EQ(decoded->events[i].t_ns, events[i].t_ns);
  }
  ASSERT_EQ(decoded->logs.size(), 1u);
  EXPECT_EQ(decoded->logs[0].first, util::LogLevel::kWarn);
  EXPECT_EQ(decoded->logs[0].second, "something \"odd\"\nhappened");

  // A typical event is far smaller than its ~70-byte JSON line.
  EXPECT_LT(obs::BinaryEventSink::encode(events[0]).size(), 16u);
}

TEST(BinaryEventSinkTest, DecodeRejectsDamage) {
  std::vector<std::uint8_t> ok = {'S', 'N', 'D', 'T', 'R', 'A', 'C', 'E'};
  const auto record = obs::BinaryEventSink::encode(
      {.kind = obs::EventKind::kTx, .code = 1, .node = 2, .peer = 3, .bytes = 4, .t_ns = 5});
  ok.insert(ok.end(), record.begin(), record.end());
  ASSERT_TRUE(obs::BinaryEventSink::decode(ok).has_value());

  std::string error;
  // Bad magic.
  auto bad = ok;
  bad[0] = 'X';
  EXPECT_FALSE(obs::BinaryEventSink::decode(bad, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
  // Unknown tag.
  bad = ok;
  bad[8] = 0x77;
  EXPECT_FALSE(obs::BinaryEventSink::decode(bad, &error).has_value());
  EXPECT_NE(error.find("tag"), std::string::npos);
  // Truncated mid-record.
  bad = ok;
  bad.pop_back();
  EXPECT_FALSE(obs::BinaryEventSink::decode(bad, &error).has_value());
}

TEST(BinaryEventSinkTest, RefusesStdout) {
  obs::BinaryEventSink sink("-");
  EXPECT_FALSE(sink.ok());
}

// -- Config surface ---------------------------------------------------------

util::Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return util::Cli(static_cast<int>(args.size()), args.data());
}

TEST(ObsConfigTest, ResolvesLevelsAndImpliesEventsForJson) {
  const util::Cli cli = make_cli({"--log", "debug", "--trace", "off"});
  const obs::ObsConfig config = obs::resolve_obs(cli);
  EXPECT_EQ(config.log_level, util::LogLevel::kDebug);
  EXPECT_EQ(config.trace_level, obs::TraceLevel::kOff);
  EXPECT_TRUE(cli.errors().empty());

  const util::Cli json_cli = make_cli({"--trace-json", "/tmp/t.jsonl"});
  const obs::ObsConfig json_config = obs::resolve_obs(json_cli);
  EXPECT_EQ(json_config.trace_level, obs::TraceLevel::kEvents);
  EXPECT_EQ(json_config.trace_json_path, "/tmp/t.jsonl");
}

TEST(ObsConfigTest, ValidateRejectsBadValues) {
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"--trace", "verbose"},
           {"--log", "loud"},
           {"--trace", "off", "--trace-json", "x"},
           {"--trace", "off", "--trace-bin", "x"},
           {"--trace-json", "a", "--trace-bin", "b"},  // one format at a time
           {"--trace-bin", "-"}}) {                    // binary stream vs terminal
    const util::Cli cli = make_cli(args);
    (void)obs::resolve_obs(cli);
    std::ostringstream err;
    EXPECT_FALSE(cli.validate(err, {"trace", "log", "trace-json", "trace-bin"}))
        << err.str();
    EXPECT_FALSE(err.str().empty());
  }
}

TEST(ObsConfigTest, TraceBinImpliesEvents) {
  const util::Cli cli = make_cli({"--trace-bin", "/tmp/t.sndtrace"});
  const obs::ObsConfig config = obs::resolve_obs(cli);
  EXPECT_TRUE(cli.errors().empty());
  EXPECT_EQ(config.trace_level, obs::TraceLevel::kEvents);
  EXPECT_EQ(config.trace_bin_path, "/tmp/t.sndtrace");
}

TEST(ObsConfigTest, TraceLevelNamesRoundTrip) {
  for (obs::TraceLevel level :
       {obs::TraceLevel::kOff, obs::TraceLevel::kCounters, obs::TraceLevel::kEvents}) {
    const auto parsed = obs::trace_level_from_name(obs::trace_level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(obs::trace_level_from_name("bogus").has_value());
  EXPECT_EQ(obs::trace_level_from_name("2"), obs::TraceLevel::kEvents);
}

TEST(LogSinkTest, LogLinesRouteThroughInstalledSink) {
  std::vector<std::string> seen;
  util::set_log_sink([&seen](util::LogLevel level, const std::string& message) {
    seen.push_back(std::string(util::log_level_name(level)) + ": " + message);
  });
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kWarn);
  util::log_line(util::LogLevel::kDebug, "filtered");
  util::log_line(util::LogLevel::kError, "kept");
  util::set_log_level(before);
  util::set_log_sink(nullptr);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "error: kept");
}

// -- Registry determinism ---------------------------------------------------

#if SND_TRACE
obs::TraceSummary traced_trial(std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {40.0, 40.0}};
  config.radio_range = 15.0;
  config.protocol.threshold_t = 1;
  config.seed = seed;
  core::SndDeployment deployment(config);
  deployment.deploy_round(10);
  deployment.run();
  return deployment.network().trace_summary();
}

TEST(RegistryDeterminismTest, FoldIsByteIdenticalAcrossJobCounts) {
  constexpr std::size_t kTrials = 8;
  std::string baseline;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    runner::TrialRunner pool(jobs);
    obs::Registry registry(kTrials);
    pool.run(kTrials, /*base_seed=*/55, [&](std::size_t i, std::uint64_t seed) {
      registry.record(i, traced_trial(seed));
      return 0;
    });
    for (std::size_t i = 0; i < kTrials; ++i) EXPECT_TRUE(registry.recorded(i));
    const std::string folded = registry.fold().to_json();
    if (baseline.empty()) {
      baseline = folded;
      EXPECT_NE(baseline.find("\"trials\":8"), std::string::npos);
    } else {
      EXPECT_EQ(folded, baseline) << "jobs=" << jobs;
    }
  }
}
#endif  // SND_TRACE

TEST(RegistryTest, IgnoresOutOfRangeSlotsAndMergesInOrder) {
  obs::Registry registry(2);
  obs::TraceSummary a;
  a.trials = 1;
  a.deliveries = 5;
  obs::TraceSummary b;
  b.trials = 1;
  b.deliveries = 7;
  registry.record(1, b);
  registry.record(0, a);
  registry.record(99, a);  // out of range: dropped, not fatal
  EXPECT_TRUE(registry.recorded(0));
  EXPECT_TRUE(registry.recorded(1));
  EXPECT_FALSE(registry.recorded(99));
  const obs::TraceSummary folded = registry.fold();
  EXPECT_EQ(folded.trials, 2u);
  EXPECT_EQ(folded.deliveries, 12u);
}

}  // namespace
}  // namespace snd
