#include "core/commitment.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/binding_record.h"
#include "util/simd.h"

namespace snd::core {
namespace {

class CommitmentTest : public ::testing::Test {
 protected:
  crypto::SymmetricKey master_ = crypto::SymmetricKey::from_seed(1);
  crypto::SymmetricKey other_master_ = crypto::SymmetricKey::from_seed(2);
};

TEST_F(CommitmentTest, VerificationKeyDeterministic) {
  EXPECT_TRUE(verification_key(master_, 5) == verification_key(master_, 5));
}

TEST_F(CommitmentTest, VerificationKeyDependsOnNode) {
  EXPECT_FALSE(verification_key(master_, 5) == verification_key(master_, 6));
}

TEST_F(CommitmentTest, VerificationKeyDependsOnMaster) {
  EXPECT_FALSE(verification_key(master_, 5) == verification_key(other_master_, 5));
}

TEST_F(CommitmentTest, BindingCommitmentBindsEveryField) {
  const topology::NeighborList neighbors = {2, 3, 4};
  const crypto::Digest base = binding_commitment(master_, 1, 0, neighbors);
  EXPECT_NE(base, binding_commitment(master_, 9, 0, neighbors));       // node
  EXPECT_NE(base, binding_commitment(master_, 1, 1, neighbors));       // version
  EXPECT_NE(base, binding_commitment(master_, 1, 0, {2, 3}));          // list
  EXPECT_NE(base, binding_commitment(other_master_, 1, 0, neighbors)); // key
  EXPECT_EQ(base, binding_commitment(master_, 1, 0, neighbors));
}

TEST_F(CommitmentTest, RelationCommitmentMatchesBothDerivations) {
  // u computes C(u,v) from K via K_v; v verifies with its stored K_v.
  const crypto::SymmetricKey kv = verification_key(master_, 7);
  EXPECT_EQ(relation_commitment(kv, 3), relation_commitment(verification_key(master_, 7), 3));
  EXPECT_NE(relation_commitment(kv, 3), relation_commitment(kv, 4));
}

TEST_F(CommitmentTest, EvidenceBindsAllInputs) {
  const crypto::Digest base = relation_evidence(master_, 1, 2, 0);
  EXPECT_NE(base, relation_evidence(master_, 2, 1, 0));  // direction matters
  EXPECT_NE(base, relation_evidence(master_, 1, 2, 1));  // version matters
  EXPECT_NE(base, relation_evidence(other_master_, 1, 2, 0));
}

TEST_F(CommitmentTest, DomainsAreSeparated) {
  // The same inputs through different derivations never collide.
  const crypto::Digest binding = binding_commitment(master_, 1, 0, {});
  const crypto::Digest evidence = relation_evidence(master_, 1, 0, 0);
  EXPECT_NE(binding, evidence);
}

// Every batched derivation must equal its scalar counterpart element for
// element, with SIMD batching both on (wide engine) and off (serial).
TEST_F(CommitmentTest, BatchedDerivationsMatchScalar) {
  const std::vector<NodeId> nodes = {3, 1, 4, 1, 5, 9, 2, 6};
  const topology::NeighborList neighbors_a = {2, 3, 4};
  const topology::NeighborList neighbors_b = {};

  for (const bool simd : {true, false}) {
    util::set_simd_enabled(simd);

    std::vector<crypto::SymmetricKey> vkeys(nodes.size());
    verification_keys(master_, nodes, vkeys);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_TRUE(vkeys[i] == verification_key(master_, nodes[i])) << "simd=" << simd;
    }

    std::vector<crypto::Digest> commits(nodes.size());
    relation_commitments(vkeys, 7, commits);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(commits[i], relation_commitment(vkeys[i], 7)) << "simd=" << simd;
    }

    const std::vector<EvidenceSpec> specs = {{1, 2, 0}, {2, 1, 0}, {1, 2, 1}, {9, 9, 3}};
    std::vector<crypto::Digest> evidences(specs.size());
    relation_evidences(master_, specs, evidences);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(evidences[i],
                relation_evidence(master_, specs[i].u, specs[i].v, specs[i].version))
          << "simd=" << simd;
    }

    const std::vector<BindingSpec> bindings = {{1, 0, &neighbors_a},
                                               {9, 2, &neighbors_b},
                                               {1, 1, &neighbors_a}};
    std::vector<crypto::Digest> binding_digests(bindings.size());
    binding_commitments(master_, bindings, binding_digests);
    for (std::size_t i = 0; i < bindings.size(); ++i) {
      EXPECT_EQ(binding_digests[i],
                binding_commitment(master_, bindings[i].node, bindings[i].version,
                                   *bindings[i].neighbors))
          << "simd=" << simd;
    }
  }
  util::set_simd_enabled(true);
}

class BindingRecordTest : public ::testing::Test {
 protected:
  crypto::SymmetricKey master_ = crypto::SymmetricKey::from_seed(3);
};

TEST_F(BindingRecordTest, MakeSortsAndDeduplicates) {
  const BindingRecord record = BindingRecord::make(master_, 1, 0, {5, 3, 5, 1});
  EXPECT_EQ(record.neighbors, (topology::NeighborList{1, 3, 5}));
}

TEST_F(BindingRecordTest, VerifyAcceptsGenuine) {
  const BindingRecord record = BindingRecord::make(master_, 1, 2, {2, 3});
  EXPECT_TRUE(record.verify(master_));
}

TEST_F(BindingRecordTest, VerifyRejectsWrongKey) {
  const BindingRecord record = BindingRecord::make(master_, 1, 0, {2, 3});
  EXPECT_FALSE(record.verify(crypto::SymmetricKey::from_seed(99)));
}

TEST_F(BindingRecordTest, VerifyRejectsTamperedNeighborList) {
  BindingRecord record = BindingRecord::make(master_, 1, 0, {2, 3});
  record.neighbors.push_back(9);
  EXPECT_FALSE(record.verify(master_));
}

TEST_F(BindingRecordTest, VerifyRejectsTamperedVersion) {
  BindingRecord record = BindingRecord::make(master_, 1, 0, {2, 3});
  record.version = 1;
  EXPECT_FALSE(record.verify(master_));
}

TEST_F(BindingRecordTest, VerifyRejectsUnsortedList) {
  BindingRecord record = BindingRecord::make(master_, 1, 0, {2, 3});
  std::swap(record.neighbors[0], record.neighbors[1]);
  EXPECT_FALSE(record.verify(master_));
}

TEST_F(BindingRecordTest, SerializeParseRoundTrip) {
  const BindingRecord record = BindingRecord::make(master_, 42, 3, {1, 2, 3, 100000});
  const auto parsed = BindingRecord::parse(record.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, record);
  EXPECT_TRUE(parsed->verify(master_));
}

TEST_F(BindingRecordTest, EmptyNeighborListRoundTrips) {
  const BindingRecord record = BindingRecord::make(master_, 1, 0, {});
  const auto parsed = BindingRecord::parse(record.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->neighbors.empty());
  EXPECT_TRUE(parsed->verify(master_));
}

TEST_F(BindingRecordTest, ParseRejectsTruncation) {
  const BindingRecord record = BindingRecord::make(master_, 1, 0, {2, 3, 4});
  const util::Bytes serialized = record.serialize();
  for (std::size_t cut = 0; cut < serialized.size(); ++cut) {
    const util::Bytes truncated(serialized.begin(),
                                serialized.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(BindingRecord::parse(truncated).has_value()) << "cut at " << cut;
  }
}

TEST_F(BindingRecordTest, ParseRejectsTrailingGarbage) {
  util::Bytes serialized = BindingRecord::make(master_, 1, 0, {2}).serialize();
  serialized.push_back(0x00);
  EXPECT_FALSE(BindingRecord::parse(serialized).has_value());
}

}  // namespace
}  // namespace snd::core
