// Mobility under the spatial index: sustained Network::set_position churn
// (random-waypoint walks over 120 devices) must leave the grid-indexed
// receiver resolution bit-identical to the linear field scan, and the SoA
// core bit-identical to the seed representation. Plus the snapshot-semantics
// regression: a device crossing a grid-cell boundary while a packet is in
// the air neither gains nor loses that delivery -- transmit resolves its
// receiver set eagerly at transmit time in both the grid and linear paths.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "adversary/mobility.h"
#include "core/deployment_driver.h"
#include "sim/network.h"
#include "util/soa.h"

namespace snd::sim {
namespace {

/// Drops the receiver-resolution-dependent accounting from a trace summary:
/// the grid enumerates a 3x3-block candidate superset while the linear scan
/// enumerates the whole field, so kOutOfRange (and the totals folding it in)
/// legitimately differ. Everything else must match bit for bit.
std::string strip_resolution_dependent(std::string json) {
  for (const std::string_view key : {"\"dropped\":", "\"events\":", "\"out_of_range\":"}) {
    const std::size_t at = json.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = at + key.size();
    while (end < json.size() && json[end] >= '0' && json[end] <= '9') ++end;
    json.erase(at, end - at);
  }
  return json;
}

struct Snapshot {
  std::string summary_json;
  std::vector<std::pair<NodeId, topology::NeighborList>> tentative;
  std::vector<std::pair<NodeId, topology::NeighborList>> functional;
  std::vector<util::Vec2> positions;
  std::uint64_t moves = 0;

  bool operator==(const Snapshot& other) const {
    if (summary_json != other.summary_json || tentative != other.tentative ||
        functional != other.functional || moves != other.moves ||
        positions.size() != other.positions.size()) {
      return false;
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (positions[i].x != other.positions[i].x || positions[i].y != other.positions[i].y) {
        return false;
      }
    }
    return true;
  }
};

/// 121 nodes discovering neighbors while 120 of them walk: every step is a
/// set_position call racing live broadcast traffic. `spatial_index` toggles
/// grid vs linear receiver resolution; `soa` the core representation.
Snapshot run_walking_deployment(bool spatial_index, bool soa) {
  const bool saved = util::soa_enabled();
  util::set_soa_enabled(soa);
  Snapshot snap;
  {
    core::DeploymentConfig config;
    config.field = {{0.0, 0.0}, {200.0, 200.0}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 3;
    config.seed = 77;
    core::SndDeployment deployment(config);
    deployment.network().set_spatial_index_enabled(spatial_index);

    deployment.deploy_round(121);
    std::vector<DeviceId> movers;
    for (DeviceId d = 0; d < 120; ++d) movers.push_back(d);
    // 3 m hops: tens of 50 m cell crossings over the walk, all mid-traffic.
    adversary::WaypointMobility walk(deployment.network(), config.field, std::move(movers),
                                     60.0, Time::milliseconds(50), 20, 9001);
    walk.schedule();
    deployment.run();

    snap.moves = walk.moves_applied();
    snap.summary_json = deployment.network().trace_summary().to_json();
    for (const core::SndNode* agent : deployment.agents()) {
      snap.tentative.emplace_back(agent->identity(), agent->tentative_neighbors());
      snap.functional.emplace_back(agent->identity(), agent->functional_neighbors());
    }
    for (const Device& d : deployment.network().devices()) snap.positions.push_back(d.position);
  }
  util::set_soa_enabled(saved);
  return snap;
}

TEST(MobilitySweepTest, GridMatchesLinearScanUnderChurn) {
  Snapshot grid = run_walking_deployment(true, util::soa_enabled());
  Snapshot linear = run_walking_deployment(false, util::soa_enabled());
  ASSERT_GT(grid.moves, 1000u) << "walk degenerate -- the sweep exercised no churn";
  grid.summary_json = strip_resolution_dependent(grid.summary_json);
  linear.summary_json = strip_resolution_dependent(linear.summary_json);
  EXPECT_EQ(grid.summary_json, linear.summary_json);
  EXPECT_TRUE(grid == linear);
}

TEST(MobilitySweepTest, SoaMatchesSeedRepresentationUnderChurn) {
  const Snapshot flat = run_walking_deployment(true, true);
  const Snapshot seed = run_walking_deployment(true, false);
  EXPECT_EQ(flat.summary_json, seed.summary_json);
  EXPECT_TRUE(flat == seed);
}

// -- Mid-airtime set_position (snapshot semantics) --------------------------

struct AirtimeOutcome {
  int moved_out_received = 0;
  int moved_in_received = 0;
};

/// A transmits while B (in range, about to leave) and C (out of range,
/// about to arrive) relocate mid-airtime, both crossing grid-cell
/// boundaries. Receiver sets are resolved when the packet hits the air, so
/// B must still receive and C must not, grid or no grid.
AirtimeOutcome run_mid_airtime_move(bool spatial_index) {
  Network net(std::make_unique<UnitDiskModel>(10.0), ChannelConfig{}, 5);
  net.set_spatial_index_enabled(spatial_index);
  const DeviceId a = net.add_device(1, {5.0, 5.0});
  const DeviceId b = net.add_device(2, {12.0, 5.0});   // in range, cell (1,0)
  const DeviceId c = net.add_device(3, {45.0, 5.0});   // far out of range
  AirtimeOutcome outcome;
  net.set_receiver(b, [&outcome](const Packet&) { ++outcome.moved_out_received; });
  net.set_receiver(c, [&outcome](const Packet&) { ++outcome.moved_in_received; });

  net.transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}},
               obs::Phase::kHello);
  // The packet is in the air (airtime ~= 600 us at 250 kbps plus processing
  // delay); both movers relocate across cell boundaries well before any
  // delivery event fires.
  net.scheduler().schedule_at(Time::microseconds(1), [&net, b, c]() {
    net.set_position(b, {95.0, 95.0});  // leaves range AND cell
    net.set_position(c, {12.0, 5.0});   // arrives next to the sender
  });
  net.scheduler().run();

  // A later transmission sees the new positions: C hears, B does not.
  net.transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}},
               obs::Phase::kHello);
  net.scheduler().run();
  return outcome;
}

TEST(MidAirtimeMoveTest, InFlightDeliveriesUseTransmitTimePositions) {
  const AirtimeOutcome grid = run_mid_airtime_move(true);
  // First transmission: B (in range at transmit time) receives even though
  // it sits across the field at delivery time; C gets nothing. Second
  // transmission flips them.
  EXPECT_EQ(grid.moved_out_received, 1);
  EXPECT_EQ(grid.moved_in_received, 1);

  const AirtimeOutcome linear = run_mid_airtime_move(false);
  EXPECT_EQ(linear.moved_out_received, grid.moved_out_received);
  EXPECT_EQ(linear.moved_in_received, grid.moved_in_received);
}

}  // namespace
}  // namespace snd::sim
