#include "analysis/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/geometry.h"

namespace snd::analysis {
namespace {

// The paper's evaluation setting: one node per 50 m^2, R = 50 m.
const FieldModel kPaperModel{0.02, 50.0};

TEST(FieldModelTest, ExpectedNeighborsPaperSetting) {
  EXPECT_NEAR(kPaperModel.expected_neighbors(), 0.02 * std::numbers::pi * 2500.0 - 1.0, 1e-9);
}

TEST(FieldModelTest, CommonNeighborsDecreasesWithDistance) {
  double previous = kPaperModel.expected_common_neighbors(0.0);
  for (double c = 0.1; c <= 2.0; c += 0.1) {
    const double current = kPaperModel.expected_common_neighbors(c);
    EXPECT_LT(current, previous) << "c = " << c;
    previous = current;
  }
}

TEST(FieldModelTest, TauSolvesTheThresholdEquation) {
  for (std::size_t t : {5u, 20u, 60u, 100u}) {
    const double tau = kPaperModel.tau_for_threshold(t);
    ASSERT_GT(tau, 0.0);
    ASSERT_LT(tau, 2.0);
    EXPECT_NEAR(kPaperModel.expected_common_neighbors(tau), static_cast<double>(t) + 1.0, 1e-6)
        << "t = " << t;
  }
}

TEST(FieldModelTest, TauZeroWhenUnreachable) {
  // t far above the coincident-node maximum (~155).
  EXPECT_EQ(kPaperModel.tau_for_threshold(500), 0.0);
  EXPECT_EQ(kPaperModel.accuracy(500), 0.0);
}

TEST(FieldModelTest, TauTwoWhenTrivial) {
  // Huge density: even nodes 2R apart share plenty of neighbors... at
  // exactly c=2 the lens is empty, so N(2) = -2 < t+1 always; tau < 2.
  const FieldModel dense{10.0, 50.0};
  EXPECT_LT(dense.tau_for_threshold(0), 2.0);
  EXPECT_GT(dense.tau_for_threshold(0), 1.5);
}

TEST(FieldModelTest, AccuracyMonotoneNonIncreasingInT) {
  double previous = 1.1;
  for (std::size_t t = 0; t <= 150; t += 5) {
    const double accuracy = kPaperModel.accuracy(t);
    EXPECT_LE(accuracy, previous + 1e-12) << "t = " << t;
    previous = accuracy;
  }
}

TEST(FieldModelTest, AccuracyFullAtLowThreshold) {
  // Paper Figure 3: small t keeps essentially all neighbors.
  EXPECT_GT(kPaperModel.accuracy(10), 0.95);
}

TEST(FieldModelTest, AccuracyCollapsesAtHighThreshold) {
  EXPECT_LT(kPaperModel.accuracy(140), 0.1);
}

TEST(FieldModelTest, ApproximationTracksExactModel) {
  for (std::size_t t = 0; t <= 150; t += 10) {
    EXPECT_NEAR(kPaperModel.accuracy(t), kPaperModel.accuracy_approx(t), 0.05) << "t = " << t;
  }
}

TEST(FieldModelTest, AccuracyIncreasesWithDensity) {
  // Paper Figure 4: for fixed t, denser deployments validate more.
  const std::size_t t = 30;
  double previous = -1.0;
  for (double density : {0.02, 0.05, 0.08, 0.12, 0.2}) {
    const FieldModel model{density, 50.0};
    const double accuracy = model.accuracy(t);
    EXPECT_GE(accuracy, previous) << "density = " << density;
    previous = accuracy;
  }
}

TEST(FieldModelTest, MaxThresholdForAccuracyInverts) {
  const std::size_t t = kPaperModel.max_threshold_for_accuracy(0.5);
  EXPECT_GE(kPaperModel.accuracy(t), 0.5);
  EXPECT_LT(kPaperModel.accuracy(t + 1), 0.5);
}

TEST(FieldModelTest, MaxThresholdZeroWhenTargetUnreachable) {
  const FieldModel sparse{0.0001, 50.0};
  EXPECT_EQ(sparse.max_threshold_for_accuracy(0.9), 0u);
}

TEST(BorderModelTest, CenterMatchesInfinitePlane) {
  // Center of a 200x200 field with R=50: the whole disk fits; border
  // correction must equal the infinite-plane expectation.
  const FieldModel model{0.02, 50.0};
  const double corrected =
      expected_neighbors_at(model, {100.0, 100.0, 200.0, 200.0});
  EXPECT_NEAR(corrected, model.expected_neighbors(), 1e-6);
}

TEST(BorderModelTest, CornerSeesAQuarter) {
  const FieldModel model{0.02, 50.0};
  const double corner = expected_neighbors_at(model, {0.0, 0.0, 200.0, 200.0});
  // Quarter disk: D*pi*R^2/4 - 1.
  EXPECT_NEAR(corner, (model.expected_neighbors() + 1.0) / 4.0 - 1.0, 1e-6);
}

TEST(BorderModelTest, EdgeSeesAHalf) {
  const FieldModel model{0.02, 50.0};
  const double edge = expected_neighbors_at(model, {0.0, 100.0, 200.0, 200.0});
  EXPECT_NEAR(edge, (model.expected_neighbors() + 1.0) / 2.0 - 1.0, 1e-6);
}

TEST(BorderModelTest, MonotoneTowardTheInterior) {
  const FieldModel model{0.02, 50.0};
  double previous = -10.0;
  for (double x : {0.0, 10.0, 25.0, 40.0, 50.0}) {
    const double expected = expected_neighbors_at(model, {x, 100.0, 200.0, 200.0});
    EXPECT_GT(expected, previous);
    previous = expected;
  }
}

TEST(FieldModelTest, ConsistentWithLensGeometry) {
  // N(c) must equal density * lens_area - 2 for all c.
  for (double c : {0.3, 0.7, 1.2, 1.8}) {
    EXPECT_NEAR(kPaperModel.expected_common_neighbors(c),
                0.02 * util::lens_area(50.0, c * 50.0) - 2.0, 1e-9);
  }
}

}  // namespace
}  // namespace snd::analysis
