// Integration tests of the full protocol running over the simulated radio.
#include "core/protocol.h"

#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "crypto/blundo.h"
#include "topology/stats.h"

namespace snd::core {
namespace {

DeploymentConfig dense_config(std::size_t t = 3, std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {60.0, 60.0}};
  config.radio_range = 100.0;  // everyone hears everyone
  config.protocol.threshold_t = t;
  config.seed = seed;
  return config;
}

TEST(ProtocolTest, DiscoveryFindsAllPhysicalNeighbors) {
  SndDeployment deployment(dense_config());
  deployment.deploy_round(12);
  deployment.run();
  // Fully connected field: every node's tentative list has everyone else.
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_EQ(agent->tentative_neighbors().size(), 11u) << "node " << agent->identity();
  }
}

TEST(ProtocolTest, FunctionalEqualsTentativeWhenThresholdMet) {
  SndDeployment deployment(dense_config(3));
  deployment.deploy_round(12);
  deployment.run();
  // 10 common neighbors per pair > t+1 = 4: everything validates.
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_EQ(agent->functional_neighbors(), agent->tentative_neighbors());
  }
}

TEST(ProtocolTest, NothingValidatesAboveAchievableOverlap) {
  // 12 nodes: max overlap is 10 common neighbors; t = 15 cannot be met.
  SndDeployment deployment(dense_config(15));
  deployment.deploy_round(12);
  deployment.run();
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_TRUE(agent->functional_neighbors().empty());
  }
}

TEST(ProtocolTest, ThresholdBoundaryExact) {
  // 12 nodes fully connected: |N(u) ∩ N(v)| = 10 for every pair.
  // t = 9 -> needs 10 -> passes; t = 10 -> needs 11 -> fails.
  SndDeployment pass(dense_config(9));
  pass.deploy_round(12);
  pass.run();
  EXPECT_FALSE(pass.agent(1)->functional_neighbors().empty());

  SndDeployment fail(dense_config(10));
  fail.deploy_round(12);
  fail.run();
  EXPECT_TRUE(fail.agent(1)->functional_neighbors().empty());
}

TEST(ProtocolTest, MasterKeyErasedAfterDiscovery) {
  SndDeployment deployment(dense_config());
  deployment.deploy_round(5);
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_TRUE(agent->master_key_present());  // before the run
  }
  deployment.run();
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_FALSE(agent->master_key_present()) << "node " << agent->identity();
    EXPECT_TRUE(agent->discovery_complete());
  }
}

TEST(ProtocolTest, BindingRecordCommitsToTentativeList) {
  SndDeployment deployment(dense_config());
  deployment.deploy_round(6);
  deployment.run();
  const SndNode* agent = deployment.agent(1);
  ASSERT_TRUE(agent->has_record());
  EXPECT_EQ(agent->record().neighbors, agent->tentative_neighbors());
  EXPECT_EQ(agent->record().version, 0u);
  EXPECT_EQ(agent->record().node, 1u);
  EXPECT_TRUE(agent->record().verify(deployment.master_key()));
}

TEST(ProtocolTest, FunctionalRelationsAreMutual) {
  SndDeployment deployment(dense_config(2));
  deployment.deploy_round(10);
  deployment.run();
  const auto functional = deployment.functional_graph();
  for (const auto& [u, v] : functional.edges()) {
    EXPECT_TRUE(functional.has_edge(v, u)) << u << " -> " << v << " not reciprocated";
  }
}

TEST(ProtocolTest, SecretsRespectErasure) {
  SndDeployment deployment(dense_config());
  deployment.deploy_round(5);
  deployment.run();
  const SndNode::Secrets secrets = deployment.agent(1)->steal_secrets();
  EXPECT_FALSE(secrets.master.present());
  EXPECT_TRUE(secrets.verification_key.present());
  ASSERT_TRUE(secrets.record.has_value());
  EXPECT_EQ(secrets.tentative.size(), 4u);
}

TEST(ProtocolTest, SecretsBeforeErasureIncludeMaster) {
  SndDeployment deployment(dense_config());
  deployment.deploy_round(5);
  // Steal mid-discovery: the key must still be there.
  deployment.run_for(sim::Time::milliseconds(50));
  const SndNode::Secrets secrets = deployment.agent(1)->steal_secrets();
  EXPECT_TRUE(secrets.master.present());
}

TEST(ProtocolTest, IsolatedNodeHasEmptyLists) {
  DeploymentConfig config = dense_config();
  config.radio_range = 5.0;
  SndDeployment deployment(config);
  deployment.deploy_node_at({0, 0});
  deployment.deploy_node_at({50, 50});  // out of range
  deployment.run();
  EXPECT_TRUE(deployment.agent(1)->tentative_neighbors().empty());
  EXPECT_TRUE(deployment.agent(1)->functional_neighbors().empty());
  EXPECT_TRUE(deployment.agent(1)->has_record());
}

TEST(ProtocolTest, TwoNodesAloneCannotMeetPositiveThreshold) {
  // Two neighbors share zero common neighbors: any t >= 0 needs t+1 >= 1.
  SndDeployment deployment(dense_config(0));
  deployment.deploy_node_at({0, 0});
  deployment.deploy_node_at({10, 0});
  deployment.run();
  EXPECT_EQ(deployment.agent(1)->tentative_neighbors().size(), 1u);
  EXPECT_TRUE(deployment.agent(1)->functional_neighbors().empty());
}

TEST(ProtocolTest, TriangleValidatesAtThresholdZero) {
  // Three mutual neighbors: each pair shares exactly one common neighbor.
  SndDeployment deployment(dense_config(0));
  deployment.deploy_node_at({0, 0});
  deployment.deploy_node_at({10, 0});
  deployment.deploy_node_at({5, 8});
  deployment.run();
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_EQ(deployment.agent(id)->functional_neighbors().size(), 2u) << "node " << id;
  }
}

TEST(ProtocolTest, SecondRoundNodesValidateAgainstOldNodes) {
  SndDeployment deployment(dense_config(2));
  deployment.deploy_round(10);
  deployment.run();

  // A new node arrives later; old nodes' records are frozen but the new
  // node shares the 10 old nodes with any old neighbor.
  const NodeId fresh = deployment.deploy_node_at({30, 30});
  deployment.run();

  const SndNode* agent = deployment.agent(fresh);
  EXPECT_EQ(agent->tentative_neighbors().size(), 10u);
  // New node validates old ones: overlap = 9 old common neighbors >= 3.
  EXPECT_EQ(agent->functional_neighbors().size(), 10u);
  // And each old node accepted the new node's relation commitment.
  for (NodeId old_id = 1; old_id <= 10; ++old_id) {
    EXPECT_TRUE(topology::contains(deployment.agent(old_id)->functional_neighbors(), fresh))
        << "old node " << old_id;
  }
}

TEST(ProtocolTest, OldNodesTentativeListsStayFrozen) {
  SndDeployment deployment(dense_config(2));
  deployment.deploy_round(8);
  deployment.run();
  const auto before = deployment.agent(1)->tentative_neighbors();
  deployment.deploy_node_at({30, 30});
  deployment.run();
  EXPECT_EQ(deployment.agent(1)->tentative_neighbors(), before);
  EXPECT_EQ(deployment.agent(1)->record().neighbors, before);
}

TEST(ProtocolTest, DeterministicAcrossRuns) {
  // A sparse field whose topology depends on node positions, so different
  // seeds genuinely produce different graphs.
  auto run_once = [](std::uint64_t seed) {
    DeploymentConfig config;
    config.field = {{0.0, 0.0}, {200.0, 200.0}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 2;
    config.seed = seed;
    SndDeployment deployment(config);
    deployment.deploy_round(60);
    deployment.run();
    return deployment.functional_graph();
  };
  EXPECT_TRUE(run_once(7) == run_once(7));
  EXPECT_FALSE(run_once(7) == run_once(8));
}

TEST(ProtocolTest, SurvivesChannelLoss) {
  DeploymentConfig config = dense_config(2);
  config.channel_loss = 0.1;
  config.protocol.hello_repeats = 3;
  SndDeployment deployment(config);
  deployment.deploy_round(12);
  deployment.run();
  // With 10% loss and repeated hellos, most relations still form.
  const auto actual = deployment.actual_benign_graph();
  const auto functional = deployment.functional_graph();
  EXPECT_GT(topology::edge_recall(actual, functional), 0.6);
}

TEST(ProtocolTest, TrafficChargedToAllPhases) {
  SndDeployment deployment(dense_config(2));
  deployment.deploy_round(8);
  deployment.run();
  const auto& metrics = deployment.network().metrics();
  EXPECT_GT(metrics.phase(obs::Phase::kHello).messages, 0u);
  EXPECT_GT(metrics.phase(obs::Phase::kAck).messages, 0u);
  EXPECT_GT(metrics.phase(obs::Phase::kRecord).messages, 0u);
  EXPECT_GT(metrics.phase(obs::Phase::kCommit).messages, 0u);
  EXPECT_EQ(metrics.phase(obs::Phase::kEvidence).messages, 0u);  // extension off
}

TEST(ProtocolTest, WorksWithBlundoKeyScheme) {
  SndDeployment deployment(dense_config(2));
  deployment.set_key_scheme(std::make_shared<crypto::BlundoScheme>(3, 5));
  deployment.deploy_round(8);
  deployment.run();
  EXPECT_EQ(deployment.agent(1)->functional_neighbors().size(), 7u);
}

TEST(ProtocolTest, WorksUnderLogNormalShadowing) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.log_normal_shadowing = true;
  config.protocol.threshold_t = 5;
  config.seed = 11;
  SndDeployment deployment(config);
  deployment.deploy_round(100);
  deployment.run();
  const auto actual = deployment.actual_benign_graph();
  const auto functional = deployment.functional_graph();
  EXPECT_GT(topology::edge_recall(actual, functional), 0.5);
  EXPECT_DOUBLE_EQ(topology::edge_precision(actual, functional), 1.0);
}

}  // namespace
}  // namespace snd::core
