#include <gtest/gtest.h>

#include "adversary/attacker.h"
#include "adversary/chaff.h"
#include "adversary/theorem_attack.h"
#include "core/safety.h"
#include "topology/stats.h"

namespace snd::adversary {
namespace {

using core::DeploymentConfig;
using core::SndDeployment;

DeploymentConfig attack_config(std::uint64_t seed = 11) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {300.0, 300.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 5;
  config.seed = seed;
  return config;
}

// --- Replication attack, post-erasure (the protocol's core guarantee) ----

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : deployment_(attack_config()) {
    deployment_.deploy_round(350);
    deployment_.run();  // every node erases K
  }
  SndDeployment deployment_;
};

TEST_F(ReplicationTest, CompromiseStealsNoMasterKey) {
  Attacker attacker(deployment_);
  ASSERT_TRUE(attacker.compromise(10));
  EXPECT_FALSE(attacker.master_key_leaked());
  const auto* secrets = attacker.stolen_secrets(10);
  ASSERT_NE(secrets, nullptr);
  EXPECT_TRUE(secrets->verification_key.present());
  EXPECT_TRUE(secrets->record.has_value());
}

TEST_F(ReplicationTest, CompromiseUnknownIdentityFails) {
  Attacker attacker(deployment_);
  EXPECT_FALSE(attacker.compromise(99999));
}

TEST_F(ReplicationTest, DoubleCompromiseFails) {
  Attacker attacker(deployment_);
  EXPECT_TRUE(attacker.compromise(10));
  EXPECT_FALSE(attacker.compromise(10));
}

TEST_F(ReplicationTest, ReplicaWithoutCompromiseFails) {
  Attacker attacker(deployment_);
  EXPECT_EQ(attacker.place_replica(10, {0, 0}), sim::kNoDevice);
}

TEST_F(ReplicationTest, RemoteReplicaRejectedByNewNodes) {
  Attacker attacker(deployment_);
  attacker.compromise(10);
  attacker.place_replica(10, {290, 290});  // far from node 10's origin
  deployment_.run();

  // New nodes deployed near the replica must not validate identity 10.
  std::vector<NodeId> fresh;
  for (int i = 0; i < 6; ++i) {
    fresh.push_back(deployment_.deploy_node_at({265.0 + 5 * i, 275.0}));
  }
  deployment_.run();
  for (NodeId id : fresh) {
    const core::SndNode* agent = deployment_.agent(id);
    EXPECT_FALSE(topology::contains(agent->functional_neighbors(), 10))
        << "fresh node " << id << " accepted the replica";
    // It may appear tentatively (the replica answers hellos)...
    // ...but never functionally.
  }
}

TEST_F(ReplicationTest, TwoRSafetyHoldsUnderReplication) {
  Attacker attacker(deployment_);
  attacker.compromise(10);
  for (const util::Vec2 pos :
       {util::Vec2{30, 30}, util::Vec2{270, 40}, util::Vec2{150, 280}}) {
    attacker.place_replica(10, pos);
  }
  deployment_.run();
  deployment_.deploy_round(150);  // fresh nodes everywhere
  deployment_.run();

  const core::SafetyReport report =
      core::audit_safety(deployment_, 2.0 * deployment_.config().radio_range);
  EXPECT_TRUE(report.holds()) << "impact radius " << report.max_impact_radius();
}

TEST_F(ReplicationTest, LocalReplicaStillAcceptedNearOrigin) {
  // A replica placed inside the victim's own neighborhood is
  // indistinguishable and harmless: acceptance there is within 2R anyway.
  Attacker attacker(deployment_);
  attacker.compromise(10);
  deployment_.run();
  const core::IdentitySafetyReport report =
      core::audit_identity(deployment_, 10, 2.0 * deployment_.config().radio_range);
  // The original functional neighbors still count identity 10.
  EXPECT_FALSE(report.accepting_nodes.empty());
  EXPECT_FALSE(report.violates);
}

// --- Early compromise: the master key leaks (§6 caveat) ---------------

TEST(EarlyCompromiseTest, MasterKeyBreaksContainment) {
  SndDeployment deployment(attack_config(13));
  deployment.deploy_round(350);
  deployment.run_for(sim::Time::milliseconds(30));  // mid-discovery

  Attacker attacker(deployment);
  ASSERT_TRUE(attacker.compromise(10));
  EXPECT_TRUE(attacker.master_key_leaked());
  deployment.run();

  attacker.place_replica(10, {290, 290});
  deployment.run();
  deployment.deploy_round(120);
  deployment.run();

  const core::SafetyReport report =
      core::audit_safety(deployment, 2.0 * deployment.config().radio_range);
  EXPECT_FALSE(report.holds());
  EXPECT_GT(report.max_impact_radius(), 2.0 * deployment.config().radio_range);
}

// --- Theorem 1 construction ------------------------------------------

class Theorem1Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem1Test, AttackDefeatsTopologyOnlyValidator) {
  const std::size_t t = GetParam();
  core::CommonNeighborValidator validator(t);
  const std::size_t m = validator.minimum_deployment_size();
  const auto attack = build_theorem1_attack(validator, 2 * m - 1);
  EXPECT_TRUE(attack.succeeds(validator)) << "t = " << t;
  // u and f(u) are distinct benign identities, so the attacker's functional
  // neighbors cannot be enclosed in any fixed circle: both views accept w.
  EXPECT_NE(attack.u, attack.fu);
  EXPECT_TRUE(validator.validate(attack.u, attack.w, attack.original_view));
  EXPECT_TRUE(validator.validate(attack.fu, attack.w, attack.victim_view));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, Theorem1Test, ::testing::Values(0, 1, 2, 5, 10, 25));

TEST(Theorem1Test2, RequiresTheBound) {
  core::CommonNeighborValidator validator(3);  // m = 6
  EXPECT_THROW(build_theorem1_attack(validator, 10), std::invalid_argument);  // < 2m-1
  EXPECT_NO_THROW(build_theorem1_attack(validator, 11));
}

TEST(Theorem1Test2, HonestGraphContainsAllNodes) {
  core::CommonNeighborValidator validator(2);  // m = 5
  const auto attack = build_theorem1_attack(validator, 20);
  EXPECT_EQ(attack.honest_graph.node_count(), 20u);
}

TEST(Theorem1Test2, ForgedRelationsOnlyInvolveW) {
  core::CommonNeighborValidator validator(2);
  const auto attack = build_theorem1_attack(validator, 9);
  for (const auto& [u, v] : attack.forged_relations.edges()) {
    EXPECT_TRUE(u == attack.w || v == attack.w);
  }
}

// --- Theorem 2 construction -------------------------------------------

TEST(Theorem2Test, RemoteVictimAcceptedViaRenamedRelations) {
  // Build a benign network where node 1 is extendable (its neighborhood
  // could admit a new node), then show a far-away compromised node 50 gets
  // accepted once the attacker renames the hypothetical newcomer's edges.
  core::CommonNeighborValidator validator(3);
  topology::Digraph g;
  for (NodeId c = 2; c <= 8; ++c) {
    g.add_edge(1, c);
    g.add_edge(c, 1);
  }
  g.add_node(50);  // remote node, no connection to 1's region

  EXPECT_FALSE(validator.validate(1, 50, g));
  const auto attack = build_theorem2_attack(g, 1, {2, 3, 4, 5}, 50);
  EXPECT_TRUE(attack.succeeds(validator));
}

TEST(Theorem2Test, FailsWithTooSmallNeighborhood) {
  core::CommonNeighborValidator validator(3);
  topology::Digraph g;
  for (NodeId c = 2; c <= 8; ++c) {
    g.add_edge(1, c);
    g.add_edge(c, 1);
  }
  const auto attack = build_theorem2_attack(g, 1, {2, 3}, 50);  // only 2 < t+1
  EXPECT_FALSE(attack.succeeds(validator));
}

// --- Replica state sync (creeping-attack substrate) --------------------

TEST(StateSyncTest, ReplicasAdoptFreshestRecord) {
  SndDeployment deployment(attack_config(17));
  deployment.deploy_round(350);
  deployment.run();

  Attacker attacker(deployment);
  attacker.compromise(10);
  attacker.place_replica(10, {250.0, 250.0});
  attacker.place_replica(10, {250.0, 30.0});
  deployment.run();

  // Manually hand one agent a fresher record; sync must spread it.
  const auto* secrets = attacker.stolen_secrets(10);
  ASSERT_TRUE(secrets->record.has_value());
  core::BindingRecord fresher = *secrets->record;
  fresher.version = 2;
  const_cast<MaliciousAgent*>(attacker.agents_for(10)[0])
      ->adopt_state(fresher, {{999, crypto::Sha256::hash("e")}});
  attacker.sync_replica_state(10);

  for (const MaliciousAgent* agent : attacker.agents_for(10)) {
    ASSERT_TRUE(agent->record().has_value());
    EXPECT_EQ(agent->record()->version, 2u);
    EXPECT_TRUE(agent->evidence().contains(999));
  }
}

TEST(StateSyncTest, AdoptIgnoresStaleRecords) {
  SndDeployment deployment(attack_config(19));
  deployment.deploy_round(350);
  deployment.run();
  Attacker attacker(deployment);
  attacker.compromise(10);
  MaliciousAgent* agent = const_cast<MaliciousAgent*>(attacker.agents_for(10)[0]);
  core::BindingRecord fresher = *agent->record();
  fresher.version = 3;
  agent->adopt_state(fresher, {});
  core::BindingRecord stale = fresher;
  stale.version = 1;
  agent->adopt_state(stale, {});
  EXPECT_EQ(agent->record()->version, 3u);
}

// --- Chaff attack (hostile accuracy, §4.5.2) ----------------------------

TEST(ChaffTest, DoesNotReduceBenignAccuracy) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 8;
  config.seed = 21;

  // Clean run.
  SndDeployment clean(config);
  clean.deploy_round(120);
  clean.run();
  const double clean_accuracy =
      topology::edge_recall(clean.actual_benign_graph(), clean.functional_graph());

  // Identical run with a chaff attacker planted mid-field.
  SndDeployment attacked(config);
  const sim::DeviceId chaff_device = attacked.network().add_device(90000, {50, 50});
  attacked.network().device(chaff_device).compromised = true;
  ChaffAttacker chaff(attacked.network(), chaff_device, 100000, 5);
  chaff.start();
  attacked.deploy_round(120);
  attacked.run();
  const double attacked_accuracy =
      topology::edge_recall(attacked.actual_benign_graph(), attacked.functional_graph());

  EXPECT_GT(chaff.fakes_sent(), 0u);
  // The paper's claim: without jamming, the attacker cannot push benign
  // accuracy down (fake identities never produce binding records, and
  // entries cannot be removed from anyone's list).
  EXPECT_GE(attacked_accuracy + 1e-9, clean_accuracy);
}

TEST(ChaffTest, FakeIdentitiesNeverBecomeFunctionalEvenUnverified) {
  // Defense in depth: even with direct verification removed (fake ids DO
  // enter tentative lists), a fabricated identity holds no master-key
  // material, so it can never produce a binding record that verifies --
  // the record check alone keeps it out of every functional list.
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 3;
  config.seed = 25;

  SndDeployment deployment(config);
  deployment.set_verifier(std::make_shared<verify::NaiveVerifier>());
  const sim::DeviceId chaff_device = deployment.network().add_device(90000, {50, 50});
  deployment.network().device(chaff_device).compromised = true;
  ChaffAttacker chaff(deployment.network(), chaff_device, 100000, 6);
  chaff.start();
  deployment.deploy_round(80);
  deployment.run();

  bool any_polluted_tentative = false;
  for (const core::SndNode* agent : deployment.agents()) {
    for (NodeId v : agent->tentative_neighbors()) {
      if (v >= 100000) any_polluted_tentative = true;
    }
    for (NodeId v : agent->functional_neighbors()) {
      EXPECT_LT(v, 100000u) << "fake identity validated by node " << agent->identity();
    }
  }
  EXPECT_TRUE(any_polluted_tentative);  // the attack did land in stage one
}

TEST(JammingTest, JammedRegionBlocksDiscoveryLocally) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 40.0;
  config.protocol.threshold_t = 2;
  config.seed = 23;

  SndDeployment deployment(config);
  deployment.network().add_jammer({{50, 50}, 25.0});
  deployment.deploy_round(120);
  deployment.run();

  // Nodes deep inside the jammed disk heard nothing.
  for (const core::SndNode* agent : deployment.agents()) {
    const auto& device = deployment.network().device(agent->device());
    if (util::distance(device.position, {50, 50}) < 20.0) {
      EXPECT_TRUE(agent->tentative_neighbors().empty())
          << "node " << agent->identity() << " discovered through jamming";
    }
  }
}

}  // namespace
}  // namespace snd::adversary
