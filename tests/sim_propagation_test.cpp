#include "sim/propagation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace snd::sim {
namespace {

TEST(UnitDiskTest, BoundaryInclusive) {
  UnitDiskModel model(10.0);
  EXPECT_TRUE(model.link_exists({0, 0}, {10, 0}));
  EXPECT_FALSE(model.link_exists({0, 0}, {10.001, 0}));
  EXPECT_TRUE(model.link_exists({0, 0}, {0, 0}));
  EXPECT_DOUBLE_EQ(model.nominal_range(), 10.0);
}

TEST(UnitDiskTest, Symmetric) {
  UnitDiskModel model(10.0);
  const util::Vec2 a{1, 2};
  const util::Vec2 b{8, 5};
  EXPECT_EQ(model.link_exists(a, b), model.link_exists(b, a));
}

TEST(PropagationDelayTest, SpeedOfLight) {
  // 300 m at c is almost exactly 1 microsecond.
  const Time delay = PropagationModel::propagation_delay(300.0);
  EXPECT_NEAR(static_cast<double>(delay.ns()), 1000.0, 2.0);
}

TEST(LogNormalTest, ZeroSigmaReducesToUnitDisk) {
  LogNormalModel model(50.0, 3.0, 0.0, 1);
  EXPECT_TRUE(model.link_exists({0, 0}, {49.9, 0}));
  EXPECT_FALSE(model.link_exists({0, 0}, {50.1, 0}));
}

TEST(LogNormalTest, DeterministicPerLink) {
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  const util::Vec2 a{0, 0};
  const util::Vec2 b{48, 0};
  const bool first = model.link_exists(a, b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.link_exists(a, b), first);
}

TEST(LogNormalTest, SymmetricLinks) {
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  for (double x : {10.0, 30.0, 45.0, 55.0, 70.0}) {
    const util::Vec2 a{0, 0};
    const util::Vec2 b{x, 3.0};
    EXPECT_EQ(model.link_exists(a, b), model.link_exists(b, a)) << x;
  }
}

TEST(LogNormalTest, SeedChangesFadePattern) {
  LogNormalModel m1(50.0, 3.0, 8.0, 1);
  LogNormalModel m2(50.0, 3.0, 8.0, 2);
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    const util::Vec2 a{0, 0};
    const util::Vec2 b{45.0 + 0.1 * i, static_cast<double>(i)};
    if (m1.link_exists(a, b) != m2.link_exists(a, b)) ++differences;
  }
  EXPECT_GT(differences, 10);
}

TEST(LogNormalTest, ConnectivityDecreasesWithDistance) {
  LogNormalModel model(50.0, 3.0, 6.0, 11);
  // Estimate link probability at two distances by sampling many links.
  auto link_fraction = [&](double distance) {
    int connected = 0;
    const int samples = 500;
    for (int i = 0; i < samples; ++i) {
      const util::Vec2 a{static_cast<double>(i) * 13.0, 0.0};
      const util::Vec2 b{a.x + distance, 1.0};
      if (model.link_exists(a, b)) ++connected;
    }
    return static_cast<double>(connected) / samples;
  };
  const double near = link_fraction(30.0);
  const double mid = link_fraction(50.0);
  const double far = link_fraction(80.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  EXPECT_GT(near, 0.85);
  EXPECT_LT(far, 0.25);
}

TEST(LogNormalTest, CoincidentPointsAlwaysLinked) {
  LogNormalModel model(50.0, 3.0, 10.0, 3);
  EXPECT_TRUE(model.link_exists({5, 5}, {5, 5}));
}

TEST(MaxRangeTest, UnitDiskMaxRangeIsItsRange) {
  EXPECT_DOUBLE_EQ(UnitDiskModel(10.0).max_range(), 10.0);
}

TEST(MaxRangeTest, LogNormalCapIsTheTruncatedFadeDistance) {
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  // d_max = R * 10^(4 sigma / (10 n)) = 50 * 10^0.8.
  EXPECT_DOUBLE_EQ(model.max_range(), 50.0 * std::pow(10.0, 0.8));
  EXPECT_GE(model.max_range(), model.nominal_range());
  // Zero sigma leaves nothing to truncate: the cap is the nominal range.
  EXPECT_DOUBLE_EQ(LogNormalModel(50.0, 3.0, 0.0, 1).max_range(), 50.0);
}

TEST(MaxRangeTest, NoLinkEverBeyondMaxRange) {
  // The spatial index relies on this bound absolutely: sample many link
  // queries just past max_range and require every one to be false, however
  // lucky the hashed fade.
  LogNormalModel model(50.0, 3.0, 8.0, 13);
  const double beyond = model.max_range() * 1.0001;
  for (int i = 0; i < 5000; ++i) {
    const util::Vec2 a{i * 3.7, i * 1.3};
    const util::Vec2 b{a.x + beyond, a.y + 0.1 * i};
    EXPECT_FALSE(model.link_exists(a, b)) << i;
  }
}

}  // namespace
}  // namespace snd::sim
