#include "sim/propagation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"
#include "util/simd.h"

namespace snd::sim {
namespace {

TEST(UnitDiskTest, BoundaryInclusive) {
  UnitDiskModel model(10.0);
  EXPECT_TRUE(model.link_exists({0, 0}, {10, 0}));
  EXPECT_FALSE(model.link_exists({0, 0}, {10.001, 0}));
  EXPECT_TRUE(model.link_exists({0, 0}, {0, 0}));
  EXPECT_DOUBLE_EQ(model.nominal_range(), 10.0);
}

TEST(UnitDiskTest, Symmetric) {
  UnitDiskModel model(10.0);
  const util::Vec2 a{1, 2};
  const util::Vec2 b{8, 5};
  EXPECT_EQ(model.link_exists(a, b), model.link_exists(b, a));
}

TEST(PropagationDelayTest, SpeedOfLight) {
  // 300 m at c is almost exactly 1 microsecond.
  const Time delay = PropagationModel::propagation_delay(300.0);
  EXPECT_NEAR(static_cast<double>(delay.ns()), 1000.0, 2.0);
}

TEST(LogNormalTest, ZeroSigmaReducesToUnitDisk) {
  LogNormalModel model(50.0, 3.0, 0.0, 1);
  EXPECT_TRUE(model.link_exists({0, 0}, {49.9, 0}));
  EXPECT_FALSE(model.link_exists({0, 0}, {50.1, 0}));
}

TEST(LogNormalTest, DeterministicPerLink) {
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  const util::Vec2 a{0, 0};
  const util::Vec2 b{48, 0};
  const bool first = model.link_exists(a, b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.link_exists(a, b), first);
}

TEST(LogNormalTest, SymmetricLinks) {
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  for (double x : {10.0, 30.0, 45.0, 55.0, 70.0}) {
    const util::Vec2 a{0, 0};
    const util::Vec2 b{x, 3.0};
    EXPECT_EQ(model.link_exists(a, b), model.link_exists(b, a)) << x;
  }
}

TEST(LogNormalTest, SeedChangesFadePattern) {
  LogNormalModel m1(50.0, 3.0, 8.0, 1);
  LogNormalModel m2(50.0, 3.0, 8.0, 2);
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    const util::Vec2 a{0, 0};
    const util::Vec2 b{45.0 + 0.1 * i, static_cast<double>(i)};
    if (m1.link_exists(a, b) != m2.link_exists(a, b)) ++differences;
  }
  EXPECT_GT(differences, 10);
}

TEST(LogNormalTest, ConnectivityDecreasesWithDistance) {
  LogNormalModel model(50.0, 3.0, 6.0, 11);
  // Estimate link probability at two distances by sampling many links.
  auto link_fraction = [&](double distance) {
    int connected = 0;
    const int samples = 500;
    for (int i = 0; i < samples; ++i) {
      const util::Vec2 a{static_cast<double>(i) * 13.0, 0.0};
      const util::Vec2 b{a.x + distance, 1.0};
      if (model.link_exists(a, b)) ++connected;
    }
    return static_cast<double>(connected) / samples;
  };
  const double near = link_fraction(30.0);
  const double mid = link_fraction(50.0);
  const double far = link_fraction(80.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  EXPECT_GT(near, 0.85);
  EXPECT_LT(far, 0.25);
}

TEST(LogNormalTest, CoincidentPointsAlwaysLinked) {
  LogNormalModel model(50.0, 3.0, 10.0, 3);
  EXPECT_TRUE(model.link_exists({5, 5}, {5, 5}));
}

TEST(MaxRangeTest, UnitDiskMaxRangeIsItsRange) {
  EXPECT_DOUBLE_EQ(UnitDiskModel(10.0).max_range(), 10.0);
}

TEST(MaxRangeTest, LogNormalCapIsTheTruncatedFadeDistance) {
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  // d_max = R * 10^(4 sigma / (10 n)) = 50 * 10^0.8.
  EXPECT_DOUBLE_EQ(model.max_range(), 50.0 * std::pow(10.0, 0.8));
  EXPECT_GE(model.max_range(), model.nominal_range());
  // Zero sigma leaves nothing to truncate: the cap is the nominal range.
  EXPECT_DOUBLE_EQ(LogNormalModel(50.0, 3.0, 0.0, 1).max_range(), 50.0);
}

TEST(MaxRangeTest, NoLinkEverBeyondMaxRange) {
  // The spatial index relies on this bound absolutely: sample many link
  // queries just past max_range and require every one to be false, however
  // lucky the hashed fade.
  LogNormalModel model(50.0, 3.0, 8.0, 13);
  const double beyond = model.max_range() * 1.0001;
  for (int i = 0; i < 5000; ++i) {
    const util::Vec2 a{i * 3.7, i * 1.3};
    const util::Vec2 b{a.x + beyond, a.y + 0.1 * i};
    EXPECT_FALSE(model.link_exists(a, b)) << i;
  }
}

// -- Strip classification ----------------------------------------------------

/// Checks classify_links() soundness against the model's own link_exists():
/// a definite verdict must agree, and Check is always allowed.
void expect_classes_sound(const PropagationModel& model, util::Vec2 from,
                          const std::vector<double>& xs, const std::vector<double>& ys) {
  std::vector<std::uint8_t> classes(xs.size(), 99);
  model.classify_links(from, xs.data(), ys.data(), xs.size(), classes.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const bool linked = model.link_exists(from, {xs[i], ys[i]});
    if (classes[i] == kLinkIn) {
      EXPECT_TRUE(linked) << "i=" << i << " x=" << xs[i] << " y=" << ys[i];
    } else if (classes[i] == kLinkOut) {
      EXPECT_FALSE(linked) << "i=" << i << " x=" << xs[i] << " y=" << ys[i];
    } else {
      EXPECT_EQ(classes[i], kLinkCheck) << "i=" << i;
    }
  }
}

class StripClassifyTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::set_simd_enabled(true);
    util::set_forced_simd_tier(std::nullopt);
  }
};

// Survivor classes must agree with the scalar filter at every dispatch
// tier, over candidates packed onto the range boundary (cell-edge cases:
// exactly range, one ulp either side) and at every ragged strip length.
TEST_F(StripClassifyTest, UnitDiskClassesSoundAtBoundaries) {
  util::set_simd_enabled(true);
  const double range = 10.0;
  UnitDiskModel model(range);
  const util::Vec2 from{3.0, -2.0};

  util::Rng rng(0xd15c);
  for (const util::SimdTier tier :
       {util::SimdTier::kScalar, util::SimdTier::kSse2, util::SimdTier::kAvx2}) {
    util::set_forced_simd_tier(tier);
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u}) {
      std::vector<double> xs;
      std::vector<double> ys;
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 3 == 0) {
          // Boundary pack: exactly on the disk edge and one ulp off it.
          const double edge = from.x + std::nextafter(
                                           range, i % 2 == 0
                                                      ? 0.0
                                                      : std::numeric_limits<double>::infinity());
          xs.push_back(i % 6 == 0 ? from.x + range : edge);
          ys.push_back(from.y);
        } else {
          xs.push_back(from.x + rng.uniform(-2.0 * range, 2.0 * range));
          ys.push_back(from.y + rng.uniform(-2.0 * range, 2.0 * range));
        }
      }
      expect_classes_sound(model, from, xs, ys);
    }
  }
}

// Log-normal strips: definite Out only past the truncated-fade cutoff;
// fade-edge candidates (just inside max_range) must be Check, never In.
TEST_F(StripClassifyTest, LogNormalClassesSoundAroundFadeEdge) {
  util::set_simd_enabled(true);
  LogNormalModel model(50.0, 3.0, 6.0, 7);
  const util::Vec2 from{10.0, 20.0};
  const double cutoff = model.max_range();

  util::Rng rng(0xfade);
  for (const util::SimdTier tier :
       {util::SimdTier::kScalar, util::SimdTier::kSse2, util::SimdTier::kAvx2}) {
    util::set_forced_simd_tier(tier);
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<std::uint8_t> expected_never_in;
    for (int i = 0; i < 64; ++i) {
      const double d = rng.uniform(0.0, 2.0 * cutoff);
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      xs.push_back(from.x + d * std::cos(angle));
      ys.push_back(from.y + d * std::sin(angle));
    }
    // Fade-edge pack: straddle the cutoff exactly.
    for (const double d : {cutoff, std::nextafter(cutoff, 0.0), cutoff * 1.000001}) {
      xs.push_back(from.x + d);
      ys.push_back(from.y);
    }
    expect_classes_sound(model, from, xs, ys);

    std::vector<std::uint8_t> classes(xs.size());
    model.classify_links(from, xs.data(), ys.data(), xs.size(), classes.data());
    for (const std::uint8_t c : classes) EXPECT_NE(c, kLinkIn);
  }
}

// The base-class default defers everything to the scalar path.
TEST_F(StripClassifyTest, DefaultClassifierMarksEverythingCheck) {
  class OpaqueModel final : public PropagationModel {
   public:
    [[nodiscard]] bool link_exists(util::Vec2, util::Vec2) const override { return true; }
    [[nodiscard]] double nominal_range() const override { return 1.0; }
    [[nodiscard]] double max_range() const override { return 1.0; }
  };
  OpaqueModel model;
  EXPECT_FALSE(model.supports_link_classes());
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};
  std::vector<std::uint8_t> classes(3, 99);
  model.classify_links({0, 0}, xs.data(), ys.data(), 3, classes.data());
  for (const std::uint8_t c : classes) EXPECT_EQ(c, kLinkCheck);
}

}  // namespace
}  // namespace snd::sim
