#include "verify/verifier.h"

#include <gtest/gtest.h>

namespace snd::verify {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : network_(std::make_unique<sim::UnitDiskModel>(50.0), sim::ChannelConfig{}, 1) {
    near_a_ = network_.add_device(1, {0, 0});
    near_b_ = network_.add_device(2, {30, 0});
    far_ = network_.add_device(3, {200, 0});
    replica_near_a_ = network_.add_replica(2, {10, 0});  // clone of identity 2
  }

  sim::Network network_;
  sim::DeviceId near_a_, near_b_, far_, replica_near_a_;
};

TEST_F(VerifierTest, OracleAcceptsPhysicalNeighbors) {
  OracleVerifier oracle;
  EXPECT_TRUE(oracle.verify(network_, near_a_, near_b_, 2));
  EXPECT_TRUE(oracle.verify(network_, near_b_, near_a_, 1));
}

TEST_F(VerifierTest, OracleRejectsRemoteDevices) {
  OracleVerifier oracle;
  EXPECT_FALSE(oracle.verify(network_, near_a_, far_, 3));
}

TEST_F(VerifierTest, OracleAcceptsNearbyReplica) {
  // The paper's premise: direct verification cannot tell a physically
  // present replica from the genuine node.
  OracleVerifier oracle;
  EXPECT_TRUE(oracle.verify(network_, near_a_, replica_near_a_, 2));
}

TEST_F(VerifierTest, OracleCostsNoMessages) {
  EXPECT_EQ(OracleVerifier{}.messages_per_verification(), 0u);
}

TEST_F(VerifierTest, RttAcceptsNeighborsRejectsFar) {
  RttVerifier rtt;
  EXPECT_TRUE(rtt.verify(network_, near_a_, near_b_, 2));
  EXPECT_FALSE(rtt.verify(network_, near_a_, far_, 3));
  EXPECT_TRUE(rtt.verify(network_, near_a_, replica_near_a_, 2));
}

TEST_F(VerifierTest, RttToleratesJitterForClearlyCloseNodes) {
  RttVerifier rtt(/*clock_jitter_ns=*/20.0, /*slack=*/1.1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rtt.verify(network_, near_a_, near_b_, 2));
}

TEST_F(VerifierTest, LocationAcceptsNeighborsRejectsFar) {
  LocationVerifier location;
  EXPECT_TRUE(location.verify(network_, near_a_, near_b_, 2));
  EXPECT_FALSE(location.verify(network_, near_a_, far_, 3));
  EXPECT_TRUE(location.verify(network_, near_a_, replica_near_a_, 2));
}

TEST_F(VerifierTest, MessageCostsDeclared) {
  EXPECT_EQ(RttVerifier{}.messages_per_verification(), 2u);
  EXPECT_EQ(LocationVerifier{}.messages_per_verification(), 1u);
}

TEST_F(VerifierTest, Names) {
  EXPECT_EQ(OracleVerifier{}.name(), "oracle");
  EXPECT_EQ(RttVerifier{}.name(), "rtt");
  EXPECT_EQ(LocationVerifier{}.name(), "location");
}

TEST_F(VerifierTest, ImperfectZeroRatesMatchesInner) {
  ImperfectVerifier verifier(std::make_shared<OracleVerifier>(), 0.0, 0.0);
  EXPECT_TRUE(verifier.verify(network_, near_a_, near_b_, 2));
  EXPECT_FALSE(verifier.verify(network_, near_a_, far_, 3));
  EXPECT_EQ(verifier.name(), "imperfect(oracle)");
}

TEST_F(VerifierTest, ImperfectFalseRejectRateObserved) {
  ImperfectVerifier verifier(std::make_shared<OracleVerifier>(), 0.3, 0.0);
  int accepted = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (verifier.verify(network_, near_a_, near_b_, 2)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / trials, 0.7, 0.03);
}

TEST_F(VerifierTest, ImperfectFalseAcceptRateObserved) {
  ImperfectVerifier verifier(std::make_shared<OracleVerifier>(), 0.0, 0.2);
  int accepted = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (verifier.verify(network_, near_a_, far_, 3)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / trials, 0.2, 0.03);
}

TEST_F(VerifierTest, ImperfectInheritsMessageCost) {
  ImperfectVerifier verifier(std::make_shared<RttVerifier>(), 0.1, 0.1);
  EXPECT_EQ(verifier.messages_per_verification(), 2u);
}

}  // namespace
}  // namespace snd::verify
