#include "topology/graph.h"

#include <gtest/gtest.h>

namespace snd::topology {
namespace {

TEST(NeighborListTest, IntersectionSize) {
  const NeighborList a = {1, 3, 5, 7};
  const NeighborList b = {2, 3, 4, 5};
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_EQ(intersection_size(a, {}), 0u);
  EXPECT_EQ(intersection_size(a, a), 4u);
}

TEST(NeighborListTest, Intersect) {
  EXPECT_EQ(intersect({1, 2, 3}, {2, 3, 4}), (NeighborList{2, 3}));
  EXPECT_EQ(intersect({1}, {2}), NeighborList{});
}

TEST(NeighborListTest, InsertSortedMaintainsOrder) {
  NeighborList list;
  for (NodeId id : {5u, 1u, 3u, 1u, 9u, 3u}) insert_sorted(list, id);
  EXPECT_EQ(list, (NeighborList{1, 3, 5, 9}));
}

TEST(NeighborListTest, Contains) {
  const NeighborList list = {2, 4, 6};
  EXPECT_TRUE(contains(list, 4));
  EXPECT_FALSE(contains(list, 5));
  EXPECT_FALSE(contains({}, 1));
}

TEST(DigraphTest, AddEdgeCreatesNodes) {
  Digraph g;
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_TRUE(g.has_node(1));
  EXPECT_TRUE(g.has_node(2));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
}

TEST(DigraphTest, DuplicateEdgeNotCounted) {
  Digraph g;
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DigraphTest, RemoveEdge) {
  Digraph g;
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(1, 2));
  EXPECT_FALSE(g.remove_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.has_node(1));  // nodes survive edge removal
}

TEST(DigraphTest, RemoveNodeRemovesIncidentEdges) {
  Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  g.remove_node(1);
  EXPECT_FALSE(g.has_node(1));
  EXPECT_EQ(g.edge_count(), 1u);  // only 2 -> 3 survives
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(DigraphTest, SuccessorsSortedAndStable) {
  Digraph g;
  g.add_edge(1, 9);
  g.add_edge(1, 3);
  g.add_edge(1, 5);
  EXPECT_EQ(g.successor_list(1), (NeighborList{3, 5, 9}));
  EXPECT_TRUE(g.successors(42).empty());
}

TEST(DigraphTest, Predecessors) {
  Digraph g;
  g.add_edge(1, 5);
  g.add_edge(2, 5);
  g.add_edge(5, 1);
  const auto preds = g.predecessors(5);
  EXPECT_EQ(preds, (std::vector<NodeId>{1, 2}));
}

TEST(DigraphTest, EdgesEnumeration) {
  Digraph g;
  g.add_edge(2, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(NodeId{1}, NodeId{2}));
  EXPECT_EQ(edges[1], std::make_pair(NodeId{1}, NodeId{3}));
  EXPECT_EQ(edges[2], std::make_pair(NodeId{2}, NodeId{1}));
}

TEST(DigraphTest, MutualEdge) {
  Digraph g;
  g.add_edge(1, 2);
  EXPECT_FALSE(g.mutual_edge(1, 2));
  g.add_edge(2, 1);
  EXPECT_TRUE(g.mutual_edge(1, 2));
  EXPECT_TRUE(g.mutual_edge(2, 1));
}

TEST(DigraphTest, RelabeledPreservesStructure) {
  Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_node(4);
  const Digraph h = g.relabeled([](NodeId x) { return x + 100; });
  EXPECT_TRUE(h.has_edge(101, 102));
  EXPECT_TRUE(h.has_edge(102, 103));
  EXPECT_TRUE(h.has_node(104));
  EXPECT_EQ(h.edge_count(), g.edge_count());
  EXPECT_EQ(h.node_count(), g.node_count());
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  const Digraph sub = g.induced({1, 2});
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_node(3));
  EXPECT_EQ(sub.edge_count(), 1u);
}

TEST(DigraphTest, EqualityIsStructural) {
  Digraph a;
  a.add_edge(1, 2);
  Digraph b;
  b.add_edge(1, 2);
  EXPECT_TRUE(a == b);
  b.add_edge(2, 1);
  EXPECT_FALSE(a == b);
}

TEST(DigraphTest, AddNodeIdempotent) {
  Digraph g;
  g.add_edge(1, 2);
  g.add_node(1);  // must not clear existing adjacency
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.node_count(), 2u);
}

}  // namespace
}  // namespace snd::topology
