#include "util/flat.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/soa.h"

namespace snd::util {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);

  map.insert_or_assign(2, "two");
  map.insert_or_assign(1, "one");
  map.insert_or_assign(3, "three");
  EXPECT_EQ(map.size(), 3u);
  ASSERT_NE(map.find(2), nullptr);
  EXPECT_EQ(*map.find(2), "two");
  EXPECT_TRUE(map.contains(1));
  EXPECT_FALSE(map.contains(4));

  map.insert_or_assign(2, "TWO");
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.find(2), "TWO");

  EXPECT_TRUE(map.erase(2));
  EXPECT_FALSE(map.erase(2));
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, IterationAscendingByKey) {
  FlatMap<int, int> map;
  for (int k : {5, 1, 4, 2, 3}) map.insert_or_assign(k, k * 10);
  std::vector<int> keys;
  for (const auto& [k, v] : map) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 10);
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FlatMapTest, TryEmplaceOnlyInsertsWhenAbsent) {
  FlatMap<int, int> map;
  EXPECT_TRUE(map.try_emplace(1, 10));
  EXPECT_FALSE(map.try_emplace(1, 20));
  EXPECT_EQ(*map.find(1), 10);
}

TEST(FlatMapTest, GetOrInsertDefaultConstructs) {
  FlatMap<int, int> map;
  int& v = map.get_or_insert(7);
  EXPECT_EQ(v, 0);
  v = 42;
  EXPECT_EQ(*map.find(7), 42);
  EXPECT_EQ(map.get_or_insert(7), 42);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatSetTest, InsertContainsOrdering) {
  FlatSet<int> set;
  EXPECT_TRUE(set.insert(3));
  EXPECT_TRUE(set.insert(1));
  EXPECT_TRUE(set.insert(2));
  EXPECT_FALSE(set.insert(2));  // duplicate
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(1));
  EXPECT_FALSE(set.contains(9));
  EXPECT_EQ(set.keys(), (std::vector<int>{1, 2, 3}));
}

/// Runs `body` once with the flat representation and once with the seed
/// heap-node representation, restoring the process-wide flag afterwards.
template <typename Body>
void with_both_representations(Body&& body) {
  const bool saved = soa_enabled();
  for (const bool soa : {true, false}) {
    set_soa_enabled(soa);
    body(soa);
  }
  set_soa_enabled(saved);
}

TEST(DualMapTest, SemanticsIdenticalAcrossRepresentations) {
  with_both_representations([](bool soa) {
    DualMap<int, int> map;
    EXPECT_TRUE(map.empty()) << "soa=" << soa;
    EXPECT_TRUE(map.try_emplace(2, 20));
    EXPECT_TRUE(map.try_emplace(1, 10));
    EXPECT_FALSE(map.try_emplace(2, 99));
    map.insert_or_assign(3, 30);
    map.insert_or_assign(3, 33);

    EXPECT_EQ(map.size(), 3u);
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(*map.find(1), 10);
    EXPECT_EQ(map.find(9), nullptr);
    EXPECT_TRUE(map.contains(3));
    EXPECT_EQ(map.at(3), 33);

    std::vector<int> keys;
    for (const auto& [k, v] : map) keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<int>{1, 2, 3})) << "soa=" << soa;

    map.clear();
    EXPECT_TRUE(map.empty());
  });
}

TEST(DualMapTest, RepresentationCapturedAtConstruction) {
  const bool saved = soa_enabled();
  set_soa_enabled(true);
  DualMap<int, int> map;
  map.insert_or_assign(1, 10);
  // Flipping the process-wide flag must not re-interpret live containers.
  set_soa_enabled(false);
  EXPECT_TRUE(map.contains(1));
  map.insert_or_assign(2, 20);
  EXPECT_EQ(map.size(), 2u);
  set_soa_enabled(saved);
}

TEST(DualSetTest, SemanticsIdenticalAcrossRepresentations) {
  with_both_representations([](bool soa) {
    DualSet<int> set;
    EXPECT_TRUE(set.insert(2));
    EXPECT_TRUE(set.insert(1));
    EXPECT_FALSE(set.insert(2));
    EXPECT_EQ(set.size(), 2u) << "soa=" << soa;
    EXPECT_TRUE(set.contains(1));
    EXPECT_FALSE(set.contains(5));
    set.clear();
    EXPECT_TRUE(set.empty());
  });
}

}  // namespace
}  // namespace snd::util
