#include "sim/network.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/rng.h"
#include "util/simd.h"

namespace snd::sim {
namespace {

std::unique_ptr<Network> make_network(double range = 50.0, ChannelConfig config = {},
                                      std::uint64_t seed = 1) {
  return std::make_unique<Network>(std::make_unique<UnitDiskModel>(range), config, seed);
}

TEST(NetworkTest, AddDeviceAssignsSequentialIds) {
  auto net = make_network();
  EXPECT_EQ(net->add_device(100, {0, 0}), 0u);
  EXPECT_EQ(net->add_device(101, {1, 1}), 1u);
  EXPECT_EQ(net->device_count(), 2u);
  EXPECT_EQ(net->device(0).identity, 100u);
}

TEST(NetworkTest, DeliversWithinRange) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {5, 0});
  int received = 0;
  net->set_receiver(b, [&](const Packet& p) {
    ++received;
    EXPECT_EQ(p.src, 1u);
    EXPECT_EQ(p.sender_device, a);
  });
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 1);
}

TEST(NetworkTest, NoDeliveryBeyondRange) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {50, 0});
  int received = 0;
  net->set_receiver(b, [&](const Packet&) { ++received; });
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 0);
}

TEST(NetworkTest, BroadcastReachesAllNeighbors) {
  auto net = make_network(20.0);
  const DeviceId center = net->add_device(1, {0, 0});
  int received = 0;
  for (int i = 0; i < 5; ++i) {
    const DeviceId d = net->add_device(static_cast<NodeId>(2 + i), {5.0 + i, 0});
    net->set_receiver(d, [&](const Packet&) { ++received; });
  }
  net->transmit(center, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 5);
}

TEST(NetworkTest, SenderDoesNotHearItself) {
  auto net = make_network();
  const DeviceId a = net->add_device(1, {0, 0});
  int received = 0;
  net->set_receiver(a, [&](const Packet&) { ++received; });
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 0);
}

TEST(NetworkTest, DeadDeviceNeitherSendsNorReceives) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {5, 0});
  int received = 0;
  net->set_receiver(b, [&](const Packet&) { ++received; });

  net->device(b).alive = false;
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 0);

  net->device(b).alive = true;
  net->device(a).alive = false;
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 0);
}

TEST(NetworkTest, DeliveryDelayedByTransmissionTime) {
  ChannelConfig config;
  config.processing_delay = Time::zero();
  auto net = make_network(10.0, config);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {5, 0});
  Time delivered_at = Time::zero();
  net->set_receiver(b, [&](const Packet&) { delivered_at = net->now(); });
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = util::Bytes(100, 0)},
                obs::Phase::kOther);
  net->scheduler().run();
  // 111 bytes at 250 kbps = 3.552 ms, plus ~17 ns propagation.
  EXPECT_GT(delivered_at, Time::milliseconds(3));
  EXPECT_LT(delivered_at, Time::milliseconds(4));
}

TEST(NetworkTest, JammingBlocksBothDirections) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {5, 0});
  int received = 0;
  net->set_receiver(b, [&](const Packet&) { ++received; });

  const std::size_t jammer = net->add_jammer({{5, 0}, 2.0});  // covers b only
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 0);

  net->remove_jammer(jammer);
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 1);
}

TEST(NetworkTest, ChannelLossDropsFraction) {
  ChannelConfig config;
  config.loss_probability = 0.4;
  auto net = make_network(10.0, config, 9);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {5, 0});
  int received = 0;
  net->set_receiver(b, [&](const Packet&) { ++received; });
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) {
    net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  }
  net->scheduler().run();
  EXPECT_NEAR(static_cast<double>(received) / sent, 0.6, 0.04);
}

TEST(NetworkTest, MetricsChargeCategoriesOncePerTransmit) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  for (int i = 0; i < 3; ++i) {
    const DeviceId d = net->add_device(static_cast<NodeId>(2 + i), {1.0 + i, 0});
    net->set_receiver(d, [](const Packet&) {});
  }
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = util::Bytes(10, 0)},
                obs::Phase::kHello);
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kAck);
  net->scheduler().run();

  EXPECT_EQ(net->metrics().phase(obs::Phase::kHello).messages, 1u);
  EXPECT_EQ(net->metrics().phase(obs::Phase::kHello).bytes, 10u + Packet::kHeaderBytes);
  EXPECT_EQ(net->metrics().phase(obs::Phase::kAck).messages, 1u);
  EXPECT_EQ(net->metrics().total().messages, 2u);
  EXPECT_EQ(net->metrics().deliveries(), 6u);  // 3 receivers x 2 packets
}

TEST(NetworkTest, DevicesWithIdentityFindsReplicas) {
  auto net = make_network();
  net->add_device(1, {0, 0});
  net->add_replica(1, {30, 30});
  net->add_device(2, {10, 10});
  const auto holders = net->devices_with_identity(1);
  EXPECT_EQ(holders.size(), 2u);
  EXPECT_TRUE(net->device(holders[1]).replica);
  EXPECT_TRUE(net->device(holders[1]).compromised);
  EXPECT_FALSE(net->device(holders[0]).replica);
}

TEST(NetworkTest, LinkIsSymmetricAndExcludesSelf) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {9, 0});
  EXPECT_TRUE(net->link(a, b));
  EXPECT_TRUE(net->link(b, a));
  EXPECT_FALSE(net->link(a, a));
}

TEST(NetworkTest, DevicesInRange) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  net->add_device(2, {5, 0});
  net->add_device(3, {9, 0});
  net->add_device(4, {20, 0});
  EXPECT_EQ(net->devices_in_range(a).size(), 2u);
}

// One delivered packet as observed by a receiver: (time, receiver device,
// physical sender). Byte-identical traces across runs require identical
// loss-RNG draw order, delivery scheduling order, and event tie-breaking.
using DeliveryTrace = std::vector<std::tuple<std::int64_t, DeviceId, DeviceId>>;

struct TrafficResult {
  DeliveryTrace trace;
  std::uint64_t deliveries = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const TrafficResult&, const TrafficResult&) = default;
};

/// Builds a log-normal-shadowed field with loss and a jammer, including
/// devices exactly on grid-cell boundaries and far outside the populated
/// bounding box, runs broadcast + unicast traffic, and records everything
/// observable. The field and traffic depend only on the seeds, never on
/// `use_index`.
TrafficResult run_traffic(bool use_index) {
  ChannelConfig config;
  config.loss_probability = 0.25;
  Network net(std::make_unique<LogNormalModel>(60.0, 3.0, 6.0, 42), config, 7);
  net.set_spatial_index_enabled(use_index);
  EXPECT_EQ(net.spatial_index_enabled(), use_index);

  util::Rng place(99);
  const std::size_t n = 150;
  for (std::size_t i = 0; i < n; ++i) {
    net.add_device(static_cast<NodeId>(i + 1),
                   {place.uniform(0.0, 900.0), place.uniform(0.0, 900.0)});
  }
  // Cell boundaries: the cell side is the model's max_range; park devices
  // exactly on multiples of it (and at the origin corner).
  const double cell = net.propagation().max_range();
  net.add_device(200, {0.0, 0.0});
  net.add_device(201, {cell, cell});
  net.add_device(202, {2.0 * cell, 0.0});
  net.add_device(203, {cell, 0.0});
  // Outliers far outside the populated region (sparse grid, no bounding
  // box): they must neither crash queries nor ever hear anything.
  net.add_device(204, {-5000.0, -5000.0});
  net.add_device(205, {50000.0, 50000.0});
  net.add_replica(1, {450.0, 450.0});

  TrafficResult result;
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    net.set_receiver(d, [&result, &net, d](const Packet& p) {
      result.trace.emplace_back(net.now().ns(), d, p.sender_device);
    });
  }
  net.add_jammer({{300.0, 300.0}, 80.0});

  for (DeviceId d = 0; d < net.device_count(); ++d) {
    const NodeId self = net.device(d).identity;
    net.transmit(d, Packet{.src = self, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
    net.transmit(d,
                 Packet{.src = self,
                        .dst = static_cast<NodeId>(((d + 1) % n) + 1),
                        .type = 2,
                        .payload = util::Bytes(16, 0xab)},
                 obs::Phase::kOther);
  }
  net.scheduler().run();

  result.deliveries = net.metrics().deliveries();
  result.messages = net.metrics().total().messages;
  result.bytes = net.metrics().total().bytes;
  return result;
}

TEST(SpatialIndexTest, GridTrafficBitIdenticalToLinearScan) {
  const TrafficResult grid = run_traffic(true);
  const TrafficResult linear = run_traffic(false);
  EXPECT_GT(grid.deliveries, 100u);  // the field is actually busy
  EXPECT_EQ(grid.trace, linear.trace);
  EXPECT_TRUE(grid == linear);
}

// The SND_SIMD gate is latched into the Network at construction, so each
// run_traffic call inside these tests picks up the toggled setting.
TEST(SpatialIndexTest, StripFilterTrafficBitIdenticalToScalarFilter) {
  util::set_simd_enabled(true);
  const TrafficResult strip_grid = run_traffic(true);
  const TrafficResult strip_linear = run_traffic(false);
  util::set_simd_enabled(false);
  const TrafficResult scalar_grid = run_traffic(true);
  const TrafficResult scalar_linear = run_traffic(false);
  util::set_simd_enabled(true);

  EXPECT_GT(strip_grid.deliveries, 100u);
  EXPECT_TRUE(strip_grid == scalar_grid);
  EXPECT_TRUE(strip_linear == scalar_linear);
  EXPECT_TRUE(strip_grid == scalar_linear);
}

/// Unit-disk variant: the strip path issues definite In verdicts here (not
/// just Out), including for receivers exactly on the disk boundary.
TrafficResult run_unit_disk_traffic() {
  ChannelConfig config;
  config.loss_probability = 0.15;
  Network net(std::make_unique<UnitDiskModel>(50.0), config, 11);

  util::Rng place(5);
  for (std::size_t i = 0; i < 120; ++i) {
    net.add_device(static_cast<NodeId>(i + 1),
                   {place.uniform(0.0, 500.0), place.uniform(0.0, 500.0)});
  }
  // Boundary-inclusive pair: exactly one radio range apart.
  net.add_device(300, {600.0, 0.0});
  net.add_device(301, {650.0, 0.0});

  TrafficResult result;
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    net.set_receiver(d, [&result, &net, d](const Packet& p) {
      result.trace.emplace_back(net.now().ns(), d, p.sender_device);
    });
  }
  for (DeviceId d = 0; d < net.device_count(); ++d) {
    const NodeId self = net.device(d).identity;
    net.transmit(d, Packet{.src = self, .dst = kNoNode, .type = 1, .payload = {}},
                 obs::Phase::kOther);
  }
  net.scheduler().run();

  result.deliveries = net.metrics().deliveries();
  result.messages = net.metrics().total().messages;
  result.bytes = net.metrics().total().bytes;
  return result;
}

TEST(SpatialIndexTest, UnitDiskStripFilterBitIdenticalToScalar) {
  util::set_simd_enabled(true);
  const TrafficResult strip = run_unit_disk_traffic();
  util::set_simd_enabled(false);
  const TrafficResult scalar = run_unit_disk_traffic();
  util::set_simd_enabled(true);
  EXPECT_GT(strip.deliveries, 50u);
  EXPECT_TRUE(strip == scalar);
}

TEST(SpatialIndexTest, DevicesInRangeMatchesLinearScan) {
  Network net(std::make_unique<UnitDiskModel>(50.0), ChannelConfig{}, 3);
  util::Rng place(17);
  for (std::size_t i = 0; i < 200; ++i) {
    net.add_device(static_cast<NodeId>(i + 1),
                   {place.uniform(-200.0, 400.0), place.uniform(-200.0, 400.0)});
  }
  // Exact cell-boundary placements, including a pair at exactly the radio
  // range (boundary-inclusive link).
  net.add_device(500, {50.0, 0.0});
  net.add_device(501, {100.0, 0.0});
  net.add_device(502, {0.0, -50.0});
  net.device(5).alive = false;  // dead devices stay indexed but invisible

  for (DeviceId d = 0; d < net.device_count(); ++d) {
    net.set_spatial_index_enabled(true);
    const auto indexed = net.devices_in_range(d);
    net.set_spatial_index_enabled(false);
    const auto linear = net.devices_in_range(d);
    EXPECT_EQ(indexed, linear) << "device " << d;
  }
}

TEST(SpatialIndexTest, IndexedBroadcastReachesBoundaryNeighbors) {
  // Receivers at exactly the radio range sit in neighboring grid cells;
  // the 3x3 block query must still find them.
  auto net = make_network(10.0);
  const DeviceId center = net->add_device(1, {0, 0});
  int received = 0;
  NodeId next_identity = 2;
  for (const util::Vec2 p :
       {util::Vec2{10, 0}, util::Vec2{-10, 0}, util::Vec2{0, 10}, util::Vec2{0, -10}}) {
    const DeviceId d = net->add_device(next_identity++, p);
    net->set_receiver(d, [&](const Packet&) { ++received; });
  }
  ASSERT_TRUE(net->spatial_index_enabled());
  net->transmit(center, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 4);
}

TEST(SpatialIndexTest, DeviceAddedAfterBroadcastsStillReceives) {
  // Regression pin for stale candidate caches: the first broadcast warms
  // the 3x3 block cache around the sender; a device added afterwards must
  // invalidate it (grid_version_ bump) and hear the second broadcast.
  auto net = make_network(20.0);
  const DeviceId a = net->add_device(1, {0, 0});
  ASSERT_TRUE(net->spatial_index_enabled());
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();

  const DeviceId late = net->add_device(2, {5, 0});
  int received = 0;
  net->set_receiver(late, [&](const Packet&) { ++received; });
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 1);
}

TEST(SpatialIndexTest, SetPositionMovesDeviceIntoRange) {
  // A device parked far away (different grid cell, cached as unreachable)
  // moves next to the sender: set_position must re-bucket it and invalidate
  // the cached candidate lists, or the move would be invisible to the
  // radio. Writing Device::position directly was exactly that bug.
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {500, 500});
  int received = 0;
  net->set_receiver(b, [&](const Packet&) { ++received; });

  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 0);  // out of range, and the block cache is now warm

  net->set_position(b, {5, 0});
  EXPECT_EQ(net->device(b).position.x, 5.0);
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 1);
}

TEST(SpatialIndexTest, SetPositionMovesDeviceOutOfRange) {
  auto net = make_network(10.0);
  const DeviceId a = net->add_device(1, {0, 0});
  const DeviceId b = net->add_device(2, {5, 0});
  int received = 0;
  net->set_receiver(b, [&](const Packet&) { ++received; });
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 1);

  net->set_position(b, {800, 800});
  net->transmit(a, Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  net->scheduler().run();
  EXPECT_EQ(received, 1);  // unchanged: the moved device is out of reach
}

TEST(SpatialIndexTest, SetPositionKeepsGridIdenticalToLinearScan) {
  // After a batch of moves (cell-crossing and same-cell alike, including a
  // move onto an exact cell boundary), the indexed receiver resolution must
  // still match the ground-truth linear scan for every device.
  Network net(std::make_unique<UnitDiskModel>(50.0), ChannelConfig{}, 3);
  util::Rng place(23);
  for (std::size_t i = 0; i < 120; ++i) {
    net.add_device(static_cast<NodeId>(i + 1),
                   {place.uniform(0.0, 500.0), place.uniform(0.0, 500.0)});
  }
  util::Rng move(29);
  for (DeviceId d = 0; d < net.device_count(); d += 7) {
    net.set_position(d, {move.uniform(0.0, 500.0), move.uniform(0.0, 500.0)});
  }
  net.set_position(3, {50.0, 50.0});                           // exact cell corner
  net.set_position(10, net.device(10).position + util::Vec2{0.1, 0.1});  // same cell

  for (DeviceId d = 0; d < net.device_count(); ++d) {
    net.set_spatial_index_enabled(true);
    const auto indexed = net.devices_in_range(d);
    net.set_spatial_index_enabled(false);
    const auto linear = net.devices_in_range(d);
    EXPECT_EQ(indexed, linear) << "device " << d;
  }
}

TEST(MetricsTest, ResetClears) {
  Metrics metrics;
  metrics.count_tx(obs::Phase::kOther, 10);
  metrics.count_delivery();
  metrics.reset();
  EXPECT_EQ(metrics.total().messages, 0u);
  EXPECT_EQ(metrics.deliveries(), 0u);
}

TEST(MetricsTest, UntouchedPhaseIsZero) {
  Metrics metrics;
  EXPECT_EQ(metrics.phase(obs::Phase::kUpdate).messages, 0u);
  EXPECT_EQ(metrics.phase(obs::Phase::kUpdate).bytes, 0u);
}

}  // namespace
}  // namespace snd::sim
