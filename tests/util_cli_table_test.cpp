#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/log.h"
#include "util/table.h"

namespace snd::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(CliTest, ParsesEqualsForm) {
  const auto args = argv_of({"prog", "--nodes=200", "--range=50.5"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("nodes", 0), 200);
  EXPECT_DOUBLE_EQ(cli.get_double("range", 0.0), 50.5);
}

TEST(CliTest, ParsesSpaceForm) {
  const auto args = argv_of({"prog", "--seed", "42"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("seed", 0), 42);
}

TEST(CliTest, BooleanFlagWithoutValue) {
  const auto args = argv_of({"prog", "--verbose"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(CliTest, MissingFlagUsesFallback) {
  const auto args = argv_of({"prog"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(cli.get_int("nodes", 77), 77);
  EXPECT_EQ(cli.get("name", "default"), "default");
  EXPECT_FALSE(cli.has("nodes"));
}

TEST(CliTest, PositionalArguments) {
  const auto args = argv_of({"prog", "input.txt", "--flag", "output.txt"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  // "--flag output.txt" consumes output.txt as the flag's value.
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.get("flag", ""), "output.txt");
}

TEST(CliTest, BoolValueForms) {
  const auto args = argv_of({"prog", "--a=true", "--b=1", "--c=yes", "--d=false"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(TableTest, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  const std::string out = table.to_string();
  // Every line must be equally wide.
  std::istringstream stream(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(stream, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TableTest, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(1234), "1234");
  EXPECT_EQ(Table::percent(0.5), "50.0%");
  EXPECT_EQ(Table::percent(0.123456, 2), "12.35%");
}

TEST(TableTest, RowCount) {
  Table table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(LogTest, ThresholdFilters) {
  set_log_level(LogLevel::kError);
  // Below-threshold logging must be a no-op (nothing observable to assert
  // beyond not crashing; the threshold getter is the contract).
  log_info() << "suppressed";
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace snd::util
