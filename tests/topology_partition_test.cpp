#include "topology/partition.h"

#include <gtest/gtest.h>

namespace snd::topology {
namespace {

Digraph two_islands() {
  // Island A: 1-2-3 chain; island B: 10-11; isolated: 20.
  Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(10, 11);
  g.add_edge(11, 10);
  g.add_node(20);
  return g;
}

TEST(WeakComponentsTest, FindsAllComponents) {
  const auto components = weakly_connected_components(two_islands());
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(components[1], (std::vector<NodeId>{10, 11}));
  EXPECT_EQ(components[2], (std::vector<NodeId>{20}));
}

TEST(WeakComponentsTest, DirectionIgnored) {
  Digraph g;
  g.add_edge(1, 2);  // one-way only
  const auto components = weakly_connected_components(g);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 2u);
}

TEST(WeakComponentsTest, EmptyGraph) {
  EXPECT_TRUE(weakly_connected_components(Digraph{}).empty());
}

TEST(WeakComponentsTest, OrderedBySizeDescending) {
  Digraph g;
  g.add_edge(1, 2);
  for (NodeId i = 10; i < 15; ++i) g.add_edge(i, i + 1);
  const auto components = weakly_connected_components(g);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_GT(components[0].size(), components[1].size());
}

TEST(MutualComponentsTest, OneWayEdgesDoNotJoin) {
  Digraph g;
  g.add_edge(1, 2);  // not mutual
  g.add_edge(3, 4);
  g.add_edge(4, 3);  // mutual
  const auto components = mutual_components(g);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<NodeId>{3, 4}));
}

TEST(AnalyzePartitionsTest, DefaultKeepsOnlyLargest) {
  const auto report = analyze_partitions(two_islands());
  ASSERT_EQ(report.partitions.size(), 1u);
  EXPECT_EQ(report.partitions[0], (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(report.isolated, (std::vector<NodeId>{10, 11, 20}));
}

TEST(AnalyzePartitionsTest, CustomUsefulPredicate) {
  // The paper: "others may consider all large-enough partitions".
  const auto report = analyze_partitions(
      two_islands(), [](const std::vector<NodeId>& c) { return c.size() >= 2; });
  EXPECT_EQ(report.partitions.size(), 2u);
  EXPECT_EQ(report.isolated, (std::vector<NodeId>{20}));
}

TEST(AnalyzePartitionsTest, FullyConnectedHasNoIsolated) {
  Digraph g;
  for (NodeId i = 1; i < 10; ++i) g.add_edge(i, i + 1);
  const auto report = analyze_partitions(g);
  EXPECT_TRUE(report.isolated.empty());
  EXPECT_EQ(report.partitions[0].size(), 10u);
}

}  // namespace
}  // namespace snd::topology
