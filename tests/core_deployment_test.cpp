#include "core/deployment_driver.h"

#include <gtest/gtest.h>

#include "crypto/eg_pool.h"
#include "topology/stats.h"

namespace snd::core {
namespace {

DeploymentConfig small_config(std::uint64_t seed = 2) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {120.0, 120.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 3;
  config.seed = seed;
  return config;
}

TEST(DeploymentDriverTest, IdentitiesSequentialFromOne) {
  SndDeployment deployment(small_config());
  const auto ids = deployment.deploy_round(5);
  EXPECT_EQ(ids, (std::vector<NodeId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(deployment.deploy_node_at({1, 1}), 6u);
}

TEST(DeploymentDriverTest, PositionsInsideField) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(100);
  for (const sim::Device& d : deployment.network().devices()) {
    EXPECT_TRUE(deployment.config().field.contains(d.position));
  }
}

TEST(DeploymentDriverTest, AgentLookupByIdentityAndDevice) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(10);
  SndNode* by_identity = deployment.agent(3);
  ASSERT_NE(by_identity, nullptr);
  EXPECT_EQ(by_identity->identity(), 3u);
  EXPECT_EQ(deployment.agent_for_device(by_identity->device()), by_identity);
  EXPECT_EQ(deployment.agent(999), nullptr);
  EXPECT_EQ(deployment.agent_for_device(999), nullptr);
}

TEST(DeploymentDriverTest, DetachRemovesAgent) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(10);
  const sim::DeviceId device = deployment.agent(5)->device();
  auto detached = deployment.detach_agent(device);
  ASSERT_NE(detached, nullptr);
  EXPECT_EQ(deployment.agent(5), nullptr);
  EXPECT_EQ(deployment.agent_for_device(device), nullptr);
  EXPECT_EQ(deployment.detach_agent(device), nullptr);
}

TEST(DeploymentDriverTest, KillDeviceStopsParticipation) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(20);
  const sim::DeviceId victim = deployment.agent(1)->device();
  deployment.kill_device(victim);
  deployment.run();
  EXPECT_FALSE(deployment.network().device(victim).alive);
  // Dead node's identity must not appear in anyone's functional list.
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_FALSE(topology::contains(agent->functional_neighbors(), 1));
  }
}

TEST(DeploymentDriverTest, ActualGraphExcludesCompromisedDevices) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(20);
  deployment.run();
  deployment.network().device(deployment.agent(2)->device()).compromised = true;
  const topology::Digraph actual = deployment.actual_benign_graph();
  EXPECT_FALSE(actual.has_node(2));
}

TEST(DeploymentDriverTest, GraphsCoverAllAgents) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(30);
  deployment.run();
  EXPECT_EQ(deployment.tentative_graph().node_count(), 30u);
  EXPECT_EQ(deployment.functional_graph().node_count(), 30u);
}

TEST(DeploymentDriverTest, RunForAdvancesBoundedTime) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(10);
  deployment.run_for(sim::Time::milliseconds(100));
  EXPECT_LE(deployment.network().now(), sim::Time::milliseconds(101));
  EXPECT_FALSE(deployment.agent(1)->discovery_complete());
  deployment.run();
  EXPECT_TRUE(deployment.agent(1)->discovery_complete());
}

TEST(DeploymentDriverTest, CustomKeySchemeLimitsRelations) {
  // A sparse EG pool denies some pairs a key; those pairs cannot complete
  // the authenticated exchanges and functional relations thin out.
  SndDeployment restricted(small_config(7));
  restricted.set_key_scheme(std::make_shared<crypto::EschenauerGligorScheme>(7, 2000, 15));
  restricted.deploy_round(40);
  restricted.run();

  SndDeployment full(small_config(7));
  full.deploy_round(40);
  full.run();

  EXPECT_LT(restricted.functional_graph().edge_count(), full.functional_graph().edge_count());
}

TEST(DeploymentDriverTest, MasterKeyAccessibleForAudit) {
  SndDeployment deployment(small_config());
  deployment.deploy_round(5);
  deployment.run();
  EXPECT_TRUE(deployment.master_key().present());
  EXPECT_TRUE(deployment.agent(1)->record().verify(deployment.master_key()));
}

TEST(DeploymentDriverTest, LogNormalConfigBuildsShadowedNetwork) {
  DeploymentConfig config = small_config();
  config.log_normal_shadowing = true;
  config.shadowing_sigma_db = 8.0;
  SndDeployment deployment(config);
  deployment.deploy_round(60);
  deployment.run();
  // Shadowing should produce an irregular graph: strictly fewer edges than
  // the unit disk would at sigma -> some long links fail.
  SndDeployment disk(small_config());
  disk.deploy_round(60);
  disk.run();
  EXPECT_NE(deployment.actual_benign_graph().edge_count(),
            disk.actual_benign_graph().edge_count());
}

}  // namespace
}  // namespace snd::core
