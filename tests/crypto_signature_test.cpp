#include "crypto/sim_signature.h"

#include <gtest/gtest.h>

namespace snd::crypto {
namespace {

class SimSignatureTest : public ::testing::Test {
 protected:
  SimSignatureAuthority authority_{5};
  const util::Bytes message_ = {1, 2, 3, 4};
};

TEST_F(SimSignatureTest, SignVerifyRoundTrip) {
  authority_.enroll(7);
  const Signature sig = authority_.sign(7, message_);
  EXPECT_TRUE(authority_.verify(7, message_, sig));
}

TEST_F(SimSignatureTest, VerifyRejectsWrongSigner) {
  authority_.enroll(7);
  authority_.enroll(8);
  const Signature sig = authority_.sign(7, message_);
  EXPECT_FALSE(authority_.verify(8, message_, sig));
}

TEST_F(SimSignatureTest, VerifyRejectsTamperedMessage) {
  authority_.enroll(7);
  const Signature sig = authority_.sign(7, message_);
  util::Bytes tampered = message_;
  tampered[0] ^= 1;
  EXPECT_FALSE(authority_.verify(7, tampered, sig));
}

TEST_F(SimSignatureTest, VerifyRejectsTamperedSignature) {
  authority_.enroll(7);
  Signature sig = authority_.sign(7, message_);
  sig[0] ^= 1;
  EXPECT_FALSE(authority_.verify(7, message_, sig));
}

TEST_F(SimSignatureTest, UnenrolledIdentityNeverVerifies) {
  const Signature sig = authority_.sign(99, message_);
  EXPECT_FALSE(authority_.verify(99, message_, sig));
}

TEST_F(SimSignatureTest, SignatureSizeMatchesEcdsa160) {
  EXPECT_EQ(sizeof(Signature), 40u);
}

TEST_F(SimSignatureTest, OperationCounters) {
  authority_.enroll(1);
  authority_.reset_counters();
  const Signature sig = authority_.sign(1, message_);
  (void)authority_.verify(1, message_, sig);
  (void)authority_.verify(1, message_, sig);
  EXPECT_EQ(authority_.sign_ops(), 1u);
  EXPECT_EQ(authority_.verify_ops(), 2u);
}

TEST_F(SimSignatureTest, DistinctAuthoritiesAreIndependent) {
  SimSignatureAuthority other(6);
  authority_.enroll(1);
  other.enroll(1);
  const Signature sig = authority_.sign(1, message_);
  EXPECT_FALSE(other.verify(1, message_, sig));
}

}  // namespace
}  // namespace snd::crypto
