// Adversarial parser robustness: every wire parser must reject arbitrary
// byte garbage cleanly (no crash, no partial acceptance of junk), and
// survive random mutations of valid messages. The adversary controls the
// radio, so these paths are attack surface.
#include <gtest/gtest.h>

#include "core/binding_record.h"
#include "core/wire.h"
#include "util/rng.h"

namespace snd::core {
namespace {

const crypto::SymmetricKey kMaster = crypto::SymmetricKey::from_seed(1);

util::Bytes random_bytes(util::Rng& rng, std::size_t max_size) {
  util::Bytes out(rng.uniform_int(max_size + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class RandomGarbageTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGarbageTest, AllParsersRejectOrSurvive) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const util::Bytes garbage = random_bytes(rng, 300);
    // Parsers must never crash; acceptance of random bytes is astronomically
    // unlikely for structured payloads but not a hard failure -- what
    // matters is clean behaviour. The record parser is checked strictly:
    // even if the structure parses, the commitment cannot verify.
    if (auto record = BindingRecord::parse(garbage)) {
      EXPECT_FALSE(record->verify(kMaster));
    }
    (void)RecordReplyPayload::parse(garbage);
    (void)RelationCommitPayload::parse(garbage);
    (void)EvidencePayload::parse(garbage);
    (void)UpdateRequestPayload::parse(garbage);
    (void)UpdateReplyPayload::parse(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGarbageTest, ::testing::Range<std::uint64_t>(1, 9));

class MutationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationTest, MutatedRecordsNeverVerify) {
  util::Rng rng(GetParam() * 977);
  const BindingRecord record = BindingRecord::make(kMaster, 42, 1, {2, 3, 5, 8, 13});
  const util::Bytes valid = record.serialize();

  for (int i = 0; i < 300; ++i) {
    util::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.uniform_int(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const auto pos = rng.uniform_int(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    }
    if (mutated == valid) continue;
    const auto parsed = BindingRecord::parse(mutated);
    if (parsed) {
      // Structurally intact but tampered: the commitment must catch it.
      EXPECT_FALSE(parsed->verify(kMaster)) << "mutation accepted at iteration " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest, ::testing::Range<std::uint64_t>(1, 6));

TEST(MutationTest, TruncatedUpdateRequestsRejected) {
  util::Rng rng(55);
  UpdateRequestPayload payload{BindingRecord::make(kMaster, 9, 2, {4, 5, 6}), {}};
  payload.evidences.emplace_back(11, crypto::Sha256::hash("e1"));
  payload.evidences.emplace_back(12, crypto::Sha256::hash("e2"));
  const util::Bytes valid = payload.serialize();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const util::Bytes prefix(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(UpdateRequestPayload::parse(prefix).has_value()) << "cut " << cut;
  }
}

TEST(MutationTest, ExtendedPayloadsRejected) {
  const BindingRecord record = BindingRecord::make(kMaster, 1, 0, {7});
  for (std::size_t extra : {1u, 7u, 100u}) {
    util::Bytes extended = record.serialize();
    extended.insert(extended.end(), extra, 0xcc);
    EXPECT_FALSE(BindingRecord::parse(extended).has_value()) << "extra " << extra;
  }
}

}  // namespace
}  // namespace snd::core
