// Adversarial parser robustness: every wire parser must reject arbitrary
// byte garbage cleanly (no crash, no partial acceptance of junk), and
// survive random mutations of valid messages. The adversary controls the
// radio, so these paths are attack surface.
#include <gtest/gtest.h>

#include "core/binding_record.h"
#include "core/deployment_driver.h"
#include "core/wire.h"
#include "proptest/observation.h"
#include "proptest/oracles.h"
#include "util/rng.h"

namespace snd::core {
namespace {

const crypto::SymmetricKey kMaster = crypto::SymmetricKey::from_seed(1);

util::Bytes random_bytes(util::Rng& rng, std::size_t max_size) {
  util::Bytes out(rng.uniform_int(max_size + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class RandomGarbageTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGarbageTest, AllParsersRejectOrSurvive) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const util::Bytes garbage = random_bytes(rng, 300);
    // Parsers must never crash; acceptance of random bytes is astronomically
    // unlikely for structured payloads but not a hard failure -- what
    // matters is clean behaviour. The record parser is checked strictly:
    // even if the structure parses, the commitment cannot verify.
    if (auto record = BindingRecord::parse(garbage)) {
      EXPECT_FALSE(record->verify(kMaster));
    }
    (void)RecordReplyPayload::parse(garbage);
    (void)RelationCommitPayload::parse(garbage);
    (void)EvidencePayload::parse(garbage);
    (void)UpdateRequestPayload::parse(garbage);
    (void)UpdateReplyPayload::parse(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGarbageTest, ::testing::Range<std::uint64_t>(1, 9));

class MutationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationTest, MutatedRecordsNeverVerify) {
  util::Rng rng(GetParam() * 977);
  const BindingRecord record = BindingRecord::make(kMaster, 42, 1, {2, 3, 5, 8, 13});
  const util::Bytes valid = record.serialize();

  for (int i = 0; i < 300; ++i) {
    util::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.uniform_int(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const auto pos = rng.uniform_int(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    }
    if (mutated == valid) continue;
    const auto parsed = BindingRecord::parse(mutated);
    if (parsed) {
      // Structurally intact but tampered: the commitment must catch it.
      EXPECT_FALSE(parsed->verify(kMaster)) << "mutation accepted at iteration " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest, ::testing::Range<std::uint64_t>(1, 6));

TEST(MutationTest, TruncatedUpdateRequestsRejected) {
  util::Rng rng(55);
  UpdateRequestPayload payload{BindingRecord::make(kMaster, 9, 2, {4, 5, 6}), {}};
  payload.evidences.emplace_back(11, crypto::Sha256::hash("e1"));
  payload.evidences.emplace_back(12, crypto::Sha256::hash("e2"));
  const util::Bytes valid = payload.serialize();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const util::Bytes prefix(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(UpdateRequestPayload::parse(prefix).has_value()) << "cut " << cut;
  }
}

TEST(MutationTest, ExtendedPayloadsRejected) {
  const BindingRecord record = BindingRecord::make(kMaster, 1, 0, {7});
  for (std::size_t extra : {1u, 7u, 100u}) {
    util::Bytes extended = record.serialize();
    extended.insert(extended.end(), extra, 0xcc);
    EXPECT_FALSE(BindingRecord::parse(extended).has_value()) << "extra " << extra;
  }
}

// -- Corruption through the fault layer ------------------------------------
//
// The table above mutates serialized messages directly; these tests mutate
// them in flight via fault::Injector so the full receive path -- radio,
// Messenger MAC check, wire parsers, protocol handlers -- sees the damage.
// Both corruption modes across several seeds and probabilities: nothing may
// crash (ASan/UBSan builds make this bite), corrupted authenticated traffic
// must die at the MAC, and the conservation/record oracles stay green.

struct FaultFuzzCase {
  fault::CorruptMode mode;
  double probability;
  std::uint64_t seed;
};

class FaultLayerCorruptionTest : public ::testing::TestWithParam<FaultFuzzCase> {};

TEST_P(FaultLayerCorruptionTest, CorruptedTrafficRejectedWithoutCrashing) {
  const FaultFuzzCase& param = GetParam();
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {30.0, 30.0}};
  config.radio_range = 60.0;
  config.protocol.threshold_t = 1;
  config.seed = param.seed;

  fault::FaultPlan plan;
  fault::FaultAction corrupt;
  corrupt.kind = fault::ActionKind::kCorrupt;
  corrupt.corrupt_mode = param.mode;
  corrupt.match.probability = param.probability;
  plan.actions.push_back(corrupt);

  core::SndDeployment deployment(config);
  deployment.apply_fault_plan(plan);
  deployment.deploy_round(6);
  deployment.run();  // must terminate and must not crash

  ASSERT_NE(deployment.injector(), nullptr);
  EXPECT_GT(deployment.injector()->counters().corrupts, 0u);

  const proptest::Observation observation =
      proptest::observe(deployment, 2.0 * config.radio_range);
  // Candidate/drop conservation survives corruption (a corrupted copy is
  // still delivered -- it dies in the parser, not the channel), and no
  // agent ever holds a record whose commitment fails to verify.
  for (const proptest::Violation& v : proptest::check_all(observation)) {
    ADD_FAILURE() << v.oracle << ": " << v.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, FaultLayerCorruptionTest,
    ::testing::Values(FaultFuzzCase{fault::CorruptMode::kBitFlip, 1.0, 71},
                      FaultFuzzCase{fault::CorruptMode::kBitFlip, 0.5, 72},
                      FaultFuzzCase{fault::CorruptMode::kBitFlip, 0.1, 73},
                      FaultFuzzCase{fault::CorruptMode::kTruncate, 1.0, 74},
                      FaultFuzzCase{fault::CorruptMode::kTruncate, 0.5, 75},
                      FaultFuzzCase{fault::CorruptMode::kTruncate, 0.1, 76}));

}  // namespace
}  // namespace snd::core
