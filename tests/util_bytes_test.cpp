#include "util/bytes.h"

#include <gtest/gtest.h>

namespace snd::util {
namespace {

TEST(HexTest, EncodesKnownBytes) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
}

TEST(HexTest, EncodesEmpty) { EXPECT_EQ(to_hex(Bytes{}), ""); }

TEST(HexTest, DecodesLowercase) {
  const auto decoded = from_hex("deadbeef");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, DecodesUppercase) {
  const auto decoded = from_hex("DEADBEEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(HexTest, RejectsNonHexDigits) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(HexTest, RoundTripsRandomData) {
  Bytes data;
  for (int i = 0; i < 257; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  const auto decoded = from_hex(to_hex(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(PutTest, BigEndianU16) {
  Bytes out;
  put_u16(out, 0x1234);
  EXPECT_EQ(out, (Bytes{0x12, 0x34}));
}

TEST(PutTest, BigEndianU32) {
  Bytes out;
  put_u32(out, 0x01020304);
  EXPECT_EQ(out, (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(PutTest, BigEndianU64) {
  Bytes out;
  put_u64(out, 0x0102030405060708ULL);
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(PutTest, VarBytesAddsLengthPrefix) {
  Bytes out;
  const Bytes payload = {0xaa, 0xbb};
  put_var_bytes(out, payload);
  EXPECT_EQ(out, (Bytes{0x00, 0x02, 0xaa, 0xbb}));
}

TEST(ByteReaderTest, ReadsSequentialFields) {
  Bytes data;
  put_u8(data, 7);
  put_u16(data, 300);
  put_u32(data, 70000);
  put_u64(data, 1ULL << 40);
  ByteReader reader(data);
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.u16(), 300);
  EXPECT_EQ(reader.u32(), 70000u);
  EXPECT_EQ(reader.u64(), 1ULL << 40);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_TRUE(reader.ok());
}

TEST(ByteReaderTest, FailsOnUnderflow) {
  const Bytes data = {0x01};
  ByteReader reader(data);
  EXPECT_FALSE(reader.u16().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(ByteReaderTest, PoisonedAfterFailure) {
  const Bytes data = {0x01, 0x02};
  ByteReader reader(data);
  EXPECT_FALSE(reader.u32().has_value());
  // Two bytes remain physically, but the reader must stay failed.
  EXPECT_FALSE(reader.u8().has_value());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteReaderTest, VarBytesRoundTrip) {
  Bytes data;
  put_var_bytes(data, Bytes{1, 2, 3});
  ByteReader reader(data);
  EXPECT_EQ(reader.var_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteReaderTest, VarBytesTruncatedBodyFails) {
  Bytes data;
  put_u16(data, 10);  // claims 10 bytes follow
  put_u8(data, 1);    // only one does
  ByteReader reader(data);
  EXPECT_FALSE(reader.var_bytes().has_value());
}

TEST(ByteReaderTest, ReadsExactByteCount) {
  const Bytes data = {1, 2, 3, 4};
  ByteReader reader(data);
  EXPECT_EQ(reader.bytes(3), (Bytes{1, 2, 3}));
  EXPECT_EQ(reader.remaining(), 1u);
}

TEST(ConstantTimeEqualTest, EqualBuffers) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(constant_time_equal(a, a));
}

TEST(ConstantTimeEqualTest, DifferentContent) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 4};
  EXPECT_FALSE(constant_time_equal(a, b));
}

TEST(ConstantTimeEqualTest, DifferentLength) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2};
  EXPECT_FALSE(constant_time_equal(a, b));
}

TEST(ConstantTimeEqualTest, EmptyBuffersEqual) {
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

// Round-trip property over every u16 length prefix boundary.
class VarBytesSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VarBytesSizeTest, RoundTripsAtSize) {
  Bytes payload(GetParam(), 0x5a);
  Bytes data;
  put_var_bytes(data, payload);
  ByteReader reader(data);
  EXPECT_EQ(reader.var_bytes(), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VarBytesSizeTest,
                         ::testing::Values(0, 1, 2, 255, 256, 1000, 65535));

}  // namespace
}  // namespace snd::util
