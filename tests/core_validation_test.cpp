#include "core/validation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace snd::core {
namespace {

TEST(ThresholdTest, ExactBoundary) {
  const topology::NeighborList nu = {1, 2, 3, 4};
  const topology::NeighborList nv = {2, 3, 4, 5};
  EXPECT_TRUE(meets_threshold(nu, nv, 2));   // |∩| = 3 >= 3
  EXPECT_FALSE(meets_threshold(nu, nv, 3));  // |∩| = 3 < 4
}

TEST(ThresholdTest, ZeroThresholdNeedsOneCommon) {
  EXPECT_TRUE(meets_threshold({1}, {1}, 0));
  EXPECT_FALSE(meets_threshold({1}, {2}, 0));
}

TEST(CommonNeighborValidatorTest, ValidatesWithEnoughOverlap) {
  CommonNeighborValidator validator(2);
  topology::Digraph g;
  for (NodeId c : {10u, 11u, 12u}) {
    g.add_edge(1, c);
    g.add_edge(2, c);
  }
  EXPECT_TRUE(validator.validate(1, 2, g));
}

TEST(CommonNeighborValidatorTest, RejectsInsufficientOverlap) {
  CommonNeighborValidator validator(2);
  topology::Digraph g;
  g.add_edge(1, 10);
  g.add_edge(2, 10);
  g.add_edge(1, 11);
  g.add_edge(2, 12);
  EXPECT_FALSE(validator.validate(1, 2, g));
}

TEST(CommonNeighborValidatorTest, MinimumDeploymentSizeIsTPlus3) {
  EXPECT_EQ(CommonNeighborValidator(0).minimum_deployment_size(), 3u);
  EXPECT_EQ(CommonNeighborValidator(10).minimum_deployment_size(), 13u);
}

TEST(CommonNeighborValidatorTest, MinimumDeploymentWitnessValidates) {
  for (std::size_t t : {0u, 1u, 5u, 20u}) {
    CommonNeighborValidator validator(t);
    const auto dep = validator.minimum_deployment(100);
    EXPECT_EQ(dep.graph.node_count(), validator.minimum_deployment_size()) << "t=" << t;
    EXPECT_TRUE(validator.validate(dep.u, dep.w, dep.graph)) << "t=" << t;
  }
}

TEST(CommonNeighborValidatorTest, MinimumDeploymentIsMinimal) {
  // Removing any common neighbor from the witness graph breaks validation.
  CommonNeighborValidator validator(3);
  auto dep = validator.minimum_deployment(1);
  dep.graph.remove_node(3);  // first common neighbor id = first_id + 2
  EXPECT_FALSE(validator.validate(dep.u, dep.w, dep.graph));
}

// Definition 3's isomorphism-invariance: for random graphs B and random
// injective relabelings f, F(u, v, B) == F(f(u), f(v), B_f).
class IsomorphismInvarianceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsomorphismInvarianceTest, RelabelingPreservesDecisions) {
  util::Rng rng(GetParam());
  const std::size_t n = 12;
  topology::Digraph b;
  for (NodeId u = 1; u <= n; ++u) {
    b.add_node(u);
    for (NodeId v = 1; v <= n; ++v) {
      if (u != v && rng.chance(0.35)) b.add_edge(u, v);
    }
  }

  // Random permutation of 1..n shifted into a disjoint ID range.
  std::vector<NodeId> image(n);
  for (std::size_t i = 0; i < n; ++i) image[i] = static_cast<NodeId>(1000 + i);
  rng.shuffle(image.begin(), image.end());
  const auto f = [&image](NodeId x) { return image[x - 1]; };
  const topology::Digraph bf = b.relabeled(f);

  CommonNeighborValidator validator(1 + rng.uniform_int(3));
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = 1; v <= n; ++v) {
      if (u == v) continue;
      EXPECT_EQ(validator.validate(u, v, b), validator.validate(f(u), f(v), bf))
          << "pair (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, IsomorphismInvarianceTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(CommonNeighborValidatorTest, NameIncludesThreshold) {
  EXPECT_EQ(CommonNeighborValidator(7).name(), "common-neighbor(t=7)");
}

}  // namespace
}  // namespace snd::core
