// The .sndshard binary format: varint primitives, writer/reader round
// trips, torn-tail recovery, and corruption fuzzing. The contract under
// test: a reader either returns exactly what a writer persisted (modulo a
// discarded torn tail) or fails loudly -- it never silently completes with
// wrong data.
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/format.h"
#include "shard/shard.h"
#include "util/bytes.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace snd::shard {
namespace {

// -- varint / crc32 primitives ----------------------------------------------

TEST(Varint, RoundTripsRepresentativeValues) {
  const std::uint64_t values[] = {0,   1,    127,  128,   129,    16383, 16384,
                                  1u << 20, (1ull << 35) + 7, ~0ull, ~0ull - 1, 42};
  for (std::uint64_t v : values) {
    util::Bytes buf;
    util::put_varint(buf, v);
    util::ByteReader reader(buf);
    const auto got = reader.varint();
    ASSERT_TRUE(got.has_value()) << v;
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(Varint, SignedZigZagRoundTrips) {
  const std::int64_t values[] = {0, -1, 1, -64, 64, -65, 1'000'000, -1'000'000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t v : values) {
    util::Bytes buf;
    util::put_varint_signed(buf, v);
    util::ByteReader reader(buf);
    const auto got = reader.varint_signed();
    ASSERT_TRUE(got.has_value()) << v;
    EXPECT_EQ(*got, v);
  }
}

TEST(Varint, SmallMagnitudesStaySmallEitherSign) {
  util::Bytes buf;
  util::put_varint_signed(buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, RejectsOverlongAndOverflowingEncodings) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  util::Bytes overlong(11, 0x80);
  overlong.push_back(0x00);
  EXPECT_FALSE(util::ByteReader(overlong).varint().has_value());
  // 10th byte with payload bits beyond the 64th: arithmetic overflow.
  util::Bytes overflow(9, 0x80);
  overflow.push_back(0x7f);
  EXPECT_FALSE(util::ByteReader(overflow).varint().has_value());
  // Truncated mid-varint.
  util::Bytes cut = {0x80};
  EXPECT_FALSE(util::ByteReader(cut).varint().has_value());
}

TEST(Crc32, MatchesKnownVector) {
  const std::string text = "123456789";
  const util::Bytes data(text.begin(), text.end());
  EXPECT_EQ(util::crc32(data), 0xcbf43926u);  // the classic CRC-32 check value
  EXPECT_EQ(util::crc32(util::Bytes{}), 0u);
}

// -- shard spec / addressing -------------------------------------------------

ShardSpec test_spec(std::uint32_t index = 0, std::uint32_t count = 1) {
  ShardSpec spec;
  spec.sweep_id = "unit_sweep";
  spec.shard_index = index;
  spec.shard_count = count;
  spec.base_seed = 1234;
  spec.total_trials = 23;
  spec.metric_names = {"accuracy", "latency"};
  return spec;
}

TEST(ShardSpec, StridedIndicesPartitionTheTrialSpace) {
  std::vector<bool> seen(23, false);
  for (std::uint32_t k = 0; k < 4; ++k) {
    for (std::uint32_t trial : test_spec(k, 4).trial_indices()) {
      EXPECT_FALSE(seen[trial]);
      EXPECT_EQ(trial % 4, k);
      seen[trial] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ShardSpec, SchemaHashTracksMetricNames) {
  ShardSpec a = test_spec();
  ShardSpec b = test_spec();
  EXPECT_EQ(a.schema_hash(), b.schema_hash());
  b.metric_names.push_back("extra");
  EXPECT_NE(a.schema_hash(), b.schema_hash());
}

TEST(ShardSpec, ParseShardArg) {
  const auto ok = parse_shard_arg("2/4");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->first, 2u);
  EXPECT_EQ(ok->second, 4u);
  EXPECT_FALSE(parse_shard_arg("4/4").has_value());
  EXPECT_FALSE(parse_shard_arg("0/0").has_value());
  EXPECT_FALSE(parse_shard_arg("1").has_value());
  EXPECT_FALSE(parse_shard_arg("a/b").has_value());
  EXPECT_FALSE(parse_shard_arg("-1/4").has_value());
  EXPECT_FALSE(parse_shard_arg("1/4/2").has_value());
  EXPECT_FALSE(parse_shard_arg("").has_value());
}

// -- writer/reader round trip ------------------------------------------------

std::vector<TrialRecord> sample_records(const ShardSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TrialRecord> records;
  for (std::uint32_t trial : spec.trial_indices()) {
    TrialRecord r;
    r.trial = trial;
    if (rng.uniform() < 0.2) {
      r.failed = true;
      r.error = "boom at " + std::to_string(trial);
      r.values.assign(spec.metric_names.size(), 0.0);
    } else {
      r.values = {rng.uniform(), rng.uniform(0.0, 1e6)};
      r.trace.deliveries = rng.uniform_int(std::uint64_t{1000});
      r.trace.tx[2].messages = rng.uniform_int(std::uint64_t{50});
      r.trace.tx[2].bytes = rng.uniform_int(std::uint64_t{90000});
      r.trace.drops[1] = rng.uniform_int(std::uint64_t{10});
      r.trace.trials = 1;
      r.trace.events = rng.uniform_int(std::uint64_t{1 << 20});
    }
    records.push_back(std::move(r));
  }
  return records;
}

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

void expect_same_records(const std::vector<TrialRecord>& got,
                         const std::vector<TrialRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].trial, want[i].trial);
    EXPECT_EQ(got[i].failed, want[i].failed);
    EXPECT_EQ(got[i].error, want[i].error);
    EXPECT_EQ(got[i].values, want[i].values);
    EXPECT_EQ(got[i].trace.deliveries, want[i].trace.deliveries);
    EXPECT_EQ(got[i].trace.tx[2].messages, want[i].trace.tx[2].messages);
    EXPECT_EQ(got[i].trace.tx[2].bytes, want[i].trace.tx[2].bytes);
    EXPECT_EQ(got[i].trace.drops[1], want[i].trace.drops[1]);
    EXPECT_EQ(got[i].trace.events, want[i].trace.events);
    EXPECT_EQ(got[i].trace.trials, want[i].trace.trials);
  }
}

TEST(ShardFile, WriteReadRoundTripIsExact) {
  const ShardSpec spec = test_spec(1, 3);
  const auto records = sample_records(spec, 7);
  const std::string path = temp_path("roundtrip.sndshard");

  ShardWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open_new(path, spec, &error)) << error;
  // Several checkpoints, to exercise multi-chunk files.
  for (std::size_t i = 0; i < records.size(); ++i) {
    writer.append(records[i]);
    if (i % 3 == 2) {
      ASSERT_TRUE(writer.checkpoint(1.5));
    }
  }
  ASSERT_TRUE(writer.close(2.5));

  const auto data = read_shard_file(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_TRUE(spec.mismatch(data->spec).empty());
  EXPECT_EQ(data->spec.shard_index, spec.shard_index);
  EXPECT_EQ(data->discarded_bytes, 0u);
  EXPECT_DOUBLE_EQ(data->wall_seconds, 2.5);
  expect_same_records(data->records, records);
}

TEST(ShardFile, TornTailKeepsThePrefixAndResumeCompletes) {
  const ShardSpec spec = test_spec();
  const auto records = sample_records(spec, 11);
  const std::string path = temp_path("torn.sndshard");

  ShardWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open_new(path, spec, &error)) << error;
  for (std::size_t i = 0; i < 8; ++i) writer.append(records[i]);
  ASSERT_TRUE(writer.checkpoint(1.0));
  for (std::size_t i = 8; i < records.size(); ++i) writer.append(records[i]);
  ASSERT_TRUE(writer.close(2.0));

  // Cut the second chunk short, as a crash mid-write would.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);

  auto torn = read_shard_file(path, &error);
  ASSERT_TRUE(torn.has_value()) << error;
  EXPECT_EQ(torn->records.size(), 8u);
  EXPECT_GT(torn->discarded_bytes, 0u);

  // Resume truncates the tail and appends the missing trials.
  ShardWriter resumed;
  std::vector<TrialRecord> completed;
  ASSERT_TRUE(resumed.open_resume(path, spec, &completed, &error)) << error;
  EXPECT_EQ(completed.size(), 8u);
  for (std::size_t i = 8; i < records.size(); ++i) resumed.append(records[i]);
  ASSERT_TRUE(resumed.close(3.0));

  const auto whole = read_shard_file(path, &error);
  ASSERT_TRUE(whole.has_value()) << error;
  EXPECT_EQ(whole->discarded_bytes, 0u);
  expect_same_records(whole->records, records);
}

TEST(ShardFile, ResumeOfMissingFileStartsFresh) {
  const std::string path = temp_path("fresh_resume.sndshard");
  std::filesystem::remove(path);
  ShardWriter writer;
  std::vector<TrialRecord> completed;
  std::string error;
  ASSERT_TRUE(writer.open_resume(path, test_spec(), &completed, &error)) << error;
  EXPECT_TRUE(completed.empty());
  ASSERT_TRUE(writer.close(0.0));
}

TEST(ShardFile, ResumeRefusesMismatchedSpec) {
  const ShardSpec spec = test_spec(0, 2);
  const std::string path = temp_path("mismatch_resume.sndshard");
  ShardWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open_new(path, spec, &error)) << error;
  ASSERT_TRUE(writer.close(0.0));

  ShardSpec other = spec;
  other.base_seed ^= 1;
  ShardWriter resumed;
  ASSERT_FALSE(resumed.open_resume(path, other, nullptr, &error));
  EXPECT_NE(error.find("base_seed"), std::string::npos) << error;

  ShardSpec wrong_index = spec;
  wrong_index.shard_index = 1;
  ASSERT_FALSE(resumed.open_resume(path, wrong_index, nullptr, &error));
  EXPECT_NE(error.find("shard"), std::string::npos) << error;
}

// -- corruption is loud, never silent ----------------------------------------

util::Bytes file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  util::Bytes data;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.insert(data.end(), buf, buf + got);
  std::fclose(f);
  return data;
}

void write_bytes(const std::string& path, const util::Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

TEST(ShardFileFuzz, SingleByteFlipsNeverYieldExtraOrAlteredRecords) {
  const ShardSpec spec = test_spec();
  const auto records = sample_records(spec, 13);
  const std::string path = temp_path("fuzz_base.sndshard");
  ShardWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open_new(path, spec, &error)) << error;
  for (std::size_t i = 0; i < records.size(); ++i) {
    writer.append(records[i]);
    if (i % 5 == 4) {
      ASSERT_TRUE(writer.checkpoint(1.0));
    }
  }
  ASSERT_TRUE(writer.close(1.0));
  const util::Bytes pristine = file_bytes(path);

  const std::string mutated_path = temp_path("fuzz_mut.sndshard");
  util::Rng rng(20260809);
  for (int round = 0; round < 300; ++round) {
    util::Bytes mutated = pristine;
    const std::size_t pos = rng.uniform_int(std::uint64_t{mutated.size()});
    const auto bit = static_cast<std::uint8_t>(1u << rng.uniform_int(std::uint64_t{8}));
    mutated[pos] ^= bit;
    write_bytes(mutated_path, mutated);

    const auto got = read_shard_file(mutated_path, &error);
    if (!got.has_value()) continue;  // loud failure: fine
    // Accepted: every surviving record must be one the writer produced, and
    // the file may only have lost a tail, never gained or changed content.
    ASSERT_LE(got->records.size(), records.size());
    expect_same_records(
        got->records,
        std::vector<TrialRecord>(records.begin(), records.begin() + got->records.size()));
    if (got->records.size() < records.size()) {
      EXPECT_GT(got->discarded_bytes, 0u);
    }
  }
}

TEST(ShardFileFuzz, RandomTruncationsNeverYieldAlteredRecords) {
  const ShardSpec spec = test_spec();
  const auto records = sample_records(spec, 17);
  const std::string path = temp_path("trunc_base.sndshard");
  ShardWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open_new(path, spec, &error)) << error;
  for (std::size_t i = 0; i < records.size(); ++i) {
    writer.append(records[i]);
    if (i % 4 == 3) {
      ASSERT_TRUE(writer.checkpoint(1.0));
    }
  }
  ASSERT_TRUE(writer.close(1.0));
  const util::Bytes pristine = file_bytes(path);

  const std::string cut_path = temp_path("trunc_cut.sndshard");
  util::Rng rng(8);
  for (int round = 0; round < 100; ++round) {
    const std::size_t keep = rng.uniform_int(std::uint64_t{pristine.size() + 1});
    write_bytes(cut_path, util::Bytes(pristine.begin(), pristine.begin() + keep));
    const auto got = read_shard_file(cut_path, &error);
    if (!got.has_value()) continue;  // header damage: loud failure
    ASSERT_LE(got->records.size(), records.size());
    expect_same_records(
        got->records,
        std::vector<TrialRecord>(records.begin(), records.begin() + got->records.size()));
  }
}

TEST(ShardFile, RejectsWrongMagicAndGarbage) {
  const std::string path = temp_path("garbage.sndshard");
  std::string error;
  write_bytes(path, {'n', 'o', 't', ' ', 'i', 't', '!', '!'});
  EXPECT_FALSE(read_shard_file(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
  EXPECT_FALSE(read_shard_file(temp_path("does_not_exist.sndshard"), &error).has_value());
}

}  // namespace
}  // namespace snd::shard
