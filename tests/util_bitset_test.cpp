#include "util/bitset.h"

#include <gtest/gtest.h>

namespace snd::util {
namespace {

TEST(BitSetTest, StartsEmpty) {
  BitSet bits;
  EXPECT_EQ(bits.capacity(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
}

TEST(BitSetTest, SetTestReset) {
  BitSet bits(130);  // crosses two word boundaries
  EXPECT_EQ(bits.capacity(), 130u);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(bits.test(i));
    bits.set(i);
    EXPECT_TRUE(bits.test(i));
  }
  EXPECT_EQ(bits.count(), 6u);
  EXPECT_TRUE(bits.any());
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 5u);
}

TEST(BitSetTest, SetIsIdempotent) {
  BitSet bits(10);
  bits.set(3);
  bits.set(3);
  EXPECT_EQ(bits.count(), 1u);
}

TEST(BitSetTest, ClearKeepsCapacity) {
  BitSet bits(100);
  for (std::size_t i = 0; i < 100; i += 7) bits.set(i);
  bits.clear();
  EXPECT_EQ(bits.capacity(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
}

TEST(BitSetTest, ResizeGrowPreservesBits) {
  BitSet bits(10);
  bits.set(3);
  bits.set(9);
  bits.resize(200);
  EXPECT_TRUE(bits.test(3));
  EXPECT_TRUE(bits.test(9));
  EXPECT_FALSE(bits.test(150));
  EXPECT_EQ(bits.count(), 2u);
  bits.set(199);
  EXPECT_EQ(bits.count(), 3u);
}

TEST(BitSetTest, ResizeShrinkTrimsTail) {
  // Bits past the new capacity must not survive in the last word, or
  // count()/any() would report ghosts.
  BitSet bits(128);
  bits.set(100);
  bits.set(70);
  bits.set(5);
  bits.resize(66);
  EXPECT_EQ(bits.count(), 1u);
  EXPECT_TRUE(bits.test(5));
  bits.resize(128);
  EXPECT_FALSE(bits.test(70));
  EXPECT_FALSE(bits.test(100));
}

TEST(BitSetTest, ResizeToZeroEmpties) {
  BitSet bits(64);
  bits.set(0);
  bits.resize(0);
  EXPECT_EQ(bits.capacity(), 0u);
  EXPECT_FALSE(bits.any());
}

TEST(BitSetTest, WordsExposeRawStorage) {
  BitSet bits(64);
  bits.set(0);
  bits.set(63);
  ASSERT_EQ(bits.words().size(), 1u);
  EXPECT_EQ(bits.words()[0], (std::uint64_t{1} << 63) | 1u);
}

}  // namespace
}  // namespace snd::util
