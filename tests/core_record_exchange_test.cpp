// Tests of the record-exchange transport design: aggregated broadcast
// replies and the highest-version-wins defense against stale-record
// substitution (see docs/PROTOCOL.md §4).
#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "core/wire.h"

namespace snd::core {
namespace {

DeploymentConfig exchange_config(std::uint64_t seed = 14) {
  DeploymentConfig config;
  config.field = {{0.0, 0.0}, {80.0, 80.0}};
  config.radio_range = 100.0;
  config.protocol.threshold_t = 2;
  config.protocol.max_updates = 2;
  config.seed = seed;
  return config;
}

TEST(RecordExchangeTest, OneBroadcastServesTheWholeRound) {
  SndDeployment deployment(exchange_config());
  deployment.deploy_round(12);
  deployment.run();
  // 12 nodes each requested 11 records; without aggregation that would be
  // 132 record replies. With broadcast aggregation each node answers its
  // burst once (repeat requests from later Hellos may add a few).
  const auto records = deployment.network().metrics().phase(obs::Phase::kRecord);
  // requests (12*11 unicast) + replies: replies must be ~12, not ~132.
  EXPECT_LT(records.messages, 12 * 11 + 40);
}

TEST(RecordExchangeTest, LateRequesterStillServed) {
  SndDeployment deployment(exchange_config());
  deployment.deploy_round(8);
  deployment.run();
  // A second-round node arrives long after the round-1 broadcasts; its
  // requests must trigger fresh replies.
  const NodeId late = deployment.deploy_node_at({40, 40});
  deployment.run();
  const SndNode* agent = deployment.agent(late);
  EXPECT_EQ(agent->functional_neighbors().size(), 8u);
}

TEST(RecordExchangeTest, StaleRecordSubstitutionDefeated) {
  // v's record gets re-issued at version 1 (update extension); an attacker
  // who captured the version-0 broadcast replays it while a fresh node is
  // collecting records. Highest-version-wins must keep the fresh node on
  // the updated record.
  SndDeployment deployment(exchange_config());
  const std::vector<NodeId> first = deployment.deploy_round(8);
  deployment.run();
  const NodeId victim = first[0];
  const BindingRecord stale = deployment.agent(victim)->record();  // version 0

  // Round 2 leaves evidence; round 3 serves the update.
  deployment.agent(victim)->set_auto_update(true);
  deployment.deploy_node_at({40, 40});
  deployment.run();
  deployment.deploy_node_at({42, 40});
  deployment.run();
  ASSERT_EQ(deployment.agent(victim)->record_version(), 1u);

  // Attacker radio replays the stale version-0 record continuously while a
  // fresh node discovers.
  const sim::DeviceId attacker = deployment.network().add_device(90000, {41, 41});
  deployment.network().device(attacker).compromised = true;
  auto replay = [&deployment, attacker, &stale]() {
    deployment.network().transmit(
        attacker,
        sim::Packet{.src = stale.node,
                    .dst = kNoNode,
                    .type = static_cast<std::uint8_t>(MessageType::kRelationCommit),
                    .payload = {}},
        obs::Phase::kAttack);
    // The actual stale record reply:
    deployment.network().transmit(
        attacker,
        sim::Packet{.src = stale.node,
                    .dst = kNoNode,
                    .type = static_cast<std::uint8_t>(MessageType::kRecordReply),
                    .payload = stale.serialize()},
        obs::Phase::kAttack);
  };
  // Schedule replays across the fresh node's whole exchange window.
  for (int ms = 0; ms <= 600; ms += 25) {
    deployment.network().scheduler().schedule_at(
        deployment.network().now() + sim::Time::milliseconds(ms), replay);
  }
  const NodeId fresh = deployment.deploy_node_at({41, 40});
  deployment.run();

  // The fresh node shares round-2/3 nodes with the victim only via the
  // updated record; had the stale replay won, the victim would still
  // validate (v0 lists the original 7 others, which is enough here), so
  // assert the *version* the fresh node acted on via the update machinery:
  // fresh left evidence citing version 1.
  const auto& buffer = deployment.agent(victim)->evidence_buffer();
  EXPECT_TRUE(buffer.contains(fresh))
      << "fresh node's evidence missing: it acted on a stale record version";
  // And the relation formed despite the replay barrage.
  EXPECT_TRUE(topology::contains(deployment.agent(fresh)->functional_neighbors(), victim));
}

TEST(RecordExchangeTest, ForgedRecordBroadcastIgnored) {
  // A record broadcast whose commitment does not verify under K must never
  // enter anyone's validation, whatever identity it claims.
  SndDeployment deployment(exchange_config(15));
  const sim::DeviceId attacker = deployment.network().add_device(90000, {40, 40});
  deployment.network().device(attacker).compromised = true;

  // Forge a record for identity 1 naming everyone (wrong key -> bad C).
  const crypto::SymmetricKey wrong_key = crypto::SymmetricKey::from_seed(777);
  topology::NeighborList everyone;
  for (NodeId id = 2; id <= 10; ++id) everyone.push_back(id);
  const BindingRecord forged = BindingRecord::make(wrong_key, 1, 0, everyone);
  for (int ms = 0; ms <= 600; ms += 20) {
    deployment.network().scheduler().schedule_at(
        deployment.network().now() + sim::Time::milliseconds(ms),
        [&deployment, attacker, forged]() {
          deployment.network().transmit(
              attacker,
              sim::Packet{.src = 1,
                          .dst = kNoNode,
                          .type = static_cast<std::uint8_t>(MessageType::kRecordReply),
                          .payload = forged.serialize()},
              obs::Phase::kAttack);
        });
  }

  deployment.deploy_round(10);
  deployment.run();
  // Node 1 is genuine and nearby; relations with it must reflect its REAL
  // record, which lists all 9 others -- identical to the forgery's claim,
  // so instead verify nobody stored the forged version: a node that used
  // the forgery would have validated 1 even if 1's genuine record had
  // failed to arrive. Strongest observable: every functional edge is
  // genuine (precision 1 against ground truth).
  const auto actual = deployment.actual_benign_graph();
  const auto functional = deployment.functional_graph();
  for (const auto& [u, v] : functional.edges()) {
    EXPECT_TRUE(actual.has_edge(u, v)) << u << "->" << v;
  }
}

}  // namespace
}  // namespace snd::core
