#include "util/geometry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace snd::util {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
}

TEST(Vec2Test, NormOfPythagoreanTriple) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
}

TEST(GeometryTest, DistanceSymmetric) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{5.0, 12.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 13.0);
  EXPECT_DOUBLE_EQ(distance(b, a), 13.0);
}

TEST(GeometryTest, CrossSign) {
  EXPECT_GT(cross({1.0, 0.0}, {0.0, 1.0}), 0.0);
  EXPECT_LT(cross({0.0, 1.0}, {1.0, 0.0}), 0.0);
}

TEST(CircleTest, ContainsWithTolerance) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(c.contains({1.0, 0.0}));
  EXPECT_TRUE(c.contains({0.5, 0.5}));
  EXPECT_FALSE(c.contains({1.1, 0.0}));
}

TEST(RectTest, ContainsAndArea) {
  const Rect r{{0.0, 0.0}, {10.0, 20.0}};
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({10.0, 20.0}));
  EXPECT_FALSE(r.contains({-0.1, 5.0}));
  EXPECT_DOUBLE_EQ(r.area(), 200.0);
  EXPECT_EQ(r.center(), (Vec2{5.0, 10.0}));
}

TEST(LensAreaTest, FullOverlapAtZeroDistance) {
  EXPECT_DOUBLE_EQ(lens_area(2.0, 0.0), std::numbers::pi * 4.0);
}

TEST(LensAreaTest, ZeroBeyondTwoRadii) {
  EXPECT_DOUBLE_EQ(lens_area(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(lens_area(1.0, 3.0), 0.0);
}

TEST(LensAreaTest, KnownValueAtRadiusDistance) {
  // d = r: standard result 2r^2 (pi/3) - (r^2 sqrt(3)/2)... computed:
  // area = 2 r^2 acos(1/2) - (r/2) sqrt(3 r^2) = r^2 (2pi/3 - sqrt(3)/2).
  const double r = 1.0;
  const double expected = 2.0 * std::numbers::pi / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(lens_area(r, r), expected, 1e-12);
}

TEST(LensAreaTest, MonotoneDecreasingInDistance) {
  double previous = lens_area(1.0, 0.0);
  for (double d = 0.1; d <= 2.0; d += 0.1) {
    const double current = lens_area(1.0, d);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST(ExpectedCommonNeighborsTest, MatchesLensAreaTimesDensity) {
  const double density = 0.02;
  const double r = 50.0;
  for (double c : {0.1, 0.5, 1.0, 1.5, 1.9}) {
    const double via_lens = density * lens_area(r, c * r) - 2.0;
    EXPECT_NEAR(expected_common_neighbors(density, r, c), via_lens, 1e-9);
  }
}

TEST(ExpectedCommonNeighborsTest, PaperSettingAtContact) {
  // D = 0.02, R = 50: coincident nodes share D*pi*R^2 - 2 ~ 155 neighbors.
  EXPECT_NEAR(expected_common_neighbors(0.02, 50.0, 0.0),
              0.02 * std::numbers::pi * 2500.0 - 2.0, 1e-9);
}

TEST(MinimumEnclosingCircleTest, EmptyInput) {
  const Circle c = minimum_enclosing_circle({});
  EXPECT_EQ(c.radius, 0.0);
}

TEST(MinimumEnclosingCircleTest, SinglePoint) {
  const std::vector<Vec2> pts = {{3.0, 4.0}};
  const Circle c = minimum_enclosing_circle(pts);
  EXPECT_EQ(c.center, (Vec2{3.0, 4.0}));
  EXPECT_EQ(c.radius, 0.0);
}

TEST(MinimumEnclosingCircleTest, TwoPointsDiameter) {
  const std::vector<Vec2> pts = {{0.0, 0.0}, {4.0, 0.0}};
  const Circle c = minimum_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 2.0, 1e-9);
  EXPECT_NEAR(c.center.x, 2.0, 1e-9);
}

TEST(MinimumEnclosingCircleTest, EquilateralTriangleCircumcircle) {
  const double s = 2.0;
  const std::vector<Vec2> pts = {{0.0, 0.0}, {s, 0.0}, {s / 2.0, s * std::sqrt(3.0) / 2.0}};
  const Circle c = minimum_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, s / std::sqrt(3.0), 1e-9);
}

TEST(MinimumEnclosingCircleTest, ObtuseTriangleUsesLongestSide) {
  // Very flat triangle: the MEC is the circle on the longest side, not the
  // circumcircle.
  const std::vector<Vec2> pts = {{0.0, 0.0}, {10.0, 0.0}, {5.0, 0.1}};
  const Circle c = minimum_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-6);
}

TEST(MinimumEnclosingCircleTest, CollinearPoints) {
  const std::vector<Vec2> pts = {{0.0, 0.0}, {2.0, 0.0}, {7.0, 0.0}, {4.0, 0.0}};
  const Circle c = minimum_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 3.5, 1e-9);
  EXPECT_NEAR(c.center.x, 3.5, 1e-9);
}

TEST(MinimumEnclosingCircleTest, DuplicatePoints) {
  const std::vector<Vec2> pts = {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const Circle c = minimum_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 0.0, 1e-12);
}

TEST(CircleRectTest, CircleFullyInsideRect) {
  const Circle c{{50, 50}, 10};
  const Rect r{{0, 0}, {100, 100}};
  EXPECT_NEAR(circle_rect_intersection_area(c, r), std::numbers::pi * 100.0, 1e-9);
}

TEST(CircleRectTest, RectFullyInsideCircle) {
  const Circle c{{50, 50}, 1000};
  const Rect r{{0, 0}, {100, 100}};
  EXPECT_NEAR(circle_rect_intersection_area(c, r), 10000.0, 1e-6);
}

TEST(CircleRectTest, HalfDiskAtEdge) {
  // Circle centered exactly on the field edge: half the disk is inside.
  const Circle c{{0, 50}, 10};
  const Rect r{{0, 0}, {100, 100}};
  EXPECT_NEAR(circle_rect_intersection_area(c, r), std::numbers::pi * 50.0, 1e-9);
}

TEST(CircleRectTest, QuarterDiskAtCorner) {
  const Circle c{{0, 0}, 10};
  const Rect r{{0, 0}, {100, 100}};
  EXPECT_NEAR(circle_rect_intersection_area(c, r), std::numbers::pi * 25.0, 1e-9);
}

TEST(CircleRectTest, DisjointIsZero) {
  const Circle c{{-50, -50}, 10};
  const Rect r{{0, 0}, {100, 100}};
  EXPECT_NEAR(circle_rect_intersection_area(c, r), 0.0, 1e-9);
}

TEST(CircleRectTest, ZeroRadiusIsZero) {
  EXPECT_EQ(circle_rect_intersection_area({{5, 5}, 0}, {{0, 0}, {10, 10}}), 0.0);
}

TEST(CircleRectTest, MatchesMonteCarlo) {
  // Awkward partial overlaps validated against Monte Carlo integration.
  Rng rng(99);
  const Rect r{{0, 0}, {100, 60}};
  for (const Circle c : {Circle{{10, 10}, 25}, Circle{{95, 55}, 30}, Circle{{50, 0}, 40},
                         Circle{{-10, 30}, 35}}) {
    const double exact = circle_rect_intersection_area(c, r);
    int hits = 0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) {
      // Sample uniformly in the circle's bounding box.
      const Vec2 p{rng.uniform(c.center.x - c.radius, c.center.x + c.radius),
                   rng.uniform(c.center.y - c.radius, c.center.y + c.radius)};
      if (distance(p, c.center) <= c.radius && r.contains(p)) ++hits;
    }
    const double box = 4.0 * c.radius * c.radius;
    const double estimate = box * static_cast<double>(hits) / samples;
    EXPECT_NEAR(exact, estimate, 0.02 * box + 1.0) << "circle at " << c.center.x;
  }
}

// Property: the MEC contains every input point, and is no larger than the
// trivial bounding circle, across many random point clouds.
class MecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MecPropertyTest, ContainsAllPointsAndIsTight) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.uniform_int(40);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i) pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});

  const Circle c = minimum_enclosing_circle(pts);
  Vec2 centroid{0.0, 0.0};
  for (const Vec2& p : pts) {
    EXPECT_TRUE(c.contains(p, 1e-6)) << "point outside MEC";
    centroid = centroid + p;
  }
  centroid = centroid * (1.0 / static_cast<double>(n));

  // The centroid-based bounding circle is an upper bound on the MEC radius.
  double bound = 0.0;
  for (const Vec2& p : pts) bound = std::max(bound, distance(centroid, p));
  EXPECT_LE(c.radius, bound + 1e-6);

  // Lower bound: half the diameter of the point set.
  double diameter = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) diameter = std::max(diameter, distance(pts[i], pts[j]));
  }
  EXPECT_GE(c.radius + 1e-6, diameter / 2.0);
}

INSTANTIATE_TEST_SUITE_P(RandomClouds, MecPropertyTest, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace snd::util
