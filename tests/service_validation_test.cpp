#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/commitment.h"
#include "crypto/key.h"
#include "service/events.h"
#include "service/snapshot.h"
#include "service/validation_service.h"
#include "service/wire.h"
#include "util/bytes.h"
#include "util/simd.h"

namespace snd::service {
namespace {

ServiceConfig small_config() {
  ServiceConfig config;
  config.radio_range = 10.0;
  config.threshold_t = 1;
  return config;
}

// A 4-clique inside one radio disc: every pair shares the two other nodes,
// so with t = 1 every link is validated.
std::vector<std::pair<NodeId, util::Vec2>> clique4() {
  return {{1, {0.0, 0.0}}, {2, {1.0, 0.0}}, {3, {0.0, 1.0}}, {4, {1.0, 1.0}}};
}

TEST(ValidationServiceTest, EmptyServiceValidatesNothing) {
  ValidationService service(small_config());
  EXPECT_FALSE(service.validate(1, 2));
  EXPECT_EQ(service.node_count(), 0u);
  EXPECT_EQ(service.snapshot()->node_count(), 0u);
}

TEST(ValidationServiceTest, CliqueFullyValidated) {
  ValidationService service(small_config());
  const auto nodes = clique4();
  service.seed_topology(nodes);
  for (const auto& [u, pu] : nodes) {
    for (const auto& [v, pv] : nodes) {
      if (u == v) continue;
      EXPECT_TRUE(service.validate(u, v)) << u << " -> " << v;
    }
  }
  EXPECT_EQ(service.snapshot()->validated_edge_count(), 12u);
}

TEST(ValidationServiceTest, IsolatedPairBelowThresholdRejected) {
  ValidationService service(small_config());
  // Two nodes in range of each other but with no common neighbor: the
  // threshold rule |N(u) ∩ N(v)| >= t+1 = 2 cannot be met.
  ASSERT_TRUE(service.apply(TopologyEvent::deploy(1, {0.0, 0.0})).ok);
  ASSERT_TRUE(service.apply(TopologyEvent::deploy(2, {1.0, 0.0})).ok);
  EXPECT_FALSE(service.validate(1, 2));
  const NodeState* state = service.snapshot()->find(1);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->neighbors.size(), 1u);
  EXPECT_TRUE(state->validated.empty());
}

TEST(ValidationServiceTest, DeployUpdateRevokeLifecycle) {
  ValidationService service(small_config());
  // A 5-clique; with t = 1 every pair needs 2 common neighbors, so pairs
  // survive one removal (3 -> 2 witnesses) but not two.
  const std::vector<std::pair<NodeId, util::Vec2>> clique5 = {{1, {0.0, 0.0}},
                                                              {2, {1.0, 0.0}},
                                                              {3, {0.0, 1.0}},
                                                              {4, {1.0, 1.0}},
                                                              {5, {0.5, 0.5}}};
  service.seed_topology(clique5);
  ASSERT_TRUE(service.validate(1, 2));

  // Move node 5 out of range: the 4-clique pairs still have 2 witnesses.
  ASSERT_TRUE(service.apply(TopologyEvent::update(5, {100.0, 100.0})).ok);
  EXPECT_FALSE(service.validate(1, 5));
  EXPECT_TRUE(service.validate(1, 2));

  // Revoking node 4 leaves 1-2 with only node 3 as witness: below t+1.
  ASSERT_TRUE(service.apply(TopologyEvent::revoke(4)).ok);
  EXPECT_FALSE(service.validate(1, 2));
  EXPECT_EQ(service.node_count(), 4u);

  // Move node 5 back: the 4-clique re-forms and validates again.
  ASSERT_TRUE(service.apply(TopologyEvent::update(5, {0.5, 0.5})).ok);
  EXPECT_TRUE(service.validate(1, 2));
  EXPECT_TRUE(service.validate(2, 5));
}

TEST(ValidationServiceTest, RejectsInvalidEvents) {
  ValidationService service(small_config());
  ASSERT_TRUE(service.apply(TopologyEvent::deploy(1, {0.0, 0.0})).ok);
  EXPECT_FALSE(service.apply(TopologyEvent::deploy(1, {5.0, 0.0})).ok);
  EXPECT_FALSE(service.apply(TopologyEvent::update(9, {0.0, 0.0})).ok);
  EXPECT_FALSE(service.apply(TopologyEvent::revoke(9)).ok);
  // Rejections do not bump the epoch or the event counter.
  EXPECT_EQ(service.events_applied(), 1u);
  EXPECT_EQ(service.snapshot()->epoch(), 1u);
}

TEST(ValidationServiceTest, SnapshotsAreImmutableVersions) {
  ValidationService service(small_config());
  service.seed_topology(clique4());
  const auto before = service.snapshot();
  ASSERT_TRUE(service.apply(TopologyEvent::revoke(3)).ok);
  const auto after = service.snapshot();
  EXPECT_LT(before->epoch(), after->epoch());
  // The retained snapshot still answers with the old world.
  EXPECT_TRUE(before->validate(1, 2));
  EXPECT_FALSE(after->validate(1, 2));
  EXPECT_EQ(before->node_count(), 4u);
  EXPECT_EQ(after->node_count(), 3u);
}

TEST(ValidationServiceTest, DigestMatchesRebuildAfterEvents) {
  ValidationService service(small_config());
  service.seed_topology(clique4());
  ASSERT_TRUE(service.apply(TopologyEvent::update(2, {2.0, 2.0})).ok);
  ASSERT_TRUE(service.apply(TopologyEvent::deploy(7, {0.5, 1.5})).ok);
  ASSERT_TRUE(service.apply(TopologyEvent::revoke(1)).ok);
  EXPECT_EQ(service.snapshot()->canonical_json(), service.rebuild()->canonical_json());
  EXPECT_EQ(service.snapshot()->digest(), service.rebuild()->digest());
}

TEST(ServiceEventsTest, RandomEventsAreDeterministicAndValid) {
  const util::Rect field{{0.0, 0.0}, {100.0, 100.0}};
  const auto a = random_events(200, field, {1, 2, 3}, 42);
  const auto b = random_events(200, field, {1, 2, 3}, 42);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_TRUE(a == b);
  const auto c = random_events(200, field, {1, 2, 3}, 43);
  EXPECT_FALSE(a == c);
  // Replaying against a service seeded with the same live set never hits a
  // rejection: the generator only moves/revokes live ids.
  ValidationService service(small_config());
  const std::vector<std::pair<NodeId, util::Vec2>> initial = {
      {1, {0.0, 0.0}}, {2, {1.0, 0.0}}, {3, {0.0, 1.0}}};
  service.seed_topology(initial);
  for (const TopologyEvent& event : a) {
    EXPECT_TRUE(service.apply(event).ok) << event_kind_name(event.kind) << " "
                                         << event.node;
  }
}

TEST(ServiceWireTest, QueryRoundTrip) {
  ValidationService service(small_config());
  service.seed_topology(clique4());

  util::Bytes out;
  ASSERT_TRUE(wire::handle_request(service, wire::encode_query(1, 2), out));
  const auto reply = wire::decode_query_reply(out);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->accepted);
  EXPECT_EQ(reply->epoch, service.snapshot()->epoch());

  out.clear();
  ASSERT_TRUE(wire::handle_request(service, wire::encode_query(1, 99), out));
  const auto miss = wire::decode_query_reply(out);
  ASSERT_TRUE(miss.has_value());
  EXPECT_FALSE(miss->accepted);
}

TEST(ServiceWireTest, EventStatsDigestAndShutdown) {
  ValidationService service(small_config());
  service.seed_topology(clique4());

  util::Bytes out;
  ASSERT_TRUE(
      wire::handle_request(service, wire::encode_event(TopologyEvent::revoke(4)), out));
  EXPECT_EQ(service.node_count(), 3u);

  out.clear();
  ASSERT_TRUE(wire::handle_request(service, wire::encode_stats(), out));
  const auto stats = wire::decode_stats_reply(out);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->nodes, 3u);
  EXPECT_EQ(stats->events_applied, 1u);

  out.clear();
  ASSERT_TRUE(wire::handle_request(service, wire::encode_digest(), out));
  const auto digest = wire::decode_digest_reply(out);
  ASSERT_TRUE(digest.has_value());
  EXPECT_EQ(digest->digest, service.snapshot()->digest());

  out.clear();
  EXPECT_FALSE(wire::handle_request(service, wire::encode_shutdown(), out));
}

TEST(ServiceWireTest, MalformedRequestsAnswerErrorWithoutMutating) {
  ValidationService service(small_config());
  service.seed_topology(clique4());
  const std::string before = service.snapshot()->canonical_json();

  const std::vector<util::Bytes> bad = {
      {},                    // empty payload
      {0x7F},                // unknown opcode
      {wire::kQuery, 0x01},  // truncated query
      {wire::kEvent, 0x09},  // unknown event kind + truncated body
  };
  for (const util::Bytes& payload : bad) {
    util::Bytes out;
    EXPECT_TRUE(wire::handle_request(service, payload, out));
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], wire::kError);
  }
  EXPECT_EQ(service.snapshot()->canonical_json(), before);
}

// -- Commitment maintenance --------------------------------------------------

/// Every live node's maintained commitment must equal the scalar
/// core::binding_commitment over its snapshot tentative list.
void expect_commitments_match_scalar(const ValidationService& service,
                                     const crypto::SymmetricKey& master) {
  const auto snapshot = service.snapshot();
  std::size_t live = 0;
  for (const auto& [id, state] : snapshot->nodes()) {
    ++live;
    const crypto::Digest* maintained = service.binding_commitment_of(id);
    ASSERT_NE(maintained, nullptr) << "node " << id;
    EXPECT_EQ(*maintained, core::binding_commitment(master, id, 0, state->neighbors))
        << "node " << id;
  }
  EXPECT_EQ(service.commitment_count(), live);
}

TEST(ServiceCommitmentTest, MaintainedIncrementallyAcrossLifecycle) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(0xc0117);
  ServiceConfig config = small_config();
  config.master_key = master;
  ValidationService service(config);

  service.seed_topology(clique4());
  expect_commitments_match_scalar(service, master);

  // Deploy a fifth node: its own commitment appears and every in-range
  // neighbor's is refreshed.
  ASSERT_TRUE(service.apply(TopologyEvent::deploy(5, {0.5, 0.5})).ok);
  expect_commitments_match_scalar(service, master);

  // Move it out of the clique's disc, then back near one corner.
  ASSERT_TRUE(service.apply(TopologyEvent::update(5, {100.0, 100.0})).ok);
  expect_commitments_match_scalar(service, master);
  ASSERT_TRUE(service.apply(TopologyEvent::update(5, {1.5, 1.0})).ok);
  expect_commitments_match_scalar(service, master);

  // Revocation erases the node's commitment and refreshes its neighbors'.
  ASSERT_TRUE(service.apply(TopologyEvent::revoke(5)).ok);
  EXPECT_EQ(service.binding_commitment_of(5), nullptr);
  expect_commitments_match_scalar(service, master);

  // Rejected events leave the commitment table untouched.
  EXPECT_FALSE(service.apply(TopologyEvent::revoke(99)).ok);
  expect_commitments_match_scalar(service, master);
}

TEST(ServiceCommitmentTest, BatchedMaintenanceMatchesSerialFallback) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(0xc0118);
  ServiceConfig config = small_config();
  config.master_key = master;

  auto run = [&](bool simd) {
    util::set_simd_enabled(simd);
    ValidationService service(config);
    service.seed_topology(clique4());
    service.apply(TopologyEvent::deploy(5, {0.5, 0.5}));
    service.apply(TopologyEvent::update(2, {0.5, 1.5}));
    std::vector<std::pair<NodeId, crypto::Digest>> out;
    for (const auto& [id, state] : service.snapshot()->nodes()) {
      (void)state;
      out.emplace_back(id, *service.binding_commitment_of(id));
    }
    return out;
  };
  const auto batched = run(true);
  const auto serial = run(false);
  util::set_simd_enabled(true);
  EXPECT_EQ(batched, serial);
}

TEST(ServiceCommitmentTest, AbsentMasterKeyDisablesMaintenance) {
  ValidationService service(small_config());
  service.seed_topology(clique4());
  EXPECT_EQ(service.commitment_count(), 0u);
  EXPECT_EQ(service.binding_commitment_of(1), nullptr);
}

}  // namespace
}  // namespace snd::service
