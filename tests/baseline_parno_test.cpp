#include "baseline/parno.h"

#include <gtest/gtest.h>

namespace snd::baseline {
namespace {

std::unique_ptr<sim::Network> grid_network(std::size_t nx, std::size_t ny, double spacing,
                                           double range) {
  auto network = std::make_unique<sim::Network>(std::make_unique<sim::UnitDiskModel>(range),
                                                sim::ChannelConfig{}, 1);
  NodeId id = 1;
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      network->add_device(id++, {static_cast<double>(x) * spacing,
                                 static_cast<double>(y) * spacing});
    }
  }
  return network;
}

class ParnoTest : public ::testing::Test {
 protected:
  ParnoTest() : network_(grid_network(12, 12, 10.0, 16.0)), authority_(1) {}

  std::unique_ptr<sim::Network> network_;
  crypto::SimSignatureAuthority authority_;
  ParnoConfig config_;
};

TEST_F(ParnoTest, NoReplicasNothingDetected) {
  ParnoDetector detector(*network_, authority_, 2);
  const DetectionResult result = detector.randomized_multicast(config_);
  EXPECT_EQ(result.replicated_identities, 0u);
  EXPECT_TRUE(result.detected.empty());
  EXPECT_DOUBLE_EQ(result.detection_rate(), 1.0);
}

TEST_F(ParnoTest, RandomizedMulticastDetectsReplicaEventually) {
  network_->add_replica(1, {110, 110});  // clone of the corner node
  // Aggregate over several independent rounds: detection is probabilistic.
  int detections = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ParnoDetector detector(*network_, authority_, seed);
    ParnoConfig config = config_;
    config.witnesses_per_neighbor = 8;
    config.forward_probability = 0.5;
    if (detector.randomized_multicast(config).detected.contains(1)) ++detections;
  }
  EXPECT_GT(detections, 3);
}

TEST_F(ParnoTest, LineSelectedDetectsReplicaEventually) {
  network_->add_replica(1, {110, 110});
  int detections = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ParnoDetector detector(*network_, authority_, seed);
    ParnoConfig config = config_;
    config.lines_per_claim = 8;
    config.forward_probability = 1.0;
    if (detector.line_selected_multicast(config).detected.contains(1)) ++detections;
  }
  EXPECT_GT(detections, 5);  // line intersection detects more reliably
}

TEST_F(ParnoTest, CostsAreAccounted) {
  ParnoDetector detector(*network_, authority_, 3);
  const DetectionResult result = detector.randomized_multicast(config_);
  // Every device signs once.
  EXPECT_EQ(result.sign_ops, network_->device_count());
  EXPECT_GT(result.verify_ops, result.sign_ops);  // neighbors + witnesses verify
  EXPECT_GT(result.messages, network_->device_count());  // forwarding hops exist
  EXPECT_GT(result.bytes, result.messages);  // every message is > 1 byte
}

TEST_F(ParnoTest, LineSelectedStoresMoreClaimsPerNode) {
  ParnoConfig config = config_;
  config.forward_probability = 1.0;
  config.lines_per_claim = 4;
  config.witnesses_per_neighbor = 1;

  ParnoDetector random_detector(*network_, authority_, 5);
  const DetectionResult randomized = random_detector.randomized_multicast(config);
  ParnoDetector line_detector(*network_, authority_, 5);
  const DetectionResult line = line_detector.line_selected_multicast(config);
  // Storing along whole paths necessarily stores more than endpoints only,
  // per unit of routing.
  EXPECT_GT(line.mean_stored_claims, 0.0);
  EXPECT_GT(randomized.mean_stored_claims, 0.0);
}

TEST_F(ParnoTest, DetectionRateDefinition) {
  DetectionResult result;
  result.replicated_identities = 4;
  result.detected_identities = 1;
  EXPECT_DOUBLE_EQ(result.detection_rate(), 0.25);
}

TEST_F(ParnoTest, MoreWitnessesImproveDetection) {
  network_->add_replica(5, {115, 5});
  auto rate_with = [&](std::size_t witnesses) {
    int detections = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      ParnoDetector detector(*network_, authority_, seed);
      ParnoConfig config = config_;
      config.witnesses_per_neighbor = witnesses;
      config.forward_probability = 0.5;
      if (detector.randomized_multicast(config).detected.contains(5)) ++detections;
    }
    return detections;
  };
  EXPECT_GE(rate_with(10), rate_with(1));
}

TEST_F(ParnoTest, ClaimBytesMatchEcdsaAssumption) {
  EXPECT_EQ(kClaimBytes, 4u + 16u + 40u);
}

}  // namespace
}  // namespace snd::baseline
