// Property-style sweeps of the protocol's structural invariants over random
// deployments: invariants that must hold for EVERY configuration, not just
// the hand-picked ones in the unit suites.
#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "topology/partition.h"
#include "topology/stats.h"

namespace snd::core {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t threshold;
  double field_side;
  bool shadowing;
  bool early_erasure;
};

class InvariantSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static SndDeployment make_deployment(const SweepCase& c) {
    DeploymentConfig config;
    config.field = {{0.0, 0.0}, {c.field_side, c.field_side}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = c.threshold;
    config.protocol.early_erasure = c.early_erasure;
    config.log_normal_shadowing = c.shadowing;
    config.seed = c.seed;
    SndDeployment deployment(config);
    deployment.deploy_round(c.nodes);
    deployment.run();
    return deployment;
  }
};

TEST_P(InvariantSweepTest, FunctionalSubsetOfTentative) {
  const SndDeployment deployment = make_deployment(GetParam());
  for (const SndNode* agent : deployment.agents()) {
    for (NodeId v : agent->functional_neighbors()) {
      EXPECT_TRUE(topology::contains(agent->tentative_neighbors(), v))
          << "node " << agent->identity() << " validated a non-tentative neighbor " << v;
    }
  }
}

TEST_P(InvariantSweepTest, PerfectPrecisionWithoutAttackers) {
  // Every validated relation is a genuine physical relation.
  const SndDeployment deployment = make_deployment(GetParam());
  EXPECT_DOUBLE_EQ(
      topology::edge_precision(deployment.actual_benign_graph(), deployment.functional_graph()),
      1.0);
}

TEST_P(InvariantSweepTest, FunctionalRelationsAreMutual) {
  const SndDeployment deployment = make_deployment(GetParam());
  const topology::Digraph functional = deployment.functional_graph();
  for (const auto& [u, v] : functional.edges()) {
    EXPECT_TRUE(functional.has_edge(v, u)) << u << "->" << v;
  }
}

TEST_P(InvariantSweepTest, RecordsFrozenToTentativeLists) {
  const SndDeployment deployment = make_deployment(GetParam());
  for (const SndNode* agent : deployment.agents()) {
    ASSERT_TRUE(agent->has_record());
    EXPECT_EQ(agent->record().neighbors, agent->tentative_neighbors());
    EXPECT_EQ(agent->record().version, 0u);
    EXPECT_TRUE(agent->record().verify(deployment.master_key()));
  }
}

TEST_P(InvariantSweepTest, AllKeysErasedAtQuiescence) {
  const SndDeployment deployment = make_deployment(GetParam());
  for (const SndNode* agent : deployment.agents()) {
    EXPECT_FALSE(agent->master_key_present());
    EXPECT_TRUE(agent->discovery_complete());
  }
}

TEST_P(InvariantSweepTest, ValidatedPairsShareEnoughWitnesses) {
  // The definitional property: u validated v => their tentative lists
  // overlap in at least t+1 identities.
  const SweepCase c = GetParam();
  const SndDeployment deployment = make_deployment(c);
  for (const SndNode* agent : deployment.agents()) {
    for (NodeId v : agent->functional_neighbors()) {
      const SndNode* peer = deployment.agent(v);
      ASSERT_NE(peer, nullptr);
      EXPECT_GE(topology::intersection_size(agent->tentative_neighbors(),
                                            peer->tentative_neighbors()),
                c.threshold + 1)
          << agent->identity() << " <-> " << v;
    }
  }
}

TEST_P(InvariantSweepTest, TentativeMatchesPhysicalLinks) {
  // With the oracle verifier and a loss-free channel, tentative discovery
  // finds exactly the physical neighbors.
  const SndDeployment deployment = make_deployment(GetParam());
  EXPECT_TRUE(deployment.tentative_graph() == deployment.actual_benign_graph());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantSweepTest,
    ::testing::Values(SweepCase{1, 40, 0, 100.0, false, false},
                      SweepCase{2, 80, 3, 150.0, false, false},
                      SweepCase{3, 120, 8, 150.0, false, true},
                      SweepCase{4, 150, 5, 200.0, true, false},
                      SweepCase{5, 60, 1, 120.0, true, true},
                      SweepCase{6, 200, 12, 200.0, false, false},
                      SweepCase{7, 30, 25, 80.0, false, false}));

}  // namespace
}  // namespace snd::core
