#include "runner/trial_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/rng.h"

namespace snd::runner {
namespace {

// A trial whose result exercises the full RNG pipeline, with a work load
// that varies strongly by index so multi-worker runs actually steal.
double noisy_trial(std::size_t index, std::uint64_t seed) {
  util::Rng rng(seed);
  double acc = 0.0;
  const std::size_t spins = 100 + (index % 7) * 400;
  for (std::size_t i = 0; i < spins; ++i) acc += rng.uniform();
  return acc;
}

TEST(SeedDerivationTest, RegressionValues) {
  // Frozen outputs: a change here silently changes every recorded
  // experiment, so it must be deliberate and show up in review.
  EXPECT_EQ(util::derive_seed(0, 0), 0x8c583653daa4a85bULL);
  EXPECT_EQ(util::derive_seed(0, 1), 0x15bd583438ac28c9ULL);
  EXPECT_EQ(util::derive_seed(42, 7), 0xcdd8ded0954d9c3fULL);
  EXPECT_EQ(util::derive_seed(123, 63), 0x3d0c18f08f7574e2ULL);
}

TEST(SeedDerivationTest, DistinctPerTrialAndBase) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t trial = 0; trial < 256; ++trial) {
      seen.insert(util::derive_seed(base, trial));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 256u);
}

TEST(SeedDerivationTest, IndependentOfEvaluationOrder) {
  const std::uint64_t direct = util::derive_seed(7, 100);
  for (std::uint64_t i = 0; i < 100; ++i) util::derive_seed(7, i);
  EXPECT_EQ(util::derive_seed(7, 100), direct);
}

TEST(TrialRunnerTest, ResultsBitIdenticalAcrossJobCounts) {
  const std::size_t trials = 64;
  TrialRunner serial(1);
  const auto baseline = serial.run(trials, 123, noisy_trial);
  const util::RunningStats baseline_stats = serial.run_stats(trials, 123, noisy_trial);

  for (std::size_t jobs : {2, 3, 8}) {
    TrialRunner pool(jobs);
    const auto results = pool.run(trials, 123, noisy_trial);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < trials; ++i) {
      ASSERT_TRUE(results[i].has_value());
      // Exact bit equality, not EXPECT_DOUBLE_EQ: sharding must not change
      // a single trial's stream.
      EXPECT_EQ(*results[i], *baseline[i]) << "trial " << i << " jobs " << jobs;
    }
    const util::RunningStats stats = pool.run_stats(trials, 123, noisy_trial);
    EXPECT_EQ(stats.mean(), baseline_stats.mean());
    EXPECT_EQ(stats.variance(), baseline_stats.variance());
    EXPECT_EQ(stats.min(), baseline_stats.min());
    EXPECT_EQ(stats.max(), baseline_stats.max());
  }
}

TEST(TrialRunnerTest, EveryTrialRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(503);
  TrialRunner pool(8);
  pool.run(hits.size(), 1, [&](std::size_t i, std::uint64_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return 0;
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "trial " << i;
  }
}

TEST(TrialRunnerTest, ThrowingTrialDoesNotKillTheSweep) {
  TrialRunner pool(4);
  SweepReport report;
  report.name = "throwing";
  const auto results = pool.run(
      50, 9,
      [](std::size_t i, std::uint64_t) -> int {
        if (i % 5 == 3) throw std::runtime_error("trial exploded");
        return static_cast<int>(i);
      },
      &report);

  EXPECT_EQ(report.trials, 50u);
  EXPECT_EQ(report.failed, 10u);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("trial exploded"), std::string::npos);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 5 == 3) {
      EXPECT_FALSE(results[i].has_value());
    } else {
      ASSERT_TRUE(results[i].has_value());
      EXPECT_EQ(*results[i], static_cast<int>(i));
    }
  }
}

TEST(TrialRunnerTest, RunStatsSkipsFailedTrials) {
  TrialRunner pool(2);
  const util::RunningStats stats =
      pool.run_stats(10, 0, [](std::size_t i, std::uint64_t) -> double {
        if (i == 0) throw std::runtime_error("boom");
        return 1.0;
      });
  EXPECT_EQ(stats.count(), 9u);
  EXPECT_EQ(stats.mean(), 1.0);
}

TEST(TrialRunnerTest, ReportCapturesTimingAndThroughput) {
  TrialRunner pool(2);
  SweepReport report;
  report.name = "timing";
  pool.run(16, 3, noisy_trial, &report);
  EXPECT_EQ(report.trials, 16u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.trial_micros.count(), 16u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.trials_per_second(), 0.0);
  EXPECT_GE(report.trial_micros.percentile(95.0), report.trial_micros.percentile(50.0));
}

TEST(TrialRunnerTest, MoreJobsThanTrials) {
  TrialRunner pool(16);
  const auto results = pool.run(3, 5, noisy_trial);
  ASSERT_EQ(results.size(), 3u);
  TrialRunner serial(1);
  const auto expected = serial.run(3, 5, noisy_trial);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(*results[i], *expected[i]);
}

TEST(TrialRunnerTest, ZeroTrials) {
  TrialRunner pool(4);
  SweepReport report;
  EXPECT_TRUE(pool.run(0, 1, noisy_trial, &report).empty());
  EXPECT_EQ(report.trials, 0u);
  EXPECT_EQ(report.trials_per_second(), 0.0);
}

TEST(SweepReportTest, MergeAccumulates) {
  TrialRunner pool(2);
  SweepReport a;
  a.name = "merged";
  pool.run(8, 1, noisy_trial, &a);
  SweepReport b;
  pool.run(
      4, 2,
      [](std::size_t, std::uint64_t) -> double { throw std::runtime_error("x"); }, &b);
  a.merge(b);
  EXPECT_EQ(a.trials, 12u);
  EXPECT_EQ(a.failed, 4u);
  EXPECT_EQ(a.trial_micros.count(), 12u);
}

TEST(SweepReportTest, JsonContainsTheHeadlineFields) {
  SweepReport report;
  report.name = "demo \"quoted\"";
  report.trials = 5;
  report.failed = 1;
  report.jobs = 4;
  report.wall_seconds = 2.0;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) report.trial_micros.add(v);
  report.errors.push_back("trial 3: boom");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\": \"demo \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"trials\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"trials_per_second\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 3"), std::string::npos);
  EXPECT_NE(json.find("trial 3: boom"), std::string::npos);
}

TEST(RunSubsetTest, UnionOfDisjointShardsIsBitIdenticalToFullRun) {
  const std::size_t trials = 61;
  TrialRunner pool(3);
  const auto full = pool.run(trials, 987, noisy_trial);

  // Strided 4-way split, shards run independently (even at other job counts).
  std::vector<std::optional<double>> stitched(trials);
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    std::vector<std::uint32_t> indices;
    for (std::size_t i = shard; i < trials; i += 4) {
      indices.push_back(static_cast<std::uint32_t>(i));
    }
    TrialRunner shard_pool(1 + shard % 3);
    const auto part = shard_pool.run_subset(indices, 987, noisy_trial);
    ASSERT_EQ(part.size(), indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) stitched[indices[k]] = part[k];
  }
  for (std::size_t i = 0; i < trials; ++i) {
    ASSERT_TRUE(stitched[i].has_value()) << i;
    EXPECT_EQ(*stitched[i], *full[i]) << i;  // bit-identical, not just close
  }
}

TEST(RunSubsetTest, ReportsGlobalTrialIndicesForFailures) {
  TrialRunner pool(2);
  SweepReport report;
  report.name = "subset";
  const std::vector<std::uint32_t> indices = {3, 10, 17};
  const auto results = pool.run_subset(
      indices, 5,
      [](std::size_t i, std::uint64_t) -> double {
        if (i == 10) throw std::runtime_error("bad trial");
        return static_cast<double>(i);
      },
      &report);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].has_value());
  EXPECT_FALSE(results[1].has_value());
  EXPECT_EQ(report.failed, 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  // The message names the global trial index, not the subset slot.
  EXPECT_NE(report.errors[0].find("trial 10"), std::string::npos) << report.errors[0];
}

TEST(SweepReportTest, CanonicalJsonOmitsTimingAndKeepsMetrics) {
  SweepReport report;
  report.name = "canon";
  report.trials = 3;
  report.jobs = 8;
  report.wall_seconds = 1.25;
  report.trial_micros.add(10.0);
  report.metric("accuracy").add(0.5);
  report.metric("accuracy").add(0.7);
  const std::string canonical = report.to_canonical_json();
  EXPECT_EQ(canonical.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(canonical.find("trial_us"), std::string::npos);
  EXPECT_EQ(canonical.find("jobs"), std::string::npos);
  EXPECT_NE(canonical.find("\"accuracy\""), std::string::npos);
  EXPECT_NE(canonical.find("\"ci95\""), std::string::npos);

  // Same logical sweep, different timing: canonical form is identical.
  SweepReport other = report;
  other.wall_seconds = 99.0;
  other.jobs = 1;
  other.trial_micros.add(5555.0);
  EXPECT_EQ(other.to_canonical_json(), canonical);
  EXPECT_NE(other.to_json(), report.to_json());  // full form does keep timing
}

TEST(JobsKnobTest, FlagBeatsEnvBeatsHardware) {
  const char* argv_flag[] = {"prog", "--jobs", "6"};
  setenv("SND_JOBS", "3", 1);
  EXPECT_EQ(util::resolve_jobs(util::Cli(3, argv_flag)), 6u);

  const char* argv_plain[] = {"prog"};
  EXPECT_EQ(util::resolve_jobs(util::Cli(1, argv_plain)), 3u);

  unsetenv("SND_JOBS");
  EXPECT_GE(util::resolve_jobs(util::Cli(1, argv_plain)), 1u);

  const char* argv_zero[] = {"prog", "--jobs", "0"};
  EXPECT_EQ(util::resolve_jobs(util::Cli(3, argv_zero)), 1u);
}

TEST(CliValidateTest, RejectsUnknownFlagsAndMalformedNumbers) {
  const char* argv[] = {"prog", "--seeds", "banana", "--bogus", "1"};
  const util::Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("seeds", 20), 20);  // malformed -> fallback + error
  std::ostringstream err;
  EXPECT_FALSE(cli.validate(err, {"seeds"}, "[--seeds N]"));
  EXPECT_NE(err.str().find("unknown flag --bogus"), std::string::npos);
  EXPECT_NE(err.str().find("--seeds=banana"), std::string::npos);
  EXPECT_NE(err.str().find("usage:"), std::string::npos);
}

TEST(CliValidateTest, AcceptsCleanInvocations) {
  const char* argv[] = {"prog", "--seeds", "4", "--jobs=2"};
  const util::Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("seeds", 20), 4);
  EXPECT_EQ(cli.get_int("jobs", 0), 2);
  std::ostringstream err;
  EXPECT_TRUE(cli.validate(err, {"seeds", "jobs"}));
  EXPECT_TRUE(err.str().empty());
}

}  // namespace
}  // namespace snd::runner
