#include "sim/deployment.h"

#include <gtest/gtest.h>

namespace snd::sim {
namespace {

const util::Rect kField{{0.0, 0.0}, {100.0, 200.0}};

TEST(DeployUniformTest, CountAndBounds) {
  util::Rng rng(1);
  const auto positions = deploy_uniform(500, kField, rng);
  EXPECT_EQ(positions.size(), 500u);
  for (const auto& p : positions) EXPECT_TRUE(kField.contains(p));
}

TEST(DeployUniformTest, Deterministic) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  const auto a = deploy_uniform(50, kField, rng1);
  const auto b = deploy_uniform(50, kField, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DeployUniformTest, CoversAllQuadrants) {
  util::Rng rng(2);
  const auto positions = deploy_uniform(400, kField, rng);
  int quadrants[4] = {0, 0, 0, 0};
  for (const auto& p : positions) {
    const int q = (p.x > 50.0 ? 1 : 0) + (p.y > 100.0 ? 2 : 0);
    ++quadrants[q];
  }
  for (int count : quadrants) EXPECT_GT(count, 50);
}

TEST(DeployGridTest, ExactCellCenters) {
  util::Rng rng(3);
  const auto positions = deploy_grid(2, 2, {{0, 0}, {10, 10}}, 0.0, rng);
  ASSERT_EQ(positions.size(), 4u);
  EXPECT_EQ(positions[0], (util::Vec2{2.5, 2.5}));
  EXPECT_EQ(positions[3], (util::Vec2{7.5, 7.5}));
}

TEST(DeployGridTest, JitterStaysInsideCell) {
  util::Rng rng(4);
  const auto positions = deploy_grid(10, 10, {{0, 0}, {100, 100}}, 0.9, rng);
  EXPECT_EQ(positions.size(), 100u);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double cx = (static_cast<double>(i % 10) + 0.5) * 10.0;
    const double cy = (static_cast<double>(i / 10) + 0.5) * 10.0;
    EXPECT_LE(std::abs(positions[i].x - cx), 4.5 + 1e-9);
    EXPECT_LE(std::abs(positions[i].y - cy), 4.5 + 1e-9);
  }
}

TEST(DeployClusteredTest, ClampedToField) {
  util::Rng rng(5);
  const auto positions = deploy_clustered(300, 3, 40.0, kField, rng);
  EXPECT_EQ(positions.size(), 300u);
  for (const auto& p : positions) EXPECT_TRUE(kField.contains(p));
}

TEST(DeployClusteredTest, TighterSpreadThanUniform) {
  util::Rng rng(6);
  const auto clustered = deploy_clustered(300, 2, 5.0, kField, rng);
  // Mean nearest-neighbor distance should be far below uniform expectation.
  auto mean_nearest = [](const std::vector<util::Vec2>& pts) {
    double total = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      double best = 1e18;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i != j) best = std::min(best, util::distance(pts[i], pts[j]));
      }
      total += best;
    }
    return total / static_cast<double>(pts.size());
  };
  util::Rng rng2(6);
  const auto uniform = deploy_uniform(300, kField, rng2);
  EXPECT_LT(mean_nearest(clustered), mean_nearest(uniform));
}

}  // namespace
}  // namespace snd::sim
