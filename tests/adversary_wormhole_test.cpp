// Wormhole attack vs the direct-verification layer: relayed identities must
// poison discovery when verification is absent and be rejected when the
// paper's assumed verification is in place.
#include "adversary/wormhole.h"

#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "topology/stats.h"

namespace snd::adversary {
namespace {

using core::DeploymentConfig;
using core::SndDeployment;

DeploymentConfig corridor_config(std::uint64_t seed = 31) {
  DeploymentConfig config;
  // Two pockets 400 m apart; only a wormhole can join them.
  config.field = {{0.0, 0.0}, {500.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 2;
  config.seed = seed;
  return config;
}

/// Deploys two clusters of `per_side` nodes around x=50 and x=450.
std::pair<std::vector<NodeId>, std::vector<NodeId>> deploy_pockets(SndDeployment& deployment,
                                                                   std::size_t per_side) {
  std::vector<NodeId> left;
  std::vector<NodeId> right;
  for (std::size_t i = 0; i < per_side; ++i) {
    const double dx = 8.0 * static_cast<double>(i % 4);
    const double dy = 10.0 * static_cast<double>(i / 4);
    left.push_back(deployment.deploy_node_at({40.0 + dx, 30.0 + dy}));
    right.push_back(deployment.deploy_node_at({440.0 + dx, 30.0 + dy}));
  }
  return {left, right};
}

bool any_cross_pocket_edge(const topology::Digraph& graph, const std::vector<NodeId>& left,
                           const std::vector<NodeId>& right) {
  for (NodeId u : left) {
    for (NodeId v : right) {
      if (graph.has_edge(u, v) || graph.has_edge(v, u)) return true;
    }
  }
  return false;
}

TEST(WormholeTest, PoisonsTentativeListsWithoutVerification) {
  SndDeployment deployment(corridor_config());
  deployment.set_verifier(std::make_shared<verify::NaiveVerifier>());
  Wormhole wormhole(deployment.network(), {50.0, 50.0}, {450.0, 50.0});
  wormhole.start();
  const auto [left, right] = deploy_pockets(deployment, 8);
  deployment.run();

  EXPECT_GT(wormhole.packets_tunneled(), 0u);
  EXPECT_TRUE(any_cross_pocket_edge(deployment.tentative_graph(), left, right));
  // The threshold rule alone cannot save this: relayed records flow too,
  // and the two pockets share "common neighbors" through the tunnel.
  EXPECT_TRUE(any_cross_pocket_edge(deployment.functional_graph(), left, right));
}

TEST(WormholeTest, DefeatedByOracleVerification) {
  SndDeployment deployment(corridor_config());
  Wormhole wormhole(deployment.network(), {50.0, 50.0}, {450.0, 50.0});
  wormhole.start();
  const auto [left, right] = deploy_pockets(deployment, 8);
  deployment.run();

  EXPECT_GT(wormhole.packets_tunneled(), 0u);  // traffic was relayed...
  // ...but no relayed identity survived verification.
  EXPECT_FALSE(any_cross_pocket_edge(deployment.tentative_graph(), left, right));
  EXPECT_FALSE(any_cross_pocket_edge(deployment.functional_graph(), left, right));
}

TEST(WormholeTest, DefeatedByRttDistanceBounding) {
  SndDeployment deployment(corridor_config(33));
  deployment.set_verifier(std::make_shared<verify::RttVerifier>());
  Wormhole wormhole(deployment.network(), {50.0, 50.0}, {450.0, 50.0});
  wormhole.start();
  const auto [left, right] = deploy_pockets(deployment, 8);
  deployment.run();
  EXPECT_FALSE(any_cross_pocket_edge(deployment.functional_graph(), left, right));
}

TEST(WormholeTest, LocalTrafficUnaffected) {
  SndDeployment clean(corridor_config(35));
  const auto [clean_left, clean_right] = deploy_pockets(clean, 8);
  clean.run();

  SndDeployment attacked(corridor_config(35));
  Wormhole wormhole(attacked.network(), {50.0, 50.0}, {450.0, 50.0});
  wormhole.start();
  const auto [left, right] = deploy_pockets(attacked, 8);
  attacked.run();

  // In-pocket functional relations are identical with and without the
  // tunnel under oracle verification.
  EXPECT_EQ(clean.functional_graph().edge_count(), attacked.functional_graph().edge_count());
}

TEST(WormholeTest, TunnelCountsTraffic) {
  SndDeployment deployment(corridor_config(37));
  Wormhole wormhole(deployment.network(), {50.0, 50.0}, {450.0, 50.0});
  wormhole.start();
  deploy_pockets(deployment, 4);
  deployment.run();
  // Both ends hear hellos/acks/records and tunnel them across.
  EXPECT_GT(wormhole.packets_tunneled(), 8u);
}

}  // namespace
}  // namespace snd::adversary
