#include <gtest/gtest.h>

#include <vector>

#include "crypto/blundo.h"
#include "crypto/eg_pool.h"
#include "crypto/keypredist.h"

namespace snd::crypto {
namespace {

TEST(GfTest, AddWraps) {
  EXPECT_EQ(gf::add(gf::kPrime - 1, 5), 4u);
}

TEST(GfTest, SubWraps) {
  EXPECT_EQ(gf::sub(3, 5), gf::kPrime - 2);
}

TEST(GfTest, MulMatchesSmallCases) {
  EXPECT_EQ(gf::mul(7, 6), 42u);
  EXPECT_EQ(gf::mul(gf::kPrime - 1, gf::kPrime - 1), 1u);  // (-1)*(-1) = 1
}

TEST(GfTest, PowMatchesRepeatedMul) {
  std::uint64_t acc = 1;
  for (int i = 0; i < 13; ++i) acc = gf::mul(acc, 9);
  EXPECT_EQ(gf::pow(9, 13), acc);
}

TEST(GfTest, InverseIsMultiplicativeInverse) {
  for (std::uint64_t a : {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{12345},
                          gf::kPrime - 1}) {
    EXPECT_EQ(gf::mul(a, gf::inv(a)), 1u) << a;
  }
}

TEST(KdcSchemeTest, PairwiseIsSymmetric) {
  auto scheme = KdcScheme::from_seed(1);
  scheme->provision(10);
  scheme->provision(20);
  const auto k1 = scheme->pairwise(10, 20);
  const auto k2 = scheme->pairwise(20, 10);
  ASSERT_TRUE(k1 && k2);
  EXPECT_TRUE(*k1 == *k2);
}

TEST(KdcSchemeTest, DistinctPairsDistinctKeys) {
  auto scheme = KdcScheme::from_seed(2);
  const auto k12 = scheme->pairwise(1, 2);
  const auto k13 = scheme->pairwise(1, 3);
  ASSERT_TRUE(k12 && k13);
  EXPECT_FALSE(*k12 == *k13);
}

TEST(KdcSchemeTest, SelfPairRejected) {
  auto scheme = KdcScheme::from_seed(3);
  EXPECT_FALSE(scheme->pairwise(5, 5).has_value());
}

class BlundoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (NodeId id : {1u, 2u, 3u, 4u, 5u}) scheme_.provision(id);
  }
  BlundoScheme scheme_{42, /*lambda=*/3};
};

TEST_F(BlundoTest, PairwiseIsSymmetric) {
  const auto k_uv = scheme_.pairwise(1, 2);
  const auto k_vu = scheme_.pairwise(2, 1);
  ASSERT_TRUE(k_uv && k_vu);
  EXPECT_TRUE(*k_uv == *k_vu);
}

TEST_F(BlundoTest, DistinctPairsDistinctKeys) {
  const auto k12 = scheme_.pairwise(1, 2);
  const auto k34 = scheme_.pairwise(3, 4);
  ASSERT_TRUE(k12 && k34);
  EXPECT_FALSE(*k12 == *k34);
}

TEST_F(BlundoTest, UnprovisionedNodeFails) {
  EXPECT_FALSE(scheme_.pairwise(1, 999).has_value());
}

TEST_F(BlundoTest, SelfPairRejected) { EXPECT_FALSE(scheme_.pairwise(1, 1).has_value()); }

TEST_F(BlundoTest, StorageGrowsWithLambda) {
  BlundoScheme small(1, 2);
  BlundoScheme large(1, 20);
  EXPECT_LT(small.storage_bytes_per_node(), large.storage_bytes_per_node());
}

TEST_F(BlundoTest, ShareAccessRequiresProvisioning) {
  EXPECT_THROW((void)scheme_.share(999, 0), std::out_of_range);
  EXPECT_EQ(scheme_.share(1, 0).size(), 4u);  // lambda + 1 coefficients
}

// The defining security property: lambda+1 colluding nodes CAN reconstruct
// another node's share by Lagrange interpolation, while the scheme is
// information-theoretically secure below that. We verify the constructive
// half -- interpolating share evaluations from lambda+1 captured shares
// yields exactly the victim's key material.
TEST_F(BlundoTest, LambdaPlusOneCollusionReconstructs) {
  const std::size_t lambda = scheme_.lambda();  // 3
  const std::vector<NodeId> colluders = {1, 2, 3, 4};  // lambda + 1 nodes
  ASSERT_EQ(colluders.size(), lambda + 1);
  const NodeId victim = 5;
  const std::uint64_t target_y = 77;  // reconstruct f(victim_x, 77)

  const auto x_of = [](NodeId id) -> std::uint64_t { return id; };

  for (std::size_t poly = 0; poly < BlundoScheme::kParallelPolys; ++poly) {
    // Each colluder c evaluates its own share at y = victim_x, giving the
    // point (c, f(c, victim_x)) of the univariate g(x) = f(x, victim_x).
    // Interpolating g at x = target... we reconstruct f(victim, target_y)
    // by first recovering g(x) = f(x, target_y) from points
    // (c, f(c, target_y)) = (c, evaluate_share(share_c, target_y)).
    std::vector<std::uint64_t> xs;
    std::vector<std::uint64_t> ys;
    for (NodeId c : colluders) {
      xs.push_back(x_of(c));
      ys.push_back(BlundoScheme::evaluate_share(scheme_.share(c, poly), target_y));
    }

    // Lagrange interpolation of g at x = victim.
    std::uint64_t reconstructed = 0;
    for (std::size_t i = 0; i <= lambda; ++i) {
      std::uint64_t term = ys[i];
      for (std::size_t j = 0; j <= lambda; ++j) {
        if (i == j) continue;
        const std::uint64_t numerator = gf::sub(x_of(victim), xs[j]);
        const std::uint64_t denominator = gf::sub(xs[i], xs[j]);
        term = gf::mul(term, gf::mul(numerator, gf::inv(denominator)));
      }
      reconstructed = gf::add(reconstructed, term);
    }

    const std::uint64_t actual =
        BlundoScheme::evaluate_share(scheme_.share(victim, poly), target_y);
    EXPECT_EQ(reconstructed, actual) << "polynomial " << poly;
  }
}

TEST(EgPoolTest, SharedRingYieldsSymmetricKey) {
  // Tiny pool with large rings: intersection guaranteed.
  EschenauerGligorScheme scheme(7, /*pool=*/20, /*ring=*/15);
  scheme.provision(1);
  scheme.provision(2);
  const auto k12 = scheme.pairwise(1, 2);
  const auto k21 = scheme.pairwise(2, 1);
  ASSERT_TRUE(k12 && k21);
  EXPECT_TRUE(*k12 == *k21);
}

TEST(EgPoolTest, DisjointRingsYieldNoKey) {
  // Pool so large relative to rings that a specific pair can miss; search
  // for a failing pair to prove the nullopt path exists.
  EschenauerGligorScheme scheme(3, /*pool=*/10000, /*ring=*/5);
  bool found_failure = false;
  for (NodeId u = 1; u <= 40 && !found_failure; ++u) {
    scheme.provision(u);
    for (NodeId v = 1; v < u; ++v) {
      if (!scheme.pairwise(u, v).has_value()) found_failure = true;
    }
  }
  EXPECT_TRUE(found_failure);
}

TEST(EgPoolTest, RingSizeRespected) {
  EschenauerGligorScheme scheme(11, 1000, 50);
  scheme.provision(9);
  EXPECT_EQ(scheme.ring(9).size(), 50u);
  EXPECT_THROW(static_cast<void>(scheme.ring(10)), std::out_of_range);
}

TEST(EgPoolTest, AnalyticalProbabilityBounds) {
  EschenauerGligorScheme scheme(13, 10000, 100);
  const double p = scheme.analytical_share_probability();
  // Classic EG configuration: ~63% connectivity.
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 0.75);
}

TEST(EgPoolTest, EmpiricalMatchesAnalytical) {
  EschenauerGligorScheme scheme(17, 1000, 40);
  const std::size_t n = 60;
  for (NodeId id = 1; id <= n; ++id) scheme.provision(id);

  std::size_t pairs = 0;
  std::size_t connected = 0;
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      ++pairs;
      if (scheme.pairwise(u, v).has_value()) ++connected;
    }
  }
  const double empirical = static_cast<double>(connected) / static_cast<double>(pairs);
  EXPECT_NEAR(empirical, scheme.analytical_share_probability(), 0.05);
}

TEST(EgPoolTest, OverfullRingAlwaysConnects) {
  // ring > pool/2 guarantees intersection.
  EschenauerGligorScheme scheme(19, 10, 6);
  scheme.provision(1);
  scheme.provision(2);
  EXPECT_TRUE(scheme.pairwise(1, 2).has_value());
  EXPECT_DOUBLE_EQ(scheme.analytical_share_probability(), 1.0);
}

TEST(QCompositeTest, HigherQReducesConnectivity) {
  const EschenauerGligorScheme q1(23, 1000, 60, 1);
  const EschenauerGligorScheme q2(23, 1000, 60, 2);
  const EschenauerGligorScheme q3(23, 1000, 60, 3);
  EXPECT_GT(q1.analytical_share_probability(), q2.analytical_share_probability());
  EXPECT_GT(q2.analytical_share_probability(), q3.analytical_share_probability());
}

TEST(QCompositeTest, EmpiricalConnectivityMatchesAnalytical) {
  EschenauerGligorScheme scheme(29, 500, 40, 2);
  const std::size_t n = 50;
  for (NodeId id = 1; id <= n; ++id) scheme.provision(id);
  std::size_t pairs = 0;
  std::size_t connected = 0;
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      ++pairs;
      if (scheme.pairwise(u, v).has_value()) ++connected;
    }
  }
  EXPECT_NEAR(static_cast<double>(connected) / static_cast<double>(pairs),
              scheme.analytical_share_probability(), 0.07);
}

TEST(QCompositeTest, PairsBelowQThresholdRejected) {
  // Tiny rings on a huge pool: singleton overlaps are common, q=2 rejects
  // them. Find a pair with exactly one shared key and check both modes.
  EschenauerGligorScheme q1(31, 2000, 30, 1);
  EschenauerGligorScheme q2(31, 2000, 30, 2);  // same seed -> same rings
  for (NodeId id = 1; id <= 60; ++id) {
    q1.provision(id);
    q2.provision(id);
  }
  bool found_single_overlap = false;
  for (NodeId u = 1; u <= 60 && !found_single_overlap; ++u) {
    for (NodeId v = u + 1; v <= 60; ++v) {
      std::vector<std::uint32_t> shared;
      std::set_intersection(q1.ring(u).begin(), q1.ring(u).end(), q1.ring(v).begin(),
                            q1.ring(v).end(), std::back_inserter(shared));
      if (shared.size() == 1) {
        EXPECT_TRUE(q1.pairwise(u, v).has_value());
        EXPECT_FALSE(q2.pairwise(u, v).has_value());
        found_single_overlap = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_single_overlap);
}

TEST(QCompositeTest, SmallCaptureResilienceImprovesWithQ) {
  // The q-composite headline: against small-scale capture, larger q leaks
  // fewer links.
  const EschenauerGligorScheme q1(37, 1000, 75, 1);
  const EschenauerGligorScheme q2(37, 1000, 75, 2);
  const double leak_q1 = q1.analytical_compromise_probability(10);
  const double leak_q2 = q2.analytical_compromise_probability(10);
  EXPECT_LT(leak_q2, leak_q1);
  EXPECT_GT(leak_q1, 0.0);
  EXPECT_LT(leak_q1, 1.0);
}

TEST(QCompositeTest, CompromiseProbabilityMonotoneInCaptures) {
  const EschenauerGligorScheme scheme(41, 1000, 75, 2);
  double previous = -1.0;
  for (std::size_t captured : {1u, 5u, 20u, 100u}) {
    const double leak = scheme.analytical_compromise_probability(captured);
    EXPECT_GE(leak, previous);
    previous = leak;
  }
  EXPECT_NEAR(scheme.analytical_compromise_probability(10000), 1.0, 1e-6);
}

}  // namespace
}  // namespace snd::crypto
