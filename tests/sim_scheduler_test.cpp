#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/soa.h"

namespace snd::sim {
namespace {

/// Runs `body` with each cancel-set representation (bitset window / hash
/// set), restoring the process-wide flag afterwards. The representation is
/// captured at Scheduler construction, so the Scheduler must be built
/// inside `body`.
template <typename Body>
void with_both_cancel_reps(Body&& body) {
  const bool saved = util::soa_enabled();
  for (const bool soa : {true, false}) {
    util::set_soa_enabled(soa);
    body(soa);
  }
  util::set_soa_enabled(saved);
}

TEST(TimeTest, Construction) {
  EXPECT_EQ(Time::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Time::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Time::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Time::zero().ns(), 0);
}

TEST(TimeTest, ArithmeticAndComparison) {
  const Time a = Time::milliseconds(5);
  const Time b = Time::milliseconds(3);
  EXPECT_EQ((a + b).ns(), Time::milliseconds(8).ns());
  EXPECT_EQ((a - b).ns(), Time::milliseconds(2).ns());
  EXPECT_LT(b, a);
  EXPECT_GT(Time::infinity(), a);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Time::seconds(2.5).to_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(Time::milliseconds(1500).to_milliseconds(), 1500.0);
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(Time::milliseconds(30), [&] { order.push_back(3); });
  scheduler.schedule_at(Time::milliseconds(10), [&] { order.push_back(1); });
  scheduler.schedule_at(Time::milliseconds(20), [&] { order.push_back(2); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SameTimeFifoBySchedulingOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(Time::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  scheduler.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler scheduler;
  Time observed;
  scheduler.schedule_at(Time::milliseconds(42), [&] { observed = scheduler.now(); });
  scheduler.run();
  EXPECT_EQ(observed, Time::milliseconds(42));
  EXPECT_EQ(scheduler.now(), Time::milliseconds(42));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler scheduler;
  scheduler.schedule_at(Time::milliseconds(10), [&] {
    // From inside an event at t=10, scheduling for t=5 must not rewind.
    scheduler.schedule_at(Time::milliseconds(5), [&] {
      EXPECT_GE(scheduler.now(), Time::milliseconds(10));
    });
  });
  scheduler.run();
  EXPECT_EQ(scheduler.executed(), 2u);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler scheduler;
  bool ran = false;
  const EventId id = scheduler.schedule_at(Time::milliseconds(1), [&] { ran = true; });
  scheduler.cancel(id);
  scheduler.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(scheduler.executed(), 0u);
}

TEST(SchedulerTest, CancelAfterExecutionIsNoop) {
  Scheduler scheduler;
  const EventId id = scheduler.schedule_at(Time::zero(), [] {});
  scheduler.run();
  scheduler.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(scheduler.empty());
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  int count = 0;
  scheduler.schedule_at(Time::milliseconds(10), [&] { ++count; });
  scheduler.schedule_at(Time::milliseconds(20), [&] { ++count; });
  scheduler.schedule_at(Time::milliseconds(30), [&] { ++count; });
  scheduler.run_until(Time::milliseconds(20));
  EXPECT_EQ(count, 2);  // the t=20 event runs; t=30 does not
  EXPECT_EQ(scheduler.pending(), 1u);
  scheduler.run();
  EXPECT_EQ(count, 3);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler scheduler;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      scheduler.schedule_at(scheduler.now() + Time::milliseconds(1), recurse);
    }
  };
  scheduler.schedule_at(Time::zero(), recurse);
  scheduler.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(scheduler.now(), Time::milliseconds(4));
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  scheduler.schedule_at(Time::zero(), [] {});
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());
}

TEST(SchedulerTest, PendingCountsUnexecuted) {
  Scheduler scheduler;
  EXPECT_TRUE(scheduler.empty());
  const EventId a = scheduler.schedule_at(Time::milliseconds(1), [] {});
  scheduler.schedule_at(Time::milliseconds(2), [] {});
  EXPECT_EQ(scheduler.pending(), 2u);
  scheduler.cancel(a);
  EXPECT_EQ(scheduler.pending(), 1u);
}

TEST(SchedulerTest, CancelAfterFireStaysBounded) {
  Scheduler scheduler;
  std::vector<EventId> fired;
  for (int i = 0; i < 512; ++i) fired.push_back(scheduler.schedule_at(Time::zero(), [] {}));
  scheduler.run();

  const EventId live = scheduler.schedule_at(Time::milliseconds(1), [] {});
  scheduler.schedule_at(Time::milliseconds(2), [] {});
  scheduler.schedule_at(Time::milliseconds(3), [] {});

  // Cancelling ids that already fired must not accumulate: before the
  // sweep existed, 512 stale ids sat in the side set forever and pending()
  // saturated to zero despite three live events.
  for (const EventId id : fired) scheduler.cancel(id);
  EXPECT_LE(scheduler.cancelled_backlog(), 3u + 65u);
  EXPECT_EQ(scheduler.pending(), 3u);

  // Live cancellation still works with the sweep interleaved.
  scheduler.cancel(live);
  EXPECT_EQ(scheduler.pending(), 2u);
  scheduler.run();
  EXPECT_EQ(scheduler.executed(), 514u);
}

TEST(SchedulerTest, TypicalEventActionStaysInline) {
  // The whole point of the SBO action type: simulator-sized captures must
  // not reach the heap fallback.
  Scheduler scheduler;
  std::array<std::uint8_t, 64> capture{};
  capture[0] = 42;
  int seen = 0;
  EventAction action = [capture, &seen] { seen = capture[0]; };
  EXPECT_FALSE(action.heap_allocated());
  scheduler.schedule_at(Time::zero(), std::move(action));
  scheduler.run();
  EXPECT_EQ(seen, 42);
}

TEST(SchedulerTest, OversizedCaptureFallsBackToHeapAndStillRuns) {
  Scheduler scheduler;
  std::array<std::uint8_t, 256> blob{};
  blob[0] = 7;
  int seen = 0;
  EventAction action = [blob, &seen] { seen = blob[0]; };
  EXPECT_TRUE(action.heap_allocated());
  scheduler.schedule_at(Time::zero(), std::move(action));
  scheduler.run();
  EXPECT_EQ(seen, 7);
}

TEST(SchedulerTest, CancelReleasesActionResources) {
  // A cancelled event's capture must be destroyed, not leaked in the queue.
  Scheduler scheduler;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  const EventId id =
      scheduler.schedule_at(Time::milliseconds(1), [token = std::move(token)] { (void)token; });
  scheduler.cancel(id);
  scheduler.run();
  EXPECT_FALSE(watch.lock());
  EXPECT_EQ(scheduler.executed(), 0u);
}

TEST(SchedulerTest, DestructionReleasesUnrunActions) {
  // run_until() can leave events queued forever; destroying the scheduler
  // must release their captures (inline and heap-fallback alike).
  auto small = std::make_shared<int>(1);
  auto large = std::make_shared<int>(2);
  std::weak_ptr<int> watch_small = small;
  std::weak_ptr<int> watch_large = large;
  {
    Scheduler scheduler;
    scheduler.schedule_at(Time::milliseconds(1), [small = std::move(small)] { (void)small; });
    std::array<std::uint8_t, 256> pad{};
    scheduler.schedule_at(Time::milliseconds(2),
                          [large = std::move(large), pad] { (void)pad; });
    scheduler.run_until(Time::zero());
    EXPECT_TRUE(watch_small.lock());
    EXPECT_TRUE(watch_large.lock());
  }
  EXPECT_FALSE(watch_small.lock());
  EXPECT_FALSE(watch_large.lock());
}

TEST(SchedulerTest, MoveOnlyCapturesSchedulable) {
  // EventAction is move-only, so uniquely-owned captures work directly.
  Scheduler scheduler;
  auto value = std::make_unique<int>(11);
  int seen = 0;
  scheduler.schedule_at(Time::zero(), [value = std::move(value), &seen] { seen = *value; });
  scheduler.run();
  EXPECT_EQ(seen, 11);
}

TEST(SchedulerTest, SameTimeOrderSurvivesCancelSweeps) {
  // Regression pin: the lazy-cancel sweep compacts the heap, and a sweep
  // that rebuilt it without the (time, id) tie-break would reorder
  // same-timestamp events. Interleave a same-timestamp batch with enough
  // stale cancels to force several sweeps (slack is 64) and check FIFO
  // order survives, including a live cancellation in the middle.
  Scheduler scheduler;
  std::vector<EventId> stale;
  for (int i = 0; i < 200; ++i) stale.push_back(scheduler.schedule_at(Time::zero(), [] {}));
  scheduler.run();

  std::vector<int> order;
  std::vector<EventId> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(
        scheduler.schedule_at(Time::milliseconds(7), [&order, i] { order.push_back(i); }));
  }
  for (const EventId id : stale) scheduler.cancel(id);  // triggers the sweeps
  for (int i = 16; i < 32; ++i) {
    scheduler.schedule_at(Time::milliseconds(7), [&order, i] { order.push_back(i); });
  }
  scheduler.cancel(batch[5]);
  scheduler.run();

  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    if (i != 5) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, EventIdsSurviveCrossingThirtyTwoBits) {
  // Regression pin for the >= 10^8-event overflow audit: ids, ordering,
  // cancellation, and the pending count must all behave identically when
  // the id counter crosses 2^32 -- a million-node run gets there. The hook
  // fast-forwards the counter so the test doesn't schedule 4 billion
  // events for real.
  with_both_cancel_reps([](bool soa) {
    Scheduler scheduler;
    scheduler.set_next_event_id((std::uint64_t{1} << 32) - 2);

    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 6; ++i) {
      // Same timestamp: execution order is the id tie-break, which must be
      // monotone across the 2^32 boundary (no truncation anywhere).
      ids.push_back(
          scheduler.schedule_at(Time::milliseconds(5), [&order, i] { order.push_back(i); }));
    }
    EXPECT_LT(ids[0], std::uint64_t{1} << 32);
    EXPECT_GT(ids.back(), std::uint64_t{1} << 32);
    for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_EQ(ids[i], ids[i - 1] + 1);

    // Cancel one id on each side of the boundary.
    scheduler.cancel(ids[1]);
    scheduler.cancel(ids[4]);
    EXPECT_EQ(scheduler.pending(), 4u) << "soa=" << soa;
    scheduler.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5})) << "soa=" << soa;
  });
}

TEST(SchedulerTest, SetNextEventIdOnlyMovesForward) {
  Scheduler scheduler;
  scheduler.set_next_event_id(1000);
  scheduler.set_next_event_id(10);  // ignored: ids must stay unique
  const EventId id = scheduler.schedule_at(Time::zero(), [] {});
  EXPECT_GE(id, 1000u);
}

TEST(SchedulerTest, CancelSemanticsIdenticalAcrossRepresentations) {
  // The bitset cancel window and the seed hash set must agree on every
  // observable: which events fire, pending counts, and the bounded
  // cancel-after-fire backlog.
  with_both_cancel_reps([](bool soa) {
    Scheduler scheduler;
    std::vector<EventId> fired;
    for (int i = 0; i < 300; ++i) fired.push_back(scheduler.schedule_at(Time::zero(), [] {}));
    scheduler.run();

    std::vector<int> order;
    std::vector<EventId> live;
    for (int i = 0; i < 8; ++i) {
      live.push_back(
          scheduler.schedule_at(Time::milliseconds(1), [&order, i] { order.push_back(i); }));
    }
    for (const EventId id : fired) scheduler.cancel(id);  // stale: must sweep, not leak
    EXPECT_LE(scheduler.cancelled_backlog(), 8u + 65u) << "soa=" << soa;
    scheduler.cancel(live[2]);
    scheduler.cancel(live[2]);  // double-cancel counts once
    scheduler.cancel(live[6]);
    EXPECT_EQ(scheduler.pending(), 6u) << "soa=" << soa;
    scheduler.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4, 5, 7})) << "soa=" << soa;
    EXPECT_TRUE(scheduler.empty());
  });
}

TEST(SchedulerTest, ManyEventsStressOrdering) {
  Scheduler scheduler;
  std::vector<std::int64_t> fired;
  // Deliberately scramble insertion order with a fixed stride pattern.
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t at = (i * 7919) % 1000;
    scheduler.schedule_at(Time::milliseconds(at), [&fired, at] { fired.push_back(at); });
  }
  scheduler.run();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 1000u);
}

}  // namespace
}  // namespace snd::sim
