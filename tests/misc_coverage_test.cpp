// Coverage of small utility surfaces not exercised by the main suites.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/messenger.h"
#include "sim/network.h"
#include "util/log.h"
#include "util/rng.h"

namespace snd {
namespace {

TEST(TimeFormatTest, ToStringSeconds) {
  EXPECT_EQ(sim::Time::milliseconds(1500).to_string(), "1.500000s");
  EXPECT_EQ(sim::Time::zero().to_string(), "0.000000s");
}

TEST(TransmissionTimeTest, MatchesBitRate) {
  sim::Network network(std::make_unique<sim::UnitDiskModel>(10.0), sim::ChannelConfig{}, 1);
  // 125 bytes at 250 kbps = 4 ms.
  EXPECT_EQ(network.transmission_time(125).ns(), 4'000'000);
  EXPECT_EQ(network.transmission_time(0).ns(), 0);
}

TEST(TxBytesTest, PerDeviceAndMaxTracking) {
  sim::Network network(std::make_unique<sim::UnitDiskModel>(10.0), sim::ChannelConfig{}, 1);
  const sim::DeviceId a = network.add_device(1, {0, 0});
  const sim::DeviceId b = network.add_device(2, {5, 0});
  network.transmit(a, sim::Packet{.src = 1, .dst = kNoNode, .type = 1,
                                  .payload = util::Bytes(9, 0)},
                   obs::Phase::kOther);
  network.transmit(a, sim::Packet{.src = 1, .dst = kNoNode, .type = 1, .payload = {}}, obs::Phase::kOther);
  network.scheduler().run();
  EXPECT_EQ(network.tx_bytes(a), 20u + 11u);  // (9+11) + (0+11)
  EXPECT_EQ(network.tx_bytes(b), 0u);
  EXPECT_EQ(network.max_tx_bytes(), network.tx_bytes(a));
}

TEST(PacketTest, BroadcastAndWireBytes) {
  sim::Packet packet{.src = 1, .dst = kNoNode, .type = 1, .payload = util::Bytes(5, 0)};
  EXPECT_TRUE(packet.is_broadcast());
  EXPECT_EQ(packet.wire_bytes(), 16u);
  packet.dst = 7;
  EXPECT_FALSE(packet.is_broadcast());
}

TEST(RngInterfaceTest, UsableWithStdShuffle) {
  util::Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  auto shuffled = values;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
  EXPECT_EQ(util::Rng::min(), 0u);
  EXPECT_EQ(util::Rng::max(), ~0ULL);
}

TEST(LogStreamTest, OperatorsCompose) {
  util::set_log_level(util::LogLevel::kOff);
  util::log_error() << "value=" << 42 << " f=" << 1.5;  // must not crash or emit
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(MessengerSurfaceTest, IdentityAndOverhead) {
  sim::Network network(std::make_unique<sim::UnitDiskModel>(10.0), sim::ChannelConfig{}, 1);
  const sim::DeviceId device = network.add_device(5, {0, 0});
  core::Messenger messenger(network, device, 5, crypto::KdcScheme::from_seed(1));
  EXPECT_EQ(messenger.identity(), 5u);
  EXPECT_EQ(core::Messenger::kAuthOverhead, 16u);
}

TEST(DeviceTest, BenignPredicate) {
  sim::Device device;
  EXPECT_TRUE(device.benign());
  device.compromised = true;
  EXPECT_FALSE(device.benign());
  device.compromised = false;
  device.replica = true;
  EXPECT_FALSE(device.benign());
}

TEST(EnergyConfigTest, DefaultsDocumented) {
  const sim::EnergyConfig energy;
  EXPECT_FALSE(energy.enabled);
  EXPECT_GT(energy.tx_j_per_byte, energy.rx_j_per_byte);  // tx costs more
}

}  // namespace
}  // namespace snd
