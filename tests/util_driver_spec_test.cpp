#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/cli.h"
#include "util/driver_spec.h"
#include "util/runtime_config.h"

namespace snd::util::cli {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

DriverSpec basic_spec() {
  DriverSpec spec("demo", "A demo driver.");
  spec.int_flag("seeds", 20, "N", "independent seeds", 1)
      .double_flag("range", 50.0, "R", "radio range", 1e-9)
      .bool_flag("fast", "skip the slow pass")
      .string_flag("out", "", "PATH", "output path");
  return spec;
}

TEST(DriverSpecTest, DefaultsApplyWhenFlagsAbsent) {
  const DriverSpec spec = basic_spec();
  const auto args = argv_of({"demo"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  ASSERT_TRUE(cli.ok());
  EXPECT_EQ(cli.get_int("seeds"), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("range"), 50.0);
  EXPECT_FALSE(cli.get_bool("fast"));
  EXPECT_EQ(cli.get("out"), "");
}

TEST(DriverSpecTest, ParsesGivenValues) {
  const DriverSpec spec = basic_spec();
  const auto args =
      argv_of({"demo", "--seeds=7", "--range", "2.5", "--fast", "--out=x.json"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  ASSERT_TRUE(cli.ok()) << err.str();
  EXPECT_EQ(cli.get_int("seeds"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("range"), 2.5);
  EXPECT_TRUE(cli.get_bool("fast"));
  EXPECT_EQ(cli.get("out"), "x.json");
}

TEST(DriverSpecTest, HelpPrintsEveryFlagAndExitsZero) {
  const DriverSpec spec = basic_spec();
  const auto args = argv_of({"demo", "--help"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  EXPECT_FALSE(cli.ok());
  EXPECT_EQ(cli.exit_code(), 0);
  const std::string help = out.str();
  EXPECT_NE(help.find("A demo driver."), std::string::npos);
  EXPECT_NE(help.find("--seeds=N"), std::string::npos);
  EXPECT_NE(help.find("[default: 20]"), std::string::npos);
  EXPECT_NE(help.find("--fast"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(DriverSpecTest, RejectsUnknownFlag) {
  const DriverSpec spec = basic_spec();
  const auto args = argv_of({"demo", "--sedes=7"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  EXPECT_FALSE(cli.ok());
  EXPECT_EQ(cli.exit_code(), 2);
  EXPECT_NE(err.str().find("--sedes"), std::string::npos);
}

TEST(DriverSpecTest, RejectsDuplicateFlag) {
  const DriverSpec spec = basic_spec();
  const auto args = argv_of({"demo", "--seeds=7", "--seeds=9"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  EXPECT_FALSE(cli.ok());
  EXPECT_EQ(cli.exit_code(), 2);
  EXPECT_NE(err.str().find("more than once"), std::string::npos);
}

TEST(DriverSpecTest, RejectsOutOfRangeAndMalformedValues) {
  const DriverSpec spec = basic_spec();
  {
    const auto args = argv_of({"demo", "--seeds=0"});
    std::ostringstream out, err;
    const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
    EXPECT_FALSE(cli.ok());
    EXPECT_NE(err.str().find("--seeds=0"), std::string::npos);
  }
  {
    const auto args = argv_of({"demo", "--range=banana"});
    std::ostringstream out, err;
    const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
    EXPECT_FALSE(cli.ok());
  }
}

TEST(DriverSpecTest, StringValidatorRuns) {
  DriverSpec spec("demo", "validator demo");
  spec.string_flag("mode", "a", "MODE", "a or b",
                   [](std::string_view value) -> std::optional<std::string> {
                     if (value == "a" || value == "b") return std::nullopt;
                     return "must be a or b";
                   });
  const auto bad = argv_of({"demo", "--mode=c"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(bad.size()), bad.data(), out, err);
  EXPECT_FALSE(cli.ok());
  EXPECT_NE(err.str().find("must be a or b"), std::string::npos);

  const auto good = argv_of({"demo", "--mode=b"});
  std::ostringstream out2, err2;
  const Driver cli2 = spec.parse(static_cast<int>(good.size()), good.data(), out2, err2);
  ASSERT_TRUE(cli2.ok());
  EXPECT_EQ(cli2.get("mode"), "b");
}

TEST(DriverSpecTest, GroupResolverRunsAndHelpShowsGroupTitle) {
  std::size_t jobs = 0;
  DriverSpec spec("demo", "group demo");
  spec.int_flag("seeds", 1, "N", "seeds", 1).group(jobs_group(&jobs));
  const auto args = argv_of({"demo", "--jobs=3"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  ASSERT_TRUE(cli.ok());
  EXPECT_EQ(jobs, 3u);

  std::ostringstream help;
  spec.print_help(help);
  EXPECT_NE(help.str().find("Parallelism:"), std::string::npos);
  EXPECT_NE(help.str().find("--jobs=N"), std::string::npos);
}

TEST(DriverSpecTest, PositionalArityEnforced) {
  DriverSpec spec("demo", "positional demo");
  spec.string_flag("out", "", "PATH", "output").positional("FILE", "input files", 1);
  {
    const auto args = argv_of({"demo"});
    std::ostringstream out, err;
    const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
    EXPECT_FALSE(cli.ok());
  }
  {
    const auto args = argv_of({"demo", "a.bin", "b.bin"});
    std::ostringstream out, err;
    const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
    ASSERT_TRUE(cli.ok());
    EXPECT_EQ(cli.positional().size(), 2u);
  }
}

TEST(DriverSpecTest, RejectsUndeclaredPositionals) {
  const DriverSpec spec = basic_spec();
  const auto args = argv_of({"demo", "stray"});
  std::ostringstream out, err;
  const Driver cli = spec.parse(static_cast<int>(args.size()), args.data(), out, err);
  EXPECT_FALSE(cli.ok());
  EXPECT_NE(err.str().find("stray"), std::string::npos);
}

// Regression for the duplicate-flag hole in the pre-DriverSpec parser: the
// first value silently won and validate() accepted the line.
TEST(CliDuplicateFlagTest, ValidateRejectsRepeatedFlag) {
  const auto args = argv_of({"prog", "--seeds=3", "--seeds=9"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  ASSERT_EQ(cli.duplicates().size(), 1u);
  EXPECT_NE(cli.duplicates().front().find("--seeds"), std::string::npos);
  std::ostringstream err;
  EXPECT_FALSE(cli.validate(err, {"seeds"}, "[--seeds N]"));
  EXPECT_NE(err.str().find("more than once"), std::string::npos);
  // The first occurrence stays readable for error reporting.
  EXPECT_EQ(cli.get_int("seeds", 0), 3);
}

TEST(CliDuplicateFlagTest, DistinctFlagsStillValidate) {
  const auto args = argv_of({"prog", "--seeds=3", "--tmax=10"});
  const Cli cli(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(cli.duplicates().empty());
  std::ostringstream err;
  EXPECT_TRUE(cli.validate(err, {"seeds", "tmax"}, ""));
}

}  // namespace
}  // namespace snd::util::cli

namespace snd {
namespace {

TEST(RuntimeConfigTest, LoadsFromEnvironment) {
  ::setenv("SND_JOBS", "5", 1);
  ::setenv("SND_SOA", "off", 1);
  ::setenv("SND_BENCH_DIR", "/tmp/artifacts", 1);
  const RuntimeConfig config = load_runtime_config_from_env();
  ASSERT_TRUE(config.jobs.has_value());
  EXPECT_EQ(*config.jobs, 5);
  EXPECT_FALSE(config.soa);
  ASSERT_TRUE(config.bench_dir.has_value());
  EXPECT_EQ(*config.bench_dir, "/tmp/artifacts");
  ::unsetenv("SND_JOBS");
  ::unsetenv("SND_SOA");
  ::unsetenv("SND_BENCH_DIR");
}

TEST(RuntimeConfigTest, UnsetVariablesStayDefault) {
  ::unsetenv("SND_JOBS");
  ::unsetenv("SND_SOA");
  ::unsetenv("SND_CRYPTO_FAST");
  const RuntimeConfig config = load_runtime_config_from_env();
  EXPECT_FALSE(config.jobs.has_value());
  EXPECT_TRUE(config.soa);
  EXPECT_TRUE(config.crypto_fast);
}

TEST(RuntimeConfigTest, BenchArtifactPathRespectsOverride) {
  const RuntimeConfig saved = runtime_config();
  RuntimeConfig with_dir = saved;
  with_dir.bench_dir = "/tmp/bench";
  set_runtime_config_for_testing(with_dir);
  EXPECT_EQ(bench_artifact_path("BENCH_x.json"), "/tmp/bench/BENCH_x.json");
  RuntimeConfig without_dir = saved;
  without_dir.bench_dir.reset();
  set_runtime_config_for_testing(without_dir);
  EXPECT_EQ(bench_artifact_path("BENCH_x.json"), "BENCH_x.json");
  set_runtime_config_for_testing(saved);
}

}  // namespace
}  // namespace snd
