// The service's correctness gate: after ANY event sequence, the
// incrementally-maintained topology must serialize byte-identically to a
// from-scratch rebuild of the same world. This is what licenses the
// R-disc locality optimization in ValidationService::apply_locked -- if the
// affected-region bound were ever too tight, these tests would diverge.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "fault/plan.h"
#include "service/events.h"
#include "service/validation_service.h"
#include "util/rng.h"

namespace snd::service {
namespace {

std::vector<std::pair<NodeId, util::Vec2>> random_field(std::size_t count,
                                                        const util::Rect& field,
                                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<NodeId, util::Vec2>> nodes;
  nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes.emplace_back(static_cast<NodeId>(i + 1),
                       util::Vec2{rng.uniform(field.lo.x, field.hi.x),
                                  rng.uniform(field.lo.y, field.hi.y)});
  }
  return nodes;
}

void expect_equivalent(const ValidationService& service, const char* context) {
  const auto incremental = service.snapshot();
  const auto rebuilt = service.rebuild();
  ASSERT_EQ(incremental->canonical_json(), rebuilt->canonical_json()) << context;
  EXPECT_EQ(incremental->digest(), rebuilt->digest()) << context;
}

TEST(ServiceEquivalenceTest, SeededTopologyMatchesRebuild) {
  const util::Rect field{{0.0, 0.0}, {200.0, 200.0}};
  ValidationService service({25.0, 2});
  service.seed_topology(random_field(300, field, 11));
  expect_equivalent(service, "after seed_topology");
}

TEST(ServiceEquivalenceTest, RandomizedSequencesMatchRebuild) {
  const util::Rect field{{0.0, 0.0}, {150.0, 150.0}};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ValidationService service({25.0, 2});
    const auto initial = random_field(120, field, util::derive_seed(500, seed));
    service.seed_topology(initial);
    std::vector<NodeId> live;
    for (const auto& [id, position] : initial) live.push_back(id);
    const auto events = random_events(250, field, std::move(live), seed);
    for (const TopologyEvent& event : events) {
      ASSERT_TRUE(service.apply(event).ok);
    }
    expect_equivalent(service, "after randomized per-event ingestion");
  }
}

TEST(ServiceEquivalenceTest, BatchIngestionMatchesRebuild) {
  const util::Rect field{{0.0, 0.0}, {150.0, 150.0}};
  ValidationService service({25.0, 2});
  const auto initial = random_field(150, field, 77);
  service.seed_topology(initial);
  std::vector<NodeId> live;
  for (const auto& [id, position] : initial) live.push_back(id);
  const auto events = random_events(400, field, std::move(live), 78);
  EXPECT_EQ(service.apply_all(events), events.size());
  expect_equivalent(service, "after apply_all batch");
}

TEST(ServiceEquivalenceTest, RejectedEventsLeaveTopologyEquivalent) {
  const util::Rect field{{0.0, 0.0}, {100.0, 100.0}};
  ValidationService service({25.0, 1});
  service.seed_topology(random_field(50, field, 5));
  EXPECT_FALSE(service.apply(TopologyEvent::deploy(3, {1.0, 1.0})).ok);
  EXPECT_FALSE(service.apply(TopologyEvent::revoke(9999)).ok);
  EXPECT_FALSE(service.apply(TopologyEvent::update(9999, {1.0, 1.0})).ok);
  expect_equivalent(service, "after rejected events");
}

TEST(ServiceEquivalenceTest, DenseClusterStressMatchesRebuild) {
  // Everything inside a couple of radio ranges: every event touches a large
  // fraction of the network, exercising the pair-recheck pass heavily.
  const util::Rect field{{0.0, 0.0}, {40.0, 40.0}};
  ValidationService service({25.0, 3});
  const auto initial = random_field(80, field, 21);
  service.seed_topology(initial);
  std::vector<NodeId> live;
  for (const auto& [id, position] : initial) live.push_back(id);
  const auto events = random_events(300, field, std::move(live), 22);
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(service.apply(events[i]).ok);
    // Spot-check equivalence mid-sequence, not just at the end.
    if (i % 97 == 0) expect_equivalent(service, "mid-sequence");
  }
  expect_equivalent(service, "after dense-cluster sequence");
}

TEST(ServiceEquivalenceTest, FaultPlanDrivenSequenceMatchesRebuild) {
  const util::Rect field{{0.0, 0.0}, {120.0, 120.0}};
  ValidationService service({25.0, 2});
  const auto initial = random_field(100, field, 31);
  service.seed_topology(initial);

  // Crash a handful of nodes, reboot some of them later; delivery actions
  // are topology-neutral and must be skipped by the projection.
  fault::FaultPlan plan;
  plan.seed = 99;
  for (NodeId node : {5u, 17u, 42u, 83u}) {
    fault::FaultAction crash;
    crash.kind = fault::ActionKind::kCrash;
    crash.node = node;
    crash.at_ns = 1'000 * node;
    plan.actions.push_back(crash);
  }
  for (NodeId node : {17u, 42u}) {
    fault::FaultAction reboot;
    reboot.kind = fault::ActionKind::kReboot;
    reboot.node = node;
    reboot.at_ns = 1'000'000 + 1'000 * node;
    plan.actions.push_back(reboot);
  }
  fault::FaultAction drop;  // no topology effect
  drop.kind = fault::ActionKind::kDrop;
  plan.actions.push_back(drop);

  const auto events = events_from_fault_plan(plan, field);
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events.front().kind, EventKind::kRevoke);
  for (const TopologyEvent& event : events) {
    ASSERT_TRUE(service.apply(event).ok) << event.node;
  }
  EXPECT_EQ(service.node_count(), initial.size() - 2);
  expect_equivalent(service, "after fault-plan projection");

  // The projection itself is deterministic (reboot positions derive from
  // the plan seed).
  EXPECT_TRUE(events == events_from_fault_plan(plan, field));
}

}  // namespace
}  // namespace snd::service
