// Deployment-level fault injection: the sim::Network fault hook, the
// fault::Injector semantics (drops, duplicates, lifecycle, skew), the
// plan-off bit-identity guarantee, and the replay/reboot interplay.
#include <gtest/gtest.h>

#include "core/deployment_driver.h"
#include "fault/injector.h"
#include "proptest/observation.h"
#include "proptest/oracles.h"
#include "topology/graph.h"

namespace snd {
namespace {

/// A 6-node clique (tiny field, big radio range) with a threshold small
/// enough that every pair validates: the protocol completes crisply, so
/// fault effects stand out.
core::DeploymentConfig clique_config(std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {30.0, 30.0}};
  config.radio_range = 60.0;
  config.protocol.threshold_t = 1;
  config.seed = seed;
  return config;
}

/// Runs a deployment to quiescence and snapshots it. 2R is the plain
/// Theorem-3 safety radius; no trial here mounts an attack, so the safety
/// oracle audits trivially but the conservation oracles bite.
proptest::Observation run_and_observe(core::SndDeployment& deployment, std::size_t nodes) {
  deployment.deploy_round(nodes);
  deployment.run();
  return proptest::observe(deployment, 2.0 * deployment.config().radio_range);
}

TEST(FaultBitIdentityTest, UnmatchedPlanPerturbsNothing) {
  // An armed injector whose only action can never match (empty time window)
  // must leave the run bit-identical to an unfaulted one: the hook is
  // consulted after every channel decision and the injector draws no
  // randomness for non-matching actions.
  core::SndDeployment plain(clique_config(7));
  const proptest::Observation a = run_and_observe(plain, 6);

  fault::FaultPlan plan;
  fault::FaultAction action;
  action.kind = fault::ActionKind::kDrop;
  action.match.from_ns = 5;
  action.match.until_ns = 5;  // half-open [5, 5) covers nothing
  plan.actions.push_back(action);

  core::SndDeployment faulted(clique_config(7));
  faulted.apply_fault_plan(plan);
  proptest::Observation b = run_and_observe(faulted, 6);
  ASSERT_NE(faulted.injector(), nullptr);
  EXPECT_TRUE(b.fault_plan_armed);

  // Everything except the armed flag must match exactly.
  b.fault_plan_armed = false;
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(FaultInjectorTest, TargetedDropsAreChargedAsInjected) {
  fault::FaultPlan plan;
  fault::FaultAction action;
  action.kind = fault::ActionKind::kDrop;
  action.match.src = 1;  // every delivery candidate sent by identity 1
  plan.actions.push_back(action);

  core::SndDeployment deployment(clique_config(11));
  deployment.apply_fault_plan(plan);
  const proptest::Observation observation = run_and_observe(deployment, 6);

  const auto injected =
      observation.drops[static_cast<std::size_t>(obs::DropCause::kInjected)];
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(injected, deployment.injector()->counters().drops);
  // The balance (candidates == deliveries + channel drops) must absorb the
  // injected drops; every oracle stays green.
  EXPECT_TRUE(proptest::check_all(observation).empty());
  // Identity 1 is radio-silenced, so nobody validates it.
  for (const proptest::AgentObservation& agent : observation.agents) {
    if (agent.id == 1) continue;
    const core::SndNode* peer = deployment.agent(agent.id);
    ASSERT_NE(peer, nullptr);
    EXPECT_FALSE(topology::contains(peer->functional_neighbors(), 1));
  }
}

TEST(FaultInjectorTest, DuplicatedPacketsRejectedAsReplaysNotReprocessed) {
  // Duplicate every delivery. Authenticated duplicates carry a reused
  // nonce, so receivers must charge them as kReplay instead of processing
  // them twice -- the final neighbor graphs match the unfaulted run.
  core::SndDeployment plain(clique_config(23));
  run_and_observe(plain, 6);

  fault::FaultPlan plan;
  fault::FaultAction action;
  action.kind = fault::ActionKind::kDuplicate;
  action.copies = 2;
  action.delay_ns = 400'000;
  plan.actions.push_back(action);

  core::SndDeployment faulted(clique_config(23));
  faulted.apply_fault_plan(plan);
  const proptest::Observation observation = run_and_observe(faulted, 6);

  EXPECT_GT(observation.drops[static_cast<std::size_t>(obs::DropCause::kReplay)], 0u);
  EXPECT_GT(observation.injected_extra_copies, 0u);
  EXPECT_TRUE(proptest::check_all(observation).empty());
  EXPECT_EQ(faulted.functional_graph().edge_count(), plain.functional_graph().edge_count());
  EXPECT_EQ(faulted.tentative_graph().edge_count(), plain.tentative_graph().edge_count());
}

TEST(FaultInjectorTest, CrashAndRebootMidProtocol) {
  // Crash identity 2 during discovery, reboot it after the survivors have
  // finished. The fresh agent runs the whole protocol again on the next
  // boot epoch; conservation holds across the lifecycle (in-flight packets
  // to the dead radio are charged, not lost).
  fault::FaultPlan plan;
  fault::FaultAction crash;
  crash.kind = fault::ActionKind::kCrash;
  crash.node = 2;
  crash.at_ns = 100'000'000;  // mid-discovery
  plan.actions.push_back(crash);
  fault::FaultAction reboot;
  reboot.kind = fault::ActionKind::kReboot;
  reboot.node = 2;
  reboot.at_ns = 900'000'000;  // after the survivors' quiescence
  plan.actions.push_back(reboot);

  core::SndDeployment deployment(clique_config(31));
  deployment.apply_fault_plan(plan);
  const proptest::Observation observation = run_and_observe(deployment, 6);

  const core::SndNode* rebooted = deployment.agent(2);
  ASSERT_NE(rebooted, nullptr);
  EXPECT_EQ(deployment.boot_epoch(rebooted->device()), 1u);
  // The rebooted agent completed its (second) protocol run and erased K.
  EXPECT_TRUE(rebooted->discovery_complete());
  EXPECT_FALSE(rebooted->master_key_present());
  EXPECT_TRUE(proptest::check_all(observation).empty());
  // Survivors froze their neighborhoods long before the reboot, so the
  // rebooted node must not have crept into anyone's functional list.
  for (const proptest::AgentObservation& agent : observation.agents) {
    if (agent.id == 2) continue;
    const core::SndNode* peer = deployment.agent(agent.id);
    ASSERT_NE(peer, nullptr);
    EXPECT_FALSE(topology::contains(peer->functional_neighbors(), 2));
  }
}

TEST(FaultInjectorTest, NeutralSkewIsBitIdentical) {
  // drift == 1.0 arms the skew machinery (the hook reports skews_timers())
  // but must not change a single timer: the RNG draw happens before the
  // scaling, so the stream consumption order is untouched.
  core::SndDeployment plain(clique_config(43));
  const proptest::Observation a = run_and_observe(plain, 6);

  fault::FaultPlan plan;
  fault::FaultAction skew;
  skew.kind = fault::ActionKind::kSkew;
  skew.node = 3;
  skew.drift = 1.0;
  plan.actions.push_back(skew);

  core::SndDeployment faulted(clique_config(43));
  faulted.apply_fault_plan(plan);
  proptest::Observation b = run_and_observe(faulted, 6);
  b.fault_plan_armed = false;
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FaultInjectorTest, SkewedNodeStillCompletes) {
  fault::FaultPlan plan;
  fault::FaultAction skew;
  skew.kind = fault::ActionKind::kSkew;
  skew.node = 4;
  skew.drift = 1.15;  // 15% slow clock
  plan.actions.push_back(skew);

  core::SndDeployment deployment(clique_config(47));
  deployment.apply_fault_plan(plan);
  const proptest::Observation observation = run_and_observe(deployment, 6);
  EXPECT_TRUE(proptest::check_all(observation).empty());
  const core::SndNode* skewed = deployment.agent(4);
  ASSERT_NE(skewed, nullptr);
  EXPECT_TRUE(skewed->discovery_complete());
}

TEST(FaultInjectorTest, MaxHitsRetiresAction) {
  fault::FaultPlan plan;
  fault::FaultAction action;
  action.kind = fault::ActionKind::kDrop;
  action.match.max_hits = 3;
  plan.actions.push_back(action);

  core::SndDeployment deployment(clique_config(53));
  deployment.apply_fault_plan(plan);
  const proptest::Observation observation = run_and_observe(deployment, 6);
  EXPECT_EQ(observation.drops[static_cast<std::size_t>(obs::DropCause::kInjected)], 3u);
  EXPECT_TRUE(proptest::check_all(observation).empty());
}

TEST(FaultInjectorTest, PlantedBugBreaksInjectedConservationOnly) {
  // The deliberate test-only defect: the injector stops counting its own
  // drops. The simulator's metrics still see them, so exactly the
  // cross-check oracle fires.
  fault::set_planted_bug(fault::PlantedBug::kUncountedDrop);
  fault::FaultPlan plan;
  fault::FaultAction action;
  action.kind = fault::ActionKind::kDrop;
  plan.actions.push_back(action);

  core::SndDeployment deployment(clique_config(61));
  deployment.apply_fault_plan(plan);
  const proptest::Observation observation = run_and_observe(deployment, 6);
  fault::set_planted_bug(fault::PlantedBug::kNone);

  const auto violations = proptest::check_all(observation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].oracle, "conservation.injected");
}

}  // namespace
}  // namespace snd
