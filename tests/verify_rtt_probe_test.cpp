// Message-level distance bounding: validates the RttVerifier abstraction by
// running the actual challenge/response exchange over the simulated radio.
#include "verify/rtt_probe.h"

#include <gtest/gtest.h>

#include "adversary/wormhole.h"

namespace snd::verify {
namespace {

class RttProbeTest : public ::testing::Test {
 protected:
  RttProbeTest()
      : network_(std::make_unique<sim::UnitDiskModel>(120.0), sim::ChannelConfig{}, 1),
        keys_(crypto::KdcScheme::from_seed(3)) {}

  /// Creates a device running both probe halves (dispatcher included).
  std::pair<sim::DeviceId, std::shared_ptr<RttChallenger>> add_probe_node(NodeId identity,
                                                                          util::Vec2 position) {
    const sim::DeviceId device = network_.add_device(identity, position);
    auto challenger = std::make_shared<RttChallenger>(network_, device, identity, keys_);
    auto responder = std::make_shared<RttResponder>(network_, device, identity, keys_);
    network_.set_receiver(device, [challenger, responder](const sim::Packet& packet) {
      if (challenger->handle(packet)) return;
      (void)responder->handle(packet);
    });
    return {device, challenger};
  }

  std::optional<std::optional<double>> result_;  // outer: callback fired

  void probe_and_run(RttChallenger& challenger, NodeId target) {
    challenger.probe(target, sim::Time::milliseconds(50), [this](std::optional<double> d) {
      result_ = d;
    });
    network_.scheduler().run();
  }

  sim::Network network_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
};

TEST_F(RttProbeTest, MeasuresTrueDistance) {
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  add_probe_node(2, {90, 0});
  probe_and_run(*a, 2);
  ASSERT_TRUE(result_.has_value());
  ASSERT_TRUE(result_->has_value());
  EXPECT_NEAR(**result_, 90.0, 1.0);
}

TEST_F(RttProbeTest, ZeroishDistanceForAdjacentNodes) {
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  add_probe_node(2, {1, 0});
  probe_and_run(*a, 2);
  ASSERT_TRUE(result_.has_value() && result_->has_value());
  EXPECT_LT(**result_, 3.0);
}

TEST_F(RttProbeTest, TimeoutWhenTargetAbsent) {
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  probe_and_run(*a, 99);  // nobody holds identity 99
  ASSERT_TRUE(result_.has_value());
  EXPECT_FALSE(result_->has_value());
}

TEST_F(RttProbeTest, TimeoutWhenTargetOutOfRange) {
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  add_probe_node(2, {500, 0});
  probe_and_run(*a, 2);
  ASSERT_TRUE(result_.has_value());
  EXPECT_FALSE(result_->has_value());
}

TEST_F(RttProbeTest, ForgedResponseIgnored) {
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  // An attacker device overhears the challenge and answers with a junk MAC
  // immediately (faster than any honest responder could).
  const sim::DeviceId eve = network_.add_device(666, {10, 0});
  network_.set_receiver(eve, [this, eve](const sim::Packet& packet) {
    if (packet.type != kRttChallengeType) return;
    util::Bytes payload(packet.payload);
    payload.insert(payload.end(), crypto::kShortMacSize, 0xee);
    network_.transmit(eve,
                      sim::Packet{.src = packet.dst,
                                  .dst = packet.src,
                                  .type = kRttResponseType,
                                  .payload = std::move(payload)},
                      obs::Phase::kAttack);
  });
  probe_and_run(*a, 2);  // identity 2 does not exist: only Eve answers
  ASSERT_TRUE(result_.has_value());
  EXPECT_FALSE(result_->has_value());  // junk rejected, probe times out
}

TEST_F(RttProbeTest, WormholeInflatesDistanceBeyondRange) {
  // Victim 2 sits 400 m away, far outside the 120 m radio, but a wormhole
  // tunnels both directions. The exchange completes -- and the measured
  // distance exposes the relay.
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  add_probe_node(2, {400, 0});
  adversary::Wormhole wormhole(network_, {10, 0}, {390, 0},
                               /*tunnel_latency=*/sim::Time::microseconds(200));
  wormhole.start();

  probe_and_run(*a, 2);
  ASSERT_TRUE(result_.has_value());
  ASSERT_TRUE(result_->has_value());
  // Two tunnel traversals at 200 us each add >= 2*200us*c/2 ~ 60 km.
  EXPECT_GT(**result_, 10'000.0);
  EXPECT_GT(**result_, 120.0);  // and certainly beyond the radio range
}

TEST_F(RttProbeTest, NearbyReplicaAnswersInTime) {
  // A replica of identity 2 is adjacent to the challenger while the
  // original is out of range: distance bounding accepts the replica --
  // exactly the bypass the paper's protocol (not the verifier) must handle.
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  add_probe_node(2, {500, 0});  // original: unreachable
  const sim::DeviceId replica = network_.add_device(2, {30, 0});
  network_.device(replica).replica = true;
  network_.device(replica).compromised = true;
  auto replica_responder = std::make_shared<RttResponder>(network_, replica, 2, keys_);
  network_.set_receiver(replica, [replica_responder](const sim::Packet& packet) {
    (void)replica_responder->handle(packet);
  });

  probe_and_run(*a, 2);
  ASSERT_TRUE(result_.has_value());
  ASSERT_TRUE(result_->has_value());
  EXPECT_NEAR(**result_, 30.0, 1.0);
}

TEST_F(RttProbeTest, ConcurrentProbesResolveIndependently) {
  auto [a_dev, a] = add_probe_node(1, {0, 0});
  add_probe_node(2, {60, 0});
  add_probe_node(3, {100, 0});
  std::optional<double> d2, d3;
  a->probe(2, sim::Time::milliseconds(50), [&](std::optional<double> d) { d2 = d; });
  a->probe(3, sim::Time::milliseconds(50), [&](std::optional<double> d) { d3 = d; });
  network_.scheduler().run();
  ASSERT_TRUE(d2.has_value() && d3.has_value());
  EXPECT_NEAR(*d2, 60.0, 1.0);
  EXPECT_NEAR(*d3, 100.0, 1.0);
}

}  // namespace
}  // namespace snd::verify
