// Compile-and-link check of the umbrella header: snd.h must expose the
// documented top-level API without requiring any other include.
#include "snd.h"

#include <gtest/gtest.h>

namespace snd {
namespace {

TEST(UmbrellaTest, TopLevelApiUsable) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {80.0, 80.0}};
  config.radio_range = 60.0;
  config.protocol.threshold_t = 2;
  config.seed = 12;

  core::SndDeployment deployment(config);
  deployment.deploy_round(12);
  deployment.run();

  const core::SafetyReport safety = core::audit_safety(deployment, 120.0);
  EXPECT_TRUE(safety.holds());

  adversary::Attacker attacker(deployment);
  EXPECT_TRUE(attacker.compromise(1));

  const analysis::FieldModel model{0.02, 50.0};
  EXPECT_GT(model.accuracy(10), 0.9);

  const core::CommonNeighborValidator validator(3);
  EXPECT_EQ(validator.minimum_deployment_size(), 6u);
}

TEST(UmbrellaTest, SchemesConstructible) {
  crypto::BlundoScheme blundo(1, 4);
  crypto::EschenauerGligorScheme eg(2, 100, 30, 2);
  verify::RttVerifier rtt;
  EXPECT_EQ(eg.q(), 2u);
  EXPECT_EQ(rtt.name(), "rtt");
  blundo.provision(1);
}

}  // namespace
}  // namespace snd
