// FaultPlan serialization: canonical JSON round-trips, field validation,
// and the file helpers FAILCASE replay depends on.
#include "fault/plan.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace snd::fault {
namespace {

TEST(FaultPlanTest, ActionKindNamesRoundTrip) {
  for (std::size_t i = 0; i < kActionKindCount; ++i) {
    const auto kind = static_cast<ActionKind>(i);
    const auto parsed = action_kind_from_name(action_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(action_kind_from_name("explode").has_value());
}

TEST(FaultPlanTest, DefaultActionSerializesMinimal) {
  FaultAction action;
  EXPECT_EQ(action.to_json(), R"({"kind":"drop"})");
}

TEST(FaultPlanTest, JsonRoundTripPreservesEveryField) {
  FaultPlan plan;
  plan.seed = 0xdeadbeefcafef00dULL;  // must survive exactly (not a double)

  FaultAction drop;
  drop.kind = ActionKind::kDrop;
  drop.match.src = 3;
  drop.match.dst = 7;
  drop.match.phase = 1;
  drop.match.from_ns = 1'000;
  drop.match.until_ns = 2'000'000;
  drop.match.probability = 0.25;
  drop.match.max_hits = 5;
  plan.actions.push_back(drop);

  FaultAction dup;
  dup.kind = ActionKind::kDuplicate;
  dup.copies = 3;
  dup.delay_ns = 777;
  plan.actions.push_back(dup);

  FaultAction corrupt;
  corrupt.kind = ActionKind::kCorrupt;
  corrupt.corrupt_mode = CorruptMode::kTruncate;
  plan.actions.push_back(corrupt);

  FaultAction crash;
  crash.kind = ActionKind::kCrash;
  crash.node = 4;
  crash.at_ns = 150'000'000;
  plan.actions.push_back(crash);

  FaultAction skew;
  skew.kind = ActionKind::kSkew;
  skew.node = 2;
  skew.drift = 1.125;
  plan.actions.push_back(skew);

  const std::string json = plan.to_json();
  const auto parsed = FaultPlan::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, plan.seed);
  ASSERT_EQ(parsed->actions.size(), plan.actions.size());
  EXPECT_EQ(parsed->actions[0].match.src, 3u);
  EXPECT_EQ(parsed->actions[0].match.dst, 7u);
  EXPECT_EQ(parsed->actions[0].match.phase, 1);
  EXPECT_EQ(parsed->actions[0].match.from_ns, 1'000);
  EXPECT_EQ(parsed->actions[0].match.until_ns, 2'000'000);
  EXPECT_DOUBLE_EQ(parsed->actions[0].match.probability, 0.25);
  EXPECT_EQ(parsed->actions[0].match.max_hits, 5u);
  EXPECT_EQ(parsed->actions[1].copies, 3u);
  EXPECT_EQ(parsed->actions[1].delay_ns, 777);
  EXPECT_EQ(parsed->actions[2].corrupt_mode, CorruptMode::kTruncate);
  EXPECT_EQ(parsed->actions[3].node, 4u);
  EXPECT_EQ(parsed->actions[3].at_ns, 150'000'000);
  EXPECT_EQ(parsed->actions[4].node, 2u);
  EXPECT_DOUBLE_EQ(parsed->actions[4].drift, 1.125);

  // The serialized form is canonical: parse -> to_json is idempotent.
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(FaultPlanTest, ParseRejectsInvalidFields) {
  EXPECT_FALSE(FaultPlan::parse("not json").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":7})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"explode"}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"drop","p":1.5}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"duplicate","copies":0}]})").has_value());
  EXPECT_FALSE(
      FaultPlan::parse(R"({"actions":[{"kind":"duplicate","copies":100}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"delay","delay_ns":-5}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"corrupt","mode":"melt"}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"drop","phase":"no-such"}]})").has_value());
  // Lifecycle and skew actions require a target node.
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"crash"}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"reboot"}]})").has_value());
  EXPECT_FALSE(FaultPlan::parse(R"({"actions":[{"kind":"skew","drift":1.2}]})").has_value());
  EXPECT_FALSE(
      FaultPlan::parse(R"({"actions":[{"kind":"crash","node":1,"at_ns":-1}]})").has_value());
  EXPECT_FALSE(
      FaultPlan::parse(R"({"actions":[{"kind":"skew","node":1,"drift":0.0}]})").has_value());
}

TEST(FaultPlanTest, FromValueParsesEmbeddedPlanObject) {
  // The shape FAILCASE artifacts use: the plan as a nested JSON object.
  const std::string wrapped =
      R"({"trial_seed":9,"plan":{"seed":42,"actions":[{"kind":"burst","p":0.5}]}})";
  const auto doc = util::JsonValue::parse(wrapped);
  ASSERT_TRUE(doc.has_value());
  const util::JsonValue* plan_value = doc->find("plan");
  ASSERT_NE(plan_value, nullptr);
  const auto plan = FaultPlan::from_value(*plan_value);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->actions.size(), 1u);
  EXPECT_EQ(plan->actions[0].kind, ActionKind::kBurst);
  EXPECT_DOUBLE_EQ(plan->actions[0].match.probability, 0.5);
}

TEST(FaultPlanTest, SaveLoadRoundTrip) {
  FaultPlan plan;
  plan.seed = 1234567890123456789ULL;
  FaultAction reboot;
  reboot.kind = ActionKind::kReboot;
  reboot.node = 6;
  reboot.at_ns = 300'000'000;
  plan.actions.push_back(reboot);

  const std::string path = ::testing::TempDir() + "fault_plan_roundtrip.json";
  ASSERT_TRUE(plan.save(path));
  const auto loaded = FaultPlan::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_json(), plan.to_json());
  EXPECT_FALSE(FaultPlan::load(path + ".does-not-exist").has_value());
}

}  // namespace
}  // namespace snd::fault
