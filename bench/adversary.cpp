// Adversary scenario sweep: discovery accuracy and defense telemetry under
// each attacker/mobility family, against the same center-node workload the
// fig3/fig4 reproductions measure.
//
// The (family, seed) grid is one flat trial space sharded by
// runner::TrialRunner. Two artifacts come out:
//   BENCH_adversary.json       deterministic results (accuracy, admitted
//                              identities, replay rejects, attacker event
//                              counts) -- byte-identical for a fixed seed at
//                              any --jobs, asserted in CI.
//   BENCH_adversary_perf.json  wall-clock us_per_trial per family, the
//                              ci/bench_trend.py series (timing only, never
//                              compared byte-wise).
//
//   ./adversary [--seeds 8] [--nodes 60] [--jobs N] [--log warn]
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/scenario.h"
#include "core/deployment_driver.h"
#include "obs/config.h"
#include "runner/trial_runner.h"
#include "util/driver_spec.h"
#include "util/runtime_config.h"
#include "util/table.h"

namespace {

using namespace snd;

constexpr std::array<std::string_view, 6> kFamilies = {
    "baseline", "relay", "sybil", "replay", "mobility", "churn",
};

adversary::ScenarioConfig family_config(std::string_view family) {
  adversary::ScenarioConfig config;
  if (family != "baseline") (void)config.arm_family(family);
  return config;
}

struct TrialResult {
  double accuracy = 0.0;
  std::uint64_t tentative = 0;
  std::uint64_t replay_rejects = 0;
  std::uint64_t attacker_events = 0;
  double wall_us = 0.0;
};

TrialResult run_family_trial(std::string_view family, std::size_t nodes, std::uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();

  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 10;
  config.seed = seed;
  // Churn exists to stress the Thm 4 update path; give it an allowance.
  if (family == "churn") config.protocol.max_updates = 2;

  const adversary::ScenarioConfig scenario = family_config(family);
  core::SndDeployment deployment(config);
  std::optional<adversary::ScenarioRuntime> runtime;
  if (!scenario.empty()) runtime.emplace(deployment, scenario);

  const NodeId center = deployment.deploy_node_at(config.field.center());
  std::vector<NodeId> deployed = deployment.deploy_round(nodes - 1);
  deployed.insert(deployed.begin(), center);
  if (runtime) {
    if (scenario.churn) {
      for (const NodeId id : deployed) {
        if (core::SndNode* agent = deployment.agent(id)) agent->set_auto_update(true);
      }
    }
    runtime->arm(deployed);
  }
  deployment.run();

  TrialResult result;
  const core::SndNode* agent = deployment.agent(center);
  std::size_t actual = 0;
  std::size_t validated = 0;
  for (const sim::Device& d : deployment.network().devices()) {
    if (d.identity == center || !d.benign()) continue;
    if (!deployment.network().link(agent->device(), d.id)) continue;
    ++actual;
    if (topology::contains(agent->functional_neighbors(), d.identity)) ++validated;
  }
  result.accuracy =
      actual == 0 ? 0.0 : static_cast<double>(validated) / static_cast<double>(actual);
  for (const core::SndNode* a : deployment.agents()) {
    result.tentative += a->tentative_neighbors().size();
    result.replay_rejects += a->replay_rejects();
  }
  if (runtime) result.attacker_events = runtime->attacker_events();
  result.wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  util::cli::DriverSpec spec(
      "adversary",
      "Adversary scenario sweep: center-node discovery accuracy and defense\n"
      "telemetry under relay, sybil, replay, mobility, and churn scenarios.");
  spec.int_flag("seeds", 8, "N", "independent seeds per family", 1)
      .int_flag("nodes", 60, "N", "deployment size per trial", 12)
      .group(util::cli::jobs_group(&jobs))
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  runner::TrialRunner pool(jobs);

  std::cout << "== Adversary scenarios: " << kFamilies.size() << " families x " << seeds
            << " seeds, " << nodes << " nodes, " << pool.jobs() << " jobs ==\n\n";

  // Flat (family, seed) trial space; trial i is family i/seeds, seed i%seeds.
  runner::SweepReport report;
  report.name = "adversary";
  const auto results = pool.run(
      kFamilies.size() * seeds, 31337,
      [&](std::size_t i, std::uint64_t seed) {
        return run_family_trial(kFamilies[i / seeds], nodes, seed);
      },
      &report);

  util::Table table({"family", "accuracy", "tentative", "replay_rejects", "attacker_events",
                     "us/trial"});
  // Deterministic artifact: aggregates folded in trial order; no timing.
  std::string families_json;
  std::string perf_json;
  for (std::size_t f = 0; f < kFamilies.size(); ++f) {
    double accuracy_sum = 0.0;
    std::uint64_t tentative = 0;
    std::uint64_t rejects = 0;
    std::uint64_t events = 0;
    double wall_us = 0.0;
    std::size_t completed = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto& r = results[f * seeds + s];
      if (!r.has_value()) continue;
      ++completed;
      accuracy_sum += r->accuracy;
      tentative += r->tentative;
      rejects += r->replay_rejects;
      events += r->attacker_events;
      wall_us += r->wall_us;
    }
    const double accuracy = completed == 0 ? 0.0 : accuracy_sum / completed;
    const double us_per_trial = completed == 0 ? 0.0 : wall_us / completed;
    char entry[512];
    std::snprintf(entry, sizeof(entry),
                  "%s    {\"family\": \"%.*s\", \"trials\": %zu, \"accuracy\": %.17g, "
                  "\"tentative\": %llu, \"replay_rejects\": %llu, \"attacker_events\": %llu}",
                  f == 0 ? "" : ",\n", static_cast<int>(kFamilies[f].size()),
                  kFamilies[f].data(), completed, accuracy,
                  static_cast<unsigned long long>(tentative),
                  static_cast<unsigned long long>(rejects),
                  static_cast<unsigned long long>(events));
    families_json += entry;
    std::snprintf(entry, sizeof(entry), "%s  \"%.*s_us_per_trial\": %.1f",
                  f == 0 ? "" : ",\n", static_cast<int>(kFamilies[f].size()),
                  kFamilies[f].data(), us_per_trial);
    perf_json += entry;
    table.add_row({std::string(kFamilies[f]), util::Table::num(accuracy, 3),
                   std::to_string(tentative), std::to_string(rejects),
                   std::to_string(events), util::Table::num(us_per_trial, 0)});
  }
  table.print(std::cout);

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"name\": \"adversary\",\n  \"nodes\": %zu,\n  \"seeds\": %zu,\n"
                "  \"families\": [\n",
                nodes, seeds);
  const std::string json = std::string(head) + families_json + "\n  ]\n}\n";
  const std::string path = bench_artifact_path("BENCH_adversary.json");
  if (!write_file(path, json)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << path << "\n";

  const std::string perf =
      "{\n  \"name\": \"adversary_perf\",\n" + perf_json + "\n}\n";
  const std::string perf_path = bench_artifact_path("BENCH_adversary_perf.json");
  if (write_file(perf_path, perf)) std::cout << "wrote " << perf_path << "\n";

  return report.failed == 0 ? 0 : 1;
}
