// Microbenchmarks of the cryptographic substrate (google-benchmark): the
// paper's efficiency argument is that the whole protocol costs "a few
// efficient one-way hash operations"; these benches put numbers on each
// primitive as implemented here.
#include <benchmark/benchmark.h>

#include "core/binding_record.h"
#include "core/commitment.h"
#include "crypto/blundo.h"
#include "crypto/eg_pool.h"
#include "crypto/hmac.h"
#include "crypto/secure_channel.h"
#include "crypto/sha256.h"

namespace {

using namespace snd;

void BM_Sha256(benchmark::State& state) {
  const util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(256)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  const crypto::SymmetricKey key = crypto::SymmetricKey::from_seed(1);
  const util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(256);

void BM_VerificationKey(benchmark::State& state) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(2);
  NodeId node = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verification_key(master, node++));
  }
}
BENCHMARK(BM_VerificationKey);

void BM_BindingCommitment(benchmark::State& state) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(3);
  topology::NeighborList neighbors;
  for (NodeId i = 0; i < static_cast<NodeId>(state.range(0)); ++i) neighbors.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::binding_commitment(master, 1, 0, neighbors));
  }
}
BENCHMARK(BM_BindingCommitment)->Arg(10)->Arg(50)->Arg(150);

void BM_BindingRecordVerify(benchmark::State& state) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(4);
  topology::NeighborList neighbors;
  for (NodeId i = 0; i < static_cast<NodeId>(state.range(0)); ++i) neighbors.push_back(i);
  const core::BindingRecord record = core::BindingRecord::make(master, 1, 0, neighbors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.verify(master));
  }
}
BENCHMARK(BM_BindingRecordVerify)->Arg(50);

void BM_RelationCommitment(benchmark::State& state) {
  const crypto::SymmetricKey kv =
      core::verification_key(crypto::SymmetricKey::from_seed(5), 7);
  NodeId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relation_commitment(kv, u++));
  }
}
BENCHMARK(BM_RelationCommitment);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  const crypto::SymmetricKey pairwise = crypto::SymmetricKey::from_seed(6);
  crypto::SecureChannel sender(1, 2, pairwise);
  crypto::SecureChannel receiver(2, 1, pairwise);
  const util::Bytes message(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(receiver.open(sender.seal(message)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SecureChannelRoundTrip)->Arg(64);

void BM_BlundoPairwise(benchmark::State& state) {
  crypto::BlundoScheme scheme(7, static_cast<std::size_t>(state.range(0)));
  scheme.provision(1);
  scheme.provision(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.pairwise(1, 2));
  }
}
BENCHMARK(BM_BlundoPairwise)->Arg(5)->Arg(20)->Arg(50);

void BM_BlundoProvision(benchmark::State& state) {
  crypto::BlundoScheme scheme(8, 20);
  NodeId node = 1;
  for (auto _ : state) {
    scheme.provision(node++);
  }
}
BENCHMARK(BM_BlundoProvision);

void BM_EgPairwise(benchmark::State& state) {
  crypto::EschenauerGligorScheme scheme(9, 10000, 150);
  scheme.provision(1);
  scheme.provision(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.pairwise(1, 2));
  }
}
BENCHMARK(BM_EgPairwise);

}  // namespace

BENCHMARK_MAIN();
