// Microbenchmarks of the cryptographic substrate (google-benchmark): the
// paper's efficiency argument is that the whole protocol costs "a few
// efficient one-way hash operations"; these benches put numbers on each
// primitive as implemented here.
//
// Besides the google-benchmark suite, main() always measures the
// authenticated Messenger send+open round trip with the crypto fast path
// (cached pairwise keys + HMAC midstates + zero-alloc wire handling) on and
// off, and writes the comparison as BENCH_micro_crypto.json into
// $SND_BENCH_DIR (default: the working directory), the per-PR perf artifact
// CI uploads.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <vector>

#include "core/binding_record.h"
#include "core/commitment.h"
#include "core/messenger.h"
#include "crypto/blundo.h"
#include "crypto/eg_pool.h"
#include "crypto/hmac.h"
#include "crypto/secure_channel.h"
#include "crypto/session_cache.h"
#include "crypto/sha256.h"
#include "util/runtime_config.h"
#include "util/simd.h"
#include "sim/network.h"

namespace {

using namespace snd;

void BM_Sha256(benchmark::State& state) {
  const util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(256)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  const crypto::SymmetricKey key = crypto::SymmetricKey::from_seed(1);
  const util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(256);

void BM_VerificationKey(benchmark::State& state) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(2);
  NodeId node = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verification_key(master, node++));
  }
}
BENCHMARK(BM_VerificationKey);

void BM_BindingCommitment(benchmark::State& state) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(3);
  topology::NeighborList neighbors;
  for (NodeId i = 0; i < static_cast<NodeId>(state.range(0)); ++i) neighbors.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::binding_commitment(master, 1, 0, neighbors));
  }
}
BENCHMARK(BM_BindingCommitment)->Arg(10)->Arg(50)->Arg(150);

/// Batched commitment derivation through the multi-buffer engine. Arg 0 is
/// the neighbor-list length, arg 1 the lane width (1 = serial seed path,
/// 4 = SSE2, 8 = AVX2); unsupported widths are skipped.
void BM_BindingCommitmentBatch(benchmark::State& state) {
  const int width = static_cast<int>(state.range(1));
  if (width == 4 && util::detected_simd_tier() < util::SimdTier::kSse2) {
    state.SkipWithError("SSE2 not available");
    return;
  }
  if (width == 8 && util::detected_simd_tier() < util::SimdTier::kAvx2) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  util::set_simd_enabled(width > 1);
  util::set_forced_simd_tier(width == 4 ? std::optional(util::SimdTier::kSse2)
                             : width == 8 ? std::optional(util::SimdTier::kAvx2)
                                          : std::nullopt);

  constexpr std::size_t kBatch = 256;
  std::vector<topology::NeighborList> lists(kBatch);
  std::vector<core::BindingSpec> specs(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    for (NodeId n = 0; n < static_cast<NodeId>(state.range(0)); ++n)
      lists[i].push_back(static_cast<NodeId>(i) + n);
    specs[i] = {static_cast<NodeId>(i + 1), 0, &lists[i]};
  }
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(12);
  std::vector<crypto::Digest> out(kBatch);
  for (auto _ : state) {
    core::binding_commitments(master, specs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
  util::set_simd_enabled(true);
  util::set_forced_simd_tier(std::nullopt);
}
BENCHMARK(BM_BindingCommitmentBatch)
    ->Args({50, 1})
    ->Args({50, 4})
    ->Args({50, 8});

void BM_BindingRecordVerify(benchmark::State& state) {
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(4);
  topology::NeighborList neighbors;
  for (NodeId i = 0; i < static_cast<NodeId>(state.range(0)); ++i) neighbors.push_back(i);
  const core::BindingRecord record = core::BindingRecord::make(master, 1, 0, neighbors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.verify(master));
  }
}
BENCHMARK(BM_BindingRecordVerify)->Arg(50);

void BM_RelationCommitment(benchmark::State& state) {
  const crypto::SymmetricKey kv =
      core::verification_key(crypto::SymmetricKey::from_seed(5), 7);
  NodeId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relation_commitment(kv, u++));
  }
}
BENCHMARK(BM_RelationCommitment);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  const crypto::SymmetricKey pairwise = crypto::SymmetricKey::from_seed(6);
  crypto::SecureChannel sender(1, 2, pairwise);
  crypto::SecureChannel receiver(2, 1, pairwise);
  const util::Bytes message(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(receiver.open(sender.seal(message)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SecureChannelRoundTrip)->Arg(64);

void BM_BlundoPairwise(benchmark::State& state) {
  crypto::BlundoScheme scheme(7, static_cast<std::size_t>(state.range(0)));
  scheme.provision(1);
  scheme.provision(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.pairwise(1, 2));
  }
}
BENCHMARK(BM_BlundoPairwise)->Arg(5)->Arg(20)->Arg(50);

void BM_BlundoProvision(benchmark::State& state) {
  crypto::BlundoScheme scheme(8, 20);
  NodeId node = 1;
  for (auto _ : state) {
    scheme.provision(node++);
  }
}
BENCHMARK(BM_BlundoProvision);

void BM_EgPairwise(benchmark::State& state) {
  crypto::EschenauerGligorScheme scheme(9, 10000, 150);
  scheme.provision(1);
  scheme.provision(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.pairwise(1, 2));
  }
}
BENCHMARK(BM_EgPairwise);

void BM_ShortMacFromScratch(benchmark::State& state) {
  const crypto::SymmetricKey key = crypto::SymmetricKey::from_seed(11);
  const util::Bytes data(static_cast<std::size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::short_mac(key, data));
  }
}
BENCHMARK(BM_ShortMacFromScratch)->Arg(32)->Arg(256);

void BM_ShortMacFromMidstate(benchmark::State& state) {
  const crypto::SymmetricKey key = crypto::SymmetricKey::from_seed(11);
  const crypto::HmacKey cached(key);
  const util::Bytes data(static_cast<std::size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached.short_mac(data));
  }
}
BENCHMARK(BM_ShortMacFromMidstate)->Arg(32)->Arg(256);

void BM_PairKeyCacheHit(benchmark::State& state) {
  std::shared_ptr<const crypto::KeyPredistribution> scheme = crypto::KdcScheme::from_seed(5);
  crypto::PairKeyCache cache(scheme, 1);
  (void)cache.get(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cache.get(2));
  }
}
BENCHMARK(BM_PairKeyCacheHit);

/// Authenticated unicast round trip through the simulated radio: send() on
/// one Messenger, delivery via the scheduler, open() on the peer. Arg 0
/// selects the key scheme (0 = KDC, 1 = Blundo lambda=20), arg 1 the fast
/// path (0 = seed slow path, 1 = cached keys + midstates + zero-alloc).
void BM_AuthRoundTrip(benchmark::State& state) {
  std::shared_ptr<crypto::KeyPredistribution> keys;
  if (state.range(0) == 0) {
    keys = crypto::KdcScheme::from_seed(5);
  } else {
    auto blundo = std::make_shared<crypto::BlundoScheme>(7, 20);
    blundo->provision(1);
    blundo->provision(2);
    keys = std::move(blundo);
  }
  const bool saved = crypto::fast_path_enabled();
  crypto::set_fast_path_enabled(state.range(1) != 0);

  sim::Network network(std::make_unique<sim::UnitDiskModel>(100.0), sim::ChannelConfig{}, 1);
  const sim::DeviceId a = network.add_device(1, {0, 0});
  const sim::DeviceId b = network.add_device(2, {10, 0});
  core::Messenger alice(network, a, 1, keys);
  core::Messenger bob(network, b, 2, keys);
  std::size_t accepted = 0;
  network.set_receiver(b, [&bob, &accepted](const sim::Packet& p) {
    if (bob.open(p)) ++accepted;
  });
  network.set_receiver(a, [](const sim::Packet&) {});
  const util::Bytes payload(24, 0x42);
  for (auto _ : state) {
    alice.send(2, 9, payload, obs::Phase::kOther);
    network.scheduler().run();
  }
  benchmark::DoNotOptimize(accepted);
  state.SetLabel(std::string(state.range(0) == 0 ? "kdc" : "blundo20") +
                 (state.range(1) != 0 ? "/fast" : "/slow"));
  crypto::set_fast_path_enabled(saved);
}
BENCHMARK(BM_AuthRoundTrip)->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1});

struct RoundTripCost {
  double us_per_msg = 0.0;
  double hash_ops_per_msg = 0.0;
};

/// Wall-clock of `messages` authenticated send+open round trips (delivery
/// included: open() runs inside the scheduled delivery event, exactly as the
/// protocol drives it).
RoundTripCost measure_roundtrip(const std::shared_ptr<crypto::KeyPredistribution>& keys,
                                bool fast, int messages) {
  crypto::set_fast_path_enabled(fast);
  sim::Network network(std::make_unique<sim::UnitDiskModel>(100.0), sim::ChannelConfig{}, 1);
  const sim::DeviceId a = network.add_device(1, {0, 0});
  const sim::DeviceId b = network.add_device(2, {10, 0});
  core::Messenger alice(network, a, 1, keys);
  core::Messenger bob(network, b, 2, keys);
  std::size_t accepted = 0;
  network.set_receiver(b, [&bob, &accepted](const sim::Packet& p) {
    if (bob.open(p)) ++accepted;
  });
  network.set_receiver(a, [](const sim::Packet&) {});
  const util::Bytes payload(24, 0x42);

  alice.send(2, 9, payload, obs::Phase::kOther);  // warm-up: primes the cache
  network.scheduler().run();

  crypto::reset_hash_op_count();
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < messages; ++i) {
    alice.send(2, 9, payload, obs::Phase::kOther);
    // Drain periodically so deliveries stay inside the replay window and the
    // event queue stays small; the drain is part of the timed round trip.
    if ((i & 31) == 31) network.scheduler().run();
  }
  network.scheduler().run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  if (accepted != static_cast<std::size_t>(messages) + 1) {
    std::fprintf(stderr, "round trip dropped messages: %zu of %d accepted\n", accepted,
                 messages + 1);
    std::exit(1);
  }
  return {seconds / messages * 1e6,
          static_cast<double>(crypto::hash_op_count()) / messages};
}

struct CommitmentCost {
  double us_per_commit = 0.0;
  double commits_per_s = 0.0;
};

/// Wall-clock of batched binding-commitment derivation (256 commitments per
/// drain, 50-entry neighbor lists) at one lane width: 1 pins the serial seed
/// path, 4/8 pin the SSE2/AVX2 multi-buffer kernels.
CommitmentCost measure_commitments(int width, int rounds) {
  util::set_simd_enabled(width > 1);
  util::set_forced_simd_tier(width == 4 ? std::optional(util::SimdTier::kSse2)
                             : width == 8 ? std::optional(util::SimdTier::kAvx2)
                                          : std::nullopt);
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kNeighbors = 50;
  std::vector<topology::NeighborList> lists(kBatch);
  std::vector<core::BindingSpec> specs(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    for (std::size_t n = 0; n < kNeighbors; ++n)
      lists[i].push_back(static_cast<NodeId>(i + n));
    specs[i] = {static_cast<NodeId>(i + 1), 0, &lists[i]};
  }
  const crypto::SymmetricKey master = crypto::SymmetricKey::from_seed(12);
  std::vector<crypto::Digest> out(kBatch);

  core::binding_commitments(master, specs, out);  // warm-up
  const auto begin = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) core::binding_commitments(master, specs, out);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  util::set_simd_enabled(true);
  util::set_forced_simd_tier(std::nullopt);
  const double total = static_cast<double>(rounds) * kBatch;
  return {seconds / total * 1e6, total / seconds};
}

/// Commitment-throughput width series (serial vs 4-lane vs 8-lane), appended
/// to the artifact. Returns 0 when the headline >= 2x win at width 4 holds
/// (gated only where SSE2 exists; elsewhere the scalar fallback is the
/// point, not the speedup).
int write_commitment_batch_block(char* json, std::size_t cap) {
  constexpr int kRounds = 200;
  const bool have_sse2 = util::detected_simd_tier() >= util::SimdTier::kSse2;
  const bool have_avx2 = util::detected_simd_tier() >= util::SimdTier::kAvx2;

  const CommitmentCost w1 = measure_commitments(1, kRounds);
  const CommitmentCost w4 = have_sse2 ? measure_commitments(4, kRounds) : CommitmentCost{};
  const CommitmentCost w8 = have_avx2 ? measure_commitments(8, kRounds) : CommitmentCost{};

  const double w4_speedup = w4.us_per_commit > 0.0 ? w1.us_per_commit / w4.us_per_commit : 0.0;
  const double w8_speedup = w8.us_per_commit > 0.0 ? w1.us_per_commit / w8.us_per_commit : 0.0;

  std::snprintf(json, cap,
                "  \"commitment_batch\": {\n"
                "    \"batch_size\": 256,\n"
                "    \"neighbors\": 50,\n"
                "    \"w1_us_per_commit\": %.3f,\n"
                "    \"w4_us_per_commit\": %.3f,\n"
                "    \"w8_us_per_commit\": %.3f,\n"
                "    \"w4_speedup\": %.2f,\n"
                "    \"w8_speedup\": %.2f,\n"
                "    \"w1_commits_per_s\": %.0f,\n"
                "    \"w4_commits_per_s\": %.0f,\n"
                "    \"w8_commits_per_s\": %.0f\n"
                "  }\n",
                w1.us_per_commit, w4.us_per_commit, w8.us_per_commit, w4_speedup, w8_speedup,
                w1.commits_per_s, w4.commits_per_s, w8.commits_per_s);
  std::printf("commitment batch: serial %.2f us, w4 %.2f us (%.2fx), w8 %.2f us (%.2fx)\n",
              w1.us_per_commit, w4.us_per_commit, w4_speedup, w8.us_per_commit, w8_speedup);
  return (!have_sse2 || w4_speedup >= 2.0) ? 0 : 1;
}

/// The before/after artifact: authenticated send+open round trip, seed slow
/// path vs the cached fast path, written as BENCH_micro_crypto.json.
int write_crypto_artifact() {
  constexpr int kMessages = 20000;
  const bool saved = crypto::fast_path_enabled();

  std::shared_ptr<crypto::KeyPredistribution> kdc = crypto::KdcScheme::from_seed(5);
  auto blundo = std::make_shared<crypto::BlundoScheme>(7, 20);
  blundo->provision(1);
  blundo->provision(2);

  const RoundTripCost kdc_slow = measure_roundtrip(kdc, /*fast=*/false, kMessages);
  const RoundTripCost kdc_fast = measure_roundtrip(kdc, /*fast=*/true, kMessages);
  const RoundTripCost blundo_slow = measure_roundtrip(blundo, /*fast=*/false, kMessages);
  const RoundTripCost blundo_fast = measure_roundtrip(blundo, /*fast=*/true, kMessages);
  crypto::set_fast_path_enabled(saved);

  const double kdc_speedup =
      kdc_fast.us_per_msg > 0.0 ? kdc_slow.us_per_msg / kdc_fast.us_per_msg : 0.0;
  const double blundo_speedup =
      blundo_fast.us_per_msg > 0.0 ? blundo_slow.us_per_msg / blundo_fast.us_per_msg : 0.0;

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"name\": \"micro_crypto_auth_roundtrip\",\n"
                "  \"messages\": %d,\n"
                "  \"payload_bytes\": 24,\n"
                "  \"kdc\": {\n"
                "    \"slow_us_per_msg\": %.3f,\n"
                "    \"fast_us_per_msg\": %.3f,\n"
                "    \"speedup\": %.2f,\n"
                "    \"slow_hash_ops_per_msg\": %.2f,\n"
                "    \"fast_hash_ops_per_msg\": %.2f\n"
                "  },\n"
                "  \"blundo_lambda20\": {\n"
                "    \"slow_us_per_msg\": %.3f,\n"
                "    \"fast_us_per_msg\": %.3f,\n"
                "    \"speedup\": %.2f,\n"
                "    \"slow_hash_ops_per_msg\": %.2f,\n"
                "    \"fast_hash_ops_per_msg\": %.2f\n"
                "  },\n",
                kMessages, kdc_slow.us_per_msg, kdc_fast.us_per_msg, kdc_speedup,
                kdc_slow.hash_ops_per_msg, kdc_fast.hash_ops_per_msg, blundo_slow.us_per_msg,
                blundo_fast.us_per_msg, blundo_speedup, blundo_slow.hash_ops_per_msg,
                blundo_fast.hash_ops_per_msg);

  char batch_json[1024];
  const int batch_gate = write_commitment_batch_block(batch_json, sizeof(batch_json));

  const std::string path = bench_artifact_path("BENCH_micro_crypto.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json, 1, std::strlen(json), f);
    std::fwrite(batch_json, 1, std::strlen(batch_json), f);
    std::fwrite("}\n", 1, 2, f);
    std::fclose(f);
  }
  std::printf("auth round trip, %d msgs: kdc %.2f -> %.2f us/msg (%.2fx), "
              "blundo20 %.2f -> %.2f us/msg (%.2fx) -> %s\n",
              kMessages, kdc_slow.us_per_msg, kdc_fast.us_per_msg, kdc_speedup,
              blundo_slow.us_per_msg, blundo_fast.us_per_msg, blundo_speedup, path.c_str());
  std::printf("hash ops/msg: kdc %.1f -> %.1f, blundo20 %.1f -> %.1f\n",
              kdc_slow.hash_ops_per_msg, kdc_fast.hash_ops_per_msg,
              blundo_slow.hash_ops_per_msg, blundo_fast.hash_ops_per_msg);
  // Gate: the expensive-derivation scheme must hold the headline >= 2x win
  // (measured 4.8x locally); KDC gets slack for noisy CI runners since its
  // slow path is already cheap (measured 2.6x locally). The batched
  // commitment path must hold its own >= 2x at width 4 wherever SSE2 exists.
  return (kdc_speedup >= 1.2 && blundo_speedup >= 2.0 && batch_gate == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_crypto_artifact();
}
