// Theorem 4 reproduction: with the binding-record update extension capped
// at m updates, the protocol guarantees (m+1)R-safety.
//
// The bench mounts the creeping attack the extension enables: a compromised
// identity's replica sits at the edge of its origin neighborhood, harvests
// legitimate evidences from each fresh deployment round, has newly deployed
// nodes re-issue its binding record, then a further replica moves another
// hop out -- gaining roughly R of reach per permitted update. Sweeping the
// cap m shows the measured impact radius growing with m but staying inside
// the (m+1)R bound.
#include <algorithm>
#include <iostream>

#include "adversary/attacker.h"
#include "core/safety.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Outcome {
  double impact_radius = 0.0;
  bool bound_violated = false;
  std::uint32_t final_version = 0;
};

Outcome run_creeping_attack(std::uint32_t m, std::uint64_t seed) {
  // Corridor field: the attack creeps rightward from the origin pocket.
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {700.0, 120.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 3;
  config.protocol.max_updates = m;
  config.seed = seed;

  core::SndDeployment deployment(config);
  const NodeId victim = deployment.deploy_node_at({60.0, 60.0});
  deployment.deploy_round(450);
  deployment.run();

  adversary::MaliciousBehavior behavior;
  behavior.creep_with_updates = true;
  adversary::Attacker attacker(deployment, behavior);
  attacker.compromise(victim);

  // One replica per creep step, each a radio hop farther down the corridor;
  // after each placement a fresh mini-round deploys around the replica so
  // evidences accumulate and a K-holding server is available.
  const std::size_t steps = static_cast<std::size_t>(m) + 3;  // try to overshoot the bound
  for (std::size_t k = 1; k <= steps; ++k) {
    const double x = 60.0 + 45.0 * static_cast<double>(k);
    if (x > 680.0) break;
    attacker.place_replica(victim, {x, 60.0});
    attacker.sync_replica_state(victim);  // new replica inherits creep progress
    deployment.run();
    for (int i = 0; i < 6; ++i) {
      deployment.deploy_node_at({x - 15.0 + 6.0 * i, 50.0 + 15.0 * (i % 2)});
    }
    deployment.run();
    attacker.sync_replica_state(victim);  // pool this round's harvest
  }

  // Theorem 4's (m+1)R, floored at Theorem 3's 2R: the theorem's induction
  // base (m = 1) coincides with Theorem 3, and with the extension disabled
  // (m = 0) Theorem 3 applies directly.
  const double bound =
      std::max(2.0, static_cast<double>(m) + 1.0) * config.radio_range;
  const core::IdentitySafetyReport report = core::audit_identity(deployment, victim, bound);
  Outcome outcome;
  outcome.impact_radius = report.impact_radius();
  outcome.bound_violated = report.violates;
  for (const adversary::MaliciousAgent* agent : attacker.agents_for(victim)) {
    if (agent->record()) {
      outcome.final_version = std::max(outcome.final_version, agent->record()->version);
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "thm4_update_safety",
      "Theorem 4 check: after m rounds of incremental updates the maximum\n"
      "functional link stays within (m+1)R.");
  driver_spec.int_flag("seeds", 4, "N", "independent deployment seeds", 1)
      .int_flag("mmax", 4, "M", "maximum number of update rounds", 0);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));
  const auto m_max = static_cast<std::uint32_t>(cli.get_int("mmax"));


  std::cout << "== Theorem 4: (m+1)R-safety under the update extension ==\n"
            << "creeping replica attack down a corridor, R = 50 m, t = 3, " << seeds
            << " seeds\n\n";

  util::Table table({"m (update cap)", "bound max(2,m+1)R", "measured impact radius (m)",
                     "record version reached", "bound violations"});
  for (std::uint32_t m = 0; m <= m_max; ++m) {
    util::RunningStats radius;
    util::RunningStats version;
    std::size_t violations = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Outcome outcome = run_creeping_attack(m, seed * 131);
      radius.add(outcome.impact_radius);
      version.add(static_cast<double>(outcome.final_version));
      if (outcome.bound_violated) ++violations;
    }
    table.add_row({util::Table::integer(m),
                   util::Table::num(std::max(2.0, static_cast<double>(m) + 1.0) * 50.0, 0),
                   util::Table::num(radius.mean(), 1), util::Table::num(version.mean(), 1),
                   util::Table::integer(static_cast<long long>(violations))});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: impact radius grows ~R per permitted update but never\n"
            << "exceeds (m+1)R; with m = 0 the attack gains nothing beyond 2R... the\n"
            << "Theorem 3 bound (the m = 0 row uses the extension disabled entirely).\n";
  return 0;
}
