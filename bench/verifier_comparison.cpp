// Comparison of the direct-verification mechanisms (paper references
// [8]-[10], [15]) under the two attacks they exist to stop -- wormhole
// relays and fabricated identities -- plus their benign accuracy and
// per-verification message cost. Complements verifier_sensitivity (which
// sweeps *error rates* of a single mechanism).
#include <iostream>
#include <memory>

#include "adversary/chaff.h"
#include "adversary/wormhole.h"
#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct VerifierCase {
  const char* label;
  std::function<std::shared_ptr<verify::DirectVerifier>()> make;
};

struct Outcome {
  double benign_accuracy = 0.0;
  double wormhole_cross_edges = 0.0;  // tentative edges bridging the tunnel
  double chaff_pollution = 0.0;       // fake ids per node's tentative list
};

Outcome run(const VerifierCase& verifier_case, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {400.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 2;
  config.seed = seed;

  core::SndDeployment deployment(config);
  deployment.set_verifier(verifier_case.make());

  // Wormhole joining the two ends of the corridor + one chaff radio.
  adversary::Wormhole wormhole(deployment.network(), {40.0, 50.0}, {360.0, 50.0});
  wormhole.start();
  const sim::DeviceId chaff_device = deployment.network().add_device(90000, {200.0, 50.0});
  deployment.network().device(chaff_device).compromised = true;
  adversary::ChaffAttacker chaff(deployment.network(), chaff_device, 100000, 4);
  chaff.start();

  deployment.deploy_round(250);
  deployment.run();

  Outcome outcome;
  outcome.benign_accuracy =
      topology::edge_recall(deployment.actual_benign_graph(), deployment.functional_graph());

  // Cross-tunnel tentative edges: pairs > 2R apart that list each other.
  const topology::Digraph tentative = deployment.tentative_graph();
  std::size_t cross = 0;
  std::size_t chaff_entries = 0;
  for (const core::SndNode* agent : deployment.agents()) {
    const util::Vec2 from = deployment.network().device(agent->device()).position;
    for (NodeId v : agent->tentative_neighbors()) {
      if (v >= 100000) {
        ++chaff_entries;
        continue;
      }
      const core::SndNode* peer = deployment.agent(v);
      if (peer == nullptr) continue;
      const util::Vec2 to = deployment.network().device(peer->device()).position;
      if (util::distance(from, to) > 2.0 * config.radio_range) ++cross;
    }
  }
  outcome.wormhole_cross_edges = static_cast<double>(cross);
  outcome.chaff_pollution =
      static_cast<double>(chaff_entries) / static_cast<double>(deployment.agents().size());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "verifier_comparison",
      "Verifier-selection policy comparison: accuracy and message cost of\n"
      "alternative common-neighbor verifier choices.");
  driver_spec.int_flag("seeds", 3, "N", "independent deployment seeds", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));

  std::cout << "== Direct-verification mechanisms under wormhole + chaff ==\n"
            << "250 nodes in a 400x100 m corridor, tunnel across it, chaff mid-field,\n"
            << seeds << " seeds\n\n";

  const VerifierCase cases[] = {
      {"none (naive)", [] { return std::make_shared<verify::NaiveVerifier>(); }},
      {"oracle (paper's assumption)",
       [] { return std::make_shared<verify::OracleVerifier>(); }},
      {"RTT distance bounding", [] { return std::make_shared<verify::RttVerifier>(); }},
      {"location claims", [] { return std::make_shared<verify::LocationVerifier>(); }},
  };

  util::Table table({"mechanism", "benign accuracy", "wormhole edges admitted",
                     "chaff ids/node", "msgs per verification"});
  for (const VerifierCase& verifier_case : cases) {
    util::RunningStats accuracy, cross, pollution;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Outcome o = run(verifier_case, seed * 53);
      accuracy.add(o.benign_accuracy);
      cross.add(o.wormhole_cross_edges);
      pollution.add(o.chaff_pollution);
    }
    table.add_row({verifier_case.label, util::Table::num(accuracy.mean(), 3),
                   util::Table::num(cross.mean(), 1), util::Table::num(pollution.mean(), 1),
                   util::Table::integer(static_cast<long long>(
                       verifier_case.make()->messages_per_verification()))});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: with no verification the tunnel bridges the corridor\n"
            << "and chaff floods every list; every authenticated mechanism zeroes both\n"
            << "at slightly differing benign accuracy (RTT pays jitter false-rejects).\n";
  return 0;
}
