// Figure 3 reproduction: fraction of actual neighbors included in the
// functional neighbor list of a benign node, as a function of the security
// threshold t -- theoretical model vs simulation.
//
// Paper setting (§4.5.1): 200 sensor nodes uniform in a 100x100 m field
// (density 1 node / 50 m^2), R = 50 m, measured at the node in the field
// center. We deploy one node exactly at the center plus 199 random ones and
// average the center node's accuracy over independent seeds.
//
//   ./fig3_threshold [--seeds 20] [--tmax 150] [--tstep 10]
#include <iostream>

#include "analysis/model.h"
#include "core/deployment_driver.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

/// Fraction of the center node's actual neighbors that it validated.
double center_node_accuracy(std::size_t threshold, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = threshold;
  config.seed = seed;

  core::SndDeployment deployment(config);
  const NodeId center = deployment.deploy_node_at(config.field.center());
  deployment.deploy_round(199);
  deployment.run();

  const core::SndNode* agent = deployment.agent(center);
  std::size_t actual = 0;
  std::size_t validated = 0;
  for (const sim::Device& d : deployment.network().devices()) {
    if (d.identity == center) continue;
    if (!deployment.network().link(agent->device(), d.id)) continue;
    ++actual;
    if (topology::contains(agent->functional_neighbors(), d.identity)) ++validated;
  }
  return actual == 0 ? 0.0 : static_cast<double>(validated) / static_cast<double>(actual);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 20));
  const auto t_max = static_cast<std::size_t>(cli.get_int("tmax", 150));
  const auto t_step = static_cast<std::size_t>(cli.get_int("tstep", 10));

  const analysis::FieldModel model{200.0 / (100.0 * 100.0), 50.0};

  std::cout << "== Figure 3: fraction of validated neighbors vs threshold t ==\n"
            << "200 nodes, 100x100 m, R = 50 m, center node, " << seeds << " seeds\n\n";

  util::Table table({"t", "theory f_b", "theory tau^2", "simulation", "stdev"});
  for (std::size_t t = 0; t <= t_max; t += t_step) {
    util::RunningStats sim_accuracy;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      sim_accuracy.add(center_node_accuracy(t, seed * 101 + t));
    }
    table.add_row({util::Table::integer(static_cast<long long>(t)),
                   util::Table::num(model.accuracy(t), 3),
                   util::Table::num(model.accuracy_approx(t), 3),
                   util::Table::num(sim_accuracy.mean(), 3),
                   util::Table::num(sim_accuracy.stdev(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 3): simulation tracks the theoretical curve;\n"
            << "accuracy ~1 for small t, decaying to ~0 by t ~ 150.\n";
  return 0;
}
