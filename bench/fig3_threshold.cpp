// Figure 3 reproduction: fraction of actual neighbors included in the
// functional neighbor list of a benign node, as a function of the security
// threshold t -- theoretical model vs simulation.
//
// Paper setting (§4.5.1): 200 sensor nodes uniform in a 100x100 m field
// (density 1 node / 50 m^2), R = 50 m, measured at the node in the field
// center. We deploy one node exactly at the center plus 199 random ones and
// average the center node's accuracy over independent seeds.
//
// The (t, seed) grid is flattened into one trial space and sharded across
// workers by runner::TrialRunner; aggregate statistics are bit-identical
// for any --jobs value.
//
//   ./fig3_threshold [--seeds 20] [--tmax 150] [--tstep 10] [--jobs N]
//                    [--fault-plan PATH]
//                    [--shard i/N] [--checkpoint PATH] [--resume]
//                    [--checkpoint-every N] [--canonical-report PATH]
//                    [--log warn] [--trace counters] [--trace-json PATH]
//
// With --checkpoint the run persists every trial to a .sndshard file (and
// --shard i/N restricts it to one stride of the trial space); shard_merge
// folds the files back into the canonical report. See docs/SHARDING.md.
#include <iostream>
#include <optional>
#include <vector>

#include "adversary/scenario.h"
#include "analysis/model.h"
#include "core/deployment_driver.h"
#include "fault/plan.h"
#include "obs/config.h"
#include "runner/trial_runner.h"
#include "shard/session.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct TrialResult {
  double accuracy = 0.0;
  obs::TraceSummary trace;
};

/// Fraction of the center node's actual neighbors that it validated.
/// `plan` (optional) injects channel faults into every trial.
TrialResult center_node_accuracy(std::size_t threshold, std::uint64_t seed,
                                 const fault::FaultPlan* plan,
                                 const adversary::ScenarioConfig* scenario) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = threshold;
  config.seed = seed;

  core::SndDeployment deployment(config);
  if (plan != nullptr && !plan->empty()) deployment.apply_fault_plan(*plan);
  std::optional<adversary::ScenarioRuntime> runtime;
  if (scenario != nullptr && !scenario->empty()) runtime.emplace(deployment, *scenario);
  const NodeId center = deployment.deploy_node_at(config.field.center());
  std::vector<NodeId> deployed = deployment.deploy_round(199);
  if (runtime) {
    deployed.insert(deployed.begin(), center);
    runtime->arm(deployed);
  }
  deployment.run();

  const core::SndNode* agent = deployment.agent(center);
  std::size_t actual = 0;
  std::size_t validated = 0;
  for (const sim::Device& d : deployment.network().devices()) {
    if (d.identity == center) continue;
    if (!deployment.network().link(agent->device(), d.id)) continue;
    ++actual;
    if (topology::contains(agent->functional_neighbors(), d.identity)) ++validated;
  }
  TrialResult result;
  result.accuracy =
      actual == 0 ? 0.0 : static_cast<double>(validated) / static_cast<double>(actual);
  result.trace = deployment.network().trace_summary();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  shard::SessionOptions session_options;
  std::optional<fault::FaultPlan> plan;
  std::optional<adversary::ScenarioConfig> scenario;
  util::cli::DriverSpec spec(
      "fig3_threshold",
      "Figure 3 reproduction: fraction of actual neighbors validated by the\n"
      "center node as a function of the security threshold t.");
  spec.int_flag("seeds", 20, "N", "independent seeds per threshold", 1)
      .int_flag("tmax", 150, "T", "largest threshold t to sweep", 0)
      .int_flag("tstep", 10, "T", "threshold sweep step", 1)
      .string_flag("canonical-report", "", "PATH",
                   "write the canonical sweep report JSON to PATH")
      .group(util::cli::jobs_group(&jobs))
      .group(fault::plan_flag_group(&plan))
      .group(adversary::scenario_flag_group(&scenario))
      .group(shard::session_flag_group(&session_options))
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const auto t_max = static_cast<std::size_t>(cli.get_int("tmax"));
  const auto t_step = static_cast<std::size_t>(cli.get_int("tstep"));
  const std::string canonical_path = cli.get("canonical-report");
  runner::TrialRunner pool(jobs);
  if (plan) {
    std::cout << "fault plan: " << cli.get("fault-plan") << " ("
              << plan->actions.size() << " actions)\n";
  }

  const analysis::FieldModel model{200.0 / (100.0 * 100.0), 50.0};

  std::vector<std::size_t> thresholds;
  for (std::size_t t = 0; t <= t_max; t += t_step) thresholds.push_back(t);

  // One flat (t, seed) trial space: trial i covers threshold i / seeds with
  // the i-th derived seed.
  runner::SweepReport report;
  report.name = "fig3_threshold";

  shard::ShardSpec shard_spec;
  shard_spec.sweep_id = report.name;
  shard_spec.base_seed = 101;
  shard_spec.total_trials = thresholds.size() * seeds;
  shard_spec.metric_names = {"accuracy"};
  shard::Session session(session_options, shard_spec);
  if (session.enabled() && !canonical_path.empty()) {
    std::cerr << cli.program()
              << ": --canonical-report needs a plain run (merge the shard files with "
                 "shard_merge to get the canonical report)\n";
    return 2;
  }
  if (!session.open(std::cerr)) return 2;

  obs::Registry registry(thresholds.size() * seeds);
  const auto trial_body = [&](std::size_t i, std::uint64_t seed) {
    try {
      TrialResult result =
          center_node_accuracy(thresholds[i / seeds], seed, plan ? &*plan : nullptr,
                               scenario ? &*scenario : nullptr);
      registry.record(i, result.trace);
      session.record_success(i, {result.accuracy}, result.trace);
      return result.accuracy;
    } catch (const std::exception& e) {
      session.record_failure(i, e.what());
      throw;
    } catch (...) {
      session.record_failure(i, "non-standard exception");
      throw;
    }
  };

  if (session.enabled()) {
    // Checkpointed (possibly sharded) mode: the shard file is the output;
    // tables and BENCH artifacts come from shard_merge over all shards.
    std::cout << "== Figure 3 (shard " << session.spec().shard_index << "/"
              << session.spec().shard_count << " of " << shard_spec.total_trials
              << " trials) ==\n";
    (void)pool.run_subset(session.pending(), shard_spec.base_seed, trial_body, &report);
    if (!session.finish(std::cerr)) return 1;
    std::cout << "ran " << session.pending().size() << " trials (" << session.resumed()
              << " resumed), " << report.failed << " failed -> "
              << session_options.checkpoint_path << "\n";
    return report.failed == 0 ? 0 : 1;
  }

  std::cout << "== Figure 3: fraction of validated neighbors vs threshold t ==\n"
            << "200 nodes, 100x100 m, R = 50 m, center node, " << seeds << " seeds, "
            << pool.jobs() << " jobs\n\n";

  const auto accuracy =
      pool.run(thresholds.size() * seeds, shard_spec.base_seed, trial_body, &report);
  report.attach_trace(registry.fold());
  report.metric("accuracy");  // column exists even if every trial failed
  for (const auto& value : accuracy) {
    if (value.has_value()) report.metric("accuracy").add(*value);
  }
  if (!canonical_path.empty() && !report.write_canonical(canonical_path)) {
    std::cerr << cli.program() << ": cannot write " << canonical_path << "\n";
    return 1;
  }

  util::Table table({"t", "theory f_b", "theory tau^2", "simulation", "stdev"});
  for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
    util::RunningStats sim_accuracy;
    for (std::size_t s = 0; s < seeds; ++s) {
      if (const auto& value = accuracy[ti * seeds + s]) sim_accuracy.add(*value);
    }
    table.add_row({util::Table::integer(static_cast<long long>(thresholds[ti])),
                   util::Table::num(model.accuracy(thresholds[ti]), 3),
                   util::Table::num(model.accuracy_approx(thresholds[ti]), 3),
                   util::Table::num(sim_accuracy.mean(), 3),
                   util::Table::num(sim_accuracy.stdev(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 3): simulation tracks the theoretical curve;\n"
            << "accuracy ~1 for small t, decaying to ~0 by t ~ 150.\n";

  const std::string path = report.write_json();
  std::cout << "\n[" << report.trials << " trials, " << report.failed << " failed, "
            << util::Table::num(report.trials_per_second(), 1) << " trials/s"
            << (path.empty() ? "" : ", perf -> " + path) << "]\n";
  return report.failed == 0 ? 0 : 1;
}
