// Theorems 1 and 2 reproduction: the generic attacks that defeat ANY
// neighbor validation function built on topology information alone.
//
// The table runs the constructive Theorem 1 attack against the
// common-neighbor threshold rule (the same predicate the secure protocol
// uses, but WITHOUT the deployment-time master key) for a sweep of
// thresholds, and the Theorem 2 extendability attack on random geometric
// topologies. Every row should report the attack succeeding -- that is the
// theorem. The companion bench thm3_safety shows the identical threshold
// rule *with* deployment-time security containing the same adversary.
#include <iostream>

#include "adversary/theorem_attack.h"
#include "sim/deployment.h"
#include "util/driver_spec.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace snd;

/// Random geometric graph for the Theorem 2 demonstration.
topology::Digraph geometric_graph(std::size_t n, double field_size, double range,
                                  std::vector<util::Vec2>& positions, util::Rng& rng) {
  const util::Rect field{{0, 0}, {field_size, field_size}};
  positions = sim::deploy_uniform(n, field, rng);
  topology::Digraph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node(static_cast<NodeId>(i + 1));
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && util::distance(positions[i], positions[j]) <= range) {
        g.add_edge(static_cast<NodeId>(i + 1), static_cast<NodeId>(j + 1));
      }
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "thm12_impossibility",
      "Theorems 1-2 demonstration: graph-cloning defeats topology-only\n"
      "validation, motivating the paper's location-bound keys.");
  driver_spec.int_flag("trials", 10, "N", "random cloning trials", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();

  std::cout << "== Theorem 1: graph-cloning attack vs topology-only validation ==\n"
            << "F = common-neighbor threshold rule without deployment-time security\n\n";

  util::Table t1({"t", "min deployment m", "network n = 2m-1", "F(u,w,G_A)", "F(f(u),w,G_B+forged)",
                  "d-safety defeated"});
  for (std::size_t t : {0u, 1u, 2u, 5u, 10u, 20u, 50u}) {
    core::CommonNeighborValidator validator(t);
    const std::size_t m = validator.minimum_deployment_size();
    const auto attack = adversary::build_theorem1_attack(validator, 2 * m - 1);
    const bool at_u = validator.validate(attack.u, attack.w, attack.original_view);
    const bool at_fu = validator.validate(attack.fu, attack.w, attack.victim_view);
    t1.add_row({util::Table::integer(static_cast<long long>(t)),
                util::Table::integer(static_cast<long long>(m)),
                util::Table::integer(static_cast<long long>(2 * m - 1)),
                at_u ? "accept" : "reject", at_fu ? "accept" : "reject",
                attack.succeeds(validator) ? "YES" : "no"});
  }
  t1.print(std::cout);

  std::cout << "\n== Theorem 2: extendability attack on random geometric networks ==\n"
            << "A far-away compromised node v is accepted by u after the attacker\n"
            << "renames a hypothetical new local node's relations to v.\n\n";

  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  util::Table t2({"trial", "nodes", "t", "|N(u)|", "victim distance (m)", "accepted before",
                  "accepted after attack"});
  std::size_t successes = 0;
  std::size_t achievable = 0;
  for (std::uint64_t trial = 1; trial <= trials; ++trial) {
    util::Rng rng(trial * 31);
    std::vector<util::Vec2> positions;
    const topology::Digraph g = geometric_graph(150, 400.0, 60.0, positions, rng);
    const std::size_t t = 3 + rng.uniform_int(5);
    core::CommonNeighborValidator validator(t);

    // u: node 1. Victim v: the node farthest from u.
    const NodeId u = 1;
    NodeId v = 2;
    double far = 0.0;
    for (std::size_t i = 1; i < positions.size(); ++i) {
      const double d = util::distance(positions[0], positions[i]);
      if (d > far) {
        far = d;
        v = static_cast<NodeId>(i + 1);
      }
    }

    // The neighborhood a genuinely new node next to u would discover.
    std::vector<NodeId> u_hood;
    for (NodeId c : g.successors(u)) {
      if (u_hood.size() <= t + 1) u_hood.push_back(c);
    }
    const bool before = validator.validate(u, v, g);
    const auto attack = adversary::build_theorem2_attack(g, u, u_hood, v);
    const bool after = attack.succeeds(validator);
    const std::size_t degree = g.successors(u).size();
    if (degree >= t + 1) ++achievable;
    if (!before && after) ++successes;

    t2.add_row({util::Table::integer(static_cast<long long>(trial)), "150",
                util::Table::integer(static_cast<long long>(t)),
                util::Table::integer(static_cast<long long>(degree)),
                util::Table::num(far, 0), before ? "accept" : "reject",
                after ? "ACCEPT" : "reject"});
  }
  t2.print(std::cout);
  std::cout << "\nattack success rate: " << successes << "/" << trials << " (" << achievable
            << "/" << trials << " trials had |N(u)| >= t+1; the attack must succeed on\n"
            << "exactly those -- a node too sparse to ever gain a neighbor is not\n"
            << "extendable and Theorem 2 does not apply)\n";
  return 0;
}
