// Theorem 3 reproduction: with at most t compromised nodes, the protocol
// guarantees 2R-safety -- every compromised identity's benign functional
// neighbors fit in a circle of radius 2R.
//
// The bench mounts the strongest replication attack the model allows: the
// adversary compromises c mutually-adjacent nodes (a colluding clique, so
// each stolen binding record lists the other compromised identities),
// co-locates replicas of ALL of them at a remote site, and waits for a
// fresh deployment round there. A fresh victim x sees all c compromised
// identities; checking identity w_i, the common neighbors are the other
// c-1 compromised identities -- so the attack needs c - 1 >= t + 1, i.e.
// c >= t + 2, to break containment. The table sweeps c across the t
// boundary: zero violations up to c = t + 1, violations beyond.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "adversary/attacker.h"
#include "core/safety.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Outcome {
  std::size_t violations = 0;
  double max_radius = 0.0;
  std::size_t fooled_fresh_nodes = 0;
};

Outcome run_attack(std::size_t t, std::size_t compromised, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {500.0, 500.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = t;
  config.seed = seed;

  core::SndDeployment deployment(config);
  // A dense pocket around (100,100) guarantees `compromised` mutually
  // adjacent victims; the rest of the field is uniform.
  std::vector<NodeId> pocket;
  for (std::size_t i = 0; i < compromised; ++i) {
    const double angle = 2.0 * 3.14159265 * static_cast<double>(i) /
                         static_cast<double>(std::max<std::size_t>(compromised, 1));
    pocket.push_back(deployment.deploy_node_at(
        {100.0 + 10.0 * std::cos(angle), 100.0 + 10.0 * std::sin(angle)}));
  }
  deployment.deploy_round(500);
  deployment.run();

  // Compromise the whole pocket and replicate every identity at the far
  // corner.
  adversary::Attacker attacker(deployment);
  const util::Vec2 remote{450.0, 450.0};
  for (NodeId w : pocket) {
    attacker.compromise(w);
    attacker.place_replica(w, remote);
  }
  deployment.run();

  // Fresh deployment round near the replica site.
  std::vector<NodeId> fresh;
  for (int i = 0; i < 10; ++i) {
    fresh.push_back(deployment.deploy_node_at(
        {430.0 + 4.0 * (i % 5), 430.0 + 8.0 * static_cast<double>(i / 5)}));
  }
  deployment.run();

  const core::SafetyReport report = core::audit_safety(deployment, 2.0 * config.radio_range);
  Outcome outcome;
  outcome.violations = report.violation_count();
  outcome.max_radius = report.max_impact_radius();
  for (NodeId x : fresh) {
    const core::SndNode* agent = deployment.agent(x);
    for (NodeId w : pocket) {
      if (topology::contains(agent->functional_neighbors(), w)) {
        ++outcome.fooled_fresh_nodes;
        break;
      }
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto t = static_cast<std::size_t>(cli.get_int("threshold", 4));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  std::cout << "== Theorem 3: 2R-safety vs number of colluding compromised nodes ==\n"
            << "t = " << t << ", R = 50 m (2R = 100 m), colluding clique replicated at a\n"
            << "remote site, fresh nodes deployed next to the replicas, " << seeds
            << " seeds\n\n";

  util::Table table({"compromised c", "prediction", "2R violations", "max impact radius (m)",
                     "fresh nodes fooled"});
  for (std::size_t c = 1; c <= t + 3; ++c) {
    util::RunningStats violations;
    util::RunningStats radius;
    util::RunningStats fooled;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Outcome outcome = run_attack(t, c, seed * 7919);
      violations.add(static_cast<double>(outcome.violations));
      radius.add(outcome.max_radius);
      fooled.add(static_cast<double>(outcome.fooled_fresh_nodes));
    }
    table.add_row({util::Table::integer(static_cast<long long>(c)),
                   c <= t ? "safe (Thm 3)" : c == t + 1 ? "safe (margin)" : "breakable",
                   util::Table::num(violations.mean(), 2), util::Table::num(radius.max(), 1),
                   util::Table::num(fooled.mean(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: zero violations for c <= t (the Theorem 3 guarantee; the\n"
            << "strongest clique attack in fact needs c >= t+2), violations with impact\n"
            << "radius ~ field diagonal once c crosses t+2.\n";
  return 0;
}
