// Theorem 3 reproduction: with at most t compromised nodes, the protocol
// guarantees 2R-safety -- every compromised identity's benign functional
// neighbors fit in a circle of radius 2R.
//
// The bench mounts the strongest replication attack the model allows: the
// adversary compromises c mutually-adjacent nodes (a colluding clique, so
// each stolen binding record lists the other compromised identities),
// co-locates replicas of ALL of them at a remote site, and waits for a
// fresh deployment round there. A fresh victim x sees all c compromised
// identities; checking identity w_i, the common neighbors are the other
// c-1 compromised identities -- so the attack needs c - 1 >= t + 1, i.e.
// c >= t + 2, to break containment. The table sweeps c across the t
// boundary: zero violations up to c = t + 1, violations beyond.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "adversary/attacker.h"
#include "core/safety.h"
#include "obs/config.h"
#include "runner/trial_runner.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Outcome {
  std::size_t violations = 0;
  double max_radius = 0.0;
  std::size_t fooled_fresh_nodes = 0;
};

Outcome run_attack(std::size_t t, std::size_t compromised, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {500.0, 500.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = t;
  config.seed = seed;

  core::SndDeployment deployment(config);
  // A dense pocket around (100,100) guarantees `compromised` mutually
  // adjacent victims; the rest of the field is uniform.
  std::vector<NodeId> pocket;
  for (std::size_t i = 0; i < compromised; ++i) {
    const double angle = 2.0 * 3.14159265 * static_cast<double>(i) /
                         static_cast<double>(std::max<std::size_t>(compromised, 1));
    pocket.push_back(deployment.deploy_node_at(
        {100.0 + 10.0 * std::cos(angle), 100.0 + 10.0 * std::sin(angle)}));
  }
  deployment.deploy_round(500);
  deployment.run();

  // Compromise the whole pocket and replicate every identity at the far
  // corner.
  adversary::Attacker attacker(deployment);
  const util::Vec2 remote{450.0, 450.0};
  for (NodeId w : pocket) {
    attacker.compromise(w);
    attacker.place_replica(w, remote);
  }
  deployment.run();

  // Fresh deployment round near the replica site.
  std::vector<NodeId> fresh;
  for (int i = 0; i < 10; ++i) {
    fresh.push_back(deployment.deploy_node_at(
        {430.0 + 4.0 * (i % 5), 430.0 + 8.0 * static_cast<double>(i / 5)}));
  }
  deployment.run();

  const core::SafetyReport report = core::audit_safety(deployment, 2.0 * config.radio_range);
  Outcome outcome;
  outcome.violations = report.violation_count();
  outcome.max_radius = report.max_impact_radius();
  for (NodeId x : fresh) {
    const core::SndNode* agent = deployment.agent(x);
    for (NodeId w : pocket) {
      if (topology::contains(agent->functional_neighbors(), w)) {
        ++outcome.fooled_fresh_nodes;
        break;
      }
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  util::cli::DriverSpec driver_spec(
      "thm3_safety",
      "Theorem 3 check: a colluding clique of c compromised nodes cannot\n"
      "create a functional link longer than 2R unless c > t.");
  driver_spec.int_flag("threshold", 4, "T", "security threshold t", 0)
      .int_flag("seeds", 5, "N", "independent seeds per clique size", 1)
      .group(util::cli::jobs_group(&jobs))
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  const auto t = static_cast<std::size_t>(cli.get_int("threshold"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  runner::TrialRunner pool(jobs);

  std::cout << "== Theorem 3: 2R-safety vs number of colluding compromised nodes ==\n"
            << "t = " << t << ", R = 50 m (2R = 100 m), colluding clique replicated at a\n"
            << "remote site, fresh nodes deployed next to the replicas, " << seeds
            << " seeds, " << pool.jobs() << " jobs\n\n";

  // One flat (c, seed) trial space: trial i attacks with c = 1 + i / seeds.
  runner::SweepReport report;
  report.name = "thm3_safety";
  const std::size_t c_count = t + 3;
  const auto outcomes = pool.run(
      c_count * seeds, /*base_seed=*/7919,
      [&](std::size_t i, std::uint64_t seed) { return run_attack(t, 1 + i / seeds, seed); },
      &report);

  util::Table table({"compromised c", "prediction", "2R violations", "max impact radius (m)",
                     "fresh nodes fooled"});
  for (std::size_t ci = 0; ci < c_count; ++ci) {
    const std::size_t c = ci + 1;
    util::RunningStats violations;
    util::RunningStats radius;
    util::RunningStats fooled;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto& outcome = outcomes[ci * seeds + s];
      if (!outcome.has_value()) continue;
      violations.add(static_cast<double>(outcome->violations));
      radius.add(outcome->max_radius);
      fooled.add(static_cast<double>(outcome->fooled_fresh_nodes));
    }
    table.add_row({util::Table::integer(static_cast<long long>(c)),
                   c <= t ? "safe (Thm 3)" : c == t + 1 ? "safe (margin)" : "breakable",
                   util::Table::num(violations.mean(), 2), util::Table::num(radius.max(), 1),
                   util::Table::num(fooled.mean(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: zero violations for c <= t (the Theorem 3 guarantee; the\n"
            << "strongest clique attack in fact needs c >= t+2), violations with impact\n"
            << "radius ~ field diagonal once c crosses t+2.\n";

  const std::string path = report.write_json();
  std::cout << "\n[" << report.trials << " trials, " << report.failed << " failed, "
            << util::Table::num(report.trials_per_second(), 1) << " trials/s"
            << (path.empty() ? "" : ", perf -> " + path) << "]\n";
  return report.failed == 0 ? 0 : 1;
}
