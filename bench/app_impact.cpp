// Ablation: what secure neighbor discovery buys the applications the paper's
// introduction motivates (clustering and routing), and what the threshold
// costs in benign connectivity.
//
// Under a replication attack, clustering over the unvalidated (tentative)
// topology absorbs members across the field -- the paper's "many sensor
// nodes far from each other may be included in the same cluster"; over the
// validated (functional) topology, clusters stay local. Routing restricted
// to functional relations keeps near-ground-truth delivery.
#include <iostream>
#include <map>

#include "adversary/attacker.h"
#include "apps/aggregation.h"
#include "apps/clustering.h"
#include "apps/georouting.h"
#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

std::map<NodeId, util::Vec2> original_positions(const core::SndDeployment& deployment) {
  std::map<NodeId, util::Vec2> positions;
  for (const sim::Device& d : deployment.network().devices()) {
    if (!d.replica) positions.emplace(d.identity, d.position);
  }
  return positions;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "app_impact",
      "Application-level impact of secure neighbor discovery: flooding\n"
      "coverage and greedy routing over the functional vs tentative topology.");
  driver_spec.int_flag("seeds", 6, "N", "independent deployment seeds", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));


  std::cout << "== Application impact of secure neighbor discovery ==\n"
            << "400 nodes, 300x300 m, R = 50 m, t = 5; 3 identities replicated at the\n"
            << "far corner, fresh deployment round near the replicas; " << seeds
            << " seeds\n\n";

  util::RunningStats tentative_diameter, functional_diameter, truth_diameter;
  util::RunningStats tentative_head_dist, functional_head_dist;
  util::RunningStats functional_delivery, truth_delivery, recall;
  util::RunningStats tentative_agg_error, functional_agg_error, truth_agg_error;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    core::DeploymentConfig config;
    config.field = {{0.0, 0.0}, {300.0, 300.0}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 5;
    config.seed = seed * 37;

    core::SndDeployment deployment(config);
    deployment.deploy_round(400);
    deployment.run();

    adversary::Attacker attacker(deployment);
    for (NodeId victim : {2u, 3u, 4u}) {
      attacker.compromise(victim);
      attacker.place_replica(victim, {280.0, 280.0});
    }
    deployment.run();
    for (int i = 0; i < 12; ++i) {
      deployment.deploy_node_at({250.0 + 4.0 * (i % 6), 260.0 + 10.0 * (i / 6)});
    }
    deployment.run();

    const auto positions = original_positions(deployment);
    const topology::Digraph actual = deployment.actual_benign_graph();
    const topology::Digraph tentative = deployment.tentative_graph();
    const topology::Digraph functional = deployment.functional_graph();
    recall.add(topology::edge_recall(actual, functional));

    // Clustering quality over the three views.
    const auto quality_of = [&](const topology::Digraph& g) {
      return apps::evaluate_clusters(apps::smallest_id_clustering(g), positions);
    };
    const auto q_tentative = quality_of(tentative);
    const auto q_functional = quality_of(functional);
    const auto q_truth = quality_of(actual);
    tentative_diameter.add(q_tentative.max_diameter_m);
    functional_diameter.add(q_functional.max_diameter_m);
    truth_diameter.add(q_truth.max_diameter_m);
    tentative_head_dist.add(q_tentative.max_member_to_head_m);
    functional_head_dist.add(q_functional.max_member_to_head_m);

    // Aggregation error under each view.
    const auto agg_of = [&](const topology::Digraph& g) {
      return apps::evaluate_aggregation(apps::smallest_id_clustering(g), positions).max_error;
    };
    tentative_agg_error.add(agg_of(tentative));
    functional_agg_error.add(agg_of(functional));
    truth_agg_error.add(agg_of(actual));

    // Routing delivery ratio: 60 random device pairs.
    util::Rng route_rng(seed);
    const apps::GeoRouter functional_router(deployment.network(), functional);
    const apps::GeoRouter truth_router(deployment.network());
    std::size_t functional_ok = 0;
    std::size_t truth_ok = 0;
    const std::size_t trials = 60;
    for (std::size_t i = 0; i < trials; ++i) {
      const auto a = static_cast<sim::DeviceId>(route_rng.uniform_int(400));
      const auto b = static_cast<sim::DeviceId>(route_rng.uniform_int(400));
      if (functional_router.route(a, b).success) ++functional_ok;
      if (truth_router.route(a, b).success) ++truth_ok;
    }
    functional_delivery.add(static_cast<double>(functional_ok) / trials);
    truth_delivery.add(static_cast<double>(truth_ok) / trials);
  }

  util::Table clustering({"topology used", "max cluster diameter (m)",
                          "max member-to-head (m)"});
  clustering.add_row({"ground truth (no attack possible)",
                      util::Table::num(truth_diameter.mean(), 1), "-"});
  clustering.add_row({"tentative (unvalidated, attacked)",
                      util::Table::num(tentative_diameter.mean(), 1),
                      util::Table::num(tentative_head_dist.mean(), 1)});
  clustering.add_row({"functional (SND-validated)",
                      util::Table::num(functional_diameter.mean(), 1),
                      util::Table::num(functional_head_dist.mean(), 1)});
  std::cout << "-- clustering (smallest-ID heads) --\n";
  clustering.print(std::cout);

  std::cout << "\n-- in-network averaging (worst cluster's aggregation error) --\n";
  util::Table aggregation({"topology used", "max aggregation error"});
  aggregation.add_row({"ground truth", util::Table::num(truth_agg_error.mean(), 2)});
  aggregation.add_row({"tentative (unvalidated, attacked)",
                       util::Table::num(tentative_agg_error.mean(), 2)});
  aggregation.add_row({"functional (SND-validated)",
                       util::Table::num(functional_agg_error.mean(), 2)});
  aggregation.print(std::cout);

  std::cout << "\n-- greedy geographic routing, 60 random pairs --\n";
  util::Table routing({"topology used", "delivery ratio"});
  routing.add_row({"ground truth links", util::Table::percent(truth_delivery.mean(), 1)});
  routing.add_row({"functional (SND-validated)",
                   util::Table::percent(functional_delivery.mean(), 1)});
  routing.print(std::cout);

  std::cout << "\nbenign edge recall of the functional topology: "
            << util::Table::percent(recall.mean(), 1) << "\n"
            << "\nExpected shape: tentative-topology clusters span the attack distance\n"
            << "(~300-400 m diameters); functional clusters stay radio-local (~<= 2R);\n"
            << "routing over functional relations loses little vs ground truth.\n";
  return 0;
}
