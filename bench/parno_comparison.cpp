// §4.5.3 reproduction: comparison against Parno et al.'s replica detection
// (randomized multicast and line-selected multicast) on the same simulated
// network under the same replication attack.
//
// The paper's comparison axes, all measured here:
//   1. location dependence     -- Parno needs secure localization; SND none.
//   2. guarantee               -- SND *prevents* remote acceptance
//                                 deterministically (<= t compromised);
//                                 Parno *detects* probabilistically.
//   3. communication           -- SND neighborhood-local vs network-wide
//                                 multicast routing.
//   4. cryptography            -- SND: a few hashes; Parno: per-claim
//                                 public-key sign/verify.
//   5. exposure window         -- detection acts only after claims travel;
//                                 prevention blocks acceptance outright.
#include <iostream>

#include "adversary/attacker.h"
#include "apps/flooding.h"
#include "baseline/parno.h"
#include "core/safety.h"
#include "crypto/sha256.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct SndOutcome {
  double fooled_fraction = 0.0;  // fresh nodes near replicas accepting them
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hash_ops = 0;
};

struct Setup {
  std::unique_ptr<core::SndDeployment> deployment;
  std::vector<NodeId> victims;
  std::vector<util::Vec2> replica_sites;
};

Setup build_attacked_network(std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {300.0, 300.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 5;
  config.seed = seed;

  Setup setup;
  setup.deployment = std::make_unique<core::SndDeployment>(config);
  // Victims pinned near the field center so every replica site (corners,
  // >= 2R away) is genuinely "remote" for them.
  setup.victims.push_back(setup.deployment->deploy_node_at({150.0, 150.0}));
  setup.victims.push_back(setup.deployment->deploy_node_at({140.0, 150.0}));
  setup.victims.push_back(setup.deployment->deploy_node_at({150.0, 140.0}));
  setup.deployment->deploy_round(347);
  setup.deployment->run();
  setup.replica_sites = {{270.0, 270.0}, {30.0, 270.0}, {270.0, 30.0}};
  return setup;
}

SndOutcome run_snd(std::uint64_t seed) {
  Setup setup = build_attacked_network(seed);
  core::SndDeployment& deployment = *setup.deployment;
  deployment.network().metrics().reset();
  crypto::reset_hash_op_count();

  adversary::Attacker attacker(deployment);
  for (std::size_t i = 0; i < setup.victims.size(); ++i) {
    attacker.compromise(setup.victims[i]);
    attacker.place_replica(setup.victims[i], setup.replica_sites[i]);
  }
  deployment.run();

  // Fresh nodes near every replica site: the attacker's targets.
  std::vector<NodeId> fresh;
  for (const util::Vec2& site : setup.replica_sites) {
    for (int i = 0; i < 5; ++i) {
      fresh.push_back(deployment.deploy_node_at(
          {site.x - 10.0 + 5.0 * i, site.y + 8.0}));
    }
  }
  deployment.run();

  SndOutcome outcome;
  std::size_t fooled = 0;
  for (NodeId x : fresh) {
    const core::SndNode* agent = deployment.agent(x);
    for (NodeId w : setup.victims) {
      if (topology::contains(agent->functional_neighbors(), w)) {
        ++fooled;
        break;
      }
    }
  }
  outcome.fooled_fraction = static_cast<double>(fooled) / static_cast<double>(fresh.size());
  const auto total = deployment.network().metrics().total();
  outcome.messages = total.messages;
  outcome.bytes = total.bytes;
  outcome.hash_ops = crypto::hash_op_count();
  return outcome;
}

baseline::DetectionResult run_parno(std::uint64_t seed, bool line_selected) {
  Setup setup = build_attacked_network(seed);
  core::SndDeployment& deployment = *setup.deployment;

  adversary::Attacker attacker(deployment);
  for (std::size_t i = 0; i < setup.victims.size(); ++i) {
    attacker.compromise(setup.victims[i]);
    attacker.place_replica(setup.victims[i], setup.replica_sites[i]);
  }
  deployment.run();

  crypto::SimSignatureAuthority authority(seed);
  baseline::ParnoDetector detector(deployment.network(), authority, seed * 3 + 1);
  baseline::ParnoConfig config;
  config.witnesses_per_neighbor = 4;
  config.forward_probability = 0.25;
  config.lines_per_claim = 6;
  return line_selected ? detector.line_selected_multicast(config)
                       : detector.randomized_multicast(config);
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "parno_comparison",
      "Replica-detection comparison against Parno et al. line-selected\n"
      "multicast, under the paper's threat model.");
  driver_spec.int_flag("seeds", 6, "N", "independent deployment seeds", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));

  std::cout << "== Comparison vs Parno et al. replica handling (paper section 4.5.3) ==\n"
            << "350 nodes + 3 compromised identities replicated at 3 remote sites,\n"
            << "300x300 m, R = 50 m, " << seeds << " seeds\n\n";

  util::RunningStats snd_fooled, snd_msgs, snd_bytes, snd_hashes;
  util::RunningStats rm_rate, rm_msgs, rm_bytes, rm_signs, rm_verifies, rm_storage;
  util::RunningStats ls_rate, ls_msgs, ls_bytes, ls_signs, ls_verifies, ls_storage;
  util::RunningStats revocation_bytes;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const SndOutcome snd = run_snd(seed * 13);
    snd_fooled.add(snd.fooled_fraction);
    snd_msgs.add(static_cast<double>(snd.messages));
    snd_bytes.add(static_cast<double>(snd.bytes));
    snd_hashes.add(static_cast<double>(snd.hash_ops));

    const auto rm = run_parno(seed * 13, /*line_selected=*/false);
    rm_rate.add(rm.detection_rate());
    rm_msgs.add(static_cast<double>(rm.messages));
    rm_bytes.add(static_cast<double>(rm.bytes));
    rm_signs.add(static_cast<double>(rm.sign_ops));
    rm_verifies.add(static_cast<double>(rm.verify_ops));
    rm_storage.add(rm.mean_stored_claims);

    // Detection must be followed by a flooded revocation per caught
    // identity (Parno et al.); estimate it on a fresh attacked network.
    {
      Setup setup = build_attacked_network(seed * 13);
      const apps::FloodCost flood =
          apps::estimate_flood(setup.deployment->network(), 0, baseline::kClaimBytes);
      revocation_bytes.add(static_cast<double>(flood.bytes));
    }

    const auto ls = run_parno(seed * 13, /*line_selected=*/true);
    ls_rate.add(ls.detection_rate());
    ls_msgs.add(static_cast<double>(ls.messages));
    ls_bytes.add(static_cast<double>(ls.bytes));
    ls_signs.add(static_cast<double>(ls.sign_ops));
    ls_verifies.add(static_cast<double>(ls.verify_ops));
    ls_storage.add(ls.mean_stored_claims);
  }

  util::Table table({"metric", "SND (this paper)", "randomized multicast",
                     "line-selected multicast"});
  table.add_row({"guarantee", "prevention (deterministic, <= t)", "detection (probabilistic)",
                 "detection (probabilistic)"});
  table.add_row({"remote acceptance / detection rate",
                 util::Table::percent(snd_fooled.mean(), 1) + " fooled",
                 util::Table::percent(rm_rate.mean(), 1) + " detected",
                 util::Table::percent(ls_rate.mean(), 1) + " detected"});
  table.add_row({"location information required", "no", "yes (signed claims)",
                 "yes (signed claims)"});
  table.add_row({"messages (whole protocol / round)", util::Table::num(snd_msgs.mean(), 0),
                 util::Table::num(rm_msgs.mean(), 0), util::Table::num(ls_msgs.mean(), 0)});
  table.add_row({"bytes", util::Table::num(snd_bytes.mean(), 0),
                 util::Table::num(rm_bytes.mean(), 0), util::Table::num(ls_bytes.mean(), 0)});
  table.add_row({"symmetric hash ops", util::Table::num(snd_hashes.mean(), 0), "-", "-"});
  table.add_row({"public-key sign ops", "0", util::Table::num(rm_signs.mean(), 0),
                 util::Table::num(ls_signs.mean(), 0)});
  table.add_row({"public-key verify ops", "0", util::Table::num(rm_verifies.mean(), 0),
                 util::Table::num(ls_verifies.mean(), 0)});
  table.add_row({"claims stored / node", "0", util::Table::num(rm_storage.mean(), 1),
                 util::Table::num(ls_storage.mean(), 1)});
  table.add_row({"revocation flood per detection (bytes)", "n/a (never accepted)",
                 util::Table::num(revocation_bytes.mean(), 0),
                 util::Table::num(revocation_bytes.mean(), 0)});
  table.add_row({"scope of traffic", "single hop (neighbors only)", "network-wide routing",
                 "network-wide routing"});
  table.add_row({"exposure window", "none (never accepted)", "until claims meet + revocation",
                 "until lines intersect + revocation"});
  table.print(std::cout);

  std::cout << "\nExpected shape (paper's five claims): SND fools 0% of fresh nodes with\n"
            << "zero public-key operations and neighborhood-local traffic; both Parno\n"
            << "variants detect only probabilistically and spend network-wide messages\n"
            << "plus per-claim signatures.\n";
  return 0;
}
