// Closed-loop load generator for the validation service.
//
// Bootstraps a seeded topology, then issues F(u, v) queries one at a time
// -- in-process against service::ValidationService (default), or over an
// AF_UNIX socket to a running snd_serve -- timing every query. Ingestion
// runs concurrently with the load: every --event-every queries one random
// topology event (deploy / update / revoke) is applied, so the measured
// read path includes snapshot turnover, not just a frozen world.
//
//   ./serve_qps                                  # 1M queries, 100k nodes
//   ./serve_qps --queries 200000 --nodes 10000 --event-every 50
//   ./serve_qps --mode socket --socket /tmp/snd.sock --queries 100000
//
// After the run (in-process mode) the equivalence gate rebuilds the
// functional topology from scratch and asserts the incrementally-maintained
// snapshot serializes byte-identically (--verify-rebuild, on by default;
// exit 1 on divergence). Results go to BENCH_serve.json: QPS plus
// us_per_query_p50/p99, which ci/bench_trend.py picks up automatically
// ("us_per" keys are trend-gated).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "service/events.h"
#include "service/validation_service.h"
#include "service/wire.h"
#include "util/driver_spec.h"
#include "util/rng.h"
#include "util/runtime_config.h"
#include "util/stats.h"

namespace {

using namespace snd;
using Clock = std::chrono::steady_clock;

double since_ns(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

bool read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// One framed request/response round trip; nullopt payload on I/O failure.
std::optional<util::Bytes> round_trip(int fd, const util::Bytes& payload) {
  const util::Bytes framed = service::wire::frame(payload);
  if (!write_exact(fd, framed.data(), framed.size())) return std::nullopt;
  std::uint8_t header[4];
  if (!read_exact(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t length = (std::uint32_t{header[0]} << 24) |
                               (std::uint32_t{header[1]} << 16) |
                               (std::uint32_t{header[2]} << 8) | header[3];
  util::Bytes reply(length);
  if (!read_exact(fd, reply.data(), reply.size())) return std::nullopt;
  return reply;
}

struct Workload {
  std::vector<std::pair<NodeId, NodeId>> queries;
  std::vector<service::TopologyEvent> events;
};

/// Pre-generated so query selection cost stays out of the timed loop. Half
/// the queries target a live pair drawn from one node's tentative list (the
/// interesting, mostly-accepting path); the rest are uniform pairs.
Workload build_workload(const service::ValidationService& service, std::size_t queries,
                        std::size_t events, const util::Rect& field,
                        std::uint64_t seed) {
  Workload workload;
  workload.queries.reserve(queries);
  util::Rng rng(util::derive_seed(seed, 0xC0FFEE));
  const auto snapshot = service.snapshot();
  std::vector<NodeId> live;
  live.reserve(snapshot->node_count());
  for (const auto& [id, state] : snapshot->nodes()) live.push_back(id);

  for (std::size_t i = 0; i < queries; ++i) {
    const NodeId u = live[rng.uniform_int(static_cast<std::uint64_t>(live.size()))];
    NodeId v = live[rng.uniform_int(static_cast<std::uint64_t>(live.size()))];
    if (rng.chance(0.5)) {
      const service::NodeState* state = snapshot->find(u);
      if (state != nullptr && !state->neighbors.empty()) {
        v = state->neighbors[rng.uniform_int(
            static_cast<std::uint64_t>(state->neighbors.size()))];
      }
    }
    workload.queries.emplace_back(u, v);
  }
  workload.events =
      service::random_events(events, field, std::move(live), util::derive_seed(seed, 1));
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec spec(
      "serve_qps",
      "Closed-loop load generator for the neighbor-validation service:\n"
      "per-query latency percentiles and QPS under concurrent ingestion,\n"
      "with an incremental-vs-rebuild equivalence gate.");
  spec.int_flag("queries", 1'000'000, "N", "validation queries to issue", 1)
      .int_flag("nodes", 100'000, "N", "bootstrap topology size", 1)
      .double_flag("field", 0.0, "W",
                   "field width in meters (0 = derive from --nodes and --degree)")
      .double_flag("degree", 20.0, "D",
                   "target mean tentative degree when deriving the field size "
                   "(the paper's 200-node setting is ~157; service workloads "
                   "default to a realistic sensor-net degree)",
                   0.1)
      .double_flag("radius", 50.0, "R", "radio range R in meters", 1e-9)
      .int_flag("threshold", 2, "T", "security threshold t", 0)
      .int_flag("seed", 1, "S", "workload and topology seed", 0)
      .int_flag("event-every", 100, "N",
                "apply one topology event every N queries (0 = frozen world)", 0)
      .string_flag("mode", "inproc", "MODE", "inproc | socket",
                   [](std::string_view value) -> std::optional<std::string> {
                     if (value == "inproc" || value == "socket") return std::nullopt;
                     return "expected inproc or socket";
                   })
      .string_flag("socket", "", "PATH", "AF_UNIX socket of a running snd_serve "
                                         "(--mode socket)")
      .bool_flag("no-verify-rebuild",
                 "skip the incremental-vs-rebuild equivalence gate");
  const util::cli::Driver cli = spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();

  const auto queries = static_cast<std::size_t>(cli.get_int("queries"));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  const auto event_every = static_cast<std::size_t>(cli.get_int("event-every"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool socket_mode = cli.get("mode") == "socket";
  const bool verify = !cli.get_bool("no-verify-rebuild");
  if (socket_mode && cli.get("socket").empty()) {
    std::cerr << "serve_qps: --mode socket requires --socket PATH\n";
    return 2;
  }

  // Field sized so the mean tentative degree stays constant as --nodes
  // scales: degree D needs one node per pi*R^2/D square meters.
  double width = cli.get_double("field");
  if (width <= 0.0) {
    const double R = cli.get_double("radius");
    const double area_per_node = 3.14159265358979323846 * R * R / cli.get_double("degree");
    width = std::sqrt(static_cast<double>(nodes) * area_per_node);
  }
  const util::Rect field{{0.0, 0.0}, {width, width}};

  service::ServiceConfig config;
  config.radio_range = cli.get_double("radius");
  config.threshold_t = static_cast<std::size_t>(cli.get_int("threshold"));
  service::ValidationService service(config);

  std::printf("== serve_qps: %zu queries against %zu nodes (%.0fx%.0f m, R=%.0f, t=%zu) ==\n",
              queries, nodes, width, width, config.radio_range, config.threshold_t);
  {
    util::Rng rng(seed);
    std::vector<std::pair<NodeId, util::Vec2>> bootstrap;
    bootstrap.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      bootstrap.emplace_back(static_cast<NodeId>(i),
                             util::Vec2{rng.uniform(0.0, width), rng.uniform(0.0, width)});
    }
    const auto start = Clock::now();
    service.seed_topology(bootstrap);
    std::printf("bootstrap: %.2f s, %zu validated edges\n", since_ns(start) / 1e9,
                service.snapshot()->validated_edge_count());
  }

  const std::size_t planned_events =
      event_every == 0 ? 0 : (queries + event_every - 1) / event_every;
  const Workload workload =
      build_workload(service, queries, planned_events, field, seed);

  int socket_fd = -1;
  if (socket_mode) {
    socket_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    const std::string path = cli.get("socket");
    if (path.size() >= sizeof(address.sun_path)) {
      std::cerr << "serve_qps: socket path too long\n";
      return 2;
    }
    std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
    if (socket_fd < 0 ||
        ::connect(socket_fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) < 0) {
      std::perror("serve_qps: connect");
      return 2;
    }
  }

  util::Series latency_ns;
  util::Series ingest_ns;
  std::size_t accepted = 0;
  std::size_t events_sent = 0;
  const auto run_start = Clock::now();
  for (std::size_t i = 0; i < workload.queries.size(); ++i) {
    if (event_every != 0 && i % event_every == 0 && events_sent < workload.events.size()) {
      const service::TopologyEvent& event = workload.events[events_sent++];
      const auto t0 = Clock::now();
      if (socket_mode) {
        if (!round_trip(socket_fd, service::wire::encode_event(event))) {
          std::cerr << "serve_qps: server vanished during ingest\n";
          return 1;
        }
      } else {
        (void)service.apply(event);
      }
      ingest_ns.add(since_ns(t0));
    }
    const auto [u, v] = workload.queries[i];
    const auto t0 = Clock::now();
    bool verdict = false;
    if (socket_mode) {
      const auto reply = round_trip(socket_fd, service::wire::encode_query(u, v));
      if (!reply) {
        std::cerr << "serve_qps: server vanished during load\n";
        return 1;
      }
      const auto decoded = service::wire::decode_query_reply(*reply);
      verdict = decoded && decoded->accepted;
    } else {
      verdict = service.validate(u, v);
    }
    latency_ns.add(since_ns(t0));
    if (verdict) ++accepted;
  }
  const double wall_s = since_ns(run_start) / 1e9;
  if (socket_fd >= 0) ::close(socket_fd);

  const double qps = static_cast<double>(queries) / wall_s;
  const double p50_us = latency_ns.percentile(50.0) / 1e3;
  const double p99_us = latency_ns.percentile(99.0) / 1e3;
  std::printf("%zu queries in %.2f s: %.0f QPS, p50 %.3f us, p99 %.3f us, "
              "%.1f%% accepted\n",
              queries, wall_s, qps, p50_us, p99_us,
              100.0 * static_cast<double>(accepted) / static_cast<double>(queries));
  if (ingest_ns.count() > 0) {
    std::printf("%zu events ingested, p50 %.1f us, p99 %.1f us\n", ingest_ns.count(),
                ingest_ns.percentile(50.0) / 1e3, ingest_ns.percentile(99.0) / 1e3);
  }

  bool equivalent = true;
  if (verify && !socket_mode) {
    const auto start = Clock::now();
    equivalent =
        service.snapshot()->canonical_json() == service.rebuild()->canonical_json();
    std::printf("equivalence gate: incremental %s rebuild (%.2f s, epoch %llu)\n",
                equivalent ? "==" : "!=", since_ns(start) / 1e9,
                static_cast<unsigned long long>(service.snapshot()->epoch()));
    if (!equivalent) {
      std::fprintf(stderr,
                   "serve_qps: FAIL: incremental snapshot diverged from rebuild\n");
    }
  }

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"name\": \"serve_qps\",\n"
                "  \"mode\": \"%s\",\n"
                "  \"queries\": %zu,\n"
                "  \"nodes\": %zu,\n"
                "  \"events_ingested\": %zu,\n"
                "  \"wall_s\": %.3f,\n"
                "  \"qps\": %.1f,\n"
                "  \"query\": {\n"
                "    \"us_per_query_p50\": %.4f,\n"
                "    \"us_per_query_p99\": %.4f,\n"
                "    \"us_per_query_mean\": %.4f\n"
                "  },\n"
                "  \"ingest_us_p99\": %.2f,\n"
                "  \"accepted_fraction\": %.4f,\n"
                "  \"equivalence_gate\": %s\n"
                "}\n",
                socket_mode ? "socket" : "inproc", queries, nodes,
                static_cast<std::size_t>(ingest_ns.count()), wall_s, qps, p50_us, p99_us,
                latency_ns.mean() / 1e3,
                ingest_ns.count() > 0 ? ingest_ns.percentile(99.0) / 1e3 : 0.0,
                static_cast<double>(accepted) / static_cast<double>(queries),
                equivalent ? "true" : "false");
  const std::string path = bench_artifact_path("BENCH_serve.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json, 1, std::strlen(json), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return equivalent ? 0 : 1;
}
