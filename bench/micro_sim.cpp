// Microbenchmarks of the simulation substrate: event scheduling throughput,
// broadcast fan-out, and the end-to-end cost of a full protocol run at
// several network sizes (the scaling the paper-scale experiments rely on).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/deployment_driver.h"
#include "sim/scheduler.h"

namespace {

using namespace snd;

void BM_SchedulerPushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
      scheduler.schedule_at(sim::Time::microseconds(static_cast<std::int64_t>((i * 7) % n)),
                            [] {});
    }
    scheduler.run();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerPushPop)->Arg(1000)->Arg(100000);

void BM_BroadcastFanout(benchmark::State& state) {
  sim::Network network(std::make_unique<sim::UnitDiskModel>(1000.0), sim::ChannelConfig{}, 1);
  const auto receivers = static_cast<std::size_t>(state.range(0));
  const sim::DeviceId sender = network.add_device(0, {0, 0});
  for (std::size_t i = 0; i < receivers; ++i) {
    const sim::DeviceId d = network.add_device(static_cast<NodeId>(i + 1),
                                               {static_cast<double>(i % 100), 1.0});
    network.set_receiver(d, [](const sim::Packet&) {});
  }
  for (auto _ : state) {
    network.transmit(sender, sim::Packet{.src = 0, .dst = kNoNode, .type = 1, .payload = {}},
                     "bench");
    network.scheduler().run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(100)->Arg(500);

void BM_FullProtocolRun(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::DeploymentConfig config;
    // Fixed density (one node / 100 m^2): the field grows with n.
    const double side = std::sqrt(static_cast<double>(nodes) * 100.0);
    config.field = {{0.0, 0.0}, {side, side}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 5;
    config.seed = seed++;
    core::SndDeployment deployment(config);
    deployment.deploy_round(nodes);
    deployment.run();
    benchmark::DoNotOptimize(deployment.functional_graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullProtocolRun)->Unit(benchmark::kMillisecond)->Arg(100)->Arg(400)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
