// Microbenchmarks of the simulation substrate: event scheduling throughput,
// broadcast fan-out, broadcast receiver *resolution* (spatial grid vs the
// historical linear scan), and the end-to-end cost of a full protocol run at
// several network sizes (the scaling the paper-scale experiments rely on).
//
// Besides the google-benchmark suite, main() always measures the grid/linear
// broadcast-resolution comparison on a 2000-node field and writes it as
// BENCH_micro_sim.json into $SND_BENCH_DIR (default: the working directory),
// the per-PR perf artifact CI uploads.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/deployment_driver.h"
#include "obs/sink.h"
#include "util/runtime_config.h"
#include "util/simd.h"
#include "obs/tracer.h"
#include "sim/deployment.h"
#include "sim/scheduler.h"

namespace {

using namespace snd;

void BM_SchedulerPushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
      scheduler.schedule_at(sim::Time::microseconds(static_cast<std::int64_t>((i * 7) % n)),
                            [] {});
    }
    scheduler.run();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerPushPop)->Arg(1000)->Arg(100000);

/// Same push/pop loop but with a delivery-sized capture (~72 bytes): the
/// shape that used to heap-allocate on every event under std::function and
/// now stays in EventAction's 88-byte inline buffer.
void BM_SchedulerPushPopDeliverySizedCapture(benchmark::State& state) {
  struct DeliveryCapture {  // stand-in for the Network delivery closure
    std::array<std::uint8_t, 56> packet_fields;
    void* network;
    std::uint64_t device;
  };
  const DeliveryCapture capture{{}, nullptr, 0};
  for (auto _ : state) {
    sim::Scheduler scheduler;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
      scheduler.schedule_at(sim::Time::microseconds(static_cast<std::int64_t>((i * 7) % n)),
                            [capture] { benchmark::DoNotOptimize(&capture); });
    }
    scheduler.run();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerPushPopDeliverySizedCapture)->Arg(100000);

void BM_BroadcastFanout(benchmark::State& state) {
  sim::Network network(std::make_unique<sim::UnitDiskModel>(1000.0), sim::ChannelConfig{}, 1);
  const auto receivers = static_cast<std::size_t>(state.range(0));
  const sim::DeviceId sender = network.add_device(0, {0, 0});
  for (std::size_t i = 0; i < receivers; ++i) {
    const sim::DeviceId d = network.add_device(static_cast<NodeId>(i + 1),
                                               {static_cast<double>(i % 100), 1.0});
    network.set_receiver(d, [](const sim::Packet&) {});
  }
  for (auto _ : state) {
    network.transmit(sender, sim::Packet{.src = 0, .dst = kNoNode, .type = 1, .payload = {}},
                     obs::Phase::kOther);
    network.scheduler().run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(100)->Arg(500);

/// A paper-scale field at fixed density (one node / 100 m^2, range 25 m:
/// ~20 neighbors each) where every device broadcasts once. Resolution cost
/// is what differs between the two modes: the linear scan walks all n
/// devices per transmission, the grid only the 3x3 cell block around the
/// sender.
sim::Network make_resolution_field(std::size_t nodes, bool use_index,
                                   obs::TraceLevel level = obs::TraceLevel::kOff,
                                   std::shared_ptr<obs::Sink> sink = nullptr) {
  auto network = sim::Network(std::make_unique<sim::UnitDiskModel>(25.0),
                              sim::ChannelConfig{}, 1);
  network.set_spatial_index_enabled(use_index);
  network.tracer() = obs::Tracer(level, std::move(sink));
  const double side = std::sqrt(static_cast<double>(nodes) * 100.0);
  util::Rng rng(7);
  NodeId identity = 1;
  for (const util::Vec2 p : sim::deploy_uniform(nodes, {{0.0, 0.0}, {side, side}}, rng)) {
    const sim::DeviceId d = network.add_device(identity++, p);
    network.set_receiver(d, [](const sim::Packet&) {});
  }
  return network;
}

/// Puts one broadcast per device on the air: this is the receiver
/// *resolution* phase -- the linear scan vs the 3x3 grid query -- plus
/// delivery-event scheduling. The queue is left full; callers drain it.
void broadcast_all(sim::Network& network) {
  for (sim::DeviceId d = 0; d < network.device_count(); ++d) {
    network.transmit(d, sim::Packet{.src = network.device(d).identity,
                                    .dst = kNoNode,
                                    .type = 1,
                                    .payload = {}},
                     obs::Phase::kOther);
  }
}

/// Third arg is the trace mode: 0 = kOff (runtime-disabled fast path),
/// 1 = kCounters, 2 = kEvents into a NullSink (everything emitted, nothing
/// written). Modes 1-2 quantify the enabled-tracing tax; the grid/linear
/// comparison runs at 0 so it stays comparable across PRs.
void BM_BroadcastResolution(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool use_index = state.range(1) != 0;
  const auto trace_mode = state.range(2);
  const obs::TraceLevel level = trace_mode == 0   ? obs::TraceLevel::kOff
                                : trace_mode == 1 ? obs::TraceLevel::kCounters
                                                  : obs::TraceLevel::kEvents;
  std::shared_ptr<obs::Sink> sink =
      trace_mode == 2 ? std::make_shared<obs::NullSink>() : nullptr;
  sim::Network network = make_resolution_field(nodes, use_index, level, std::move(sink));
  for (auto _ : state) {
    broadcast_all(network);
    state.PauseTiming();  // delivery processing is identical in both modes
    network.scheduler().run();
    benchmark::DoNotOptimize(network.metrics().deliveries());
    state.ResumeTiming();
  }
  const std::string mode = trace_mode == 0 ? "off" : trace_mode == 1 ? "counters" : "events+null";
  state.SetLabel((use_index ? "grid/trace=" : "linear/trace=") + mode);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_BroadcastResolution)
    ->Unit(benchmark::kMillisecond)
    ->Args({2000, 0, 0})
    ->Args({2000, 1, 0})
    ->Args({2000, 1, 1})
    ->Args({2000, 1, 2});

void BM_FullProtocolRun(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::DeploymentConfig config;
    // Fixed density (one node / 100 m^2): the field grows with n.
    const double side = std::sqrt(static_cast<double>(nodes) * 100.0);
    config.field = {{0.0, 0.0}, {side, side}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 5;
    config.seed = seed++;
    core::SndDeployment deployment(config);
    deployment.deploy_round(nodes);
    deployment.run();
    benchmark::DoNotOptimize(deployment.functional_graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullProtocolRun)->Unit(benchmark::kMillisecond)->Arg(100)->Arg(400)->Arg(1000);

struct RoundTimings {
  double resolution_s = 0.0;  // transmit loops only (receiver resolution)
  double total_s = 0.0;       // including delivery processing
};

/// Wall-clock of `rounds` broadcast rounds on a fresh field, with the
/// resolution phase (transmit loop) timed separately from the delivery
/// drain, which costs the same in both modes.
RoundTimings measure(std::size_t nodes, bool use_index, int rounds,
                     obs::TraceLevel level = obs::TraceLevel::kOff,
                     std::shared_ptr<obs::Sink> sink = nullptr) {
  sim::Network network = make_resolution_field(nodes, use_index, level, std::move(sink));
  broadcast_all(network);  // warm-up: faults pages, fills the grid map
  network.scheduler().run();
  RoundTimings timings;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) {
    const auto round_begin = std::chrono::steady_clock::now();
    broadcast_all(network);
    const auto resolved = std::chrono::steady_clock::now();
    network.scheduler().run();
    timings.resolution_s += std::chrono::duration<double>(resolved - round_begin).count();
  }
  timings.total_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  return timings;
}

/// The before/after artifact: broadcast receiver resolution on a 2000-node
/// field, linear scan vs grid index, written as BENCH_micro_sim.json.
int write_resolution_artifact() {
  constexpr std::size_t kNodes = 2000;
  constexpr int kRounds = 10;
  const RoundTimings linear = measure(kNodes, /*use_index=*/false, kRounds);
  const RoundTimings grid = measure(kNodes, /*use_index=*/true, kRounds);

  // Strip-filter series: the same field with the vectorized candidate
  // classifier on (SND_SIMD default) vs the scalar per-candidate filter
  // (the seed path), in both resolution modes. The flag is latched at
  // Network construction, so flip it around measure()'s field setup. The
  // grid already prunes to a 3x3 block, so the strip mostly helps the
  // full-scan shape, where nearly every candidate is a definite Out.
  util::set_simd_enabled(false);
  const RoundTimings strip_off_grid = measure(kNodes, /*use_index=*/true, kRounds);
  const RoundTimings strip_off_linear = measure(kNodes, /*use_index=*/false, kRounds);
  util::set_simd_enabled(true);
  const RoundTimings strip_on_grid = measure(kNodes, /*use_index=*/true, kRounds);
  const RoundTimings strip_on_linear = measure(kNodes, /*use_index=*/false, kRounds);
  const double strip_grid_speedup = strip_on_grid.resolution_s > 0.0
                                        ? strip_off_grid.resolution_s / strip_on_grid.resolution_s
                                        : 0.0;
  const double strip_linear_speedup =
      strip_on_linear.resolution_s > 0.0
          ? strip_off_linear.resolution_s / strip_on_linear.resolution_s
          : 0.0;
  // Trace-overhead sweep on the grid configuration: the runtime-disabled
  // fast path (kOff) is the baseline; kCounters adds the typed-array bumps,
  // kEvents+NullSink adds ring writes and the sink virtual call with no
  // I/O. Whole rounds are timed (deliveries included -- that is where
  // events dominate).
  const RoundTimings trace_off = measure(kNodes, /*use_index=*/true, kRounds);
  const RoundTimings trace_counters =
      measure(kNodes, /*use_index=*/true, kRounds, obs::TraceLevel::kCounters);
  const RoundTimings trace_events = measure(kNodes, /*use_index=*/true, kRounds,
                                            obs::TraceLevel::kEvents,
                                            std::make_shared<obs::NullSink>());
  const double resolution_speedup =
      grid.resolution_s > 0.0 ? linear.resolution_s / grid.resolution_s : 0.0;
  const double round_speedup = grid.total_s > 0.0 ? linear.total_s / grid.total_s : 0.0;
  const double per_tx = static_cast<double>(kRounds) * static_cast<double>(kNodes);
  const double counters_overhead =
      trace_off.total_s > 0.0 ? trace_counters.total_s / trace_off.total_s : 0.0;
  const double events_null_overhead =
      trace_off.total_s > 0.0 ? trace_events.total_s / trace_off.total_s : 0.0;

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"name\": \"micro_sim_broadcast_resolution\",\n"
                "  \"nodes\": %zu,\n"
                "  \"broadcasts\": %.0f,\n"
                "  \"linear_us_per_tx\": %.3f,\n"
                "  \"grid_us_per_tx\": %.3f,\n"
                "  \"resolution_speedup\": %.2f,\n"
                "  \"round_speedup\": %.2f,\n"
                "  \"trace\": {\n"
                "    \"off_round_us_per_tx\": %.3f,\n"
                "    \"counters_round_us_per_tx\": %.3f,\n"
                "    \"events_null_round_us_per_tx\": %.3f,\n"
                "    \"counters_overhead\": %.3f,\n"
                "    \"events_null_overhead\": %.3f\n"
                "  },\n"
                "  \"strip_filter\": {\n"
                "    \"grid_scalar_us_per_tx\": %.3f,\n"
                "    \"grid_strip_us_per_tx\": %.3f,\n"
                "    \"grid_resolution_speedup\": %.2f,\n"
                "    \"linear_scalar_us_per_tx\": %.3f,\n"
                "    \"linear_strip_us_per_tx\": %.3f,\n"
                "    \"linear_resolution_speedup\": %.2f\n"
                "  }\n"
                "}\n",
                kNodes, per_tx, linear.resolution_s / per_tx * 1e6,
                grid.resolution_s / per_tx * 1e6, resolution_speedup, round_speedup,
                trace_off.total_s / per_tx * 1e6, trace_counters.total_s / per_tx * 1e6,
                trace_events.total_s / per_tx * 1e6, counters_overhead, events_null_overhead,
                strip_off_grid.resolution_s / per_tx * 1e6,
                strip_on_grid.resolution_s / per_tx * 1e6, strip_grid_speedup,
                strip_off_linear.resolution_s / per_tx * 1e6,
                strip_on_linear.resolution_s / per_tx * 1e6, strip_linear_speedup);

  const std::string path = bench_artifact_path("BENCH_micro_sim.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json, 1, std::strlen(json), f);
    std::fclose(f);
  }
  std::printf("broadcast resolution, %zu nodes: linear %.2f us/tx, grid %.2f us/tx, "
              "resolution speedup %.2fx (full round incl. deliveries: %.2fx) -> %s\n",
              kNodes, linear.resolution_s / per_tx * 1e6, grid.resolution_s / per_tx * 1e6,
              resolution_speedup, round_speedup, path.c_str());
  std::printf("trace overhead per round (grid): off %.2f us/tx, counters %.2fx, "
              "events+nullsink %.2fx\n",
              trace_off.total_s / per_tx * 1e6, counters_overhead, events_null_overhead);
  std::printf("strip filter: grid %.2f -> %.2f us/tx (%.2fx), "
              "linear %.2f -> %.2f us/tx (%.2fx)\n",
              strip_off_grid.resolution_s / per_tx * 1e6,
              strip_on_grid.resolution_s / per_tx * 1e6, strip_grid_speedup,
              strip_off_linear.resolution_s / per_tx * 1e6,
              strip_on_linear.resolution_s / per_tx * 1e6, strip_linear_speedup);
  return resolution_speedup >= 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_resolution_artifact();
}
