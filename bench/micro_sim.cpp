// Microbenchmarks of the simulation substrate: event scheduling throughput,
// broadcast fan-out, broadcast receiver *resolution* (spatial grid vs the
// historical linear scan), and the end-to-end cost of a full protocol run at
// several network sizes (the scaling the paper-scale experiments rely on).
//
// Besides the google-benchmark suite, main() always measures the grid/linear
// broadcast-resolution comparison on a 2000-node field and writes it as
// BENCH_micro_sim.json into $SND_BENCH_DIR (default: the working directory),
// the per-PR perf artifact CI uploads.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/deployment_driver.h"
#include "sim/deployment.h"
#include "sim/scheduler.h"

namespace {

using namespace snd;

void BM_SchedulerPushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
      scheduler.schedule_at(sim::Time::microseconds(static_cast<std::int64_t>((i * 7) % n)),
                            [] {});
    }
    scheduler.run();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerPushPop)->Arg(1000)->Arg(100000);

void BM_BroadcastFanout(benchmark::State& state) {
  sim::Network network(std::make_unique<sim::UnitDiskModel>(1000.0), sim::ChannelConfig{}, 1);
  const auto receivers = static_cast<std::size_t>(state.range(0));
  const sim::DeviceId sender = network.add_device(0, {0, 0});
  for (std::size_t i = 0; i < receivers; ++i) {
    const sim::DeviceId d = network.add_device(static_cast<NodeId>(i + 1),
                                               {static_cast<double>(i % 100), 1.0});
    network.set_receiver(d, [](const sim::Packet&) {});
  }
  for (auto _ : state) {
    network.transmit(sender, sim::Packet{.src = 0, .dst = kNoNode, .type = 1, .payload = {}},
                     "bench");
    network.scheduler().run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(100)->Arg(500);

/// A paper-scale field at fixed density (one node / 100 m^2, range 25 m:
/// ~20 neighbors each) where every device broadcasts once. Resolution cost
/// is what differs between the two modes: the linear scan walks all n
/// devices per transmission, the grid only the 3x3 cell block around the
/// sender.
sim::Network make_resolution_field(std::size_t nodes, bool use_index) {
  auto network = sim::Network(std::make_unique<sim::UnitDiskModel>(25.0),
                              sim::ChannelConfig{}, 1);
  network.set_spatial_index_enabled(use_index);
  const double side = std::sqrt(static_cast<double>(nodes) * 100.0);
  util::Rng rng(7);
  NodeId identity = 1;
  for (const util::Vec2 p : sim::deploy_uniform(nodes, {{0.0, 0.0}, {side, side}}, rng)) {
    const sim::DeviceId d = network.add_device(identity++, p);
    network.set_receiver(d, [](const sim::Packet&) {});
  }
  return network;
}

/// Puts one broadcast per device on the air: this is the receiver
/// *resolution* phase -- the linear scan vs the 3x3 grid query -- plus
/// delivery-event scheduling. The queue is left full; callers drain it.
void broadcast_all(sim::Network& network) {
  for (sim::DeviceId d = 0; d < network.device_count(); ++d) {
    network.transmit(d, sim::Packet{.src = network.device(d).identity,
                                    .dst = kNoNode,
                                    .type = 1,
                                    .payload = {}},
                     "bench");
  }
}

void BM_BroadcastResolution(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool use_index = state.range(1) != 0;
  sim::Network network = make_resolution_field(nodes, use_index);
  for (auto _ : state) {
    broadcast_all(network);
    state.PauseTiming();  // delivery processing is identical in both modes
    network.scheduler().run();
    benchmark::DoNotOptimize(network.metrics().deliveries());
    state.ResumeTiming();
  }
  state.SetLabel(use_index ? "grid" : "linear");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_BroadcastResolution)
    ->Unit(benchmark::kMillisecond)
    ->Args({2000, 0})
    ->Args({2000, 1});

void BM_FullProtocolRun(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::DeploymentConfig config;
    // Fixed density (one node / 100 m^2): the field grows with n.
    const double side = std::sqrt(static_cast<double>(nodes) * 100.0);
    config.field = {{0.0, 0.0}, {side, side}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 5;
    config.seed = seed++;
    core::SndDeployment deployment(config);
    deployment.deploy_round(nodes);
    deployment.run();
    benchmark::DoNotOptimize(deployment.functional_graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullProtocolRun)->Unit(benchmark::kMillisecond)->Arg(100)->Arg(400)->Arg(1000);

struct RoundTimings {
  double resolution_s = 0.0;  // transmit loops only (receiver resolution)
  double total_s = 0.0;       // including delivery processing
};

/// Wall-clock of `rounds` broadcast rounds on a fresh field, with the
/// resolution phase (transmit loop) timed separately from the delivery
/// drain, which costs the same in both modes.
RoundTimings measure(std::size_t nodes, bool use_index, int rounds) {
  sim::Network network = make_resolution_field(nodes, use_index);
  broadcast_all(network);  // warm-up: faults pages, fills the grid map
  network.scheduler().run();
  RoundTimings timings;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) {
    const auto round_begin = std::chrono::steady_clock::now();
    broadcast_all(network);
    const auto resolved = std::chrono::steady_clock::now();
    network.scheduler().run();
    timings.resolution_s += std::chrono::duration<double>(resolved - round_begin).count();
  }
  timings.total_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  return timings;
}

/// The before/after artifact: broadcast receiver resolution on a 2000-node
/// field, linear scan vs grid index, written as BENCH_micro_sim.json.
int write_resolution_artifact() {
  constexpr std::size_t kNodes = 2000;
  constexpr int kRounds = 10;
  const RoundTimings linear = measure(kNodes, /*use_index=*/false, kRounds);
  const RoundTimings grid = measure(kNodes, /*use_index=*/true, kRounds);
  const double resolution_speedup =
      grid.resolution_s > 0.0 ? linear.resolution_s / grid.resolution_s : 0.0;
  const double round_speedup = grid.total_s > 0.0 ? linear.total_s / grid.total_s : 0.0;
  const double per_tx = static_cast<double>(kRounds) * static_cast<double>(kNodes);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"name\": \"micro_sim_broadcast_resolution\",\n"
                "  \"nodes\": %zu,\n"
                "  \"broadcasts\": %.0f,\n"
                "  \"linear_us_per_tx\": %.3f,\n"
                "  \"grid_us_per_tx\": %.3f,\n"
                "  \"resolution_speedup\": %.2f,\n"
                "  \"round_speedup\": %.2f\n"
                "}\n",
                kNodes, per_tx, linear.resolution_s / per_tx * 1e6,
                grid.resolution_s / per_tx * 1e6, resolution_speedup, round_speedup);

  const char* dir = std::getenv("SND_BENCH_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_micro_sim.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json, 1, std::strlen(json), f);
    std::fclose(f);
  }
  std::printf("broadcast resolution, %zu nodes: linear %.2f us/tx, grid %.2f us/tx, "
              "resolution speedup %.2fx (full round incl. deliveries: %.2fx) -> %s\n",
              kNodes, linear.resolution_s / per_tx * 1e6, grid.resolution_s / per_tx * 1e6,
              resolution_speedup, round_speedup, path.c_str());
  return resolution_speedup >= 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_resolution_artifact();
}
