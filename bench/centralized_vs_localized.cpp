#include <cmath>
// The paper's Section 4 motivation, quantified: a trusted base station
// could collect the whole tentative topology and decide every neighbor
// relation centrally -- "the potential of generating the best solution" --
// but multi-hop collection over unreliable links makes it expensive. This
// bench pits the centralized comparator against the localized protocol at
// growing network sizes and reports the scaling of per-node communication.
#include <iostream>

#include "baseline/centralized.h"
#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/table.h"

namespace {

using namespace snd;

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "centralized_vs_localized",
      "Centralized (base station) vs localized validation: communication\n"
      "bytes per node as the deployment grows.");
  driver_spec.int_flag("seed", 5, "S", "deployment seed");
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "== Centralized (base station) vs localized validation ==\n"
            << "fixed density 1 node / 100 m^2, R = 50 m, t = 8; the field grows with n\n\n";

  util::Table table({"nodes", "localized bytes/node", "centralized bytes/node",
                     "localized max node load", "centralized max node load",
                     "centralized unreachable", "agreement"});

  for (const std::size_t n : {100u, 200u, 400u, 800u}) {
    core::DeploymentConfig config;
    const double side = std::sqrt(static_cast<double>(n) * 100.0);
    config.field = {{0.0, 0.0}, {side, side}};
    config.radio_range = 50.0;
    config.protocol.threshold_t = 8;
    config.seed = seed;

    core::SndDeployment deployment(config);
    const sim::DeviceId base_station =
        deployment.network().add_device(0, {side / 2.0, side / 2.0});
    deployment.deploy_round(n);
    deployment.run();

    const auto localized_total = deployment.network().metrics().total();
    const double localized_per_node =
        static_cast<double>(localized_total.bytes) / static_cast<double>(n);

    const baseline::CentralizedResult central =
        baseline::run_centralized_validation(deployment, base_station,
                                             config.protocol.threshold_t);
    const double central_per_node =
        static_cast<double>(central.total_bytes()) / static_cast<double>(n);

    // Decision agreement: fraction of the localized functional edges the
    // base station also accepts (they use the same rule; differences come
    // from routing losses).
    const topology::Digraph local_graph = deployment.functional_graph();
    const double agreement = topology::edge_recall(central.functional, local_graph);

    table.add_row({util::Table::integer(static_cast<long long>(n)),
                   util::Table::num(localized_per_node, 0),
                   util::Table::num(central_per_node, 0),
                   util::Table::integer(
                       static_cast<long long>(deployment.network().max_tx_bytes())),
                   util::Table::integer(static_cast<long long>(central.max_relayed_bytes)),
                   util::Table::integer(static_cast<long long>(central.unreachable_nodes)),
                   util::Table::percent(agreement, 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: localized per-node cost and max load are flat in n\n"
            << "(single-hop, evenly spread); centralized per-node cost grows ~sqrt(n)\n"
            << "and its max node load grows ~n -- the base station's neighbors relay\n"
            << "everyone's reports, the hotspot that motivates the localized design.\n";
  return 0;
}
