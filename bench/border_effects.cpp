// Methodology check: the paper measures Figure 3 at the node "located at
// the center of this field" because its analytical model assumes an
// infinite plane. This bench quantifies the border effect the choice
// avoids: nodes near the field edge see only disk∩field neighborhoods, so
// their common-neighbor counts -- and therefore their validated fraction at
// a given threshold -- fall below the model. The border-corrected expected
// degree (analysis::expected_neighbors_at) tracks the measured degrees.
#include <iostream>

#include "analysis/model.h"
#include "core/deployment_driver.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Probe {
  const char* label;
  util::Vec2 position;
};

struct Outcome {
  double degree = 0.0;
  double accuracy = 0.0;
};

Outcome run_probe(util::Vec2 position, std::size_t threshold, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {200.0, 200.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = threshold;
  config.seed = seed;

  core::SndDeployment deployment(config);
  const NodeId probe = deployment.deploy_node_at(position);
  deployment.deploy_round(800 - 1);  // density 0.02 nodes/m^2, as in Fig. 3
  deployment.run();

  const core::SndNode* agent = deployment.agent(probe);
  Outcome outcome;
  std::size_t actual = 0;
  std::size_t validated = 0;
  for (const sim::Device& d : deployment.network().devices()) {
    if (d.identity == probe) continue;
    if (!deployment.network().link(agent->device(), d.id)) continue;
    ++actual;
    if (topology::contains(agent->functional_neighbors(), d.identity)) ++validated;
  }
  outcome.degree = static_cast<double>(actual);
  outcome.accuracy =
      actual == 0 ? 0.0 : static_cast<double>(validated) / static_cast<double>(actual);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "border_effects",
      "Field-border effects: validation accuracy of edge and corner nodes\n"
      "versus interior nodes.");
  driver_spec.int_flag("seeds", 6, "N", "independent deployment seeds", 1)
      .int_flag("threshold", 60, "T", "security threshold t", 0);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));
  const auto t = static_cast<std::size_t>(cli.get_int("threshold"));

  const analysis::FieldModel model{0.02, 50.0};

  std::cout << "== Border effects: why the paper measures the center node ==\n"
            << "800 nodes, 200x200 m (density 0.02/m^2), R = 50 m, t = " << t << ", "
            << seeds << " seeds\n\n";

  const Probe probes[] = {
      {"center (100,100)", {100.0, 100.0}},
      {"mid-edge (0,100)", {0.0, 100.0}},
      {"corner (0,0)", {0.0, 0.0}},
      {"near-edge (25,100)", {25.0, 100.0}},
  };

  util::Table table({"probe position", "predicted degree (border model)", "measured degree",
                     "validated fraction", "infinite-plane model"});
  for (const Probe& probe : probes) {
    util::RunningStats degree, accuracy;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Outcome o = run_probe(probe.position, t, seed * 61);
      degree.add(o.degree);
      accuracy.add(o.accuracy);
    }
    const double predicted = analysis::expected_neighbors_at(
        model, {probe.position.x, probe.position.y, 200.0, 200.0});
    table.add_row({probe.label, util::Table::num(predicted, 1),
                   util::Table::num(degree.mean(), 1), util::Table::num(accuracy.mean(), 3),
                   util::Table::num(model.accuracy(t), 3)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the border-corrected degree prediction matches the\n"
            << "measurement everywhere; at the center the validated fraction matches\n"
            << "the paper's infinite-plane model, while edge/corner probes fall short\n"
            << "of it -- the bias the paper's center-node methodology avoids.\n";
  return 0;
}
