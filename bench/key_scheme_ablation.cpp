// Ablation over the pairwise key predistribution substrate (paper §2
// assumes "every two nodes in the field can establish a pairwise key" via
// [3][4][6][7][13]). The deterministic schemes (KDC, Blundo polynomials)
// satisfy the assumption exactly; the probabilistic Eschenauer-Gligor pool
// denies some pairs a key, which silently removes their authenticated
// exchanges -- this bench measures what that costs the discovery accuracy,
// alongside each scheme's per-node storage and capture resilience.
#include <iostream>
#include <memory>

#include "core/deployment_driver.h"
#include "crypto/blundo.h"
#include "crypto/eg_pool.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct SchemeCase {
  const char* label;
  std::function<std::shared_ptr<crypto::KeyPredistribution>(std::uint64_t)> make;
  const char* resilience;
};

struct Accuracy {
  /// Directed-edge recall over the whole field (one deployment round).
  double same_round = 0.0;
  /// Fraction of physically adjacent (new, old) pairs that ended up
  /// MUTUALLY functional after a second round. Same-round validation works
  /// from overheard (self-authenticating) record broadcasts, so keyless
  /// pairs only surface here: the old node learns a new neighbor solely
  /// through the pairwise-authenticated relation commitment.
  double cross_round_mutual = 0.0;
};

Accuracy run_accuracy(const std::shared_ptr<crypto::KeyPredistribution>& scheme,
                      std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {150.0, 150.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 5;
  config.seed = seed;
  core::SndDeployment deployment(config);
  deployment.set_key_scheme(scheme);
  const std::vector<NodeId> old_nodes = deployment.deploy_round(150);
  deployment.run();

  Accuracy accuracy;
  accuracy.same_round = topology::edge_recall(deployment.actual_benign_graph(),
                                              deployment.functional_graph());

  const std::vector<NodeId> new_nodes = deployment.deploy_round(50);
  deployment.run();

  std::size_t adjacent_pairs = 0;
  std::size_t mutual = 0;
  const topology::Digraph functional = deployment.functional_graph();
  for (NodeId fresh : new_nodes) {
    const core::SndNode* fresh_agent = deployment.agent(fresh);
    for (NodeId old_id : old_nodes) {
      const core::SndNode* old_agent = deployment.agent(old_id);
      if (!deployment.network().link(fresh_agent->device(), old_agent->device())) continue;
      ++adjacent_pairs;
      if (functional.has_edge(fresh, old_id) && functional.has_edge(old_id, fresh)) ++mutual;
    }
  }
  accuracy.cross_round_mutual =
      adjacent_pairs == 0 ? 1.0
                          : static_cast<double>(mutual) / static_cast<double>(adjacent_pairs);
  return accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "key_scheme_ablation",
      "Key-scheme ablation: master-key vs pairwise vs location-bound keys\n"
      "under node compromise.");
  driver_spec.int_flag("seeds", 4, "N", "independent deployment seeds", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));

  std::cout << "== Key predistribution ablation ==\n"
            << "200 nodes, 150x150 m, R = 50 m, t = 5, " << seeds << " seeds\n\n";

  const SchemeCase cases[] = {
      {"KDC-derived (paper's assumption)",
       [](std::uint64_t s) -> std::shared_ptr<crypto::KeyPredistribution> {
         return crypto::KdcScheme::from_seed(s);
       },
       "none (single master secret)"},
      {"Blundo polynomial, lambda=10",
       [](std::uint64_t s) -> std::shared_ptr<crypto::KeyPredistribution> {
         return std::make_shared<crypto::BlundoScheme>(s, 10);
       },
       "information-theoretic <= 10 captures"},
      {"Blundo polynomial, lambda=30",
       [](std::uint64_t s) -> std::shared_ptr<crypto::KeyPredistribution> {
         return std::make_shared<crypto::BlundoScheme>(s, 30);
       },
       "information-theoretic <= 30 captures"},
      {"EG pool P=2000 m=60 (q=1)",
       [](std::uint64_t s) -> std::shared_ptr<crypto::KeyPredistribution> {
         return std::make_shared<crypto::EschenauerGligorScheme>(s, 2000, 60, 1);
       },
       "probabilistic (key reuse)"},
      {"EG pool P=2000 m=60 (q=2 composite)",
       [](std::uint64_t s) -> std::shared_ptr<crypto::KeyPredistribution> {
         return std::make_shared<crypto::EschenauerGligorScheme>(s, 2000, 60, 2);
       },
       "stronger small-capture resilience"},
  };

  util::Table table({"scheme", "pairwise connectivity", "same-round accuracy",
                     "new<->old mutual", "storage/node (B)", "capture resilience"});
  for (const SchemeCase& scheme_case : cases) {
    util::RunningStats same_round, cross_round;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Accuracy a = run_accuracy(scheme_case.make(seed * 41), seed * 41);
      same_round.add(a.same_round);
      cross_round.add(a.cross_round_mutual);
    }
    const auto probe = scheme_case.make(1);
    std::string connectivity = "1.000 (deterministic)";
    if (const auto* eg = dynamic_cast<const crypto::EschenauerGligorScheme*>(probe.get())) {
      connectivity = util::Table::num(eg->analytical_share_probability(), 3);
    }
    table.add_row({scheme_case.label, connectivity, util::Table::num(same_round.mean(), 3),
                   util::Table::num(cross_round.mean(), 3),
                   util::Table::integer(static_cast<long long>(probe->storage_bytes_per_node())),
                   scheme_case.resilience});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: SAME-ROUND accuracy is key-scheme independent (records\n"
            << "are overheard as self-authenticating broadcasts), so every row reads\n"
            << "~1.0 there. The scheme bites in incremental deployment: an old node\n"
            << "only learns a new neighbor through the pairwise-authenticated relation\n"
            << "commitment, so EG-style pools lose roughly (1 - connectivity) of the\n"
            << "new<->old mutual relations, more for q=2 at equal ring size.\n";
  return 0;
}
