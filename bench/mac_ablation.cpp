// Ablation of two design choices DESIGN.md calls out:
//   1. per-message TX jitter (MAC backoff in miniature) -- every node in a
//      deployment round hits its protocol window edges simultaneously, so
//      without jitter a contended channel loses most of the exchange;
//   2. the idealized full-duplex channel vs a half-duplex MAC where a
//      transmitting node cannot hear.
// Reported: discovery accuracy and total traffic under the four
// combinations, plus energy drain per node when battery accounting is on.
#include <iostream>

#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Outcome {
  double accuracy = 0.0;
  double messages_per_node = 0.0;
  double mean_energy_spent_j = 0.0;
};

Outcome run(bool half_duplex, bool jitter, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {150.0, 150.0}};
  config.radio_range = 50.0;
  config.half_duplex = half_duplex;
  config.energy.enabled = true;
  config.energy.initial_j = 50.0;
  config.protocol.threshold_t = 5;
  config.protocol.hello_repeats = 3;
  config.protocol.tx_jitter =
      jitter ? sim::Time::milliseconds(60) : sim::Time::zero();
  config.seed = seed;

  const std::size_t n = 200;
  core::SndDeployment deployment(config);
  deployment.deploy_round(n);
  deployment.run();

  Outcome outcome;
  outcome.accuracy =
      topology::edge_recall(deployment.actual_benign_graph(), deployment.functional_graph());
  outcome.messages_per_node =
      static_cast<double>(deployment.network().metrics().total().messages) /
      static_cast<double>(n);
  double spent = 0.0;
  for (const core::SndNode* agent : deployment.agents()) {
    spent += 50.0 - deployment.network().energy_j(agent->device());
  }
  outcome.mean_energy_spent_j = spent / static_cast<double>(n);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "mac_ablation",
      "MAC ablation: what breaks when binding records drop their\n"
      "authentication codes.");
  driver_spec.int_flag("seeds", 5, "N", "independent deployment seeds", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));

  std::cout << "== MAC / jitter ablation ==\n"
            << "200 nodes, 150x150 m, R = 50 m, t = 5, energy accounting on, " << seeds
            << " seeds\n\n";

  util::Table table({"channel", "tx jitter", "accuracy", "messages/node",
                     "energy spent/node (J)"});
  for (const bool half_duplex : {false, true}) {
    for (const bool jitter : {true, false}) {
      util::RunningStats accuracy, messages, energy;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const Outcome o = run(half_duplex, jitter, seed * 23);
        accuracy.add(o.accuracy);
        messages.add(o.messages_per_node);
        energy.add(o.mean_energy_spent_j);
      }
      table.add_row({half_duplex ? "half-duplex" : "full-duplex (ideal)",
                     jitter ? "60 ms" : "off", util::Table::num(accuracy.mean(), 3),
                     util::Table::num(messages.mean(), 1),
                     util::Table::num(energy.mean(), 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: on the ideal channel jitter is cost-free; on the\n"
            << "half-duplex channel dropping the jitter collapses the exchange (whole\n"
            << "rounds transmit at the same window edges and deafen each other).\n";
  return 0;
}
