// Deployment-scale bench for the data-oriented core: full neighbor
// discovery on constant-density fields from 10k up to 1M nodes, tracking
// per-node simulation cost (us/node) and peak resident memory. This is the
// proof obligation of the SoA refactor -- a million-node deployment must
// complete on one machine with a bounded footprint -- and the BENCH_scale.json
// artifact feeds the CI bench-trend gate (the us_per_node series is a
// tracked "us_per" cost, lower is better).
//
// Field sizing: a unit-disk radio of range R on a side-L square field gives
// mean degree ~ n*pi*R^2/L^2, so L = R*sqrt(n*pi/degree) holds the degree
// (and therefore per-node work) constant across n. The protocol runs one
// Hello round with a small threshold: the point is the simulator core
// (events, packets, container state), not the threshold sweep that
// fig3/fig4 own.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/deployment_driver.h"
#include "util/driver_spec.h"
#include "util/runtime_config.h"
#include "util/soa.h"

namespace {

using namespace snd;

struct ScaleResult {
  std::size_t nodes = 0;
  double wall_s = 0.0;
  double us_per_node = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t events = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t functional_edges = 0;
};

/// Peak resident set of this process, MB. ru_maxrss is kilobytes on Linux.
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

ScaleResult run_scale(std::size_t nodes, double degree, std::uint64_t seed) {
  constexpr double kRange = 50.0;
  const double side = kRange * std::sqrt(static_cast<double>(nodes) * M_PI / degree);

  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {side, side}};
  config.radio_range = kRange;
  config.seed = seed;
  // One Hello per node and a small threshold: constant per-node traffic, so
  // us/node isolates the core's data-structure costs across scales.
  config.protocol.hello_repeats = 1;
  config.protocol.threshold_t = 1;
  config.protocol.max_updates = 0;

  ScaleResult result;
  result.nodes = nodes;
  const auto begin = std::chrono::steady_clock::now();
  {
    core::SndDeployment deployment(config);
    deployment.deploy_round(nodes);
    deployment.run();
    result.events = deployment.network().scheduler().executed();
    result.deliveries = deployment.network().metrics().deliveries();
    std::uint64_t edges = 0;
    for (const core::SndNode* agent : deployment.agents()) {
      edges += agent->functional_neighbors().size();
    }
    result.functional_edges = edges;
  }
  result.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  result.us_per_node = result.wall_s / static_cast<double>(nodes) * 1e6;
  result.peak_rss_mb = peak_rss_mb();
  return result;
}

std::vector<std::size_t> parse_nodes_list(const std::string& spec) {
  std::vector<std::size_t> nodes;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    nodes.push_back(static_cast<std::size_t>(std::stoull(spec.substr(start, end - start))));
    start = end + 1;
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "scale",
      "Deployment-scale benchmark: full discovery at constant degree across\n"
      "growing node counts, with an optional peak-RSS budget.");
  driver_spec.string_flag("nodes", "10000,100000,1000000", "LIST",
                   "comma-separated node counts to run")
      .double_flag("degree", 10.0, "D", "target mean node degree", 0.1)
      .int_flag("seed", 1, "S", "deployment seed")
      .double_flag("max-rss-mb", 0.0, "MB",
                   "fail if peak RSS exceeds this budget (0 disables)", 0.0);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const std::string nodes_spec = cli.get("nodes");
  const double degree = cli.get_double("degree");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // 0 disables the assertion; CI's scale-smoke passes a budget so a memory
  // regression fails the job instead of silently growing.
  const double max_rss_mb = cli.get_double("max-rss-mb");

  const std::vector<std::size_t> sizes = parse_nodes_list(nodes_spec);
  std::printf("== Deployment scale: full discovery, constant degree %.0f, SoA core %s ==\n",
              degree, util::soa_enabled() ? "on" : "off");

  std::string deployments;
  std::vector<ScaleResult> results;
  for (const std::size_t n : sizes) {
    const ScaleResult r = run_scale(n, degree, seed);
    results.push_back(r);
    std::printf("%9zu nodes: %8.2f s wall, %7.2f us/node, peak RSS %8.1f MB, "
                "%llu events, %llu deliveries, %llu functional edges\n",
                r.nodes, r.wall_s, r.us_per_node, r.peak_rss_mb,
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.deliveries),
                static_cast<unsigned long long>(r.functional_edges));
    char entry[512];
    std::snprintf(entry, sizeof(entry),
                  "%s    {\n"
                  "      \"nodes\": %zu,\n"
                  "      \"completed\": true,\n"
                  "      \"wall_s\": %.3f,\n"
                  "      \"us_per_node\": %.3f,\n"
                  "      \"peak_rss_mb\": %.1f,\n"
                  "      \"events\": %llu,\n"
                  "      \"deliveries\": %llu,\n"
                  "      \"functional_edges\": %llu\n"
                  "    }",
                  deployments.empty() ? "" : ",\n", r.nodes, r.wall_s, r.us_per_node,
                  r.peak_rss_mb, static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.deliveries),
                  static_cast<unsigned long long>(r.functional_edges));
    deployments += entry;
  }

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n"
                "  \"name\": \"scale_deployment\",\n"
                "  \"degree\": %.0f,\n"
                "  \"soa\": %s,\n"
                "  \"deployments\": [\n",
                degree, util::soa_enabled() ? "true" : "false");
  const std::string json = std::string(head) + deployments + "\n  ]\n}\n";

  const std::string path = bench_artifact_path("BENCH_scale.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  if (max_rss_mb > 0.0) {
    const double peak = peak_rss_mb();
    if (peak > max_rss_mb) {
      std::fprintf(stderr, "scale: peak RSS %.1f MB exceeds budget %.1f MB\n", peak, max_rss_mb);
      return 1;
    }
    std::printf("peak RSS %.1f MB within budget %.1f MB\n", peak, max_rss_mb);
  }
  return 0;
}
