// Future-work study #1 (paper §6): protocol performance when the direct
// neighbor verification mechanism is imperfect -- i.e. it sometimes rejects
// genuine neighbors (false reject) or admits non-neighbors (false accept).
//
// False rejects shrink tentative lists asymmetrically: u may hold v while v
// misses u, or both miss common neighbors, so the t+1 overlap gets harder
// to reach -- accuracy degrades *faster* than the per-link error rate.
// False accepts add far-away entries that never deliver verifiable binding
// records within the window, so they cost little accuracy but pollute
// binding records (storage/bytes). Both trends quantified here.
#include <iostream>

#include "adversary/wormhole.h"
#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Outcome {
  double accuracy = 0.0;
  double precision = 0.0;
  double mean_record_entries = 0.0;
};

Outcome run(double false_reject, double false_accept, std::size_t t, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {200.0, 200.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = t;
  config.seed = seed;

  core::SndDeployment deployment(config);
  deployment.set_verifier(std::make_shared<verify::ImperfectVerifier>(
      std::make_shared<verify::OracleVerifier>(), false_reject, false_accept));
  // A wormhole gives false accepts something to falsely accept: without a
  // source of receivable-but-remote identities, the false-accept branch
  // never triggers on a unit-disk radio.
  adversary::Wormhole wormhole(deployment.network(), {20.0, 100.0}, {180.0, 100.0});
  wormhole.start();
  deployment.deploy_round(400);
  deployment.run();

  Outcome outcome;
  outcome.accuracy =
      topology::edge_recall(deployment.actual_benign_graph(), deployment.functional_graph());
  outcome.precision =
      topology::edge_precision(deployment.actual_benign_graph(), deployment.functional_graph());
  double entries = 0.0;
  for (const core::SndNode* agent : deployment.agents()) {
    entries += static_cast<double>(agent->record().neighbors.size());
  }
  outcome.mean_record_entries = entries / static_cast<double>(deployment.agents().size());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "verifier_sensitivity",
      "Sensitivity of validation accuracy to the number of reachable\n"
      "verifiers around the threshold t.");
  driver_spec.int_flag("seeds", 5, "N", "independent deployment seeds", 1)
      .int_flag("threshold", 8, "T", "security threshold t", 0);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));
  const auto t = static_cast<std::size_t>(cli.get_int("threshold"));

  std::cout << "== Sensitivity to imperfect direct verification (paper section 6) ==\n"
            << "400 nodes, 200x200 m, R = 50 m, t = " << t << ", " << seeds << " seeds\n\n";

  std::cout << "-- sweep false-REJECT rate (genuine neighbors dropped) --\n";
  util::Table rejects({"false-reject rate", "accuracy", "precision", "record entries/node"});
  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    util::RunningStats accuracy, precision, entries;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Outcome o = run(rate, 0.0, t, seed * 11);
      accuracy.add(o.accuracy);
      precision.add(o.precision);
      entries.add(o.mean_record_entries);
    }
    rejects.add_row({util::Table::percent(rate, 0), util::Table::num(accuracy.mean(), 3),
                     util::Table::num(precision.mean(), 3), util::Table::num(entries.mean(), 1)});
  }
  rejects.print(std::cout);

  std::cout << "\n-- sweep false-ACCEPT rate (non-neighbors admitted) --\n";
  util::Table accepts({"false-accept rate", "accuracy", "precision", "record entries/node"});
  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    util::RunningStats accuracy, precision, entries;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Outcome o = run(0.0, rate, t, seed * 13);
      accuracy.add(o.accuracy);
      precision.add(o.precision);
      entries.add(o.mean_record_entries);
    }
    accepts.add_row({util::Table::percent(rate, 0), util::Table::num(accuracy.mean(), 3),
                     util::Table::num(precision.mean(), 3), util::Table::num(entries.mean(), 1)});
  }
  accepts.print(std::cout);

  std::cout << "\nExpected shape: accuracy degrades with the false-reject rate r (an edge\n"
            << "needs at least one endpoint's verification draw plus enough surviving\n"
            << "witnesses, ~1-r^2 before threshold losses). False accepts admit\n"
            << "wormhole-relayed identities into tentative lists; SND's threshold\n"
            << "check holds the line -- precision stays ~1 -- until r times the\n"
            << "relayed neighborhood size reaches t+1, at which point the falsely\n"
            << "accepted identities start serving as each other's witnesses and\n"
            << "cross-tunnel relations form. The protocol's tolerance of a leaky\n"
            << "verifier is therefore quantifiable: keep r < (t+1)/degree.\n";
  return 0;
}
