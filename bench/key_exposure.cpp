// Future-work study #2 (paper §6): "delete the master key K quickly without
// waiting for the completion of neighbor discovery. An attacker will have a
// high chance of compromising the node and thus the master key during such
// time."
//
// The early-erasure variant validates and erases K as soon as a verified
// binding record has arrived from every tentative neighbor instead of
// waiting out the fixed exchange window. This bench measures the K-exposure
// window (deployment -> erasure) and the accuracy cost, then converts
// exposure into the attacker's master-key capture probability under a
// random physical-capture process with rate lambda.
#include <cmath>
#include <iostream>

#include "core/deployment_driver.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct Outcome {
  double mean_exposure_ms = 0.0;
  double max_exposure_ms = 0.0;
  double accuracy = 0.0;
};

Outcome run(bool early, double channel_loss, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {200.0, 200.0}};
  config.radio_range = 50.0;
  config.channel_loss = channel_loss;
  config.protocol.threshold_t = 8;
  config.protocol.early_erasure = early;
  config.seed = seed;

  core::SndDeployment deployment(config);
  deployment.deploy_round(400);
  deployment.run();

  Outcome outcome;
  util::RunningStats exposure;
  for (const core::SndNode* agent : deployment.agents()) {
    exposure.add(agent->key_exposure().to_milliseconds());
  }
  outcome.mean_exposure_ms = exposure.mean();
  outcome.max_exposure_ms = exposure.max();
  outcome.accuracy =
      topology::edge_recall(deployment.actual_benign_graph(), deployment.functional_graph());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "key_exposure",
      "Key-exposure growth: fraction of pairwise keys an adversary learns as\n"
      "compromised nodes accumulate.");
  driver_spec.int_flag("seeds", 5, "N", "independent deployment seeds", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));

  std::cout << "== Master-key exposure window: fixed window vs early erasure ==\n"
            << "400 nodes, 200x200 m, R = 50 m, t = 8, " << seeds << " seeds\n\n";

  util::Table table({"variant", "channel loss", "mean exposure (ms)", "max exposure (ms)",
                     "accuracy", "P(K captured), lambda=0.1/s"});
  for (const double loss : {0.0, 0.05}) {
    for (const bool early : {false, true}) {
      util::RunningStats mean_exposure, max_exposure, accuracy;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const Outcome o = run(early, loss, seed * 19);
        mean_exposure.add(o.mean_exposure_ms);
        max_exposure.add(o.max_exposure_ms);
        accuracy.add(o.accuracy);
      }
      // Physical capture modeled as Poisson with rate lambda per node: the
      // chance a node is captured while it still holds K.
      const double lambda_per_ms = 0.1 / 1000.0;
      const double capture = 1.0 - std::exp(-lambda_per_ms * mean_exposure.mean());
      table.add_row({early ? "early erasure" : "fixed window",
                     util::Table::percent(loss, 0),
                     util::Table::num(mean_exposure.mean(), 1),
                     util::Table::num(max_exposure.mean(), 1),
                     util::Table::num(accuracy.mean(), 3), util::Table::percent(capture, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: early erasure cuts the exposure window roughly in half\n"
            << "on a clean channel at no accuracy cost; under loss, nodes missing a\n"
            << "record reply fall back to the fixed window, so the gap narrows.\n";
  return 0;
}
