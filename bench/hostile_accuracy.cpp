// §4.5.2 reproduction: performance in hostile situations. The paper argues
// that short of jamming the channel, an attacker cannot reduce the fraction
// of actual neighbors a benign node validates -- each pair's decision
// depends only on their own two authenticated lists.
//
// Scenarios measured:
//   clean            -- no attacker.
//   chaff            -- planted radios answer every Hello with floods of
//                       fake-identity HelloAcks (list pollution attempt).
//   replicas         -- a compromised identity replicated across the field
//                       (can it displace genuine relations? no).
//   jamming          -- a jammer disk (the attack the paper rules out of
//                       scope: it reduces accuracy but is plain DoS).
#include <iostream>

#include "adversary/attacker.h"
#include "adversary/chaff.h"
#include "adversary/wormhole.h"
#include "core/deployment_driver.h"
#include "obs/config.h"
#include "runner/trial_runner.h"
#include "topology/stats.h"
#include "util/driver_spec.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

core::DeploymentConfig base_config(std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {200.0, 200.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = 8;
  config.seed = seed;
  return config;
}

double benign_accuracy(const core::SndDeployment& deployment) {
  return topology::edge_recall(deployment.actual_benign_graph(),
                               deployment.functional_graph());
}

double run_clean(std::uint64_t seed) {
  core::SndDeployment deployment(base_config(seed));
  deployment.deploy_round(400);
  deployment.run();
  return benign_accuracy(deployment);
}

double run_chaff(std::uint64_t seed) {
  core::SndDeployment deployment(base_config(seed));
  std::vector<std::unique_ptr<adversary::ChaffAttacker>> chaff;
  for (const util::Vec2 pos : {util::Vec2{50, 50}, util::Vec2{150, 50}, util::Vec2{50, 150},
                               util::Vec2{150, 150}, util::Vec2{100, 100}}) {
    const sim::DeviceId device = deployment.network().add_device(
        90000 + static_cast<NodeId>(chaff.size()), pos);
    deployment.network().device(device).compromised = true;
    chaff.push_back(std::make_unique<adversary::ChaffAttacker>(
        deployment.network(), device, 100000 + 1000 * static_cast<NodeId>(chaff.size()), 8));
    chaff.back()->start();
  }
  deployment.deploy_round(400);
  deployment.run();
  return benign_accuracy(deployment);
}

double run_replicas(std::uint64_t seed) {
  core::SndDeployment deployment(base_config(seed));
  deployment.deploy_round(400);
  deployment.run();
  adversary::Attacker attacker(deployment);
  for (NodeId victim : {5u, 6u, 7u}) {
    attacker.compromise(victim);
    attacker.place_replica(victim, {180.0, 180.0});
    attacker.place_replica(victim, {20.0, 180.0});
  }
  deployment.deploy_round(40);
  deployment.run();
  return benign_accuracy(deployment);
}

double run_jamming(std::uint64_t seed) {
  core::SndDeployment deployment(base_config(seed));
  deployment.network().add_jammer({{100.0, 100.0}, 50.0});
  deployment.deploy_round(400);
  deployment.run();
  return benign_accuracy(deployment);
}

double run_chaff_no_verification(std::uint64_t seed) {
  // Ablation: the same chaff flood when the network deploys NO direct
  // verification -- fake identities then pollute tentative lists and bloat
  // binding records until their transmission overruns the exchange window.
  core::SndDeployment deployment(base_config(seed));
  deployment.set_verifier(std::make_shared<verify::NaiveVerifier>());
  std::vector<std::unique_ptr<adversary::ChaffAttacker>> chaff;
  for (const util::Vec2 pos : {util::Vec2{50, 50}, util::Vec2{150, 50}, util::Vec2{50, 150},
                               util::Vec2{150, 150}, util::Vec2{100, 100}}) {
    const sim::DeviceId device = deployment.network().add_device(
        90000 + static_cast<NodeId>(chaff.size()), pos);
    deployment.network().device(device).compromised = true;
    chaff.push_back(std::make_unique<adversary::ChaffAttacker>(
        deployment.network(), device, 100000 + 1000 * static_cast<NodeId>(chaff.size()), 8));
    chaff.back()->start();
  }
  deployment.deploy_round(400);
  deployment.run();
  return benign_accuracy(deployment);
}

double run_wormhole(std::uint64_t seed) {
  core::SndDeployment deployment(base_config(seed));
  adversary::Wormhole wormhole(deployment.network(), {30.0, 30.0}, {170.0, 170.0});
  wormhole.start();
  deployment.deploy_round(400);
  deployment.run();
  return benign_accuracy(deployment);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  util::cli::DriverSpec driver_spec(
      "hostile_accuracy",
      "Benign-node accuracy under hostile scenarios (paper section 4.5.2):\n"
      "chaff flood, replication, wormhole, jamming, and a no-direct-\n"
      "verification ablation, each compared against a clean deployment.");
  driver_spec.int_flag("seeds", 8, "N", "independent seeds per scenario", 1)
      .group(util::cli::jobs_group(&jobs))
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  runner::TrialRunner pool(jobs);

  std::cout << "== Hostile-situation accuracy (paper section 4.5.2) ==\n"
            << "400 nodes, 200x200 m, R = 50 m, t = 8, " << seeds << " seeds, "
            << pool.jobs() << " jobs\n\n";

  struct Scenario {
    const char* name;
    double (*run)(std::uint64_t);
  };
  const Scenario scenarios[] = {
      {"clean (no attacker)", run_clean},
      {"chaff flood (5 radios)", run_chaff},
      {"replication (3 ids x 2 replicas)", run_replicas},
      {"wormhole tunnel (2 endpoints)", run_wormhole},
      {"jamming disk r=50m (out of scope)", run_jamming},
      {"chaff w/o direct verif. (ablation)", run_chaff_no_verification},
  };
  const std::size_t scenario_count = std::size(scenarios);

  // One flat (scenario, seed) trial space. The deployment seed is derived
  // from the seed index alone so every scenario sees the same fields -- the
  // "delta vs clean" column stays a paired comparison.
  runner::SweepReport report;
  report.name = "hostile_accuracy";
  const auto accuracy = pool.run(
      scenario_count * seeds, /*base_seed=*/17,
      [&](std::size_t i, std::uint64_t) {
        return scenarios[i / seeds].run(util::derive_seed(17, i % seeds));
      },
      &report);

  util::Table table({"scenario", "benign accuracy", "stdev", "delta vs clean"});
  double clean_mean = 0.0;
  for (std::size_t si = 0; si < scenario_count; ++si) {
    util::RunningStats stats;
    for (std::size_t s = 0; s < seeds; ++s) {
      if (const auto& value = accuracy[si * seeds + s]) stats.add(*value);
    }
    if (scenarios[si].run == run_clean) clean_mean = stats.mean();
    table.add_row({scenarios[si].name, util::Table::num(stats.mean(), 4),
                   util::Table::num(stats.stdev(), 4),
                   util::Table::num(stats.mean() - clean_mean, 4)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: with the paper's assumed direct verification in place,\n"
            << "chaff, replication, and wormhole tunnels all leave benign accuracy\n"
            << "untouched (the attacker \"has no way to reduce the number of actual\n"
            << "benign neighbor nodes in the functional neighbor list... without\n"
            << "jamming\"); only the jamming row drops. The ablation row removes direct\n"
            << "verification: chaff then bloats binding records until their airtime\n"
            << "overruns the exchange window -- a bandwidth-DoS of the same class as\n"
            << "jamming, not a defeat of the validation logic; see EXPERIMENTS.md.\n";

  const std::string path = report.write_json();
  std::cout << "\n[" << report.trials << " trials, " << report.failed << " failed, "
            << util::Table::num(report.trials_per_second(), 1) << " trials/s"
            << (path.empty() ? "" : ", perf -> " + path) << "]\n";
  return report.failed == 0 ? 0 : 1;
}
