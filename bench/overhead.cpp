// §4.3 reproduction: storage, communication, and computation overhead of
// the protocol, measured (not asserted) on the paper's reference field.
//
// Storage is reported per node at two points in time: during discovery
// (peak) and steady state after key erasure. Communication and hash-op
// counts come from the simulator's byte-accurate accounting.
#include <iostream>

#include "core/deployment_driver.h"
#include "crypto/sha256.h"
#include "util/driver_spec.h"
#include "util/table.h"

namespace {

using namespace snd;

void run_and_report(bool extension, std::size_t nodes, std::size_t threshold,
                    std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = threshold;
  config.protocol.max_updates = extension ? 3 : 0;
  config.seed = seed;

  crypto::reset_hash_op_count();
  core::SndDeployment deployment(config);
  deployment.deploy_round(nodes);
  deployment.run();
  // One extra round so the extension path (evidence + updates) is exercised.
  if (extension) {
    for (const core::SndNode* agent : deployment.agents()) {
      const_cast<core::SndNode*>(agent)->set_auto_update(true);
    }
    deployment.deploy_round(nodes / 10);
    deployment.run();
  }
  const std::uint64_t hash_ops = crypto::hash_op_count();

  const std::size_t total_nodes = nodes + (extension ? nodes / 10 : 0);
  std::cout << "\n-- configuration: " << total_nodes << " nodes, t = " << threshold
            << ", update extension " << (extension ? "ON (m=3)" : "OFF") << " --\n\n";

  // Storage: derive from a representative node's actual state.
  const core::SndNode* agent = deployment.agent(1);
  const std::size_t neighbor_entries = agent->record().neighbors.size();
  const std::size_t record_bytes = agent->record().serialize().size();

  util::Table storage({"item", "bytes", "lifetime"});
  storage.add_row({"master key K", util::Table::integer(crypto::kKeySize),
                   "until end of discovery (erased)"});
  storage.add_row({"verification key K_u", util::Table::integer(crypto::kKeySize), "forever"});
  storage.add_row({"binding record R(u) (" + std::to_string(neighbor_entries) + " neighbors)",
                   util::Table::integer(static_cast<long long>(record_bytes)), "forever"});
  storage.add_row({"functional neighbor list",
                   util::Table::integer(static_cast<long long>(
                       4 * agent->functional_neighbors().size())),
                   "forever"});
  storage.add_row({"evidence buffer",
                   util::Table::integer(static_cast<long long>(
                       (4 + crypto::kDigestSize) * agent->evidence_buffer().size())),
                   extension ? "until next record update" : "n/a (extension off)"});
  storage.print(std::cout);

  std::cout << "\n";
  util::Table comm({"phase", "messages", "bytes", "msgs/node", "bytes/node"});
  const auto& metrics = deployment.network().metrics();
  for (const auto& [category, counter] : metrics.by_category()) {
    comm.add_row({std::string(category),
                  util::Table::integer(static_cast<long long>(counter.messages)),
                  util::Table::integer(static_cast<long long>(counter.bytes)),
                  util::Table::num(static_cast<double>(counter.messages) /
                                       static_cast<double>(total_nodes), 1),
                  util::Table::num(static_cast<double>(counter.bytes) /
                                       static_cast<double>(total_nodes), 0)});
  }
  const auto total = metrics.total();
  comm.add_row({"TOTAL", util::Table::integer(static_cast<long long>(total.messages)),
                util::Table::integer(static_cast<long long>(total.bytes)),
                util::Table::num(static_cast<double>(total.messages) /
                                     static_cast<double>(total_nodes), 1),
                util::Table::num(static_cast<double>(total.bytes) /
                                     static_cast<double>(total_nodes), 0)});
  comm.print(std::cout);

  std::cout << "\ncomputation: " << hash_ops << " SHA-256 compressions total, "
            << util::Table::num(static_cast<double>(hash_ops) /
                                    static_cast<double>(total_nodes), 1)
            << " per node (paper: \"a few efficient one-way hash operations\")\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "overhead",
      "Per-node protocol overhead (paper section 4.3): messages, bytes, and\n"
      "binding-record storage for one full discovery round.");
  driver_spec.int_flag("nodes", 200, "N", "deployed node count", 1)
      .int_flag("threshold", 10, "T", "security threshold t", 0)
      .int_flag("seed", 1, "S", "deployment seed");
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  const auto threshold = static_cast<std::size_t>(cli.get_int("threshold"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));


  std::cout << "== Protocol overhead (paper section 4.3) ==\n"
            << "100x100 m field, R = 50 m\n";
  run_and_report(/*extension=*/false, nodes, threshold, seed);
  run_and_report(/*extension=*/true, nodes, threshold, seed);

  std::cout << "\nExpected: all communication is single-hop (neighborhood-local); no\n"
            << "network-wide flooding phases appear in the table. The update extension\n"
            << "adds snd.evidence and snd.update traffic only.\n";
  return 0;
}
