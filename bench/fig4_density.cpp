// Figure 4 reproduction: fraction of actual neighbors included in the
// functional neighbor list of a benign node vs deployment density, for
// thresholds t in {10, 30, 50} (paper §4.5.1, R = 50 m).
//
// Density is reported as nodes per 1,000 m^2 as in the paper's axis. The
// field stays 100x100 m and the node count scales with density; accuracy is
// measured at a node pinned to the field center.
//
// The (density, t, seed) grid is flattened into one trial space and sharded
// across workers by runner::TrialRunner; aggregate statistics are
// bit-identical for any --jobs value.
//
//   ./fig4_density [--seeds 10] [--jobs N] [--fault-plan PATH]
//                  [--adversary FAMILIES | --adversary-config PATH]
//                  [--shard i/N] [--checkpoint PATH] [--resume]
//                  [--checkpoint-every N] [--canonical-report PATH]
//                  [--log warn] [--trace counters] [--trace-json PATH]
//
// With --checkpoint the run persists every trial to a .sndshard file (and
// --shard i/N restricts it to one stride of the trial space); shard_merge
// folds the files back into the canonical report. See docs/SHARDING.md.
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "adversary/scenario.h"
#include "analysis/model.h"
#include "core/deployment_driver.h"
#include "fault/plan.h"
#include "obs/config.h"
#include "runner/trial_runner.h"
#include "shard/session.h"
#include "util/driver_spec.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

struct TrialResult {
  double accuracy = 0.0;
  obs::TraceSummary trace;
};

TrialResult center_node_accuracy(double density_per_m2, std::size_t threshold,
                                 std::uint64_t seed, const fault::FaultPlan* plan,
                                 const adversary::ScenarioConfig* scenario) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = threshold;
  config.seed = seed;

  const auto nodes = static_cast<std::size_t>(density_per_m2 * config.field.area());
  core::SndDeployment deployment(config);
  if (plan != nullptr && !plan->empty()) deployment.apply_fault_plan(*plan);
  std::optional<adversary::ScenarioRuntime> runtime;
  if (scenario != nullptr && !scenario->empty()) runtime.emplace(deployment, *scenario);
  const NodeId center = deployment.deploy_node_at(config.field.center());
  std::vector<NodeId> deployed = deployment.deploy_round(nodes - 1);
  if (runtime) {
    deployed.insert(deployed.begin(), center);
    runtime->arm(deployed);
  }
  deployment.run();

  const core::SndNode* agent = deployment.agent(center);
  std::size_t actual = 0;
  std::size_t validated = 0;
  for (const sim::Device& d : deployment.network().devices()) {
    if (d.identity == center) continue;
    if (!deployment.network().link(agent->device(), d.id)) continue;
    ++actual;
    if (topology::contains(agent->functional_neighbors(), d.identity)) ++validated;
  }
  TrialResult result;
  result.accuracy =
      actual == 0 ? 0.0 : static_cast<double>(validated) / static_cast<double>(actual);
  result.trace = deployment.network().trace_summary();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  shard::SessionOptions session_options;
  std::optional<fault::FaultPlan> plan;
  std::optional<adversary::ScenarioConfig> scenario;
  util::cli::DriverSpec driver_spec(
      "fig4_density",
      "Figure 4 reproduction: fraction of validated neighbors as a function\n"
      "of deployment density, for several thresholds t.");
  driver_spec
      .int_flag("seeds", 10, "N", "independent seeds per (density, t) cell", 1)
      .string_flag("canonical-report", "", "PATH",
                   "write the canonical sweep report JSON to PATH")
      .group(util::cli::jobs_group(&jobs))
      .group(fault::plan_flag_group(&plan))
      .group(adversary::scenario_flag_group(&scenario))
      .group(shard::session_flag_group(&session_options))
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const std::string canonical_path = cli.get("canonical-report");
  runner::TrialRunner pool(jobs);
  if (plan) {
    std::cout << "fault plan: " << cli.get("fault-plan") << " ("
              << plan->actions.size() << " actions)\n";
  }
  if (scenario) std::cout << "adversary scenario: " << scenario->to_json() << "\n";

  const std::vector<double> densities_per_1000m2 = {5, 10, 15, 20, 25, 30, 40};
  const std::vector<std::size_t> thresholds = {10, 30, 50};

  // One flat (density, t, seed) trial space: trial i covers density
  // i / (thresholds * seeds), threshold (i / seeds) % thresholds, seed i % seeds.
  runner::SweepReport report;
  report.name = "fig4_density";
  const std::size_t cells = densities_per_1000m2.size() * thresholds.size();

  shard::ShardSpec shard_spec;
  shard_spec.sweep_id = report.name;
  shard_spec.base_seed = 997;
  shard_spec.total_trials = cells * seeds;
  shard_spec.metric_names = {"accuracy"};
  shard::Session session(session_options, shard_spec);
  if (session.enabled() && !canonical_path.empty()) {
    std::cerr << cli.program()
              << ": --canonical-report needs a plain run (merge the shard files with "
                 "shard_merge to get the canonical report)\n";
    return 2;
  }
  if (!session.open(std::cerr)) return 2;

  obs::Registry registry(cells * seeds);
  const auto trial_body = [&](std::size_t i, std::uint64_t seed) {
    const std::size_t cell = i / seeds;
    const double density = densities_per_1000m2[cell / thresholds.size()] / 1000.0;
    try {
      TrialResult result = center_node_accuracy(
          density, thresholds[cell % thresholds.size()], seed, plan ? &*plan : nullptr,
          scenario ? &*scenario : nullptr);
      registry.record(i, result.trace);
      session.record_success(i, {result.accuracy}, result.trace);
      return result.accuracy;
    } catch (const std::exception& e) {
      session.record_failure(i, e.what());
      throw;
    } catch (...) {
      session.record_failure(i, "non-standard exception");
      throw;
    }
  };

  if (session.enabled()) {
    // Checkpointed (possibly sharded) mode: the shard file is the output;
    // tables and BENCH artifacts come from shard_merge over all shards.
    std::cout << "== Figure 4 (shard " << session.spec().shard_index << "/"
              << session.spec().shard_count << " of " << shard_spec.total_trials
              << " trials) ==\n";
    (void)pool.run_subset(session.pending(), shard_spec.base_seed, trial_body, &report);
    if (!session.finish(std::cerr)) return 1;
    std::cout << "ran " << session.pending().size() << " trials (" << session.resumed()
              << " resumed), " << report.failed << " failed -> "
              << session_options.checkpoint_path << "\n";
    return report.failed == 0 ? 0 : 1;
  }

  std::cout << "== Figure 4: fraction of validated neighbors vs deployment density ==\n"
            << "R = 50 m, 100x100 m field, center node, " << seeds << " seeds, "
            << pool.jobs() << " jobs\n\n";

  const auto accuracy = pool.run(cells * seeds, shard_spec.base_seed, trial_body, &report);
  report.attach_trace(registry.fold());
  report.metric("accuracy");  // column exists even if every trial failed
  for (const auto& value : accuracy) {
    if (value.has_value()) report.metric("accuracy").add(*value);
  }
  if (!canonical_path.empty() && !report.write_canonical(canonical_path)) {
    std::cerr << cli.program() << ": cannot write " << canonical_path << "\n";
    return 1;
  }

  util::Table table({"density (/1000 m^2)", "t=10 sim", "t=10 theory", "t=30 sim",
                     "t=30 theory", "t=50 sim", "t=50 theory"});
  for (std::size_t di = 0; di < densities_per_1000m2.size(); ++di) {
    const double density_k = densities_per_1000m2[di];
    std::vector<std::string> row = {util::Table::num(density_k, 0)};
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      util::RunningStats sim_accuracy;
      const std::size_t cell = di * thresholds.size() + ti;
      for (std::size_t s = 0; s < seeds; ++s) {
        if (const auto& value = accuracy[cell * seeds + s]) sim_accuracy.add(*value);
      }
      const analysis::FieldModel model{density_k / 1000.0, 50.0};
      row.push_back(util::Table::num(sim_accuracy.mean(), 3));
      row.push_back(util::Table::num(model.accuracy(thresholds[ti]), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 4): accuracy rises with density; smaller t\n"
            << "saturates first (t=10 ~1 by ~15 nodes/1000 m^2, t=50 needs ~2x more).\n";

  const std::string path = report.write_json();
  std::cout << "\n[" << report.trials << " trials, " << report.failed << " failed, "
            << util::Table::num(report.trials_per_second(), 1) << " trials/s"
            << (path.empty() ? "" : ", perf -> " + path) << "]\n";
  return report.failed == 0 ? 0 : 1;
}
