// Figure 4 reproduction: fraction of actual neighbors included in the
// functional neighbor list of a benign node vs deployment density, for
// thresholds t in {10, 30, 50} (paper §4.5.1, R = 50 m).
//
// Density is reported as nodes per 1,000 m^2 as in the paper's axis. The
// field stays 100x100 m and the node count scales with density; accuracy is
// measured at a node pinned to the field center.
//
//   ./fig4_density [--seeds 10]
#include <iostream>
#include <vector>

#include "analysis/model.h"
#include "core/deployment_driver.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace snd;

double center_node_accuracy(double density_per_m2, std::size_t threshold, std::uint64_t seed) {
  core::DeploymentConfig config;
  config.field = {{0.0, 0.0}, {100.0, 100.0}};
  config.radio_range = 50.0;
  config.protocol.threshold_t = threshold;
  config.seed = seed;

  const auto nodes = static_cast<std::size_t>(density_per_m2 * config.field.area());
  core::SndDeployment deployment(config);
  const NodeId center = deployment.deploy_node_at(config.field.center());
  deployment.deploy_round(nodes - 1);
  deployment.run();

  const core::SndNode* agent = deployment.agent(center);
  std::size_t actual = 0;
  std::size_t validated = 0;
  for (const sim::Device& d : deployment.network().devices()) {
    if (d.identity == center) continue;
    if (!deployment.network().link(agent->device(), d.id)) continue;
    ++actual;
    if (topology::contains(agent->functional_neighbors(), d.identity)) ++validated;
  }
  return actual == 0 ? 0.0 : static_cast<double>(validated) / static_cast<double>(actual);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 10));

  const std::vector<double> densities_per_1000m2 = {5, 10, 15, 20, 25, 30, 40};
  const std::vector<std::size_t> thresholds = {10, 30, 50};

  std::cout << "== Figure 4: fraction of validated neighbors vs deployment density ==\n"
            << "R = 50 m, 100x100 m field, center node, " << seeds << " seeds\n\n";

  util::Table table({"density (/1000 m^2)", "t=10 sim", "t=10 theory", "t=30 sim",
                     "t=30 theory", "t=50 sim", "t=50 theory"});
  for (double density_k : densities_per_1000m2) {
    const double density = density_k / 1000.0;
    std::vector<std::string> row = {util::Table::num(density_k, 0)};
    for (std::size_t t : thresholds) {
      util::RunningStats sim_accuracy;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        sim_accuracy.add(center_node_accuracy(density, t, seed * 997 + t));
      }
      const analysis::FieldModel model{density, 50.0};
      row.push_back(util::Table::num(sim_accuracy.mean(), 3));
      row.push_back(util::Table::num(model.accuracy(t), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 4): accuracy rises with density; smaller t\n"
            << "saturates first (t=10 ~1 by ~15 nodes/1000 m^2, t=50 needs ~2x more).\n";
  return 0;
}
