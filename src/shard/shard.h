// Addressable work units for sharded Monte-Carlo sweeps.
//
// A sweep of `total_trials` trials seeded with `base_seed` is split across
// `shard_count` shards by striding the flat trial index space: shard k owns
// every trial i with i % shard_count == k. Because runner::TrialRunner seeds
// trial i with util::derive_seed(base_seed, i) -- a function of the global
// index alone -- running the shards on different machines, in any order, at
// any --jobs count, and merging the results (shard::merge_shards) is
// bit-identical to one unsharded run. See docs/SHARDING.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/summary.h"

namespace snd::shard {

/// Identity of one shard of one sweep. Everything except shard_index must
/// agree between shards for a merge to be meaningful; compatible_with()
/// enforces that and merge/resume refuse on any mismatch.
struct ShardSpec {
  std::string sweep_id;                   ///< e.g. "fig4_density"
  std::uint32_t shard_index = 0;          ///< in [0, shard_count)
  std::uint32_t shard_count = 1;
  std::uint64_t base_seed = 0;            ///< the sweep's derive_seed base
  std::uint64_t total_trials = 0;         ///< trials in the FULL sweep
  std::vector<std::string> metric_names;  ///< per-trial result columns

  /// True iff this shard owns global trial index `trial`.
  [[nodiscard]] bool owns(std::uint64_t trial) const {
    return trial < total_trials && trial % shard_count == shard_index;
  }

  /// All owned global trial indices, ascending.
  [[nodiscard]] std::vector<std::uint32_t> trial_indices() const;

  /// FNV-1a over a layout descriptor covering the format version, the trace
  /// counter table widths, and the metric column names. Any enum growth or
  /// metric change alters the hash, so a reader can never misinterpret
  /// columns written by a different build.
  [[nodiscard]] std::uint64_t schema_hash() const;

  /// Empty string when `other` describes another shard of the same sweep
  /// (same sweep_id/shard_count/base_seed/total_trials/metrics); otherwise a
  /// human-readable description of the first mismatch.
  [[nodiscard]] std::string mismatch(const ShardSpec& other) const;
};

/// One completed trial, as persisted in a .sndshard file: the global trial
/// index, the per-metric values (empty on failure), the trial's folded
/// trace summary, and the failure message when the trial threw.
struct TrialRecord {
  std::uint64_t trial = 0;
  bool failed = false;
  std::string error;
  std::vector<double> values;  ///< parallel to ShardSpec::metric_names
  obs::TraceSummary trace;
};

/// Parses a "--shard i/N" argument; nullopt unless 0 <= i < N and N >= 1.
[[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_shard_arg(
    std::string_view text);

}  // namespace snd::shard
