// Folds N .sndshard files into one canonical BENCH report.
//
// Validation is strict: every file must describe the same sweep (sweep_id,
// shard_count, base_seed, total_trials, schema hash), shard indices must be
// distinct, every record must belong to its file's shard, and the union of
// records must cover every trial index exactly once -- overlapping or
// missing shards are rejected with a precise message, never silently
// merged. The surviving records are folded in global trial order through
// the same Series/Registry code paths an unsharded run uses, so the
// canonical JSON is byte-identical to `--canonical-report` output of a
// single-process run (CI asserts exactly this).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runner/trial_runner.h"
#include "shard/format.h"

namespace snd::shard {

/// Per-shard telemetry for the merge summary (markdown + stdout).
struct ShardSummary {
  std::string path;
  std::uint32_t shard_index = 0;
  std::uint64_t records = 0;
  double wall_seconds = 0.0;  ///< from the shard's last checkpoint footer
};

struct MergeResult {
  runner::SweepReport report;        ///< canonical fields only (no timing)
  std::vector<ShardSummary> shards;  ///< ordered by shard_index
};

/// Merges the given shard files; nullopt (message in *error) on any
/// validation failure. `paths` may list the shards in any order.
[[nodiscard]] std::optional<MergeResult> merge_shards(
    const std::vector<std::string>& paths, std::string* error);

/// GitHub-flavored markdown summary: one table of per-metric mean and CI95
/// bounds, one table of per-shard record counts and wall times.
[[nodiscard]] std::string summary_markdown(const MergeResult& result);

}  // namespace snd::shard
