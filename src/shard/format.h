// The .sndshard binary columnar trace/report format.
//
// One file holds the completed trials of one shard of one sweep, written as
// an append-only sequence of self-validating checkpoint chunks so a
// crashed or preempted run can resume from its last checkpoint:
//
//   file   := header chunk*
//   header := magic "SNDSHRD1" | schema_hash u64 | sweep_id varbytes
//             | shard_index varint | shard_count varint | base_seed u64
//             | total_trials varint | metric_count varint
//             | { name varbytes }*  | crc32 u32 (over everything above)
//   chunk  := magic "CHNK" | payload_len u32 | payload | footer
//   payload:= n varint
//             | trial indices: first absolute varint, then n-1 ascending
//               varint deltas
//             | failed bitmap (ceil(n/8) bytes, LSB-first)
//             | failure messages, one varbytes per set bit, in order
//             | one column per metric: n f64 values (IEEE bits, big-endian)
//             | trace columns: kTraceColumnCount columns * n varint-packed
//               event counts, column-major
//   footer := completed_total u64 | wall_micros u64
//             | crc32 u32 (over payload + the two footer integers)
//
// Integers are big-endian (matching util::put_u32/u64); varints are
// unsigned LEB128 (util::put_varint). A torn tail -- a chunk cut short or
// corrupted by a crash mid-write -- fails its length or CRC check; the
// reader keeps every chunk before it and reports the tail's byte count, and
// ShardWriter::open_resume truncates the tail and appends from there.
// See docs/SHARDING.md for the full design.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "shard/shard.h"
#include "util/bytes.h"

namespace snd::shard {

/// Flat width of the per-trial trace counter table (tx messages + bytes per
/// phase, drops, deliveries, node phases, rejects, accepts, injects,
/// events, ring_overflow, trials).
inline constexpr std::size_t kTraceColumnCount =
    obs::kPhaseCount * 2 + obs::kDropCauseCount + obs::kNodePhaseCount +
    obs::kRejectReasonCount + obs::kAcceptViaCount + obs::kInjectKindCount + 4;

/// Everything a .sndshard file contains, after validation.
struct ShardFileData {
  ShardSpec spec;
  std::vector<TrialRecord> records;   ///< file order, ascending per chunk
  double wall_seconds = 0.0;          ///< cumulative, from the last footer
  std::uint64_t valid_bytes = 0;      ///< prefix covered by valid chunks
  std::uint64_t discarded_bytes = 0;  ///< torn/corrupt tail the reader dropped
};

/// Reads and validates `path`. Returns nullopt (message in *error) on an
/// unreadable file, bad magic, corrupt header, or a chunk whose CRC passes
/// but whose content is inconsistent (duplicate trial, index outside the
/// shard). A torn tail after the last valid checkpoint is NOT an error --
/// that is exactly the crash/preemption case resume exists for -- and is
/// reported via discarded_bytes instead.
std::optional<ShardFileData> read_shard_file(const std::string& path,
                                             std::string* error);

/// Serializers, exposed for tests (and for the reader's own fuzzing).
[[nodiscard]] util::Bytes encode_header(const ShardSpec& spec);
[[nodiscard]] util::Bytes encode_chunk(std::span<const TrialRecord> records,
                                       std::size_t metric_count,
                                       std::uint64_t completed_total,
                                       std::uint64_t wall_micros);

/// Append-only .sndshard writer with buffered checkpointing. Not
/// thread-safe; shard::Session serializes access.
class ShardWriter {
 public:
  ShardWriter() = default;
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;
  ~ShardWriter();

  /// Creates (or truncates) `path` and writes the header.
  bool open_new(const std::string& path, const ShardSpec& spec, std::string* error);

  /// Resumes an interrupted shard: validates that the existing file's header
  /// matches `spec` exactly (including shard_index and schema hash --
  /// mismatches are refused, never silently merged), loads every checkpointed
  /// record into *completed, truncates any torn tail, and reopens for append.
  /// A path that does not exist yet starts fresh (open_new), so retrying an
  /// interrupted job with --resume is safe even if the first attempt died
  /// before creating the file.
  bool open_resume(const std::string& path, const ShardSpec& spec,
                   std::vector<TrialRecord>* completed, std::string* error);

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  /// Records persisted by previous checkpoints (incl. resumed ones).
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  /// Cumulative wall seconds recovered from a resumed file's last footer.
  [[nodiscard]] double resumed_wall_seconds() const { return resumed_wall_; }

  /// Buffers one record until the next checkpoint.
  void append(TrialRecord record);

  /// Flushes the buffer as one checkpoint chunk (no-op on an empty buffer).
  /// `wall_seconds` is the session's cumulative wall time, persisted in the
  /// footer for the merge tool's per-shard summary.
  bool checkpoint(double wall_seconds);

  /// Final checkpoint + close; returns false if any write failed.
  bool close(double wall_seconds);

 private:
  std::FILE* file_ = nullptr;
  ShardSpec spec_;
  std::string path_;
  std::vector<TrialRecord> buffer_;
  std::uint64_t completed_ = 0;
  double resumed_wall_ = 0.0;
};

}  // namespace snd::shard
