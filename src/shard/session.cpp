#include "shard/session.h"

#include <algorithm>
#include <ostream>

namespace snd::shard {

SessionOptions resolve_session(const util::Cli& cli) {
  SessionOptions options;
  if (cli.has("shard")) {
    const std::string text = cli.get("shard", "");
    if (const auto parsed = parse_shard_arg(text)) {
      options.shard_index = parsed->first;
      options.shard_count = parsed->second;
    } else {
      cli.record_error("--shard: expected i/N with 0 <= i < N, got '" + text + "'");
    }
  }
  options.checkpoint_path = cli.get("checkpoint", "");
  options.enabled = !options.checkpoint_path.empty();
  options.resume = cli.get_bool("resume", false);
  const std::int64_t every = cli.get_int("checkpoint-every", 16);
  if (every < 1) {
    cli.record_error("--checkpoint-every: must be >= 1");
  } else {
    options.checkpoint_every = static_cast<std::size_t>(every);
  }
  if (cli.has("shard") && !options.enabled) {
    cli.record_error("--shard: requires --checkpoint PATH (a sharded run's results "
                     "live only in its shard file)");
  }
  if (options.resume && !options.enabled) {
    cli.record_error("--resume: requires --checkpoint PATH");
  }
  return options;
}

util::cli::FlagGroup session_flag_group(SessionOptions* out) {
  using util::cli::FlagDef;
  using util::cli::FlagType;
  util::cli::FlagGroup group;
  group.title = "Checkpointing / sharding";
  const auto add = [&group](const char* name, FlagType type, const char* value_name,
                            const char* help) {
    FlagDef def;
    def.name = name;
    def.type = type;
    def.value_name = value_name;
    def.help = help;
    group.flags.push_back(std::move(def));
  };
  add("shard", FlagType::kString, "i/N",
      "run only shard i of N (requires --checkpoint)");
  add("checkpoint", FlagType::kString, "PATH",
      "persist completed trials to PATH (.sndshard)");
  add("resume", FlagType::kBool, "",
      "continue an interrupted checkpoint instead of truncating it");
  add("checkpoint-every", FlagType::kInt, "N", "flush the checkpoint every N trials");
  group.flags.back().def_int = 16;
  group.resolve = [out](const util::Cli& cli) { *out = resolve_session(cli); };
  return group;
}

Session::Session(const SessionOptions& options, ShardSpec spec)
    : options_(options), spec_(std::move(spec)), start_(std::chrono::steady_clock::now()) {
  spec_.shard_index = options_.shard_index;
  spec_.shard_count = options_.shard_count;
}

bool Session::open(std::ostream& err) {
  std::string error;
  std::vector<TrialRecord> completed;
  if (options_.enabled) {
    const bool ok =
        options_.resume
            ? writer_.open_resume(options_.checkpoint_path, spec_, &completed, &error)
            : writer_.open_new(options_.checkpoint_path, spec_, &error);
    if (!ok) {
      err << "error: " << error << "\n";
      return false;
    }
  }
  resumed_ = completed.size();

  // Pending = owned minus already-checkpointed, ascending.
  std::vector<std::uint8_t> done((spec_.total_trials + 7) / 8, 0);
  for (const TrialRecord& r : completed) {
    done[r.trial / 8] |= static_cast<std::uint8_t>(1u << (r.trial % 8));
  }
  for (std::uint32_t trial : spec_.trial_indices()) {
    if ((done[trial / 8] >> (trial % 8) & 1) == 0) pending_.push_back(trial);
  }
  return true;
}

void Session::record(TrialRecord record) {
  const std::scoped_lock lock(mutex_);
  if (!writer_.is_open()) return;
  writer_.append(std::move(record));
  if (writer_.buffered() >= options_.checkpoint_every) {
    if (!writer_.checkpoint(wall_seconds())) io_error_ = true;
  }
}

/// Cumulative across resumes: this process's elapsed time plus whatever the
/// resumed file's last footer had already accumulated.
double Session::wall_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count() +
         writer_.resumed_wall_seconds();
}

void Session::record_success(std::uint64_t trial, std::vector<double> values,
                             const obs::TraceSummary& trace) {
  if (!options_.enabled) return;
  TrialRecord record;
  record.trial = trial;
  record.values = std::move(values);
  record.trace = trace;
  this->record(std::move(record));
}

void Session::record_failure(std::uint64_t trial, std::string message) {
  if (!options_.enabled) return;
  TrialRecord record;
  record.trial = trial;
  record.failed = true;
  record.error = std::move(message);
  record.values.assign(spec_.metric_names.size(), 0.0);
  this->record(std::move(record));
}

bool Session::finish(std::ostream& err) {
  if (!options_.enabled) return true;
  const std::scoped_lock lock(mutex_);
  if (!writer_.close(wall_seconds()) || io_error_) {
    err << "error: " << options_.checkpoint_path << ": checkpoint write failed\n";
    return false;
  }
  return true;
}

}  // namespace snd::shard
