#include "shard/shard.h"

#include "obs/event.h"

namespace snd::shard {

std::vector<std::uint32_t> ShardSpec::trial_indices() const {
  std::vector<std::uint32_t> indices;
  if (shard_count == 0) return indices;
  indices.reserve(static_cast<std::size_t>(total_trials / shard_count + 1));
  for (std::uint64_t i = shard_index; i < total_trials; i += shard_count) {
    indices.push_back(static_cast<std::uint32_t>(i));
  }
  return indices;
}

namespace {

std::uint64_t fnv1a(std::uint64_t state, std::string_view text) {
  for (char c : text) {
    state ^= static_cast<std::uint8_t>(c);
    state *= 0x100000001b3ULL;
  }
  return state;
}

}  // namespace

std::uint64_t ShardSpec::schema_hash() const {
  // The descriptor names every column group and its width; bumping an obs
  // enum or renaming a metric changes the hash and old files are rejected
  // instead of silently misread.
  std::uint64_t h = fnv1a(0xcbf29ce484222325ULL, "sndshard/v1");
  const auto dim = [&](std::string_view label, std::size_t n) {
    h = fnv1a(h, ";");
    h = fnv1a(h, label);
    h = fnv1a(h, "=");
    h = fnv1a(h, std::to_string(n));
  };
  dim("tx", obs::kPhaseCount);
  dim("drops", obs::kDropCauseCount);
  dim("node_phases", obs::kNodePhaseCount);
  dim("rejects", obs::kRejectReasonCount);
  dim("accepts", obs::kAcceptViaCount);
  dim("injects", obs::kInjectKindCount);
  h = fnv1a(h, ";metrics");
  for (const std::string& name : metric_names) {
    h = fnv1a(h, ",");
    h = fnv1a(h, name);
  }
  return h;
}

std::string ShardSpec::mismatch(const ShardSpec& other) const {
  if (sweep_id != other.sweep_id) {
    return "sweep_id '" + other.sweep_id + "' != '" + sweep_id + "'";
  }
  if (shard_count != other.shard_count) {
    return "shard_count " + std::to_string(other.shard_count) + " != " +
           std::to_string(shard_count);
  }
  if (base_seed != other.base_seed) {
    return "base_seed " + std::to_string(other.base_seed) + " != " +
           std::to_string(base_seed);
  }
  if (total_trials != other.total_trials) {
    return "total_trials " + std::to_string(other.total_trials) + " != " +
           std::to_string(total_trials);
  }
  if (schema_hash() != other.schema_hash()) {
    return "schema hash mismatch (different metric columns or build vintage)";
  }
  return {};
}

std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_shard_arg(
    std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos || slash == 0 || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  for (char c : text.substr(0, slash)) {
    if (c < '0' || c > '9') return std::nullopt;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
    if (index > 0xffffffffULL) return std::nullopt;
  }
  for (char c : text.substr(slash + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    count = count * 10 + static_cast<std::uint64_t>(c - '0');
    if (count > 0xffffffffULL) return std::nullopt;
  }
  if (count == 0 || index >= count) return std::nullopt;
  return std::make_pair(static_cast<std::uint32_t>(index),
                        static_cast<std::uint32_t>(count));
}

}  // namespace snd::shard
