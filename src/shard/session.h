// Driver-side glue between a SweepReport-producing bench and the shard
// farm: resolves the shared --shard/--checkpoint/--resume flag surface,
// computes the pending trial indices (owned by this shard, minus trials
// already checkpointed when resuming), and persists every completed trial to the
// .sndshard checkpoint file from the worker threads.
//
//   shard::SessionOptions sopt = shard::resolve_session(cli);
//   // ... cli.validate({... "shard", "checkpoint", "resume", ...}) ...
//   shard::Session session(sopt, spec);
//   if (!session.open(std::cerr)) return 2;
//   pool.run_subset(session.pending(), spec.base_seed, body, &report);
//   if (!session.finish(std::cerr)) return 1;
//
// See docs/SHARDING.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "shard/format.h"
#include "util/cli.h"
#include "util/driver_spec.h"

namespace snd::shard {

/// The shared flag surface:
///   --shard i/N          run only shard i of N (requires --checkpoint)
///   --checkpoint PATH    persist results to PATH (.sndshard), checkpointing
///                        every --checkpoint-every trials (default 16)
///   --resume             continue an interrupted PATH instead of truncating
struct SessionOptions {
  bool enabled = false;  ///< --checkpoint given (sharded or whole-sweep)
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::string checkpoint_path;
  bool resume = false;
  std::size_t checkpoint_every = 16;

  [[nodiscard]] bool sharded() const { return shard_count > 1; }
};

/// Reads the flags above; invalid combinations (bad "i/N", --shard without
/// --checkpoint, --resume without --checkpoint, --checkpoint-every < 1) are
/// recorded with cli.record_error() so the driver's cli.validate() call
/// rejects them with a non-zero exit.
[[nodiscard]] SessionOptions resolve_session(const util::Cli& cli);

/// The same surface as a DriverSpec flag group: declares --shard,
/// --checkpoint, --resume, --checkpoint-every and resolves them into `*out`
/// during parse(). Prefer this over hand-listing the flags in new drivers.
[[nodiscard]] util::cli::FlagGroup session_flag_group(SessionOptions* out);

/// One shard run of one sweep. Thread-safe recording: the runner's worker
/// threads call record_success/record_failure concurrently; every
/// checkpoint_every records the session flushes a self-validating chunk, so
/// a crash loses at most the unflushed buffer.
class Session {
 public:
  /// `spec` carries sweep_id/total_trials/base_seed/metric_names; the shard
  /// coordinates are taken from `options`.
  Session(const SessionOptions& options, ShardSpec spec);

  /// Opens (or resumes) the checkpoint file. No-op for a disabled session.
  /// Prints the reason to `err` and returns false on failure -- including a
  /// resume header that does not match this sweep's spec.
  [[nodiscard]] bool open(std::ostream& err);

  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] bool sharded() const { return options_.sharded(); }
  [[nodiscard]] const ShardSpec& spec() const { return spec_; }
  /// Trials this run still has to execute: the shard's owned indices minus
  /// the ones a resumed checkpoint already holds. Ascending. For a disabled
  /// session this is every trial of the sweep.
  [[nodiscard]] const std::vector<std::uint32_t>& pending() const { return pending_; }
  /// Trials restored from the checkpoint by open() when resuming.
  [[nodiscard]] std::size_t resumed() const { return resumed_; }

  /// Persist one completed trial (values parallel to spec().metric_names).
  void record_success(std::uint64_t trial, std::vector<double> values,
                      const obs::TraceSummary& trace);
  void record_failure(std::uint64_t trial, std::string message);

  /// Final checkpoint + close; false (message on `err`) if any write failed.
  [[nodiscard]] bool finish(std::ostream& err);

 private:
  void record(TrialRecord record);
  [[nodiscard]] double wall_seconds() const;

  SessionOptions options_;
  ShardSpec spec_;
  std::vector<std::uint32_t> pending_;
  std::size_t resumed_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  ShardWriter writer_;
  bool io_error_ = false;
};

}  // namespace snd::shard
