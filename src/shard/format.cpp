#include "shard/format.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>

#include "util/crc32.h"

namespace snd::shard {

namespace {

constexpr char kFileMagic[8] = {'S', 'N', 'D', 'S', 'H', 'R', 'D', '1'};
constexpr char kChunkMagic[4] = {'C', 'H', 'N', 'K'};
constexpr std::size_t kChunkHeaderSize = 4 + 4;   // magic + payload_len
constexpr std::size_t kChunkFooterSize = 8 + 8 + 4;  // completed, wall, crc

/// TraceSummary <-> flat counter row, in the documented column order.
std::array<std::uint64_t, kTraceColumnCount> flatten_trace(const obs::TraceSummary& t) {
  std::array<std::uint64_t, kTraceColumnCount> row{};
  std::size_t c = 0;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) row[c++] = t.tx[i].messages;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) row[c++] = t.tx[i].bytes;
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) row[c++] = t.drops[i];
  row[c++] = t.deliveries;
  for (std::size_t i = 0; i < obs::kNodePhaseCount; ++i) row[c++] = t.node_phases[i];
  for (std::size_t i = 0; i < obs::kRejectReasonCount; ++i) row[c++] = t.rejects[i];
  for (std::size_t i = 0; i < obs::kAcceptViaCount; ++i) row[c++] = t.accepts[i];
  for (std::size_t i = 0; i < obs::kInjectKindCount; ++i) row[c++] = t.injects[i];
  row[c++] = t.events;
  row[c++] = t.ring_overflow;
  row[c++] = t.trials;
  return row;
}

obs::TraceSummary unflatten_trace(const std::array<std::uint64_t, kTraceColumnCount>& row) {
  obs::TraceSummary t;
  std::size_t c = 0;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) t.tx[i].messages = row[c++];
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) t.tx[i].bytes = row[c++];
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) t.drops[i] = row[c++];
  t.deliveries = row[c++];
  for (std::size_t i = 0; i < obs::kNodePhaseCount; ++i) t.node_phases[i] = row[c++];
  for (std::size_t i = 0; i < obs::kRejectReasonCount; ++i) t.rejects[i] = row[c++];
  for (std::size_t i = 0; i < obs::kAcceptViaCount; ++i) t.accepts[i] = row[c++];
  for (std::size_t i = 0; i < obs::kInjectKindCount; ++i) t.injects[i] = row[c++];
  t.events = row[c++];
  t.ring_overflow = row[c++];
  t.trials = row[c++];
  return t;
}

void put_varbytes(util::Bytes& out, std::string_view text) {
  util::put_varint(out, text.size());
  for (char ch : text) out.push_back(static_cast<std::uint8_t>(ch));
}

std::optional<std::string> read_varbytes(util::ByteReader& reader) {
  const auto len = reader.varint();
  if (!len) return std::nullopt;
  const auto view = reader.bytes_view(static_cast<std::size_t>(*len));
  if (!view) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(view->data()), view->size());
}

bool write_all(std::FILE* file, const util::Bytes& bytes) {
  return std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
}

/// Parses one chunk payload into `records` (appending). Returns false on
/// any structural inconsistency -- which, after a passed CRC, means a
/// writer/reader schema bug rather than disk corruption.
bool decode_chunk_payload(std::span<const std::uint8_t> payload,
                          std::size_t metric_count,
                          std::vector<TrialRecord>& records) {
  util::ByteReader reader(payload);
  const auto n_opt = reader.varint();
  if (!n_opt || *n_opt == 0) return false;
  // A chunk cannot hold more records than bytes in its index column.
  if (*n_opt > payload.size()) return false;
  const auto n = static_cast<std::size_t>(*n_opt);

  const std::size_t first = records.size();
  records.resize(first + n);

  // Trial index column: absolute, then strictly ascending deltas.
  std::uint64_t trial = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = reader.varint();
    if (!v) return false;
    if (i == 0) {
      trial = *v;
    } else {
      if (*v == 0) return false;  // duplicates within a chunk are malformed
      trial += *v;
    }
    records[first + i].trial = trial;
  }

  // Failure bitmap + messages.
  const auto bitmap = reader.bytes_view((n + 7) / 8);
  if (!bitmap) return false;
  for (std::size_t i = 0; i < n; ++i) {
    records[first + i].failed = ((*bitmap)[i / 8] >> (i % 8) & 1) != 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!records[first + i].failed) continue;
    auto message = read_varbytes(reader);
    if (!message) return false;
    records[first + i].error = std::move(*message);
  }

  // Metric columns (failed trials carry 0.0 placeholders).
  for (std::size_t i = 0; i < n; ++i) records[first + i].values.resize(metric_count);
  for (std::size_t m = 0; m < metric_count; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto bits = reader.u64();
      if (!bits) return false;
      records[first + i].values[m] = std::bit_cast<double>(*bits);
    }
  }

  // Trace counter columns, column-major.
  std::vector<std::array<std::uint64_t, kTraceColumnCount>> rows(n);
  for (std::size_t c = 0; c < kTraceColumnCount; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = reader.varint();
      if (!v) return false;
      rows[i][c] = *v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    records[first + i].trace = unflatten_trace(rows[i]);
  }

  return reader.ok() && reader.exhausted();
}

}  // namespace

util::Bytes encode_header(const ShardSpec& spec) {
  util::Bytes out;
  for (char c : kFileMagic) out.push_back(static_cast<std::uint8_t>(c));
  util::put_u64(out, spec.schema_hash());
  put_varbytes(out, spec.sweep_id);
  util::put_varint(out, spec.shard_index);
  util::put_varint(out, spec.shard_count);
  util::put_u64(out, spec.base_seed);
  util::put_varint(out, spec.total_trials);
  util::put_varint(out, spec.metric_names.size());
  for (const std::string& name : spec.metric_names) put_varbytes(out, name);
  util::put_u32(out, util::crc32(out));
  return out;
}

util::Bytes encode_chunk(std::span<const TrialRecord> records,
                         std::size_t metric_count, std::uint64_t completed_total,
                         std::uint64_t wall_micros) {
  util::Bytes payload;
  util::put_varint(payload, records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    util::put_varint(payload, i == 0 ? records[0].trial
                                     : records[i].trial - records[i - 1].trial);
  }
  util::Bytes bitmap((records.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].failed) bitmap[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  util::put_bytes(payload, bitmap);
  for (const TrialRecord& r : records) {
    if (r.failed) put_varbytes(payload, r.error);
  }
  for (std::size_t m = 0; m < metric_count; ++m) {
    for (const TrialRecord& r : records) {
      const double v = m < r.values.size() ? r.values[m] : 0.0;
      util::put_u64(payload, std::bit_cast<std::uint64_t>(v));
    }
  }
  for (std::size_t c = 0; c < kTraceColumnCount; ++c) {
    for (const TrialRecord& r : records) {
      util::put_varint(payload, flatten_trace(r.trace)[c]);
    }
  }

  util::Bytes out;
  for (char c : kChunkMagic) out.push_back(static_cast<std::uint8_t>(c));
  util::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  util::put_bytes(out, payload);
  // Footer: cumulative progress + wall time, CRC over payload and both.
  util::Bytes footer;
  util::put_u64(footer, completed_total);
  util::put_u64(footer, wall_micros);
  std::uint32_t crc = util::crc32_init();
  crc = util::crc32_update(crc, payload);
  crc = util::crc32_update(crc, footer);
  util::put_bytes(out, footer);
  util::put_u32(out, util::crc32_final(crc));
  return out;
}

std::optional<ShardFileData> read_shard_file(const std::string& path,
                                             std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<ShardFileData> {
    if (error != nullptr) *error = path + ": " + message;
    return std::nullopt;
  };

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return fail("cannot open");
  util::Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(file);

  // -- Header (any damage here is a hard error: nothing can be salvaged) --
  util::ByteReader reader(data);
  const auto magic = reader.bytes_view(sizeof(kFileMagic));
  if (!magic || std::memcmp(magic->data(), kFileMagic, sizeof(kFileMagic)) != 0) {
    return fail("not a .sndshard file (bad magic)");
  }
  ShardFileData out;
  const auto schema = reader.u64();
  auto sweep_id = read_varbytes(reader);
  const auto shard_index = reader.varint();
  const auto shard_count = reader.varint();
  const auto base_seed = reader.u64();
  const auto total_trials = reader.varint();
  const auto metric_count = reader.varint();
  if (!schema || !sweep_id || !shard_index || !shard_count || !base_seed ||
      !total_trials || !metric_count || *metric_count > 1024) {
    return fail("truncated or corrupt header");
  }
  out.spec.sweep_id = std::move(*sweep_id);
  out.spec.shard_index = static_cast<std::uint32_t>(*shard_index);
  out.spec.shard_count = static_cast<std::uint32_t>(*shard_count);
  out.spec.base_seed = *base_seed;
  out.spec.total_trials = *total_trials;
  for (std::uint64_t m = 0; m < *metric_count; ++m) {
    auto name = read_varbytes(reader);
    if (!name) return fail("truncated or corrupt header (metric names)");
    out.spec.metric_names.push_back(std::move(*name));
  }
  const std::size_t header_size = data.size() - reader.remaining();
  const auto header_crc = reader.u32();
  if (!header_crc ||
      *header_crc != util::crc32(std::span(data).first(header_size))) {
    return fail("header CRC mismatch");
  }
  if (out.spec.shard_count == 0 || out.spec.shard_index >= out.spec.shard_count) {
    return fail("header declares shard " + std::to_string(out.spec.shard_index) +
                "/" + std::to_string(out.spec.shard_count));
  }
  if (out.spec.schema_hash() != *schema) {
    return fail("schema hash mismatch (file written by an incompatible build)");
  }

  // -- Chunks (a bad chunk ends the valid prefix; the tail is discarded) --
  out.valid_bytes = header_size + 4;
  std::vector<std::uint8_t> seen((out.spec.total_trials + 7) / 8, 0);
  while (reader.remaining() > 0) {
    const std::size_t chunk_start = data.size() - reader.remaining();
    util::ByteReader peek{std::span(data).subspan(chunk_start)};
    const auto chunk_magic = peek.bytes_view(sizeof(kChunkMagic));
    if (!chunk_magic ||
        std::memcmp(chunk_magic->data(), kChunkMagic, sizeof(kChunkMagic)) != 0) {
      break;  // torn tail
    }
    const auto payload_len = peek.u32();
    if (!payload_len || peek.remaining() < *payload_len + kChunkFooterSize) {
      break;  // torn tail
    }
    const auto payload = *peek.bytes_view(*payload_len);
    const auto completed_total = *peek.u64();
    const auto wall_micros = *peek.u64();
    const auto crc = *peek.u32();
    std::uint32_t want = util::crc32_init();
    want = util::crc32_update(want, payload);
    want = util::crc32_update(
        want, std::span(data).subspan(chunk_start + kChunkHeaderSize + *payload_len,
                                      16));
    if (crc != util::crc32_final(want)) break;  // torn tail

    // CRC passed: the chunk's *content* must now be consistent, or the file
    // was written by a buggy/hostile producer -- hard error, not a tail.
    const std::size_t before = out.records.size();
    if (!decode_chunk_payload(payload, out.spec.metric_names.size(), out.records)) {
      return fail("chunk at byte " + std::to_string(chunk_start) +
                  " is internally inconsistent");
    }
    for (std::size_t i = before; i < out.records.size(); ++i) {
      const std::uint64_t trial = out.records[i].trial;
      if (!out.spec.owns(trial)) {
        return fail("trial " + std::to_string(trial) + " does not belong to shard " +
                    std::to_string(out.spec.shard_index) + "/" +
                    std::to_string(out.spec.shard_count));
      }
      if ((seen[trial / 8] >> (trial % 8) & 1) != 0) {
        return fail("trial " + std::to_string(trial) + " recorded twice");
      }
      seen[trial / 8] |= static_cast<std::uint8_t>(1u << (trial % 8));
    }
    if (completed_total != out.records.size()) {
      return fail("checkpoint footer counts " + std::to_string(completed_total) +
                  " trials, file holds " + std::to_string(out.records.size()));
    }
    out.wall_seconds = static_cast<double>(wall_micros) / 1e6;
    const std::size_t chunk_size =
        kChunkHeaderSize + *payload_len + kChunkFooterSize;
    out.valid_bytes = chunk_start + chunk_size;
    reader = util::ByteReader(std::span(data).subspan(chunk_start + chunk_size));
  }
  // Everything after the last valid chunk is the (expected-after-crash) tail.
  out.discarded_bytes = data.size() - out.valid_bytes;
  return out;
}

ShardWriter::~ShardWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ShardWriter::open_new(const std::string& path, const ShardSpec& spec,
                           std::string* error) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) *error = path + ": cannot open for writing";
    return false;
  }
  path_ = path;
  spec_ = spec;
  completed_ = 0;
  if (!write_all(file_, encode_header(spec)) || std::fflush(file_) != 0) {
    if (error != nullptr) *error = path + ": header write failed";
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  return true;
}

bool ShardWriter::open_resume(const std::string& path, const ShardSpec& spec,
                              std::vector<TrialRecord>* completed,
                              std::string* error) {
  if (!std::filesystem::exists(path)) return open_new(path, spec, error);
  auto existing = read_shard_file(path, error);
  if (!existing) return false;
  if (existing->spec.shard_index != spec.shard_index) {
    if (error != nullptr) {
      *error = path + ": file is shard " + std::to_string(existing->spec.shard_index) +
               ", expected " + std::to_string(spec.shard_index);
    }
    return false;
  }
  if (const std::string why = spec.mismatch(existing->spec); !why.empty()) {
    if (error != nullptr) *error = path + ": cannot resume: " + why;
    return false;
  }

  // Drop the torn tail so the next chunk starts at a clean boundary.
  std::error_code ec;
  std::filesystem::resize_file(path, existing->valid_bytes, ec);
  if (ec) {
    if (error != nullptr) *error = path + ": cannot truncate torn tail";
    return false;
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    if (error != nullptr) *error = path + ": cannot reopen for append";
    return false;
  }
  path_ = path;
  spec_ = spec;
  completed_ = existing->records.size();
  resumed_wall_ = existing->wall_seconds;
  if (completed != nullptr) *completed = std::move(existing->records);
  return true;
}

void ShardWriter::append(TrialRecord record) { buffer_.push_back(std::move(record)); }

bool ShardWriter::checkpoint(double wall_seconds) {
  if (file_ == nullptr) return false;
  if (buffer_.empty()) return true;
  std::sort(buffer_.begin(), buffer_.end(),
            [](const TrialRecord& a, const TrialRecord& b) { return a.trial < b.trial; });
  completed_ += buffer_.size();
  const util::Bytes chunk =
      encode_chunk(buffer_, spec_.metric_names.size(), completed_,
                   static_cast<std::uint64_t>(wall_seconds * 1e6));
  buffer_.clear();
  return write_all(file_, chunk) && std::fflush(file_) == 0;
}

bool ShardWriter::close(double wall_seconds) {
  if (file_ == nullptr) return false;
  const bool ok = checkpoint(wall_seconds);
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  return ok && closed;
}

}  // namespace snd::shard
