#include "shard/merge.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/summary.h"

namespace snd::shard {

std::optional<MergeResult> merge_shards(const std::vector<std::string>& paths,
                                        std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<MergeResult> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (paths.empty()) return fail("no shard files given");

  std::vector<ShardFileData> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string why;
    auto data = read_shard_file(path, &why);
    if (!data) return fail(why);
    files.push_back(std::move(*data));
  }

  // All files must describe the same sweep; shard indices must be distinct.
  const ShardSpec& first = files.front().spec;
  std::vector<const ShardFileData*> by_shard(first.shard_count, nullptr);
  for (std::size_t f = 0; f < files.size(); ++f) {
    if (const std::string why = first.mismatch(files[f].spec); !why.empty()) {
      return fail(paths[f] + ": incompatible with " + paths.front() + ": " + why);
    }
    const std::uint32_t index = files[f].spec.shard_index;
    if (by_shard[index] != nullptr) {
      return fail(paths[f] + ": shard " + std::to_string(index) +
                  " already provided by another file (overlapping shards)");
    }
    by_shard[index] = &files[f];
  }

  // Coverage: every trial index present exactly once across all files.
  // (read_shard_file already rejected duplicates within a file and records
  // outside their file's shard, so cross-file duplicates can only come from
  // two files claiming the same shard_index -- rejected above.)
  const std::size_t total = static_cast<std::size_t>(first.total_trials);
  std::vector<const TrialRecord*> by_trial(total, nullptr);
  std::uint64_t present = 0;
  for (const ShardFileData& file : files) {
    for (const TrialRecord& record : file.records) {
      by_trial[record.trial] = &record;
      ++present;
    }
  }
  if (present != total) {
    std::string missing;
    std::size_t shown = 0;
    for (std::size_t i = 0; i < total && shown < 5; ++i) {
      if (by_trial[i] == nullptr) {
        missing += (shown > 0 ? ", " : "") + std::to_string(i);
        ++shown;
      }
    }
    return fail("incomplete coverage: " + std::to_string(total - present) + " of " +
                std::to_string(total) + " trials missing (first: " + missing +
                ") -- is a shard file absent or truncated?");
  }

  // Fold in global trial order through the same code paths an unsharded
  // driver uses, so the canonical JSON matches byte for byte.
  MergeResult out;
  out.report.name = first.sweep_id;
  out.report.trials = total;
  for (const std::string& name : first.metric_names) out.report.metric(name);
  obs::Registry registry(total);
  for (std::size_t i = 0; i < total; ++i) {
    const TrialRecord& record = *by_trial[i];
    registry.record(i, record.trace);
    if (record.failed) {
      ++out.report.failed;
      if (out.report.errors.size() < runner::SweepReport::kMaxReportedErrors) {
        out.report.errors.push_back("trial " + std::to_string(i) + ": " + record.error);
      }
      continue;
    }
    for (std::size_t m = 0; m < first.metric_names.size(); ++m) {
      out.report.metric(first.metric_names[m])
          .add(m < record.values.size() ? record.values[m] : 0.0);
    }
  }
  out.report.attach_trace(registry.fold());

  for (std::uint32_t s = 0; s < first.shard_count; ++s) {
    const ShardFileData* file = by_shard[s];
    if (file == nullptr) continue;  // fully covered by other shards only if total==0
    ShardSummary summary;
    summary.shard_index = s;
    summary.records = file->records.size();
    summary.wall_seconds = file->wall_seconds;
    for (std::size_t f = 0; f < files.size(); ++f) {
      if (&files[f] == file) summary.path = paths[f];
    }
    out.shards.push_back(std::move(summary));
  }
  return out;
}

namespace {

std::string num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace

std::string summary_markdown(const MergeResult& result) {
  const runner::SweepReport& report = result.report;
  std::string md = "### Sharded sweep: `" + report.name + "`\n\n";
  md += std::to_string(report.trials) + " trials across " +
        std::to_string(result.shards.size()) + " shards, " +
        std::to_string(report.failed) + " failed\n\n";

  md += "| metric | count | mean | ci95 low | ci95 high | stdev |\n";
  md += "|---|---|---|---|---|---|\n";
  for (const auto& [name, series] : report.metrics) {
    const double mean = series.mean();
    const double stdev = series.stdev();
    const double sem =
        series.count() > 1 ? stdev / std::sqrt(static_cast<double>(series.count())) : 0.0;
    md += "| " + name + " | " + std::to_string(series.count()) + " | " +
          num(mean, 4) + " | " + num(mean - 1.96 * sem, 4) + " | " +
          num(mean + 1.96 * sem, 4) + " | " + num(stdev, 4) + " |\n";
  }

  md += "\n| shard | trials | wall seconds |\n|---|---|---|\n";
  for (const ShardSummary& shard : result.shards) {
    md += "| " + std::to_string(shard.shard_index) + " | " +
          std::to_string(shard.records) + " | " + num(shard.wall_seconds, 2) + " |\n";
  }
  return md;
}

}  // namespace snd::shard
