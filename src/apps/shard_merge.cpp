// Folds N .sndshard checkpoint files into one canonical BENCH report.
//
//   ./shard_merge shard_0.sndshard shard_1.sndshard ...
//                 [--out PATH] [--summary-md PATH]
//
// Every file must describe the same sweep (sweep_id, shard_count,
// base_seed, total_trials, schema hash), the shard indices must be
// distinct, and the union of records must cover every trial exactly once.
// Any overlap, gap, or spec mismatch exits non-zero with a precise message
// -- a partial farm run can never silently masquerade as a complete sweep.
//
// The merged JSON is the sweep's canonical report (trial counts, per-metric
// mean/ci95, error list, folded trace) with no timing fields, so it is
// byte-identical to the `--canonical-report` output of an unsharded run of
// the same sweep. CI asserts exactly that (see docs/SHARDING.md).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "shard/merge.h"
#include "util/driver_spec.h"
#include "util/runtime_config.h"

namespace {

using namespace snd;

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::DriverSpec driver_spec(
      "shard_merge",
      "Fold .sndshard checkpoint files from a sharded sweep back into the\n"
      "canonical BENCH report (default --out: $SND_BENCH_DIR/\n"
      "BENCH_<sweep_id>.json).");
  driver_spec.string_flag("out", "", "PATH", "write the merged report JSON to PATH")
      .string_flag("summary-md", "", "PATH", "also write a markdown summary table")
      .positional("SHARD.sndshard", "shard files to merge", 1);
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  const std::string out_flag = cli.get("out");
  const std::string summary_path = cli.get("summary-md");

  std::string error;
  const auto merged = shard::merge_shards(cli.positional(), &error);
  if (!merged) {
    std::cerr << cli.program() << ": " << error << "\n";
    return 1;
  }

  std::string out_path = out_flag;
  if (out_path.empty()) {
    out_path = bench_artifact_path("BENCH_" + merged->report.name + ".json");
  }
  if (!write_file(out_path, merged->report.to_canonical_json())) {
    std::cerr << cli.program() << ": cannot write " << out_path << "\n";
    return 1;
  }
  if (!summary_path.empty() &&
      !write_file(summary_path, shard::summary_markdown(*merged))) {
    std::cerr << cli.program() << ": cannot write " << summary_path << "\n";
    return 1;
  }

  std::cout << merged->report.name << ": merged " << merged->shards.size()
            << " shards, " << merged->report.trials << " trials ("
            << merged->report.failed << " failed) -> " << out_path << "\n";
  for (const shard::ShardSummary& shard : merged->shards) {
    std::printf("  shard %u: %llu trials, %.2f s  (%s)\n", shard.shard_index,
                static_cast<unsigned long long>(shard.records), shard.wall_seconds,
                shard.path.c_str());
  }
  return 0;
}
