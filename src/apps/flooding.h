// Network-wide flooding cost model. Replica-detection schemes end with a
// flooded revocation of the detected identity (Parno et al. §5); SND never
// needs one. Classic blind flooding: every node that receives the message
// retransmits it exactly once.
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace snd::apps {

struct FloodCost {
  /// Devices the flood reached (including the origin).
  std::size_t reached = 0;
  /// Retransmissions (one per reached device).
  std::size_t transmissions = 0;
  std::uint64_t bytes = 0;
};

/// BFS over the ground-truth link graph from `origin`, charging one
/// retransmission of `payload_bytes` (+ MAC header) per reached device.
FloodCost estimate_flood(const sim::Network& network, sim::DeviceId origin,
                         std::size_t payload_bytes);

}  // namespace snd::apps
