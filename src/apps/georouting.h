// Greedy geographic forwarding (GPSR's greedy mode, paper reference [12])
// over the simulated field. Serves two roles:
//   * substrate for the Parno et al. baseline, which routes location claims
//     to witnesses across the whole network, and
//   * downstream consumer for the application-impact experiments, where
//     forwarding is restricted to the *functional* topology to show what
//     false neighbor relations do to routing.
#pragma once

#include <optional>
#include <vector>

#include "sim/network.h"
#include "topology/graph.h"

namespace snd::apps {

struct Route {
  bool success = false;
  std::vector<sim::DeviceId> path;  // includes source; includes final device
  double length_m = 0.0;

  [[nodiscard]] std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

class GeoRouter {
 public:
  /// Routes over all alive devices using ground-truth radio links.
  explicit GeoRouter(const sim::Network& network);

  /// Routes only along links whose (identity -> identity) edge exists in
  /// `allowed`: forwarding restricted to validated functional relations.
  GeoRouter(const sim::Network& network, topology::Digraph allowed);

  /// Greedy forwarding from `from` toward the device holding `to`'s
  /// position; fails at a local minimum (no neighbor closer to the target).
  [[nodiscard]] Route route(sim::DeviceId from, sim::DeviceId to) const;

  /// Greedy forwarding toward an arbitrary position; terminates at the
  /// device where no neighbor makes progress (the "closest node" that
  /// geographic witness schemes address).
  [[nodiscard]] Route route_to_position(sim::DeviceId from, util::Vec2 target) const;

 private:
  [[nodiscard]] bool edge_allowed(const sim::Device& a, const sim::Device& b) const;
  [[nodiscard]] std::optional<sim::DeviceId> best_next_hop(sim::DeviceId current,
                                                           util::Vec2 target) const;

  const sim::Network& network_;
  std::optional<topology::Digraph> allowed_;
};

}  // namespace snd::apps
