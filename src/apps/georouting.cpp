#include "apps/georouting.h"

#include <limits>

namespace snd::apps {

GeoRouter::GeoRouter(const sim::Network& network) : network_(network) {}

GeoRouter::GeoRouter(const sim::Network& network, topology::Digraph allowed)
    : network_(network), allowed_(std::move(allowed)) {}

bool GeoRouter::edge_allowed(const sim::Device& a, const sim::Device& b) const {
  if (!network_.link(a.id, b.id)) return false;
  if (!allowed_) return true;
  return allowed_->has_edge(a.identity, b.identity);
}

std::optional<sim::DeviceId> GeoRouter::best_next_hop(sim::DeviceId current,
                                                      util::Vec2 target) const {
  const sim::Device& here = network_.device(current);
  const double current_distance = util::distance(here.position, target);

  std::optional<sim::DeviceId> best;
  double best_distance = current_distance;
  for (const sim::Device& candidate : network_.devices()) {
    if (candidate.id == current || !candidate.alive) continue;
    if (!edge_allowed(here, candidate)) continue;
    const double d = util::distance(candidate.position, target);
    if (d < best_distance) {
      best_distance = d;
      best = candidate.id;
    }
  }
  return best;
}

Route GeoRouter::route(sim::DeviceId from, sim::DeviceId to) const {
  const util::Vec2 target = network_.device(to).position;
  Route route = route_to_position(from, target);
  route.success = route.success && route.path.back() == to;
  return route;
}

Route GeoRouter::route_to_position(sim::DeviceId from, util::Vec2 target) const {
  Route route;
  route.path.push_back(from);

  sim::DeviceId current = from;
  // Greedy progress strictly decreases distance-to-target, so the walk
  // cannot revisit a device; the bound is a defensive backstop.
  const std::size_t max_hops = network_.device_count() + 1;
  while (route.path.size() <= max_hops) {
    if (network_.device(current).position == target) break;
    const auto next = best_next_hop(current, target);
    if (!next) break;  // local minimum: we are the closest reachable device
    route.length_m += util::distance(network_.device(current).position,
                                     network_.device(*next).position);
    current = *next;
    route.path.push_back(current);
  }
  route.success = true;
  return route;
}

}  // namespace snd::apps
