#include "apps/aggregation.h"

#include <algorithm>
#include <cmath>

namespace snd::apps {

double synthetic_field(util::Vec2 position) {
  // Linear gradient plus a Gaussian hot spot: values differ by O(10) across
  // a few hundred meters, so geographically wrong members shift averages
  // noticeably.
  const double gradient = 0.05 * position.x + 0.02 * position.y;
  const util::Vec2 hot_spot{120.0, 80.0};
  const double d2 = util::distance_squared(position, hot_spot);
  return 20.0 + gradient + 15.0 * std::exp(-d2 / (2.0 * 60.0 * 60.0));
}

AggregationReport evaluate_aggregation(const Clustering& clustering,
                                       const std::map<NodeId, util::Vec2>& positions,
                                       const std::function<double(util::Vec2)>& field) {
  AggregationReport report;
  double error_sum = 0.0;
  for (const auto& [head, members] : clustering.clusters) {
    const auto head_position = positions.find(head);
    if (head_position == positions.end()) continue;

    double sum = 0.0;
    std::size_t sampled = 0;
    for (NodeId member : members) {
      const auto it = positions.find(member);
      if (it == positions.end()) continue;
      sum += field(it->second);
      ++sampled;
    }
    if (sampled == 0) continue;

    const double cluster_average = sum / static_cast<double>(sampled);
    const double truth = field(head_position->second);
    const double error = std::abs(cluster_average - truth);
    error_sum += error;
    report.max_error = std::max(report.max_error, error);
    ++report.clusters_evaluated;
  }
  if (report.clusters_evaluated > 0) {
    report.mean_error = error_sum / static_cast<double>(report.clusters_evaluated);
  }
  return report;
}

}  // namespace snd::apps
