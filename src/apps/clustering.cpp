#include "apps/clustering.h"

#include <algorithm>

namespace snd::apps {

bool Clustering::is_head(NodeId id) const {
  const auto it = head_of.find(id);
  return it != head_of.end() && it->second == id;
}

Clustering smallest_id_clustering(const topology::Digraph& neighbors) {
  Clustering clustering;
  const std::vector<NodeId> nodes = neighbors.nodes();

  // Pass 1: heads are nodes with the smallest ID in their closed
  // neighborhood.
  std::set<NodeId> heads;
  for (NodeId u : nodes) {
    const auto& succ = neighbors.successors(u);
    const bool smallest = succ.empty() || u < *succ.begin();
    if (smallest) heads.insert(u);
  }

  // Pass 2: non-heads join their smallest-ID head neighbor, or become
  // heads themselves if none of their neighbors is one.
  for (NodeId u : nodes) {
    if (heads.contains(u)) {
      clustering.head_of[u] = u;
      continue;
    }
    NodeId chosen = u;
    for (NodeId v : neighbors.successors(u)) {
      if (heads.contains(v)) {
        chosen = v;
        break;  // successors are ordered; first head is the smallest
      }
    }
    clustering.head_of[u] = chosen;
  }

  for (const auto& [node, head] : clustering.head_of) {
    clustering.clusters[head].push_back(node);
  }
  for (auto& [head, members] : clustering.clusters) {
    std::sort(members.begin(), members.end());
  }
  return clustering;
}

ClusterQuality evaluate_clusters(const Clustering& clustering,
                                 const std::map<NodeId, util::Vec2>& positions) {
  ClusterQuality quality;
  quality.cluster_count = clustering.cluster_count();

  double diameter_sum = 0.0;
  std::size_t measured_clusters = 0;
  for (const auto& [head, members] : clustering.clusters) {
    std::vector<util::Vec2> points;
    for (NodeId member : members) {
      const auto it = positions.find(member);
      if (it != positions.end()) points.push_back(it->second);
    }
    if (points.empty()) continue;

    const auto head_pos = positions.find(head);
    double diameter = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (head_pos != positions.end()) {
        quality.max_member_to_head_m = std::max(
            quality.max_member_to_head_m, util::distance(points[i], head_pos->second));
      }
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        diameter = std::max(diameter, util::distance(points[i], points[j]));
      }
    }
    quality.max_diameter_m = std::max(quality.max_diameter_m, diameter);
    diameter_sum += diameter;
    ++measured_clusters;
  }
  if (measured_clusters > 0) {
    quality.mean_diameter_m = diameter_sum / static_cast<double>(measured_clusters);
  }
  return quality;
}

}  // namespace snd::apps
