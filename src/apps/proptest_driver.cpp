// Property-suite CLI: randomized fault-injection trials over the SND
// protocol with invariant oracles, automatic fault-plan shrinking, and
// FAILCASE replay.
//
//   ./proptest_driver [--trials 20] [--seed 1] [--jobs N] [--ab-every 8]
//                     [--failcase-dir .] [--max-failures 5]
//                     [--plant none|uncounted_drop]
//                     [--replay-failcase PATH]
//                     [--log warn] [--trace off]
//
// --plant arms a deliberate, test-only bug inside fault::Injector so CI can
// prove the harness actually catches, shrinks, and replays real defects.
// --replay-failcase re-runs the exact (seed, plan) recorded in a FAILCASE
// artifact and verifies the run is bit-identical to the recorded failure.
#include <iostream>

#include "fault/injector.h"
#include "obs/config.h"
#include "proptest/runner.h"
#include "util/cli.h"

namespace {

using namespace snd;

int replay(const std::string& path) {
  const proptest::ReplayResult result = proptest::replay_failcase(path);
  if (!result.loaded) {
    std::cerr << "replay: " << result.error << "\n";
    return 2;
  }
  std::cout << "== FAILCASE replay: " << path << " ==\n"
            << "expected digest: " << result.expected_digest << "\n"
            << "observed digest: " << result.outcome.digest << "\n"
            << "digest match:    " << (result.digest_matches ? "yes" : "NO") << "\n"
            << "reproduced:      " << (result.reproduced ? "yes" : "NO") << "\n";
  for (const proptest::Violation& v : result.outcome.violations) {
    std::cout << "  [" << v.oracle << "] " << v.message << "\n";
  }
  // Success means the artifact reproduces bit-identically: same digest and
  // the violation fires again.
  return result.digest_matches && result.reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  proptest::PropConfig config;
  config.trials = static_cast<std::size_t>(cli.get_int("trials", 20));
  config.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.jobs = util::resolve_jobs(cli);
  config.ab_every = static_cast<std::size_t>(cli.get_int("ab-every", 8));
  config.failcase_dir = cli.get("failcase-dir", ".");
  config.max_failures = static_cast<std::size_t>(cli.get_int("max-failures", 5));
  const std::string plant = cli.get("plant", "none");
  const std::string replay_path = cli.get("replay-failcase", "");
  const obs::ObsConfig obs_config = obs::resolve_obs(cli);

  const auto planted = fault::planted_bug_from_name(plant);
  if (!planted) cli.record_error("--plant: unknown bug '" + plant + "'");
  if (!cli.validate(std::cerr,
                    {"trials", "seed", "jobs", "ab-every", "failcase-dir", "max-failures",
                     "plant", "replay-failcase", "log", "trace", "trace-json"},
                    "[--trials 20] [--seed 1] [--jobs N] [--ab-every 8]\n"
                    "       [--failcase-dir .] [--max-failures 5]\n"
                    "       [--plant none|uncounted_drop] [--replay-failcase PATH]\n"
                    "       [--log warn] [--trace off]")) {
    return 2;
  }
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;
  fault::set_planted_bug(*planted);

  if (!replay_path.empty()) return replay(replay_path);

  if (config.trials == 0) {
    std::cerr << cli.program() << ": --trials must be >= 1\n";
    return 2;
  }

  std::cout << "== SND property suite: " << config.trials << " randomized trials, seed "
            << config.base_seed << ", " << config.jobs << " jobs ==\n";
  if (*planted != fault::PlantedBug::kNone) {
    std::cout << "(planted bug armed: " << plant << ")\n";
  }

  const proptest::PropReport report = proptest::run_property_suite(config);

  std::cout << "\npassed " << report.passed << "/" << report.trials << ", failed "
            << report.failed << ", errored " << report.errored << ", A/B checked "
            << report.ab_checked << " (mismatches " << report.ab_mismatches << ")\n";
  for (const proptest::FailCase& failcase : report.failcases) {
    std::cout << "\nFAILCASE " << failcase.kind << " trial=" << failcase.trial
              << " seed=" << failcase.trial_seed << " plan " << failcase.plan.actions.size()
              << "/" << failcase.unshrunk_actions << " actions after "
              << failcase.shrink_runs << " shrink runs\n";
    for (const proptest::Violation& v : failcase.violations) {
      std::cout << "  [" << v.oracle << "] " << v.message << "\n";
    }
    if (!failcase.path.empty()) std::cout << "  artifact: " << failcase.path << "\n";
  }
  std::cout << (report.all_green() ? "\nALL INVARIANTS HELD\n" : "\nINVARIANT FAILURES\n");
  return report.all_green() ? 0 : 1;
}
