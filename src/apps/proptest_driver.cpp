// Property-suite CLI: randomized fault-injection trials over the SND
// protocol with invariant oracles, automatic fault-plan shrinking, and
// FAILCASE replay.
//
//   ./proptest_driver [--trials 20] [--seed 1] [--jobs N] [--ab-every 8]
//                     [--failcase-dir .] [--max-failures 5]
//                     [--plant none|uncounted_drop|verify_bypass|replay_window_bypass]
//                     [--adversary FAMILIES | --adversary-config PATH]
//                     [--replay-failcase PATH]
//                     [--log warn] [--trace off]
//
// --plant arms a deliberate, test-only bug inside fault::Injector so CI can
// prove the harness actually catches, shrinks, and replays real defects.
// --replay-failcase re-runs the exact (seed, plan) recorded in a FAILCASE
// artifact and verifies the run is bit-identical to the recorded failure.
#include <iostream>

#include "adversary/scenario.h"
#include "fault/injector.h"
#include "obs/config.h"
#include "proptest/runner.h"
#include "util/driver_spec.h"

namespace {

using namespace snd;

int replay(const std::string& path) {
  const proptest::ReplayResult result = proptest::replay_failcase(path);
  if (!result.loaded) {
    std::cerr << "replay: " << result.error << "\n";
    return 2;
  }
  std::cout << "== FAILCASE replay: " << path << " ==\n"
            << "expected digest: " << result.expected_digest << "\n"
            << "observed digest: " << result.outcome.digest << "\n"
            << "digest match:    " << (result.digest_matches ? "yes" : "NO") << "\n"
            << "reproduced:      " << (result.reproduced ? "yes" : "NO") << "\n";
  for (const proptest::Violation& v : result.outcome.violations) {
    std::cout << "  [" << v.oracle << "] " << v.message << "\n";
  }
  // Success means the artifact reproduces bit-identically: same digest and
  // the violation fires again.
  return result.digest_matches && result.reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  obs::ObsConfig obs_config;
  std::optional<adversary::ScenarioConfig> scenario;
  util::cli::DriverSpec driver_spec(
      "proptest_driver",
      "Property-based invariant fuzzing over random fault-injected\n"
      "deployments; failing trials are persisted as replayable failcases.");
  driver_spec.int_flag("trials", 20, "N", "random trials to run", 1)
      .int_flag("seed", 1, "S", "base seed for trial derivation")
      .int_flag("ab-every", 8, "N", "A/B-compare against the model every N trials", 0)
      .string_flag("failcase-dir", ".", "DIR", "directory for failcase JSON files")
      .int_flag("max-failures", 5, "N", "stop after N failing trials", 1)
      .string_flag("plant", "none", "BUG",
                   "plant a known bug (none|...) to exercise the harness",
                   [](std::string_view value) -> std::optional<std::string> {
                     if (fault::planted_bug_from_name(std::string(value))) return std::nullopt;
                     return "unknown bug '" + std::string(value) + "'";
                   })
      .string_flag("replay-failcase", "", "PATH", "replay one failcase file and exit")
      .group(util::cli::jobs_group(&jobs))
      .group(obs::obs_flag_group(&obs_config))
      .group(adversary::scenario_flag_group(&scenario));
  const util::cli::Driver cli = driver_spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  proptest::PropConfig config;
  config.trials = static_cast<std::size_t>(cli.get_int("trials"));
  config.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.jobs = jobs;
  config.ab_every = static_cast<std::size_t>(cli.get_int("ab-every"));
  config.failcase_dir = cli.get("failcase-dir");
  config.max_failures = static_cast<std::size_t>(cli.get_int("max-failures"));
  const std::string replay_path = cli.get("replay-failcase");
  const std::string plant = cli.get("plant");
  const fault::PlantedBug planted = *fault::planted_bug_from_name(plant);
  fault::set_planted_bug(planted);
  if (scenario) proptest::set_scenario_override(scenario);

  if (!replay_path.empty()) return replay(replay_path);

  std::cout << "== SND property suite: " << config.trials << " randomized trials, seed "
            << config.base_seed << ", " << config.jobs << " jobs ==\n";
  if (planted != fault::PlantedBug::kNone) {
    std::cout << "(planted bug armed: " << plant << ")\n";
  }
  if (scenario) {
    std::cout << "(adversary scenario override: " << scenario->to_json() << ")\n";
  }

  const proptest::PropReport report = proptest::run_property_suite(config);

  std::cout << "\npassed " << report.passed << "/" << report.trials << ", failed "
            << report.failed << ", errored " << report.errored << ", A/B checked "
            << report.ab_checked << " (mismatches " << report.ab_mismatches << ")\n";
  for (const proptest::FailCase& failcase : report.failcases) {
    std::cout << "\nFAILCASE " << failcase.kind << " trial=" << failcase.trial
              << " seed=" << failcase.trial_seed << " plan " << failcase.plan.actions.size()
              << "/" << failcase.unshrunk_actions << " actions after "
              << failcase.shrink_runs << " shrink runs\n";
    for (const proptest::Violation& v : failcase.violations) {
      std::cout << "  [" << v.oracle << "] " << v.message << "\n";
    }
    if (!failcase.path.empty()) std::cout << "  artifact: " << failcase.path << "\n";
  }
  std::cout << (report.all_green() ? "\nALL INVARIANTS HELD\n" : "\nINVARIANT FAILURES\n");
  return report.all_green() ? 0 : 1;
}
