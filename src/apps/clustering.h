// Smallest-ID clustering (Baker-Ephremides LCA; paper references [1][2]):
// the downstream algorithm the paper's introduction uses to motivate secure
// neighbor discovery. A node becomes cluster head if its ID is smallest in
// its closed neighborhood; otherwise it joins its smallest-ID head
// neighbor. Run over a tentative topology containing fabricated relations,
// clusters absorb members from far-apart regions -- the failure mode the
// protocol exists to prevent. Quality metrics quantify exactly that.
#pragma once

#include <map>
#include <vector>

#include "topology/graph.h"
#include "util/geometry.h"

namespace snd::apps {

struct Clustering {
  /// node -> its cluster head (heads map to themselves).
  std::map<NodeId, NodeId> head_of;
  /// head -> members (including the head), sorted.
  std::map<NodeId, std::vector<NodeId>> clusters;

  [[nodiscard]] std::size_t cluster_count() const { return clusters.size(); }
  [[nodiscard]] bool is_head(NodeId id) const;
};

/// Neighborhoods are the successor sets of `neighbors` (a tentative or
/// functional topology).
Clustering smallest_id_clustering(const topology::Digraph& neighbors);

struct ClusterQuality {
  std::size_t cluster_count = 0;
  /// Largest distance between any member and its cluster head.
  double max_member_to_head_m = 0.0;
  /// Largest pairwise member distance within any single cluster.
  double max_diameter_m = 0.0;
  double mean_diameter_m = 0.0;
};

/// `positions`: identity -> deployment position. Members without a known
/// position are skipped.
ClusterQuality evaluate_clusters(const Clustering& clustering,
                                 const std::map<NodeId, util::Vec2>& positions);

}  // namespace snd::apps
