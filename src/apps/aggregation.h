// Cluster-based in-network aggregation -- the paper's second motivating
// application: "some data aggregation (e.g., average in a particular area)
// may generate incorrect results" when clusters absorb far-away members
// through false neighbor relations.
//
// Each sensor samples a smooth synthetic field at its position; a cluster
// head aggregates its members' readings into one average that is supposed
// to describe the head's vicinity. The aggregation error of a cluster is
// the difference between that average and the true field value at the
// head -- small for geographically tight clusters, large when members
// were pulled in from a region where the field differs.
#pragma once

#include <functional>
#include <map>

#include "apps/clustering.h"
#include "util/geometry.h"

namespace snd::apps {

/// A spatial quantity sensors measure (temperature-like): smooth gradient
/// plus a radial hot spot, so distant field positions read differently.
double synthetic_field(util::Vec2 position);

struct AggregationReport {
  /// Mean |cluster average - true value at head| over clusters.
  double mean_error = 0.0;
  /// Worst cluster's error.
  double max_error = 0.0;
  std::size_t clusters_evaluated = 0;
};

/// Evaluates per-cluster averaging error. `positions`: identity ->
/// deployment position; `field` defaults to synthetic_field.
AggregationReport evaluate_aggregation(
    const Clustering& clustering, const std::map<NodeId, util::Vec2>& positions,
    const std::function<double(util::Vec2)>& field = synthetic_field);

}  // namespace snd::apps
