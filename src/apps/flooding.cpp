#include "apps/flooding.h"

#include <queue>
#include <vector>

namespace snd::apps {

FloodCost estimate_flood(const sim::Network& network, sim::DeviceId origin,
                         std::size_t payload_bytes) {
  FloodCost cost;
  if (origin >= network.device_count() || !network.device(origin).alive) return cost;

  std::vector<bool> visited(network.device_count(), false);
  std::queue<sim::DeviceId> frontier;
  visited[origin] = true;
  frontier.push(origin);

  while (!frontier.empty()) {
    const sim::DeviceId current = frontier.front();
    frontier.pop();
    ++cost.reached;
    ++cost.transmissions;
    cost.bytes += payload_bytes + sim::Packet::kHeaderBytes;

    for (const sim::Device& candidate : network.devices()) {
      if (visited[candidate.id] || !candidate.alive) continue;
      if (!network.link(current, candidate.id)) continue;
      visited[candidate.id] = true;
      frontier.push(candidate.id);
    }
  }
  return cost;
}

}  // namespace snd::apps
