// Long-lived neighbor-validation daemon: owns a service::ValidationService
// and speaks the length-prefixed binary protocol of service/wire.h over an
// AF_UNIX socket (--socket PATH, clients served one at a time) or its own
// stdin/stdout (--stdio, for pipe-based harnesses and the CI smoke job).
//
//   ./snd_serve --socket /tmp/snd.sock --nodes 10000 --seed 7
//   ./snd_serve --stdio < requests.bin > responses.bin
//
// The bootstrap flags deploy a seeded uniform-random topology before
// serving, so a load generator can connect to a populated service; clients
// grow or shrink it afterwards with kEvent requests. A kShutdown request
// (or EOF in --stdio mode) stops the daemon. See docs/SERVICE.md for the
// frame layouts and epoch semantics.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.h"
#include "service/validation_service.h"
#include "service/wire.h"
#include "util/driver_spec.h"
#include "util/rng.h"

namespace {

using namespace snd;

bool read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n == 0) return false;  // clean EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Serves one connection until EOF or kShutdown; returns false when the
/// daemon should stop accepting (shutdown requested).
bool serve_connection(service::ValidationService& service, int in_fd, int out_fd) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t header[4];
    if (!read_exact(in_fd, header, sizeof(header))) return true;
    const std::uint32_t length = (std::uint32_t{header[0]} << 24) |
                                 (std::uint32_t{header[1]} << 16) |
                                 (std::uint32_t{header[2]} << 8) | header[3];
    if (length > service::wire::kMaxFrameBytes) {
      std::fprintf(stderr, "snd_serve: oversized frame (%u bytes), dropping client\n",
                   length);
      return true;
    }
    payload.resize(length);
    if (!read_exact(in_fd, payload.data(), payload.size())) return true;

    util::Bytes reply;
    const bool keep_serving = service::wire::handle_request(service, payload, reply);
    const util::Bytes framed = service::wire::frame(reply);
    if (!write_exact(out_fd, framed.data(), framed.size())) return true;
    if (!keep_serving) return false;
  }
}

int serve_socket(service::ValidationService& service, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("snd_serve: socket");
    return 1;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    std::fprintf(stderr, "snd_serve: socket path too long: %s\n", path.c_str());
    ::close(listener);
    return 1;
  }
  std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0 ||
      ::listen(listener, 8) < 0) {
    std::perror("snd_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "snd_serve: listening on %s (%zu nodes, epoch %llu)\n",
               path.c_str(), service.node_count(),
               static_cast<unsigned long long>(service.snapshot()->epoch()));

  bool keep_serving = true;
  while (keep_serving) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      std::perror("snd_serve: accept");
      break;
    }
    keep_serving = serve_connection(service, client, client);
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsConfig obs_config;
  util::cli::DriverSpec spec(
      "snd_serve",
      "Neighbor-validation service daemon: maintains a functional topology\n"
      "incrementally and answers F(u, v) queries over the binary protocol\n"
      "described in docs/SERVICE.md.");
  spec.string_flag("socket", "", "PATH", "serve clients on an AF_UNIX socket at PATH")
      .bool_flag("stdio", "serve a single session on stdin/stdout")
      .int_flag("nodes", 0, "N", "bootstrap: deploy N uniform-random nodes", 0)
      .double_flag("field", 1000.0, "W", "bootstrap: field is W x W meters", 1.0)
      .double_flag("radius", 50.0, "R", "radio range R in meters", 1e-9)
      .int_flag("threshold", 2, "T", "security threshold t", 0)
      .int_flag("seed", 1, "S", "bootstrap topology seed", 0)
      .group(obs::obs_flag_group(&obs_config));
  const util::cli::Driver cli = spec.parse(argc, argv);
  if (!cli.ok()) return cli.exit_code();
  if (!obs::apply_obs(obs_config, std::cerr)) return 2;

  const std::string socket_path = cli.get("socket");
  const bool stdio = cli.get_bool("stdio");
  if (socket_path.empty() == !stdio) {
    std::cerr << "snd_serve: pass exactly one of --socket PATH or --stdio\n";
    return 2;
  }

  service::ServiceConfig config;
  config.radio_range = cli.get_double("radius");
  config.threshold_t = static_cast<std::size_t>(cli.get_int("threshold"));
  service::ValidationService service(config);

  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  if (nodes > 0) {
    const double width = cli.get_double("field");
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    std::vector<std::pair<NodeId, util::Vec2>> bootstrap;
    bootstrap.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      bootstrap.emplace_back(static_cast<NodeId>(i),
                             util::Vec2{rng.uniform(0.0, width), rng.uniform(0.0, width)});
    }
    service.seed_topology(bootstrap);
  }

  if (stdio) {
    (void)serve_connection(service, STDIN_FILENO, STDOUT_FILENO);
    return 0;
  }
  return serve_socket(service, socket_path);
}
