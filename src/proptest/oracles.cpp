#include "proptest/oracles.h"

namespace snd::proptest {

namespace {

std::uint64_t drop(const Observation& o, obs::DropCause cause) {
  return o.drops[static_cast<std::size_t>(cause)];
}

std::optional<std::string> check_channel_conservation(const Observation& o) {
  // Every enumerated delivery candidate (plus every injected extra copy,
  // which the Network also counts as a candidate) ends exactly one way:
  // delivered, or charged to a channel-side drop cause. kSenderDead is
  // per-transmission (no candidates were enumerated) and kReplay is
  // post-delivery, so both stay out of the balance.
  const std::uint64_t outcomes = o.deliveries + drop(o, obs::DropCause::kOutOfRange) +
                                 drop(o, obs::DropCause::kCollision) +
                                 drop(o, obs::DropCause::kLoss) +
                                 drop(o, obs::DropCause::kHalfDuplex) +
                                 drop(o, obs::DropCause::kReceiverDead) +
                                 drop(o, obs::DropCause::kInjected);
  if (o.candidates == outcomes) return std::nullopt;
  return "candidates=" + std::to_string(o.candidates) +
         " != deliveries+channel_drops=" + std::to_string(outcomes);
}

std::optional<std::string> check_injected_conservation(const Observation& o) {
  const std::uint64_t injector_account = o.injected_drops + o.injected_bursts;
  const std::uint64_t metric = drop(o, obs::DropCause::kInjected);
  if (metric == injector_account) return std::nullopt;
  return "metrics injected drops=" + std::to_string(metric) +
         " != injector account=" + std::to_string(injector_account) +
         " (drops+bursts)";
}

std::optional<std::string> check_replay_bounded(const Observation& o) {
  const std::uint64_t replays = drop(o, obs::DropCause::kReplay);
  if (replays > o.deliveries) {
    return "replay drops=" + std::to_string(replays) + " exceed deliveries=" +
           std::to_string(o.deliveries);
  }
  std::uint64_t agent_rejects = 0;
  for (const AgentObservation& a : o.agents) agent_rejects += a.replay_rejects;
  // Detached agents (compromise) take their reject counts with them, so the
  // metric may exceed the surviving agents' sum -- never the reverse.
  if (agent_rejects > replays) {
    return "agents report " + std::to_string(agent_rejects) +
           " replay rejects but metrics counted " + std::to_string(replays);
  }
  return std::nullopt;
}

std::optional<std::string> check_record_consistency(const Observation& o) {
  for (const AgentObservation& a : o.agents) {
    if (a.discovery_complete && !a.has_record) {
      return "node " + std::to_string(a.id) + " completed discovery without a binding record";
    }
    if (a.has_record && !a.record_valid) {
      return "node " + std::to_string(a.id) +
             " holds a binding record whose commitment does not verify under K";
    }
    if (a.has_record && !a.record_lists_tentative) {
      return "node " + std::to_string(a.id) +
             " version-0 record does not list its tentative neighbor set";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_key_erasure(const Observation& o) {
  // A run is observed at scheduler quiescence, so every alive node that
  // froze its neighborhood has also passed validation and the erasure
  // deadline. Dead (crashed, never rebooted) nodes are exempt: their agent
  // stopped mid-protocol and the paper's trusted-window assumption only
  // covers nodes that stay up.
  for (const AgentObservation& a : o.agents) {
    if (a.alive && a.discovery_complete && a.master_present) {
      return "alive node " + std::to_string(a.id) +
             " still holds the master key K after quiescence";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_safety(const Observation& o) {
  if (o.safety_holds) return std::nullopt;
  char radius[32];
  std::snprintf(radius, sizeof(radius), "%.3f", o.max_impact_radius);
  return std::to_string(o.safety_violations) + " identity(ies) violate " +
         std::to_string(o.safety_d) + "-safety (max impact radius " + radius + ")";
}

std::optional<std::string> check_relay_bounded(const Observation& o) {
  // Authenticated direct verification must keep physically unreachable
  // identities out of benign tentative lists -- that is the division of
  // labor the paper assumes (direct verification defeats relays, SND
  // defeats compromise). Overreach is only well-defined when positions are
  // static (mobility moves nodes after acceptance) and when a scenario
  // audit ran at all; it is not gated on relay_armed because *any* armed
  // adversary admitting an out-of-range identity under claimed
  // authentication is the same defect.
  if (!o.adversary_armed || !o.verifier_authenticated || o.mobility_armed) {
    return std::nullopt;
  }
  if (o.relay_overreach == 0) return std::nullopt;
  return std::to_string(o.relay_overreach) +
         " tentative neighbor(s) on benign nodes have no in-range device "
         "despite authenticated verification (relay accepted)";
}

std::optional<std::string> check_sybil_bounded(const Observation& o) {
  // Sybil-minted identities hold no predistributed credentials, so with an
  // authenticating verifier none may reach a benign tentative list.
  if (!o.sybil_armed || !o.verifier_authenticated) return std::nullopt;
  if (o.sybil_admitted == 0) return std::nullopt;
  return std::to_string(o.sybil_admitted) +
         " sybil-minted identity(ies) entered benign tentative lists "
         "despite authenticated verification";
}

std::optional<std::string> check_replay_never_accepted(const Observation& o) {
  // The sliding windows reject every duplicate nonce unconditionally; a
  // window-flagged message that was still delivered is a transport defect
  // regardless of what adversary (if any) produced the duplicate.
  std::uint64_t accepts = 0;
  for (const AgentObservation& a : o.agents) accepts += a.replay_accepts;
  if (accepts == 0) return std::nullopt;
  return std::to_string(accepts) +
         " window-flagged duplicate message(s) were delivered to the protocol";
}

std::optional<std::string> check_record_version_bound(const Observation& o) {
  // The record server refuses updates past the configured allowance, so no
  // agent -- however churned, rebooted, or replayed-at -- may hold a record
  // version above max_updates (Thm 4's bounded-update premise).
  for (const AgentObservation& a : o.agents) {
    if (a.has_record && a.record_version > o.max_updates) {
      return "node " + std::to_string(a.id) + " holds record version " +
             std::to_string(a.record_version) + " above the max_updates allowance " +
             std::to_string(o.max_updates);
    }
  }
  return std::nullopt;
}

}  // namespace

const std::vector<Oracle>& default_oracles() {
  static const std::vector<Oracle> kOracles = {
      {"conservation.channel", check_channel_conservation},
      {"conservation.injected", check_injected_conservation},
      {"replay.bounded", check_replay_bounded},
      {"record.consistency", check_record_consistency},
      {"key.erasure", check_key_erasure},
      {"safety.d", check_safety},
      {"relay.bounded", check_relay_bounded},
      {"sybil.bounded", check_sybil_bounded},
      {"replay.never_accepted", check_replay_never_accepted},
      {"record.version_bound", check_record_version_bound},
  };
  return kOracles;
}

std::vector<Violation> check_all(const Observation& observation) {
  std::vector<Violation> violations;
  for (const Oracle& oracle : default_oracles()) {
    if (auto message = oracle.check(observation)) {
      violations.push_back(Violation{oracle.name, std::move(*message)});
    }
  }
  return violations;
}

}  // namespace snd::proptest
