#include "proptest/oracles.h"

namespace snd::proptest {

namespace {

std::uint64_t drop(const Observation& o, obs::DropCause cause) {
  return o.drops[static_cast<std::size_t>(cause)];
}

std::optional<std::string> check_channel_conservation(const Observation& o) {
  // Every enumerated delivery candidate (plus every injected extra copy,
  // which the Network also counts as a candidate) ends exactly one way:
  // delivered, or charged to a channel-side drop cause. kSenderDead is
  // per-transmission (no candidates were enumerated) and kReplay is
  // post-delivery, so both stay out of the balance.
  const std::uint64_t outcomes = o.deliveries + drop(o, obs::DropCause::kOutOfRange) +
                                 drop(o, obs::DropCause::kCollision) +
                                 drop(o, obs::DropCause::kLoss) +
                                 drop(o, obs::DropCause::kHalfDuplex) +
                                 drop(o, obs::DropCause::kReceiverDead) +
                                 drop(o, obs::DropCause::kInjected);
  if (o.candidates == outcomes) return std::nullopt;
  return "candidates=" + std::to_string(o.candidates) +
         " != deliveries+channel_drops=" + std::to_string(outcomes);
}

std::optional<std::string> check_injected_conservation(const Observation& o) {
  const std::uint64_t injector_account = o.injected_drops + o.injected_bursts;
  const std::uint64_t metric = drop(o, obs::DropCause::kInjected);
  if (metric == injector_account) return std::nullopt;
  return "metrics injected drops=" + std::to_string(metric) +
         " != injector account=" + std::to_string(injector_account) +
         " (drops+bursts)";
}

std::optional<std::string> check_replay_bounded(const Observation& o) {
  const std::uint64_t replays = drop(o, obs::DropCause::kReplay);
  if (replays > o.deliveries) {
    return "replay drops=" + std::to_string(replays) + " exceed deliveries=" +
           std::to_string(o.deliveries);
  }
  std::uint64_t agent_rejects = 0;
  for (const AgentObservation& a : o.agents) agent_rejects += a.replay_rejects;
  // Detached agents (compromise) take their reject counts with them, so the
  // metric may exceed the surviving agents' sum -- never the reverse.
  if (agent_rejects > replays) {
    return "agents report " + std::to_string(agent_rejects) +
           " replay rejects but metrics counted " + std::to_string(replays);
  }
  return std::nullopt;
}

std::optional<std::string> check_record_consistency(const Observation& o) {
  for (const AgentObservation& a : o.agents) {
    if (a.discovery_complete && !a.has_record) {
      return "node " + std::to_string(a.id) + " completed discovery without a binding record";
    }
    if (a.has_record && !a.record_valid) {
      return "node " + std::to_string(a.id) +
             " holds a binding record whose commitment does not verify under K";
    }
    if (a.has_record && !a.record_lists_tentative) {
      return "node " + std::to_string(a.id) +
             " version-0 record does not list its tentative neighbor set";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_key_erasure(const Observation& o) {
  // A run is observed at scheduler quiescence, so every alive node that
  // froze its neighborhood has also passed validation and the erasure
  // deadline. Dead (crashed, never rebooted) nodes are exempt: their agent
  // stopped mid-protocol and the paper's trusted-window assumption only
  // covers nodes that stay up.
  for (const AgentObservation& a : o.agents) {
    if (a.alive && a.discovery_complete && a.master_present) {
      return "alive node " + std::to_string(a.id) +
             " still holds the master key K after quiescence";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_safety(const Observation& o) {
  if (o.safety_holds) return std::nullopt;
  char radius[32];
  std::snprintf(radius, sizeof(radius), "%.3f", o.max_impact_radius);
  return std::to_string(o.safety_violations) + " identity(ies) violate " +
         std::to_string(o.safety_d) + "-safety (max impact radius " + radius + ")";
}

}  // namespace

const std::vector<Oracle>& default_oracles() {
  static const std::vector<Oracle> kOracles = {
      {"conservation.channel", check_channel_conservation},
      {"conservation.injected", check_injected_conservation},
      {"replay.bounded", check_replay_bounded},
      {"record.consistency", check_record_consistency},
      {"key.erasure", check_key_erasure},
      {"safety.d", check_safety},
  };
  return kOracles;
}

std::vector<Violation> check_all(const Observation& observation) {
  std::vector<Violation> violations;
  for (const Oracle& oracle : default_oracles()) {
    if (auto message = oracle.check(observation)) {
      violations.push_back(Violation{oracle.name, std::move(*message)});
    }
  }
  return violations;
}

}  // namespace snd::proptest
