#include "proptest/runner.h"

#include <cstdio>

#include "crypto/session_cache.h"
#include "util/json.h"
#include "util/rng.h"

namespace snd::proptest {

namespace {

std::string violations_json(const std::vector<Violation>& violations) {
  std::string out = "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"oracle\":" + util::json_quote(violations[i].oracle) +
           ",\"message\":" + util::json_quote(violations[i].message) + "}";
  }
  out += "]";
  return out;
}

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
                  std::fputc('\n', file) != EOF;
  return std::fclose(file) == 0 && ok;
}

std::string read_text(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok ? text : std::string{};
}

/// Writes the artifact into config.failcase_dir (when enabled) and records
/// the path on the failcase.
void emit(FailCase& failcase, const PropConfig& config) {
  if (config.failcase_dir.empty()) return;
  const std::string path = config.failcase_dir + "/FAILCASE_" + failcase.kind + "_" +
                           std::to_string(failcase.trial) + "_" +
                           std::to_string(failcase.trial_seed) + ".json";
  if (write_text(path, failcase.to_json())) failcase.path = path;
}

}  // namespace

std::string FailCase::to_json() const {
  std::string out = "{\"kind\":" + util::json_quote(kind);
  out += ",\"trial\":" + std::to_string(trial);
  out += ",\"base_seed\":" + std::to_string(base_seed);
  out += ",\"trial_seed\":" + std::to_string(trial_seed);
  out += ",\"digest\":" + util::json_quote(digest);
  out += ",\"unshrunk_actions\":" + std::to_string(unshrunk_actions);
  out += ",\"shrink_runs\":" + std::to_string(shrink_runs);
  out += ",\"violations\":" + violations_json(violations);
  out += ",\"plan\":" + plan.to_json();
  if (!adversary.empty()) out += ",\"adversary\":" + adversary.to_json();
  out += "}";
  return out;
}

PropReport run_property_suite(const PropConfig& config) {
  PropReport report;
  report.trials = config.trials;
  report.sweep.name = "proptest";

  // Phase 1: the parallel sweep. Each trial is self-contained (seed ->
  // scenario -> run -> oracle check) and lands in its own result slot, so
  // the outcome set is bit-identical for any --jobs.
  runner::TrialRunner pool(config.jobs);
  auto results = pool.run(
      config.trials, config.base_seed,
      [](std::size_t, std::uint64_t seed) { return run_trial(seed); }, &report.sweep);
  report.errored = report.sweep.failed;

  std::vector<std::size_t> failing;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].has_value()) continue;  // threw; already counted
    if (results[i]->passed()) {
      ++report.passed;
    } else {
      ++report.failed;
      failing.push_back(i);
    }
  }

  // Phase 2: serial shrinking of the first max_failures failures. Serial
  // because shrinking re-runs trials many times; parallelizing it would
  // buy little and interleave FAILCASE writes.
  for (const std::size_t i : failing) {
    if (report.failcases.size() >= config.max_failures) break;
    const std::uint64_t trial_seed = util::derive_seed(config.base_seed, i);
    const Scenario scenario = make_scenario(trial_seed);
    const ShrinkResult shrunk = shrink_failing_plan(trial_seed, scenario.plan);

    FailCase failcase;
    failcase.kind = "invariant";
    failcase.trial = i;
    failcase.base_seed = config.base_seed;
    failcase.trial_seed = trial_seed;
    failcase.unshrunk_actions = scenario.plan.actions.size();
    failcase.shrink_runs = shrunk.runs;
    failcase.adversary = scenario.adversary;
    if (shrunk.outcome.passed()) {
      // The serial re-run did not reproduce the sweep's failure -- record
      // the original outcome so the artifact still points at the evidence.
      failcase.plan = scenario.plan;
      failcase.digest = results[i]->digest;
      failcase.violations = results[i]->violations;
      failcase.unshrunk_actions = 0;
    } else {
      failcase.plan = shrunk.plan;
      failcase.digest = shrunk.outcome.digest;
      failcase.violations = shrunk.outcome.violations;
    }
    emit(failcase, config);
    report.failcases.push_back(std::move(failcase));
  }

  // Phase 3: the fast-vs-slow crypto A/B pass. Serial on purpose: the fast
  // path toggle is process-global, so it must never flip mid-sweep.
  if (config.ab_every > 0) {
    const bool was_fast = crypto::fast_path_enabled();
    for (std::size_t i = 0; i < results.size(); i += config.ab_every) {
      if (!results[i].has_value()) continue;
      const std::uint64_t trial_seed = util::derive_seed(config.base_seed, i);
      crypto::set_fast_path_enabled(false);
      const TrialOutcome slow = run_trial(trial_seed);
      crypto::set_fast_path_enabled(was_fast);
      ++report.ab_checked;
      if (slow.digest == results[i]->digest) continue;
      ++report.ab_mismatches;
      if (report.failcases.size() >= config.max_failures) continue;
      FailCase failcase;
      failcase.kind = "crypto_ab";
      failcase.trial = i;
      failcase.base_seed = config.base_seed;
      failcase.trial_seed = trial_seed;
      failcase.digest = slow.digest;
      failcase.violations.push_back(Violation{
          "crypto.ab", "fast-path digest " + results[i]->digest +
                           " != slow-path digest " + slow.digest});
      const Scenario ab_scenario = make_scenario(trial_seed);
      failcase.plan = ab_scenario.plan;
      failcase.adversary = ab_scenario.adversary;
      failcase.unshrunk_actions = failcase.plan.actions.size();
      emit(failcase, config);
      report.failcases.push_back(std::move(failcase));
    }
    crypto::set_fast_path_enabled(was_fast);
  }

  return report;
}

ReplayResult replay_failcase(const std::string& path) {
  ReplayResult result;
  const std::string text = read_text(path);
  if (text.empty()) {
    result.error = "cannot read " + path;
    return result;
  }
  const auto doc = util::JsonValue::parse(text);
  if (!doc || !doc->is_object()) {
    result.error = "malformed FAILCASE JSON";
    return result;
  }
  const auto trial_seed = doc->u64("trial_seed");
  const auto digest = doc->string("digest");
  const util::JsonValue* plan_value = doc->find("plan");
  if (!trial_seed || !digest || plan_value == nullptr) {
    result.error = "FAILCASE missing trial_seed/digest/plan";
    return result;
  }
  const auto plan = fault::FaultPlan::from_value(*plan_value);
  if (!plan) {
    result.error = "FAILCASE plan does not parse";
    return result;
  }
  // Older artifacts carry no "adversary" member: they replay with the
  // seed-drawn families, exactly as they ran. Newer ones pin the armed
  // config through the scenario override for the duration of the replay.
  std::optional<adversary::ScenarioConfig> armed;
  if (const util::JsonValue* adv = doc->find("adversary")) {
    armed = adversary::ScenarioConfig::from_value(*adv);
    if (!armed) {
      result.error = "FAILCASE adversary config does not parse";
      return result;
    }
  }
  result.loaded = true;
  result.expected_digest = std::string(*digest);
  const std::optional<adversary::ScenarioConfig> previous = scenario_override();
  if (armed) set_scenario_override(armed);
  result.outcome = run_trial(*trial_seed, *plan);
  if (armed) set_scenario_override(previous);
  result.reproduced = !result.outcome.passed();
  result.digest_matches = result.outcome.digest == result.expected_digest;
  return result;
}

}  // namespace snd::proptest
