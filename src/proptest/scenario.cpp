#include "proptest/scenario.h"

#include <algorithm>

#include "adversary/attacker.h"
#include "fault/injector.h"
#include "util/rng.h"

namespace snd::proptest {

namespace {

// Domain separators so scenario generation, plan generation, the attack,
// and the adversary-family draws come from independent streams: overriding
// the plan (shrinking) must not change which node gets compromised, and
// arming an adversary must not reshuffle the deployment geometry.
constexpr std::uint64_t kScenarioStream = 0x5ce7a210;
constexpr std::uint64_t kPlanStream = 0xfa017a7;
constexpr std::uint64_t kAttackStream = 0xa77ac4;
constexpr std::uint64_t kAdvStream = 0xadd5ce00;

std::optional<adversary::ScenarioConfig>& scenario_override_slot() {
  static std::optional<adversary::ScenarioConfig> g_override;
  return g_override;
}

// All fault windows land inside the first round's protocol activity.
constexpr std::int64_t kHorizonNs = 700'000'000;

fault::FaultAction random_action(util::Rng& rng, std::size_t node_count) {
  using fault::ActionKind;
  fault::FaultAction action;
  action.kind = static_cast<ActionKind>(rng.uniform_int(fault::kActionKindCount));
  const auto random_node = [&] {
    return static_cast<NodeId>(1 + rng.uniform_int(node_count));
  };
  switch (action.kind) {
    case ActionKind::kDrop:
      if (rng.chance(0.5)) action.match.src = random_node();
      if (rng.chance(0.3)) action.match.dst = random_node();
      action.match.probability = rng.chance(0.5) ? 1.0 : rng.uniform(0.2, 1.0);
      break;
    case ActionKind::kDuplicate:
      action.copies = 1 + static_cast<std::uint32_t>(rng.uniform_int(3));
      action.delay_ns = static_cast<std::int64_t>(rng.uniform(2e5, 5e6));
      action.match.probability = rng.uniform(0.3, 1.0);
      break;
    case ActionKind::kDelay:
      action.delay_ns = static_cast<std::int64_t>(rng.uniform(1e6, 4e7));
      action.match.probability = rng.uniform(0.3, 1.0);
      break;
    case ActionKind::kCorrupt:
      action.corrupt_mode = rng.chance(0.5) ? fault::CorruptMode::kBitFlip
                                            : fault::CorruptMode::kTruncate;
      action.match.probability = rng.uniform(0.2, 0.8);
      if (rng.chance(0.3)) action.match.max_hits = 1 + rng.uniform_int(4);
      break;
    case ActionKind::kCrash:
      action.node = random_node();
      action.at_ns = static_cast<std::int64_t>(rng.uniform(0.0, 0.6 * kHorizonNs));
      break;
    case ActionKind::kReboot:
      action.node = random_node();
      action.at_ns = static_cast<std::int64_t>(rng.uniform(0.3, 1.0) * kHorizonNs);
      break;
    case ActionKind::kSkew:
      action.node = random_node();
      action.drift = rng.uniform(0.85, 1.2);
      break;
    case ActionKind::kBurst: {
      const auto start = static_cast<std::int64_t>(rng.uniform(0.0, 0.8 * kHorizonNs));
      action.match.from_ns = start;
      action.match.until_ns = start + static_cast<std::int64_t>(rng.uniform(1e7, 1.5e8));
      action.match.probability = rng.uniform(0.5, 1.0);
      break;
    }
  }
  // Message-level actions sometimes target a phase or a time window.
  if (!action.is_lifecycle() && action.kind != ActionKind::kSkew &&
      action.kind != ActionKind::kBurst) {
    if (rng.chance(0.25)) {
      action.match.phase = static_cast<std::int16_t>(rng.uniform_int(4));
    }
    if (rng.chance(0.3)) {
      const auto start = static_cast<std::int64_t>(rng.uniform(0.0, 0.7 * kHorizonNs));
      action.match.from_ns = start;
      action.match.until_ns = start + static_cast<std::int64_t>(rng.uniform(5e7, 3e8));
    }
  }
  return action;
}

fault::FaultPlan random_plan(std::uint64_t trial_seed, std::size_t node_count) {
  util::Rng rng(util::derive_seed(trial_seed, kPlanStream));
  fault::FaultPlan plan;
  plan.seed = util::derive_seed(trial_seed, kPlanStream + 1);
  // ~1/4 of trials run with no plan at all, continuously re-validating that
  // an unarmed deployment stays on the golden path.
  const std::size_t n_actions = rng.chance(0.25) ? 0 : 1 + rng.uniform_int(4);
  plan.actions.reserve(n_actions);
  for (std::size_t i = 0; i < n_actions; ++i) {
    plan.actions.push_back(random_action(rng, node_count));
  }
  return plan;
}

/// Seed-drawn adversary/mobility families (~45% of trials arm at least
/// one). Every chance/uniform is drawn unconditionally in a fixed order so
/// the mapping from seed to config is easy to reason about.
adversary::ScenarioConfig random_adversary(std::uint64_t trial_seed) {
  util::Rng rng(util::derive_seed(trial_seed, kAdvStream));
  adversary::ScenarioConfig config;
  const bool armed = rng.chance(0.45);
  const bool want_mobility = rng.chance(0.35);
  const bool want_relay = rng.chance(0.4);
  const double relay_latency = rng.uniform(1e5, 1e6);
  const bool want_sybil = rng.chance(0.35);
  const auto sybil_identities = 4 + static_cast<std::uint32_t>(rng.uniform_int(9));
  const double sybil_x = rng.uniform(0.15, 0.85);
  const double sybil_y = rng.uniform(0.15, 0.85);
  const bool want_replay = rng.chance(0.4);
  const double replay_delay = rng.uniform(2e7, 2e8);
  const double replay_x = rng.uniform(0.15, 0.85);
  const double replay_y = rng.uniform(0.15, 0.85);
  const bool want_churn = rng.chance(0.35);
  const auto churn_victims = 1 + static_cast<std::uint32_t>(rng.uniform_int(2));
  const auto churn_cycles = 1 + static_cast<std::uint32_t>(rng.uniform_int(2));
  const auto mob_movers = 2 + static_cast<std::uint32_t>(rng.uniform_int(4));
  const double mob_speed = rng.uniform(4.0, 12.0);
  const auto mob_steps = 10 + static_cast<std::uint32_t>(rng.uniform_int(21));
  if (!armed) return config;

  if (want_mobility) {
    config.mobility.emplace();
    config.mobility->movers = mob_movers;
    config.mobility->speed_mps = mob_speed;
    config.mobility->steps = mob_steps;
    config.mobility->seed = util::derive_seed(trial_seed, kAdvStream + 1);
  } else if (want_relay) {
    // Relay and mobility are mutually exclusive: the relay.bounded oracle's
    // overreach audit is only sound over static positions.
    config.relay.emplace();
    config.relay->tunnel_latency_ns = static_cast<std::int64_t>(relay_latency);
  }
  if (want_sybil) {
    config.sybil.emplace();
    config.sybil->identities = sybil_identities;
    config.sybil->x = sybil_x;
    config.sybil->y = sybil_y;
  }
  if (want_replay) {
    config.replay.emplace();
    config.replay->delay_ns = static_cast<std::int64_t>(replay_delay);
    config.replay->x = replay_x;
    config.replay->y = replay_y;
  }
  if (want_churn) {
    config.churn.emplace();
    config.churn->victims = churn_victims;
    config.churn->cycles = churn_cycles;
    config.churn->seed = util::derive_seed(trial_seed, kAdvStream + 2);
  }
  return config;
}

}  // namespace

void set_scenario_override(std::optional<adversary::ScenarioConfig> config) {
  scenario_override_slot() = std::move(config);
}

const std::optional<adversary::ScenarioConfig>& scenario_override() {
  return scenario_override_slot();
}

Scenario make_scenario(std::uint64_t trial_seed) {
  util::Rng rng(util::derive_seed(trial_seed, kScenarioStream));
  Scenario s;
  s.trial_seed = trial_seed;

  core::DeploymentConfig& d = s.deployment;
  d.seed = util::derive_seed(trial_seed, kScenarioStream + 1);
  const double side = rng.uniform(80.0, 140.0);
  d.field = util::Rect{{0.0, 0.0}, {side, side}};
  d.radio_range = rng.uniform(35.0, 60.0);
  d.channel_loss = rng.chance(0.5) ? rng.uniform(0.0, 0.25) : 0.0;
  d.half_duplex = rng.chance(0.3);
  d.protocol.threshold_t = 1 + rng.uniform_int(3);
  d.protocol.max_updates = rng.chance(0.4) ? 1 + static_cast<std::uint32_t>(rng.uniform_int(2)) : 0;
  d.protocol.early_erasure = rng.chance(0.25);

  s.round1_nodes = 8 + rng.uniform_int(9);
  s.round2_nodes = rng.chance(0.6) ? 4 + rng.uniform_int(5) : 0;
  s.attack = s.round2_nodes > 0 && rng.chance(0.7);
  // Theorem 3 gives 2R-safety without updates; Theorem 4 gives (m+1)R with
  // the update extension. m == 1 coincides with 2R.
  const double multiplier =
      d.protocol.max_updates > 0 ? static_cast<double>(d.protocol.max_updates + 1) : 2.0;
  s.safety_d = multiplier * d.radio_range;

  s.plan = random_plan(trial_seed, s.round1_nodes);

  s.adversary = scenario_override() ? *scenario_override() : random_adversary(trial_seed);
  if (s.adversary.mobility) {
    // Moving nodes invalidate the replication attack's position audit and
    // the relay overreach audit alike: positions at observation time no
    // longer witness positions at acceptance time.
    s.attack = false;
    s.adversary.relay.reset();
  }
  return s;
}

TrialOutcome run_scenario(const Scenario& scenario) {
  core::SndDeployment deployment(scenario.deployment);
  if (fault::planted_bug() == fault::PlantedBug::kVerifyBypass) {
    // Planted defect: verification silently accepts everything while the
    // observation still reports it as authenticated (see observe()).
    deployment.set_verifier(std::make_shared<verify::NaiveVerifier>());
  }
  if (!scenario.plan.empty()) deployment.apply_fault_plan(scenario.plan);

  std::optional<adversary::ScenarioRuntime> runtime;
  if (!scenario.adversary.empty()) {
    runtime.emplace(deployment, scenario.adversary);
  }

  const std::vector<NodeId> round1 = deployment.deploy_round(scenario.round1_nodes);
  if (runtime) {
    if (scenario.adversary.churn && scenario.deployment.protocol.max_updates > 0) {
      // Churned neighborhoods only stress the Thm 4 update path if nodes
      // actually push updates as their functional sets evolve.
      for (const NodeId id : round1) {
        if (core::SndNode* agent = deployment.agent(id)) agent->set_auto_update(true);
      }
    }
    runtime->arm(round1);
  }
  deployment.run();

  std::optional<adversary::Attacker> attacker;
  if (scenario.attack) {
    util::Rng attack_rng(util::derive_seed(scenario.trial_seed, kAttackStream));
    adversary::MaliciousBehavior behavior;
    behavior.creep_with_updates = scenario.deployment.protocol.max_updates > 0;
    attacker.emplace(deployment, behavior);
    const NodeId victim = round1[attack_rng.uniform_int(round1.size())];
    if (attacker->compromise(victim)) {
      const util::Rect& field = scenario.deployment.field;
      const util::Vec2 position{attack_rng.uniform(field.lo.x, field.hi.x),
                                attack_rng.uniform(field.lo.y, field.hi.y)};
      attacker->place_replica(victim, position);
    }
  }

  if (scenario.round2_nodes > 0) {
    deployment.deploy_round(scenario.round2_nodes);
    deployment.run();
  }

  TrialOutcome outcome;
  outcome.observation = observe(deployment, scenario.safety_d, runtime ? &*runtime : nullptr);
  outcome.observation.trial_seed = scenario.trial_seed;
  outcome.violations = check_all(outcome.observation);
  outcome.digest = outcome.observation.digest();
  return outcome;
}

TrialOutcome run_trial(std::uint64_t trial_seed,
                       const std::optional<fault::FaultPlan>& plan_override) {
  Scenario scenario = make_scenario(trial_seed);
  if (plan_override) scenario.plan = *plan_override;
  return run_scenario(scenario);
}

}  // namespace snd::proptest
