#include "proptest/scenario.h"

#include <algorithm>

#include "adversary/attacker.h"
#include "util/rng.h"

namespace snd::proptest {

namespace {

// Domain separators so scenario generation, plan generation, and the attack
// draw from independent streams: overriding the plan (shrinking) must not
// change which node gets compromised.
constexpr std::uint64_t kScenarioStream = 0x5ce7a210;
constexpr std::uint64_t kPlanStream = 0xfa017a7;
constexpr std::uint64_t kAttackStream = 0xa77ac4;

// All fault windows land inside the first round's protocol activity.
constexpr std::int64_t kHorizonNs = 700'000'000;

fault::FaultAction random_action(util::Rng& rng, std::size_t node_count) {
  using fault::ActionKind;
  fault::FaultAction action;
  action.kind = static_cast<ActionKind>(rng.uniform_int(fault::kActionKindCount));
  const auto random_node = [&] {
    return static_cast<NodeId>(1 + rng.uniform_int(node_count));
  };
  switch (action.kind) {
    case ActionKind::kDrop:
      if (rng.chance(0.5)) action.match.src = random_node();
      if (rng.chance(0.3)) action.match.dst = random_node();
      action.match.probability = rng.chance(0.5) ? 1.0 : rng.uniform(0.2, 1.0);
      break;
    case ActionKind::kDuplicate:
      action.copies = 1 + static_cast<std::uint32_t>(rng.uniform_int(3));
      action.delay_ns = static_cast<std::int64_t>(rng.uniform(2e5, 5e6));
      action.match.probability = rng.uniform(0.3, 1.0);
      break;
    case ActionKind::kDelay:
      action.delay_ns = static_cast<std::int64_t>(rng.uniform(1e6, 4e7));
      action.match.probability = rng.uniform(0.3, 1.0);
      break;
    case ActionKind::kCorrupt:
      action.corrupt_mode = rng.chance(0.5) ? fault::CorruptMode::kBitFlip
                                            : fault::CorruptMode::kTruncate;
      action.match.probability = rng.uniform(0.2, 0.8);
      if (rng.chance(0.3)) action.match.max_hits = 1 + rng.uniform_int(4);
      break;
    case ActionKind::kCrash:
      action.node = random_node();
      action.at_ns = static_cast<std::int64_t>(rng.uniform(0.0, 0.6 * kHorizonNs));
      break;
    case ActionKind::kReboot:
      action.node = random_node();
      action.at_ns = static_cast<std::int64_t>(rng.uniform(0.3, 1.0) * kHorizonNs);
      break;
    case ActionKind::kSkew:
      action.node = random_node();
      action.drift = rng.uniform(0.85, 1.2);
      break;
    case ActionKind::kBurst: {
      const auto start = static_cast<std::int64_t>(rng.uniform(0.0, 0.8 * kHorizonNs));
      action.match.from_ns = start;
      action.match.until_ns = start + static_cast<std::int64_t>(rng.uniform(1e7, 1.5e8));
      action.match.probability = rng.uniform(0.5, 1.0);
      break;
    }
  }
  // Message-level actions sometimes target a phase or a time window.
  if (!action.is_lifecycle() && action.kind != ActionKind::kSkew &&
      action.kind != ActionKind::kBurst) {
    if (rng.chance(0.25)) {
      action.match.phase = static_cast<std::int16_t>(rng.uniform_int(4));
    }
    if (rng.chance(0.3)) {
      const auto start = static_cast<std::int64_t>(rng.uniform(0.0, 0.7 * kHorizonNs));
      action.match.from_ns = start;
      action.match.until_ns = start + static_cast<std::int64_t>(rng.uniform(5e7, 3e8));
    }
  }
  return action;
}

fault::FaultPlan random_plan(std::uint64_t trial_seed, std::size_t node_count) {
  util::Rng rng(util::derive_seed(trial_seed, kPlanStream));
  fault::FaultPlan plan;
  plan.seed = util::derive_seed(trial_seed, kPlanStream + 1);
  // ~1/4 of trials run with no plan at all, continuously re-validating that
  // an unarmed deployment stays on the golden path.
  const std::size_t n_actions = rng.chance(0.25) ? 0 : 1 + rng.uniform_int(4);
  plan.actions.reserve(n_actions);
  for (std::size_t i = 0; i < n_actions; ++i) {
    plan.actions.push_back(random_action(rng, node_count));
  }
  return plan;
}

}  // namespace

Scenario make_scenario(std::uint64_t trial_seed) {
  util::Rng rng(util::derive_seed(trial_seed, kScenarioStream));
  Scenario s;
  s.trial_seed = trial_seed;

  core::DeploymentConfig& d = s.deployment;
  d.seed = util::derive_seed(trial_seed, kScenarioStream + 1);
  const double side = rng.uniform(80.0, 140.0);
  d.field = util::Rect{{0.0, 0.0}, {side, side}};
  d.radio_range = rng.uniform(35.0, 60.0);
  d.channel_loss = rng.chance(0.5) ? rng.uniform(0.0, 0.25) : 0.0;
  d.half_duplex = rng.chance(0.3);
  d.protocol.threshold_t = 1 + rng.uniform_int(3);
  d.protocol.max_updates = rng.chance(0.4) ? 1 + static_cast<std::uint32_t>(rng.uniform_int(2)) : 0;
  d.protocol.early_erasure = rng.chance(0.25);

  s.round1_nodes = 8 + rng.uniform_int(9);
  s.round2_nodes = rng.chance(0.6) ? 4 + rng.uniform_int(5) : 0;
  s.attack = s.round2_nodes > 0 && rng.chance(0.7);
  // Theorem 3 gives 2R-safety without updates; Theorem 4 gives (m+1)R with
  // the update extension. m == 1 coincides with 2R.
  const double multiplier =
      d.protocol.max_updates > 0 ? static_cast<double>(d.protocol.max_updates + 1) : 2.0;
  s.safety_d = multiplier * d.radio_range;

  s.plan = random_plan(trial_seed, s.round1_nodes);
  return s;
}

TrialOutcome run_scenario(const Scenario& scenario) {
  core::SndDeployment deployment(scenario.deployment);
  if (!scenario.plan.empty()) deployment.apply_fault_plan(scenario.plan);

  const std::vector<NodeId> round1 = deployment.deploy_round(scenario.round1_nodes);
  deployment.run();

  std::optional<adversary::Attacker> attacker;
  if (scenario.attack) {
    util::Rng attack_rng(util::derive_seed(scenario.trial_seed, kAttackStream));
    adversary::MaliciousBehavior behavior;
    behavior.creep_with_updates = scenario.deployment.protocol.max_updates > 0;
    attacker.emplace(deployment, behavior);
    const NodeId victim = round1[attack_rng.uniform_int(round1.size())];
    if (attacker->compromise(victim)) {
      const util::Rect& field = scenario.deployment.field;
      const util::Vec2 position{attack_rng.uniform(field.lo.x, field.hi.x),
                                attack_rng.uniform(field.lo.y, field.hi.y)};
      attacker->place_replica(victim, position);
    }
  }

  if (scenario.round2_nodes > 0) {
    deployment.deploy_round(scenario.round2_nodes);
    deployment.run();
  }

  TrialOutcome outcome;
  outcome.observation = observe(deployment, scenario.safety_d);
  outcome.observation.trial_seed = scenario.trial_seed;
  outcome.violations = check_all(outcome.observation);
  outcome.digest = outcome.observation.digest();
  return outcome;
}

TrialOutcome run_trial(std::uint64_t trial_seed,
                       const std::optional<fault::FaultPlan>& plan_override) {
  Scenario scenario = make_scenario(trial_seed);
  if (plan_override) scenario.plan = *plan_override;
  return run_scenario(scenario);
}

}  // namespace snd::proptest
