#include "proptest/shrink.h"

namespace snd::proptest {

ShrinkResult shrink_failing_plan(std::uint64_t trial_seed, const fault::FaultPlan& plan) {
  ShrinkResult result;
  result.plan = plan;
  result.outcome = run_trial(trial_seed, plan);
  ++result.runs;
  if (result.outcome.passed()) return result;  // not reproducible; nothing to shrink

  // Fast path: if the empty plan already fails, the fault plan is
  // irrelevant to the bug and the minimal reproduction is plan-free.
  if (!result.plan.actions.empty()) {
    fault::FaultPlan empty;
    empty.seed = plan.seed;
    TrialOutcome outcome = run_trial(trial_seed, empty);
    ++result.runs;
    if (!outcome.passed()) {
      result.removed_actions = result.plan.actions.size();
      result.plan = std::move(empty);
      result.outcome = std::move(outcome);
      return result;
    }
  }

  // Greedy ddmin: drop one action at a time, restart the scan after every
  // successful removal, stop at a fixed point. Plans are tiny (<= a dozen
  // actions), so the quadratic worst case is immaterial.
  bool progressed = true;
  while (progressed && result.plan.actions.size() > 1) {
    progressed = false;
    for (std::size_t i = 0; i < result.plan.actions.size(); ++i) {
      fault::FaultPlan candidate = result.plan;
      candidate.actions.erase(candidate.actions.begin() +
                              static_cast<std::ptrdiff_t>(i));
      TrialOutcome outcome = run_trial(trial_seed, candidate);
      ++result.runs;
      if (!outcome.passed()) {
        result.plan = std::move(candidate);
        result.outcome = std::move(outcome);
        ++result.removed_actions;
        progressed = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace snd::proptest
