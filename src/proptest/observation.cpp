#include "proptest/observation.h"

#include "core/safety.h"
#include "crypto/sha256.h"

namespace snd::proptest {

namespace {

void append_u64(std::string& out, std::string_view key, std::uint64_t value) {
  out += "\"";
  out += key;
  out += "\":" + std::to_string(value) + ",";
}

void append_bool(std::string& out, std::string_view key, bool value) {
  out += "\"";
  out += key;
  out += value ? "\":true," : "\":false,";
}

}  // namespace

std::string Observation::to_json() const {
  std::string out = "{";
  append_u64(out, "trial_seed", trial_seed);
  append_u64(out, "candidates", candidates);
  append_u64(out, "deliveries", deliveries);
  out += "\"drops\":[";
  for (std::size_t i = 0; i < drops.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(drops[i]);
  }
  out += "],";
  append_bool(out, "fault_plan_armed", fault_plan_armed);
  append_u64(out, "injected_drops", injected_drops);
  append_u64(out, "injected_bursts", injected_bursts);
  append_u64(out, "injected_extra_copies", injected_extra_copies);
  append_u64(out, "injected_delays", injected_delays);
  append_u64(out, "injected_corrupts", injected_corrupts);
  // Doubles print with %.17g (shortest exact round-trip is overkill here;
  // 17 significant digits reproduce the bits).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"safety_d\":%.17g,", safety_d);
  out += buf;
  append_bool(out, "safety_holds", safety_holds);
  append_u64(out, "safety_violations", safety_violations);
  std::snprintf(buf, sizeof(buf), "\"max_impact_radius\":%.17g,", max_impact_radius);
  out += buf;
  out += "\"agents\":[";
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const AgentObservation& a = agents[i];
    if (i > 0) out += ",";
    out += "{";
    append_u64(out, "id", a.id);
    append_bool(out, "alive", a.alive);
    append_bool(out, "discovery_complete", a.discovery_complete);
    append_bool(out, "has_record", a.has_record);
    append_bool(out, "record_valid", a.record_valid);
    append_bool(out, "record_lists_tentative", a.record_lists_tentative);
    append_bool(out, "master_present", a.master_present);
    append_u64(out, "record_version", a.record_version);
    append_u64(out, "tentative", a.tentative);
    append_u64(out, "functional", a.functional);
    append_u64(out, "replay_rejects", a.replay_rejects);
    out.pop_back();  // trailing comma
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Observation::digest() const { return crypto::Sha256::hash(to_json()).hex(); }

Observation observe(const core::SndDeployment& deployment, double safety_d) {
  Observation out;
  const sim::Network& network = deployment.network();
  const sim::Metrics& metrics = network.metrics();

  out.candidates = metrics.candidates();
  out.deliveries = metrics.deliveries();
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) {
    out.drops[i] = metrics.drops(static_cast<obs::DropCause>(i));
  }

  if (const fault::Injector* injector = deployment.injector()) {
    out.fault_plan_armed = true;
    const fault::Injector::Counters& counters = injector->counters();
    out.injected_drops = counters.drops;
    out.injected_bursts = counters.bursts;
    out.injected_extra_copies = counters.extra_copies;
    out.injected_delays = counters.delays;
    out.injected_corrupts = counters.corrupts;
  }

  const core::SafetyReport safety = core::audit_safety(deployment, safety_d);
  out.safety_d = safety_d;
  out.safety_holds = safety.holds();
  out.safety_violations = safety.violation_count();
  out.max_impact_radius = safety.max_impact_radius();

  for (const core::SndNode* agent : deployment.agents()) {
    AgentObservation a;
    a.id = agent->identity();
    a.alive = network.device(agent->device()).alive;
    a.discovery_complete = agent->discovery_complete();
    a.has_record = agent->has_record();
    if (a.has_record) {
      const core::BindingRecord& record = agent->record();
      a.record_valid = record.verify(deployment.master_key());
      a.record_version = record.version;
      a.record_lists_tentative =
          record.version != 0 || record.neighbors == agent->tentative_neighbors();
    }
    a.master_present = agent->master_key_present();
    a.tentative = static_cast<std::uint32_t>(agent->tentative_neighbors().size());
    a.functional = static_cast<std::uint32_t>(agent->functional_neighbors().size());
    a.replay_rejects = agent->replay_rejects();
    out.agents.push_back(a);
  }
  return out;
}

}  // namespace snd::proptest
