#include "proptest/observation.h"

#include <algorithm>

#include "adversary/scenario.h"
#include "core/safety.h"
#include "crypto/sha256.h"
#include "fault/injector.h"

namespace snd::proptest {

namespace {

void append_u64(std::string& out, std::string_view key, std::uint64_t value) {
  out += "\"";
  out += key;
  out += "\":" + std::to_string(value) + ",";
}

void append_bool(std::string& out, std::string_view key, bool value) {
  out += "\"";
  out += key;
  out += value ? "\":true," : "\":false,";
}

}  // namespace

std::string Observation::to_json() const {
  std::string out = "{";
  append_u64(out, "trial_seed", trial_seed);
  append_u64(out, "candidates", candidates);
  append_u64(out, "deliveries", deliveries);
  out += "\"drops\":[";
  for (std::size_t i = 0; i < drops.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(drops[i]);
  }
  out += "],";
  append_bool(out, "fault_plan_armed", fault_plan_armed);
  append_u64(out, "injected_drops", injected_drops);
  append_u64(out, "injected_bursts", injected_bursts);
  append_u64(out, "injected_extra_copies", injected_extra_copies);
  append_u64(out, "injected_delays", injected_delays);
  append_u64(out, "injected_corrupts", injected_corrupts);
  // Doubles print with %.17g (shortest exact round-trip is overkill here;
  // 17 significant digits reproduce the bits).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"safety_d\":%.17g,", safety_d);
  out += buf;
  append_bool(out, "safety_holds", safety_holds);
  append_u64(out, "safety_violations", safety_violations);
  std::snprintf(buf, sizeof(buf), "\"max_impact_radius\":%.17g,", max_impact_radius);
  out += buf;
  append_bool(out, "adversary_armed", adversary_armed);
  append_bool(out, "verifier_authenticated", verifier_authenticated);
  append_bool(out, "relay_armed", relay_armed);
  append_u64(out, "relay_tunneled", relay_tunneled);
  append_u64(out, "relay_overreach", relay_overreach);
  append_bool(out, "sybil_armed", sybil_armed);
  append_u64(out, "sybil_admitted", sybil_admitted);
  append_bool(out, "replay_attack_armed", replay_attack_armed);
  append_u64(out, "replay_captured", replay_captured);
  append_u64(out, "replay_injected", replay_injected);
  append_bool(out, "mobility_armed", mobility_armed);
  append_u64(out, "moves_applied", moves_applied);
  append_bool(out, "churn_armed", churn_armed);
  append_u64(out, "churn_crashes", churn_crashes);
  append_u64(out, "churn_reboots", churn_reboots);
  append_u64(out, "max_updates", max_updates);
  out += "\"agents\":[";
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const AgentObservation& a = agents[i];
    if (i > 0) out += ",";
    out += "{";
    append_u64(out, "id", a.id);
    append_bool(out, "alive", a.alive);
    append_bool(out, "discovery_complete", a.discovery_complete);
    append_bool(out, "has_record", a.has_record);
    append_bool(out, "record_valid", a.record_valid);
    append_bool(out, "record_lists_tentative", a.record_lists_tentative);
    append_bool(out, "master_present", a.master_present);
    append_u64(out, "record_version", a.record_version);
    append_u64(out, "tentative", a.tentative);
    append_u64(out, "functional", a.functional);
    append_u64(out, "replay_rejects", a.replay_rejects);
    append_u64(out, "replay_accepts", a.replay_accepts);
    out.pop_back();  // trailing comma
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Observation::digest() const { return crypto::Sha256::hash(to_json()).hex(); }

namespace {

/// True when some device other than `self` claims `identity` within radio
/// reach of `from`. Dead devices and replicas count: a tentative entry is
/// only *overreach* when no physical radio could have produced it.
bool identity_reachable(const sim::Network& network, sim::DeviceId self, util::Vec2 from,
                        NodeId identity) {
  for (const sim::Device& d : network.devices()) {
    if (d.id == self || d.identity != identity) continue;
    if (network.propagation().link_exists(from, d.position)) return true;
  }
  return false;
}

}  // namespace

Observation observe(const core::SndDeployment& deployment, double safety_d,
                    const adversary::ScenarioRuntime* scenario) {
  Observation out;
  const sim::Network& network = deployment.network();
  const sim::Metrics& metrics = network.metrics();

  out.candidates = metrics.candidates();
  out.deliveries = metrics.deliveries();
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) {
    out.drops[i] = metrics.drops(static_cast<obs::DropCause>(i));
  }

  if (const fault::Injector* injector = deployment.injector()) {
    out.fault_plan_armed = true;
    const fault::Injector::Counters& counters = injector->counters();
    out.injected_drops = counters.drops;
    out.injected_bursts = counters.bursts;
    out.injected_extra_copies = counters.extra_copies;
    out.injected_delays = counters.delays;
    out.injected_corrupts = counters.corrupts;
  }

  const core::SafetyReport safety = core::audit_safety(deployment, safety_d);
  out.safety_d = safety_d;
  out.safety_holds = safety.holds();
  out.safety_violations = safety.violation_count();
  out.max_impact_radius = safety.max_impact_radius();

  for (const core::SndNode* agent : deployment.agents()) {
    AgentObservation a;
    a.id = agent->identity();
    a.alive = network.device(agent->device()).alive;
    a.discovery_complete = agent->discovery_complete();
    a.has_record = agent->has_record();
    if (a.has_record) {
      const core::BindingRecord& record = agent->record();
      a.record_valid = record.verify(deployment.master_key());
      a.record_version = record.version;
      a.record_lists_tentative =
          record.version != 0 || record.neighbors == agent->tentative_neighbors();
    }
    a.master_present = agent->master_key_present();
    a.tentative = static_cast<std::uint32_t>(agent->tentative_neighbors().size());
    a.functional = static_cast<std::uint32_t>(agent->functional_neighbors().size());
    a.replay_rejects = agent->replay_rejects();
    a.replay_accepts = agent->replay_accepts();
    out.agents.push_back(a);
  }

  out.max_updates = deployment.config().protocol.max_updates;
  // The observation reports what the deployment *claims* its verification
  // posture is; kVerifyBypass swaps the verifier underneath without
  // changing the claim -- precisely the defect the relay/sybil oracles
  // must surface from the observable state.
  out.verifier_authenticated = deployment.verifier()->name() != "naive" ||
                               fault::planted_bug() == fault::PlantedBug::kVerifyBypass;

  if (scenario != nullptr) {
    const adversary::ScenarioConfig& config = scenario->config();
    out.adversary_armed = !config.empty();
    out.relay_armed = config.relay.has_value();
    out.relay_tunneled = scenario->relay_tunneled();
    out.sybil_armed = config.sybil.has_value();
    out.replay_attack_armed = config.replay.has_value();
    out.replay_captured = scenario->replay_captured();
    out.replay_injected = scenario->replay_injected();
    out.mobility_armed = config.mobility.has_value();
    out.moves_applied = scenario->moves_applied();
    out.churn_armed = config.churn.has_value();
    out.churn_crashes = scenario->churn_crashes();
    out.churn_reboots = scenario->churn_reboots();

    // Audit benign tentative lists against physical reachability and the
    // Sybil identity range. Walked over live agents (compromised devices
    // have no agent); devices/positions come from the network snapshot.
    for (const core::SndNode* agent : deployment.agents()) {
      const sim::Device& self = network.device(agent->device());
      if (!self.benign()) continue;
      for (const NodeId neighbor : agent->tentative_neighbors()) {
        if (config.sybil) {
          const adversary::SybilConfig& s = *config.sybil;
          if (neighbor > s.base && neighbor <= s.base + s.identities) ++out.sybil_admitted;
        }
        if (!identity_reachable(network, self.id, self.position, neighbor)) {
          ++out.relay_overreach;
        }
      }
    }
  }
  return out;
}

}  // namespace snd::proptest
