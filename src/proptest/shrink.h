// Fault-plan shrinking: reduces a failing trial's plan to a minimal set of
// injections that still reproduces the violation.
#pragma once

#include <cstdint>

#include "fault/plan.h"
#include "proptest/scenario.h"

namespace snd::proptest {

struct ShrinkResult {
  /// The smallest plan found that still fails (== the original when nothing
  /// could be removed).
  fault::FaultPlan plan;
  /// Outcome of the final run with `plan`.
  TrialOutcome outcome;
  /// Actions the shrinker removed from the original plan.
  std::size_t removed_actions = 0;
  /// Trial re-executions spent shrinking.
  std::size_t runs = 0;
};

/// Greedy delta-debugging over the plan's action list: repeatedly tries to
/// drop one action at a time, keeping any removal after which the trial
/// still fails, until a fixed point; finally tries the empty plan (which,
/// if it fails too, proves the bug is fault-independent). Every probe
/// re-runs the *same* trial seed with a plan override, so the deployment,
/// attack, and all non-plan randomness are held fixed.
[[nodiscard]] ShrinkResult shrink_failing_plan(std::uint64_t trial_seed,
                                               const fault::FaultPlan& plan);

}  // namespace snd::proptest
