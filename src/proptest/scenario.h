// Randomized trial scenarios for the property suite.
//
// Everything a trial does -- deployment geometry, channel conditions,
// protocol knobs, the fault plan, and the optional replication attack --
// derives deterministically from one 64-bit trial seed. Re-running the same
// seed reproduces the same Observation bit-for-bit; that is what makes
// FAILCASE replay and fault-plan shrinking meaningful.
#pragma once

#include <cstdint>
#include <optional>

#include "adversary/scenario.h"
#include "core/deployment_driver.h"
#include "fault/plan.h"
#include "proptest/observation.h"
#include "proptest/oracles.h"

namespace snd::proptest {

/// A fully materialized trial: the deployment recipe plus the fault plan.
struct Scenario {
  std::uint64_t trial_seed = 0;
  core::DeploymentConfig deployment;
  fault::FaultPlan plan;
  /// Nodes in the initial deployment round.
  std::size_t round1_nodes = 10;
  /// Nodes deployed in a second round (0 = single-round trial).
  std::size_t round2_nodes = 0;
  /// Mount the paper's replication attack between the rounds: compromise a
  /// round-1 node after quiescence and place a replica elsewhere.
  bool attack = false;
  /// The d the safety oracle audits: (m+1)R with updates enabled, else 2R.
  double safety_d = 0.0;
  /// Adversary/mobility families armed for this trial (empty() = none).
  adversary::ScenarioConfig adversary;
};

/// Derives a scenario from `trial_seed` alone (pure function of the seed
/// and the process-wide scenario override, when one is installed).
[[nodiscard]] Scenario make_scenario(std::uint64_t trial_seed);

/// Forces every generated scenario to arm exactly `config` instead of the
/// seed-drawn adversary families (nullopt restores seed-drawn). Process
/// global in the planted-bug style: set before a sweep / FAILCASE replay,
/// never mid-sweep -- trials read it concurrently.
void set_scenario_override(std::optional<adversary::ScenarioConfig> config);
[[nodiscard]] const std::optional<adversary::ScenarioConfig>& scenario_override();

/// Everything a single trial produces.
struct TrialOutcome {
  Observation observation;
  std::vector<Violation> violations;
  /// observation.digest(), cached.
  std::string digest;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Builds the deployment, arms the fault plan (only when non-empty, so a
/// plan-free scenario is bit-identical to an unfaulted run), executes the
/// round(s) and the optional attack, and snapshots + checks the result.
[[nodiscard]] TrialOutcome run_scenario(const Scenario& scenario);

/// make_scenario + run_scenario, with an optional fault-plan override --
/// the shrinker re-runs the same seed with ever-smaller plans.
[[nodiscard]] TrialOutcome run_trial(std::uint64_t trial_seed,
                                     const std::optional<fault::FaultPlan>& plan_override =
                                         std::nullopt);

}  // namespace snd::proptest
