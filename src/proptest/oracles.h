// The invariant-oracle registry.
//
// Each oracle is a named pure predicate over an Observation; a violation is
// a human-readable explanation of which invariant broke and by how much.
// Oracles are deliberately side-effect free so unit tests can hand-build
// violating observations and prove every oracle fires (the harness's own
// tests must not be vacuous).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "proptest/observation.h"

namespace snd::proptest {

struct Violation {
  std::string oracle;
  std::string message;
};

struct Oracle {
  std::string name;
  /// Returns an explanation when the invariant is violated.
  std::function<std::optional<std::string>(const Observation&)> check;
};

/// The built-in registry:
///   conservation.channel  -- enumerated delivery candidates balance against
///                            deliveries + channel drops (+ injected drops)
///   conservation.injected -- the simulator's injected-drop count matches
///                            the injector's own authoritative bookkeeping
///   replay.bounded        -- replay rejects never exceed deliveries (each
///                            reject is a real delivered packet), and only
///                            occur when agents report them
///   record.consistency    -- every completed node holds a binding record
///                            whose commitment verifies under K and whose
///                            version-0 neighbor list is its tentative set
///   key.erasure           -- no alive node that completed discovery still
///                            holds the master key K at quiescence
///   safety.d              -- the empirical d-safety audit holds
[[nodiscard]] const std::vector<Oracle>& default_oracles();

/// Runs every oracle in `default_oracles()`; empty means all green.
[[nodiscard]] std::vector<Violation> check_all(const Observation& observation);

}  // namespace snd::proptest
