// The property-suite driver: randomized trials, invariant checking,
// shrinking, FAILCASE emission, and failcase replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proptest/scenario.h"
#include "proptest/shrink.h"
#include "runner/trial_runner.h"

namespace snd::proptest {

struct PropConfig {
  std::size_t trials = 20;
  std::uint64_t base_seed = 1;
  /// Worker threads for the sweep (0 = hardware concurrency).
  std::size_t jobs = 0;
  /// Every `ab_every`-th trial is re-run serially with the crypto fast path
  /// disabled; both runs must produce the same Observation digest
  /// (fast-vs-slow bit-identity). 0 disables the A/B pass.
  std::size_t ab_every = 8;
  /// Where FAILCASE_*.json artifacts land ("" = don't write files).
  std::string failcase_dir = ".";
  /// Stop shrinking + emitting after this many failures (the sweep itself
  /// always completes; this only bounds the expensive serial work).
  std::size_t max_failures = 5;
};

/// One reproducible failure: the seed + (shrunk) plan that re-create it.
struct FailCase {
  /// "invariant" (an oracle fired) or "crypto_ab" (fast/slow digests split).
  std::string kind;
  std::size_t trial = 0;
  std::uint64_t base_seed = 0;
  std::uint64_t trial_seed = 0;
  /// Digest of the failing observation (for "crypto_ab": the slow-path one).
  std::string digest;
  std::vector<Violation> violations;
  /// Minimal plan that still reproduces the failure.
  fault::FaultPlan plan;
  /// Adversary families the failing trial armed (empty() = none). Recorded
  /// so replay can re-install the same scenario override and stay
  /// self-contained even when the failure came from an overridden sweep.
  adversary::ScenarioConfig adversary;
  /// Size of the plan before shrinking, and trial re-runs spent shrinking.
  std::size_t unshrunk_actions = 0;
  std::size_t shrink_runs = 0;
  /// Where the artifact was written ("" when failcase_dir disabled writes).
  std::string path;

  [[nodiscard]] std::string to_json() const;
};

struct PropReport {
  std::size_t trials = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;   ///< trials with oracle violations
  std::size_t errored = 0;  ///< trials that threw (counted by TrialRunner)
  std::size_t ab_checked = 0;
  std::size_t ab_mismatches = 0;
  std::vector<FailCase> failcases;
  runner::SweepReport sweep;

  [[nodiscard]] bool all_green() const {
    return failed == 0 && errored == 0 && ab_mismatches == 0;
  }
};

/// Runs the full suite: parallel sweep over `trials` seeds derived from
/// `base_seed`, serial shrinking of every failure (up to max_failures),
/// then the serial slow-path A/B pass. Deterministic for fixed config
/// (modulo SweepReport timing fields).
[[nodiscard]] PropReport run_property_suite(const PropConfig& config);

/// Outcome of replaying a FAILCASE artifact.
struct ReplayResult {
  bool loaded = false;          ///< artifact parsed successfully
  bool reproduced = false;      ///< the re-run failed again
  bool digest_matches = false;  ///< re-run digest == recorded digest
  std::string expected_digest;
  TrialOutcome outcome;
  std::string error;  ///< parse/load failure explanation
};

/// Re-runs the exact (trial_seed, plan) recorded in a FAILCASE file and
/// checks the run is bit-identical to the recorded failure.
[[nodiscard]] ReplayResult replay_failcase(const std::string& path);

}  // namespace snd::proptest
