// The flattened end-of-trial snapshot the invariant oracles inspect.
//
// An Observation is pure data deliberately decoupled from the live
// deployment: oracles are pure functions over it, so unit tests can
// hand-build violating observations and prove each oracle fires, and the
// canonical serialization gives every trial a digest -- the bit-identity
// anchor for FAILCASE replay and the fast/slow crypto A-B oracle.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/deployment_driver.h"
#include "obs/event.h"

namespace snd::proptest {

/// Per-agent protocol state at the end of a trial.
struct AgentObservation {
  NodeId id = kNoNode;
  bool alive = true;
  bool discovery_complete = false;
  bool has_record = false;
  /// Record commitment verifies under the deployment master key.
  bool record_valid = false;
  /// For version-0 records: the record lists exactly the tentative set.
  bool record_lists_tentative = false;
  bool master_present = false;
  std::uint32_t record_version = 0;
  std::uint32_t tentative = 0;
  std::uint32_t functional = 0;
  std::uint64_t replay_rejects = 0;
};

struct Observation {
  std::uint64_t trial_seed = 0;

  // -- Radio conservation inputs (sim::Metrics) --------------------------
  std::uint64_t candidates = 0;
  std::uint64_t deliveries = 0;
  std::array<std::uint64_t, obs::kDropCauseCount> drops{};

  // -- Fault-injector accounting (all zero when no plan armed) -----------
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_bursts = 0;
  std::uint64_t injected_extra_copies = 0;
  std::uint64_t injected_delays = 0;
  std::uint64_t injected_corrupts = 0;
  bool fault_plan_armed = false;

  // -- d-safety audit (core::audit_safety) -------------------------------
  double safety_d = 0.0;
  bool safety_holds = true;
  std::uint64_t safety_violations = 0;
  double max_impact_radius = 0.0;

  std::vector<AgentObservation> agents;

  /// Canonical serialization: fixed field order, integers only where
  /// exactness matters. Equal observations produce equal strings.
  [[nodiscard]] std::string to_json() const;
  /// SHA-256 hex of to_json() -- the trial's bit-identity fingerprint.
  [[nodiscard]] std::string digest() const;
};

/// Snapshots `deployment` after a run: metrics, injector counters, a
/// d-safety audit with radius `safety_d`, and per-agent protocol state.
[[nodiscard]] Observation observe(const core::SndDeployment& deployment, double safety_d);

}  // namespace snd::proptest
