// The flattened end-of-trial snapshot the invariant oracles inspect.
//
// An Observation is pure data deliberately decoupled from the live
// deployment: oracles are pure functions over it, so unit tests can
// hand-build violating observations and prove each oracle fires, and the
// canonical serialization gives every trial a digest -- the bit-identity
// anchor for FAILCASE replay and the fast/slow crypto A-B oracle.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/deployment_driver.h"
#include "obs/event.h"

namespace snd::adversary {
class ScenarioRuntime;
}

namespace snd::proptest {

/// Per-agent protocol state at the end of a trial.
struct AgentObservation {
  NodeId id = kNoNode;
  bool alive = true;
  bool discovery_complete = false;
  bool has_record = false;
  /// Record commitment verifies under the deployment master key.
  bool record_valid = false;
  /// For version-0 records: the record lists exactly the tentative set.
  bool record_lists_tentative = false;
  bool master_present = false;
  std::uint32_t record_version = 0;
  std::uint32_t tentative = 0;
  std::uint32_t functional = 0;
  std::uint64_t replay_rejects = 0;
  /// Window-flagged duplicates the transport delivered anyway (nonzero only
  /// under the kReplayWindowBypass planted bug).
  std::uint64_t replay_accepts = 0;
};

struct Observation {
  std::uint64_t trial_seed = 0;

  // -- Radio conservation inputs (sim::Metrics) --------------------------
  std::uint64_t candidates = 0;
  std::uint64_t deliveries = 0;
  std::array<std::uint64_t, obs::kDropCauseCount> drops{};

  // -- Fault-injector accounting (all zero when no plan armed) -----------
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_bursts = 0;
  std::uint64_t injected_extra_copies = 0;
  std::uint64_t injected_delays = 0;
  std::uint64_t injected_corrupts = 0;
  bool fault_plan_armed = false;

  // -- d-safety audit (core::audit_safety) -------------------------------
  double safety_d = 0.0;
  bool safety_holds = true;
  std::uint64_t safety_violations = 0;
  double max_impact_radius = 0.0;

  // -- Adversary scenario telemetry (zero when no scenario armed) --------
  bool adversary_armed = false;
  /// Deployment runs an authenticating direct verifier (anything but
  /// "naive"). Deliberately reported true under the kVerifyBypass planted
  /// bug -- the observation claims verification while the deployment runs
  /// naive, which is exactly the lie relay.bounded / sybil.bounded catch.
  bool verifier_authenticated = false;
  bool relay_armed = false;
  std::uint64_t relay_tunneled = 0;
  /// Tentative entries on benign agents with *no* in-range device claiming
  /// that identity: neighbors that can only have been admitted through a
  /// relay (or a verification bug). Sound only for positionally-exact
  /// verifiers over static topologies; relay.bounded gates on both.
  std::uint64_t relay_overreach = 0;
  bool sybil_armed = false;
  /// Sybil-minted identities present in benign tentative lists.
  std::uint64_t sybil_admitted = 0;
  bool replay_attack_armed = false;
  std::uint64_t replay_captured = 0;
  std::uint64_t replay_injected = 0;
  bool mobility_armed = false;
  std::uint64_t moves_applied = 0;
  bool churn_armed = false;
  std::uint64_t churn_crashes = 0;
  std::uint64_t churn_reboots = 0;
  /// Protocol record-update allowance (record.version_bound oracle input).
  std::uint32_t max_updates = 0;

  std::vector<AgentObservation> agents;

  /// Canonical serialization: fixed field order, integers only where
  /// exactness matters. Equal observations produce equal strings.
  [[nodiscard]] std::string to_json() const;
  /// SHA-256 hex of to_json() -- the trial's bit-identity fingerprint.
  [[nodiscard]] std::string digest() const;
};

/// Snapshots `deployment` after a run: metrics, injector counters, a
/// d-safety audit with radius `safety_d`, per-agent protocol state, and --
/// when `scenario` is non-null -- adversary/mobility telemetry.
[[nodiscard]] Observation observe(const core::SndDeployment& deployment, double safety_d,
                                  const adversary::ScenarioRuntime* scenario = nullptr);

}  // namespace snd::proptest
