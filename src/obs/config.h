// One configuration surface for harness logging, event tracing, and JSON
// output, shared by every bench and example binary:
//
//   --log   <debug|info|warn|error|off>     (env: SND_LOG_LEVEL)
//   --trace <off|counters|events>           (env: SND_TRACE_LEVEL)
//   --trace-json <path|->                   (env: SND_TRACE_JSON)
//   --trace-bin  <path>                     (env: SND_TRACE_BIN)
//
// Flags beat environment variables. Bad values are recorded on the Cli, so
// the driver's existing cli.validate() call rejects them (exit non-zero).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/tracer.h"
#include "util/cli.h"
#include "util/driver_spec.h"
#include "util/log.h"

namespace snd::obs {

struct ObsConfig {
  util::LogLevel log_level = util::LogLevel::kWarn;
  TraceLevel trace_level = TraceLevel::kCounters;
  /// JSON-lines destination for events + routed log lines; empty = none,
  /// "-" = stdout. A non-empty path raises trace_level to kEvents.
  std::string trace_json_path;
  /// Binary .sndtrace destination (obs::BinaryEventSink); empty = none.
  /// Mutually exclusive with trace_json_path; also raises trace_level.
  std::string trace_bin_path;
};

/// "off" / "counters" / "events" (numeric "0".."2" accepted too).
[[nodiscard]] std::string_view trace_level_name(TraceLevel level);
[[nodiscard]] std::optional<TraceLevel> trace_level_from_name(std::string_view name);

/// Reads the flags/environment above. Unknown values are recorded with
/// cli.record_error() -- call this before cli.validate() and list "log",
/// "trace", "trace-json", "trace-bin" among the allowed flags.
[[nodiscard]] ObsConfig resolve_obs(const util::Cli& cli);

/// The same surface as a DriverSpec flag group: declares the four flags and
/// resolves them into `*out` during parse(). Prefer this over hand-listing
/// the flag names in new drivers.
[[nodiscard]] util::cli::FlagGroup obs_flag_group(ObsConfig* out);

/// Installs `config` process-wide: sets the util log level, re-routes
/// util::log_line through the active Sink, and makes every subsequently
/// constructed Tracer (one per sim::Network) start with this level/sink.
/// Returns false (message on `err`) if the JSON-lines file cannot be opened.
[[nodiscard]] bool apply_obs(const ObsConfig& config, std::ostream& err);

}  // namespace snd::obs
