// Pluggable trace outputs. A Tracer at TraceLevel::kEvents forwards every
// Event to its Sink; harness log lines (util::log_line) are routed through
// the same interface so log output, trace output, and their JSON forms
// share one configuration surface (see obs/config.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event.h"
#include "obs/summary.h"
#include "util/log.h"

namespace snd::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  virtual void on_event(const Event& event) = 0;

  /// Harness log line routed from util::log_line (already level-filtered).
  /// Default: classic "[LEVEL] message" to stderr, so installing a sink for
  /// events never silently eats diagnostics.
  virtual void on_log(util::LogLevel level, std::string_view message);

  virtual void flush() {}
};

/// Discards events (keeps the default stderr log behavior). The cheapest
/// enabled configuration -- used by the overhead benchmarks to price the
/// emit path without any serialization.
class NullSink final : public Sink {
 public:
  void on_event(const Event&) override {}
};

/// Aggregates events into a TraceSummary without storing them. The sink
/// counterpart of Tracer's built-in counters, for consumers that receive an
/// event stream from elsewhere (thread-safe).
class CountingSink final : public Sink {
 public:
  void on_event(const Event& event) override;
  [[nodiscard]] TraceSummary summary() const;

 private:
  mutable std::mutex mutex_;
  TraceSummary summary_;
};

/// Writes each event (and routed log line) as one self-describing JSON
/// object per line, the schema documented in docs/OBSERVABILITY.md. Lines
/// are written atomically under a mutex, so concurrent trials interleave at
/// line granularity -- every line stays individually parseable.
class JsonLinesSink final : public Sink {
 public:
  /// Opens `path` for writing ("-" means stdout). Check ok() before use.
  explicit JsonLinesSink(const std::string& path);
  ~JsonLinesSink() override;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void on_event(const Event& event) override;
  void on_log(util::LogLevel level, std::string_view message) override;
  void flush() override;

  /// Serializes one event to its JSON-line form (no trailing newline).
  /// Exposed for tests and schema documentation.
  [[nodiscard]] static std::string to_json(const Event& event);

 private:
  void write_line(const std::string& line);

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
};

/// Writes events and routed log lines as compact varint-packed binary
/// records ("SNDTRACE" magic, see docs/SHARDING.md). One record per event:
/// tag byte (EventKind + 1), then code / node / peer / bytes as unsigned
/// varints and t_ns as a ZigZag-signed varint; tag 0 carries a log line
/// (level varint + length-prefixed message). Roughly 6-10 bytes per event
/// against ~70 for the JSON-lines form, for wide sweeps that keep full
/// event streams. Records are appended atomically under a mutex.
class BinaryEventSink final : public Sink {
 public:
  /// Opens `path` for writing (binary; "-" is rejected -- the stream is not
  /// terminal-safe). Check ok() before use.
  explicit BinaryEventSink(const std::string& path);
  ~BinaryEventSink() override;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void on_event(const Event& event) override;
  void on_log(util::LogLevel level, std::string_view message) override;
  void flush() override;

  /// Everything a .sndtrace stream carries, in file order.
  struct Decoded {
    std::vector<Event> events;
    std::vector<std::pair<util::LogLevel, std::string>> logs;
  };

  /// Serializes one event to its record form (tag + varint fields).
  /// Exposed, with decode(), for tests and schema documentation.
  [[nodiscard]] static std::vector<std::uint8_t> encode(const Event& event);

  /// Parses a whole stream (magic included); nullopt (message in *error) on
  /// a bad magic, an unknown tag, or a truncated record.
  [[nodiscard]] static std::optional<Decoded> decode(
      std::span<const std::uint8_t> data, std::string* error = nullptr);

 private:
  void write_record(const std::vector<std::uint8_t>& record);

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace snd::obs
