#include "obs/summary.h"

namespace snd::obs {

void TraceSummary::merge(const TraceSummary& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    tx[i].messages += other.tx[i].messages;
    tx[i].bytes += other.tx[i].bytes;
  }
  for (std::size_t i = 0; i < kDropCauseCount; ++i) drops[i] += other.drops[i];
  deliveries += other.deliveries;
  for (std::size_t i = 0; i < kNodePhaseCount; ++i) node_phases[i] += other.node_phases[i];
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) rejects[i] += other.rejects[i];
  for (std::size_t i = 0; i < kAcceptViaCount; ++i) accepts[i] += other.accepts[i];
  for (std::size_t i = 0; i < kInjectKindCount; ++i) injects[i] += other.injects[i];
  events += other.events;
  ring_overflow += other.ring_overflow;
  trials += other.trials;
}

std::uint64_t TraceSummary::total_messages() const {
  std::uint64_t sum = 0;
  for (const TxCounter& c : tx) sum += c.messages;
  return sum;
}

std::uint64_t TraceSummary::total_drops() const {
  std::uint64_t sum = 0;
  for (std::uint64_t d : drops) sum += d;
  return sum;
}

std::uint64_t TraceSummary::total_injects() const {
  std::uint64_t sum = 0;
  for (std::uint64_t i : injects) sum += i;
  return sum;
}

namespace {

void append_field(std::string& out, bool& first, std::string_view key) {
  if (!first) out += ",";
  first = false;
  out += "\"";
  out += key;
  out += "\":";
}

void append_u64(std::string& out, bool& first, std::string_view key, std::uint64_t value) {
  append_field(out, first, key);
  out += std::to_string(value);
}

}  // namespace

std::string TraceSummary::to_json() const {
  std::string out = "{";
  bool first = true;
  append_u64(out, first, "trials", trials);
  append_u64(out, first, "messages", total_messages());
  append_u64(out, first, "deliveries", deliveries);
  append_u64(out, first, "dropped", total_drops());
  append_u64(out, first, "events", events);
  append_u64(out, first, "ring_overflow", ring_overflow);

  append_field(out, first, "tx");
  out += "{";
  bool first_tx = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (tx[i].messages == 0 && tx[i].bytes == 0) continue;
    append_field(out, first_tx, phase_name(static_cast<Phase>(i)));
    out += "{\"messages\":" + std::to_string(tx[i].messages) +
           ",\"bytes\":" + std::to_string(tx[i].bytes) + "}";
  }
  out += "}";

  append_field(out, first, "drops");
  out += "{";
  bool first_drop = true;
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    // Channel causes always appear (downstream indexes without existence
    // checks); the post-seed replay/injected causes only when non-zero so a
    // clean run's artifact matches its pre-fault-layer golden byte for byte.
    if (i >= kChannelDropCauseCount && drops[i] == 0) continue;
    append_u64(out, first_drop, drop_cause_name(static_cast<DropCause>(i)), drops[i]);
  }
  out += "}";

  if (total_injects() > 0) {
    append_field(out, first, "injects");
    out += "{";
    bool first_inject = true;
    for (std::size_t i = 0; i < kInjectKindCount; ++i) {
      append_u64(out, first_inject, inject_kind_name(static_cast<InjectKind>(i)), injects[i]);
    }
    out += "}";
  }

  append_field(out, first, "node_phases");
  out += "{";
  bool first_phase = true;
  for (std::size_t i = 0; i < kNodePhaseCount; ++i) {
    append_u64(out, first_phase, node_phase_name(static_cast<NodePhase>(i)), node_phases[i]);
  }
  out += "}";

  append_field(out, first, "rejects");
  out += "{";
  bool first_reject = true;
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    append_u64(out, first_reject, reject_reason_name(static_cast<RejectReason>(i)), rejects[i]);
  }
  out += "}";

  append_field(out, first, "accepts");
  out += "{";
  bool first_accept = true;
  for (std::size_t i = 0; i < kAcceptViaCount; ++i) {
    append_u64(out, first_accept, accept_via_name(static_cast<AcceptVia>(i)), accepts[i]);
  }
  out += "}}";
  return out;
}

void Registry::record(std::size_t index, const TraceSummary& summary) {
  if (index >= slots_.size()) return;
  slots_[index].summary = summary;
  slots_[index].present = true;
}

TraceSummary Registry::fold() const {
  TraceSummary folded;
  for (const Slot& slot : slots_) {
    if (slot.present) folded.merge(slot.summary);
  }
  return folded;
}

}  // namespace snd::obs
