#include "obs/event.h"

#include <array>

namespace snd::obs {

namespace {

constexpr std::array<std::string_view, kPhaseCount> kPhaseNames = {
    "snd.hello", "snd.ack",      "snd.record",      "snd.commit", "snd.evidence", "snd.update",
    "verify.rtt", "attack", "attack.chaff", "attack.wormhole", "other",
};

constexpr std::array<std::string_view, kDropCauseCount> kDropCauseNames = {
    "out_of_range", "collision",     "loss",   "half_duplex",
    "sender_dead",  "receiver_dead", "replay", "injected",
};

constexpr std::array<std::string_view, kNodePhaseCount> kNodePhaseNames = {
    "deployed", "discovery_done", "validated", "key_erased",
};

constexpr std::array<std::string_view, kRejectReasonCount> kRejectReasonNames = {
    "auth_failed",   "parse_error",       "not_tentative",   "wrong_subject",
    "bad_commitment", "stale_version",    "no_record",       "threshold_not_met",
    "commit_mismatch", "version_mismatch", "update_refused",
};

constexpr std::array<std::string_view, kAcceptViaCount> kAcceptViaNames = {
    "threshold", "commitment",
};

constexpr std::array<std::string_view, kInjectKindCount> kInjectKindNames = {
    "drop", "duplicate", "delay", "corrupt", "crash", "reboot", "skew", "burst",
};

constexpr std::array<std::string_view, kEventKindCount> kEventKindNames = {
    "tx", "delivery", "drop", "phase", "reject", "accept", "inject",
};

template <std::size_t N>
std::string_view name_or_unknown(const std::array<std::string_view, N>& names, std::size_t i) {
  return i < N ? names[i] : std::string_view("?");
}

}  // namespace

std::string_view phase_name(Phase phase) {
  return name_or_unknown(kPhaseNames, static_cast<std::size_t>(phase));
}

std::string_view drop_cause_name(DropCause cause) {
  return name_or_unknown(kDropCauseNames, static_cast<std::size_t>(cause));
}

std::string_view node_phase_name(NodePhase phase) {
  return name_or_unknown(kNodePhaseNames, static_cast<std::size_t>(phase));
}

std::string_view reject_reason_name(RejectReason reason) {
  return name_or_unknown(kRejectReasonNames, static_cast<std::size_t>(reason));
}

std::string_view accept_via_name(AcceptVia via) {
  return name_or_unknown(kAcceptViaNames, static_cast<std::size_t>(via));
}

std::string_view inject_kind_name(InjectKind kind) {
  return name_or_unknown(kInjectKindNames, static_cast<std::size_t>(kind));
}

std::string_view event_kind_name(EventKind kind) {
  return name_or_unknown(kEventKindNames, static_cast<std::size_t>(kind));
}

std::optional<Phase> phase_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (kPhaseNames[i] == name) return static_cast<Phase>(i);
  }
  return std::nullopt;
}

std::string_view event_code_name(EventKind kind, std::uint8_t code) {
  switch (kind) {
    case EventKind::kTx:
    case EventKind::kDelivery:
      return name_or_unknown(kPhaseNames, code);
    case EventKind::kDrop:
      return name_or_unknown(kDropCauseNames, code);
    case EventKind::kPhase:
      return name_or_unknown(kNodePhaseNames, code);
    case EventKind::kReject:
      return name_or_unknown(kRejectReasonNames, code);
    case EventKind::kAccept:
      return name_or_unknown(kAcceptViaNames, code);
    case EventKind::kInject:
      return name_or_unknown(kInjectKindNames, code);
  }
  return "?";
}

}  // namespace snd::obs
