#include "obs/config.h"

#include <memory>
#include <ostream>
#include <utility>

#include "obs/sink.h"
#include "util/runtime_config.h"

namespace snd::obs {

namespace {

/// Keeps classic stderr logging when no JSON-lines sink is configured: events
/// are dropped (the Tracer ring still records them), log lines use the base
/// Sink formatting.
struct StderrSink final : Sink {
  void on_event(const Event&) override {}
};

/// Flag value if given, else the RuntimeConfig environment fallback, else
/// nullopt. `origin` is set to a human-readable source name for messages.
std::optional<std::string> flag_or_env(const util::Cli& cli, std::string_view flag,
                                       const std::optional<std::string>& env_value,
                                       const char* env_name, std::string& origin) {
  if (cli.has(flag)) {
    origin = "--" + std::string(flag);
    return cli.get(flag, "");
  }
  if (env_value) {
    origin = env_name;
    return env_value;
  }
  return std::nullopt;
}

}  // namespace

std::string_view trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kCounters:
      return "counters";
    case TraceLevel::kEvents:
      return "events";
  }
  return "?";
}

std::optional<TraceLevel> trace_level_from_name(std::string_view name) {
  for (TraceLevel level : {TraceLevel::kOff, TraceLevel::kCounters, TraceLevel::kEvents}) {
    if (name == trace_level_name(level)) return level;
  }
  if (name.size() == 1 && name[0] >= '0' && name[0] <= '2') {
    return static_cast<TraceLevel>(name[0] - '0');
  }
  return std::nullopt;
}

ObsConfig resolve_obs(const util::Cli& cli) {
  ObsConfig config;
  const RuntimeConfig& env = runtime_config();
  std::string origin;

  if (auto value = flag_or_env(cli, "log", env.log_level, "SND_LOG_LEVEL", origin)) {
    if (auto level = util::log_level_from_name(*value)) {
      config.log_level = *level;
    } else {
      cli.record_error(origin + ": unknown log level '" + *value +
                       "' (expected debug|info|warn|error|off)");
    }
  }

  bool trace_explicit = false;
  if (auto value = flag_or_env(cli, "trace", env.trace_level, "SND_TRACE_LEVEL", origin)) {
    if (auto level = trace_level_from_name(*value)) {
      config.trace_level = *level;
      trace_explicit = true;
    } else {
      cli.record_error(origin + ": unknown trace level '" + *value +
                       "' (expected off|counters|events)");
    }
  }

  if (auto value = flag_or_env(cli, "trace-json", env.trace_json, "SND_TRACE_JSON", origin)) {
    config.trace_json_path = *value;
    if (config.trace_level == TraceLevel::kOff && trace_explicit) {
      cli.record_error(origin + ": conflicts with --trace off (JSON-lines output needs events)");
    } else {
      // Writing the event stream only makes sense at full verbosity.
      config.trace_level = TraceLevel::kEvents;
    }
  }

  if (auto value = flag_or_env(cli, "trace-bin", env.trace_bin, "SND_TRACE_BIN", origin)) {
    config.trace_bin_path = *value;
    if (!config.trace_json_path.empty()) {
      cli.record_error(origin +
                       ": conflicts with --trace-json (pick one trace output format)");
    } else if (*value == "-") {
      cli.record_error(origin + ": binary trace output cannot go to stdout");
    } else if (config.trace_level == TraceLevel::kOff && trace_explicit) {
      cli.record_error(origin + ": conflicts with --trace off (binary output needs events)");
    } else {
      config.trace_level = TraceLevel::kEvents;
    }
  }

  return config;
}

util::cli::FlagGroup obs_flag_group(ObsConfig* out) {
  using util::cli::FlagDef;
  using util::cli::FlagType;
  util::cli::FlagGroup group;
  group.title = "Observability";
  const auto add = [&group](const char* name, const char* value_name, const char* help) {
    FlagDef def;
    def.name = name;
    def.type = FlagType::kString;
    def.value_name = value_name;
    def.help = help;
    group.flags.push_back(std::move(def));
  };
  add("log", "LEVEL", "log verbosity: debug|info|warn|error|off (env: SND_LOG_LEVEL)");
  add("trace", "LEVEL", "event tracing: off|counters|events (env: SND_TRACE_LEVEL)");
  add("trace-json", "PATH", "write JSON-lines event trace to PATH, '-' for stdout "
                            "(env: SND_TRACE_JSON)");
  add("trace-bin", "PATH", "write binary .sndtrace event trace to PATH "
                           "(env: SND_TRACE_BIN)");
  group.resolve = [out](const util::Cli& cli) { *out = resolve_obs(cli); };
  return group;
}

bool apply_obs(const ObsConfig& config, std::ostream& err) {
  util::set_log_level(config.log_level);

  std::shared_ptr<Sink> sink;
  if (!config.trace_json_path.empty()) {
    auto json = std::make_shared<JsonLinesSink>(config.trace_json_path);
    if (!json->ok()) {
      err << "error: cannot open trace output '" << config.trace_json_path << "'\n";
      return false;
    }
    sink = std::move(json);
  } else if (!config.trace_bin_path.empty()) {
    auto bin = std::make_shared<BinaryEventSink>(config.trace_bin_path);
    if (!bin->ok()) {
      err << "error: cannot open trace output '" << config.trace_bin_path << "'\n";
      return false;
    }
    sink = std::move(bin);
  } else {
    sink = std::make_shared<StderrSink>();
  }

  TraceDefaults defaults;
  defaults.level = config.trace_level;
  defaults.sink = sink;
  set_default_trace(defaults);

  // Route already-filtered log lines through the same sink so log output and
  // trace output share one destination (and one JSON schema when applicable).
  util::set_log_sink([sink](util::LogLevel level, const std::string& message) {
    sink->on_log(level, message);
  });
  return true;
}

}  // namespace snd::obs
