// Per-network event tracer: a leveled emit gate, typed protocol counters, a
// bounded ring buffer of recent events, and a pluggable Sink.
//
// Cost model (the contract the micro_sim overhead artifact pins):
//   SND_TRACE=0 (compile-time gate)  emit() compiles to nothing.
//   kOff                             one predicted branch per emit call.
//   kCounters (default)              branch + one or two array increments.
//   kEvents                          counters + ring append + sink virtual
//                                    call (NullSink: the near-free fast path).
//
// A Tracer belongs to one single-threaded simulation (one sim::Network);
// parallel Monte-Carlo trials each own a private Tracer and fold their
// summaries deterministically in trial order (obs::Registry).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/event.h"
#include "obs/sink.h"
#include "obs/summary.h"

// Compile-time gate: -DSND_TRACE=0 removes event emission entirely (typed
// Metrics counters in sim/ are unaffected -- they are accounting, not
// tracing). Defaults on; the CMake option SND_TRACE drives it.
#ifndef SND_TRACE
#define SND_TRACE 1
#endif

namespace snd::obs {

enum class TraceLevel : std::uint8_t {
  kOff = 0,       // emit() returns immediately
  kCounters = 1,  // typed counters only (the default)
  kEvents = 2,    // counters + ring buffer + sink
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  /// Initialized from the process-wide default configuration
  /// (obs::set_default_trace, normally installed by obs::apply_obs).
  Tracer();
  Tracer(TraceLevel level, std::shared_ptr<Sink> sink,
         std::size_t ring_capacity = kDefaultRingCapacity);

  [[nodiscard]] TraceLevel level() const { return level_; }
  void set_level(TraceLevel level) { level_ = level; }
  void set_sink(std::shared_ptr<Sink> sink) { sink_ = std::move(sink); }
  [[nodiscard]] const std::shared_ptr<Sink>& sink() const { return sink_; }

  /// True when emit() does any work; call sites use this to skip building
  /// Event payloads on the fast path.
  [[nodiscard]] bool active() const {
#if SND_TRACE
    return level_ != TraceLevel::kOff;
#else
    return false;
#endif
  }
  /// True when full events are recorded (ring + sink).
  [[nodiscard]] bool recording() const {
#if SND_TRACE
    return level_ == TraceLevel::kEvents;
#else
    return false;
#endif
  }

  void emit(const Event& event) {
#if SND_TRACE
    if (level_ == TraceLevel::kOff) return;
    // The kCounters path stays header-inline: dense sweeps emit once per
    // candidate drop, and the two increments cost less than an out-of-line
    // call. Only the kEvents tail (ring + sink) leaves the header.
    ++events_;
    count(event);
    if (level_ == TraceLevel::kEvents) record(event);
#else
    (void)event;
#endif
  }

  /// Radio-event fast path (tx / delivery / drop): those kinds carry no
  /// typed counter here -- sim::Metrics counts them -- so below kEvents an
  /// emit() reduces to the events_ increment. Call sites use this with
  /// recording() to skip building an Event payload per candidate; totals
  /// stay identical to emitting the full event.
  void count_radio_event() {
#if SND_TRACE
    if (level_ != TraceLevel::kOff) ++events_;
#endif
  }

  /// Events emitted at any active level, and ring overwrites (an overwrite
  /// is counted, never silent; the sink still saw the overwritten event).
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t ring_overflow() const { return ring_overflow_; }

  /// The most recent events in chronological order (at most ring capacity).
  [[nodiscard]] std::vector<Event> recent() const;
  [[nodiscard]] std::size_t ring_capacity() const { return ring_capacity_; }

  /// Adds this tracer's protocol counters (node_phases, rejects, accepts,
  /// events, ring_overflow) into `summary`. Radio counters come from
  /// sim::Metrics; sim::Network::trace_summary() combines both.
  void accumulate_into(TraceSummary& summary) const;

  void reset();

 private:
  void count(const Event& event) {
    const std::size_t code = event.code;
    switch (event.kind) {
      case EventKind::kPhase:
        if (code < kNodePhaseCount) ++node_phases_[code];
        break;
      case EventKind::kReject:
        if (code < kRejectReasonCount) ++rejects_[code];
        break;
      case EventKind::kAccept:
        if (code < kAcceptViaCount) ++accepts_[code];
        break;
      case EventKind::kInject:
        if (code < kInjectKindCount) ++injects_[code];
        break;
      default:
        // Radio events (tx/delivery/drop) are already counted by the typed
        // sim::Metrics arrays; counting them twice here would double-report.
        break;
    }
  }
  /// kEvents-only slow path: ring append + sink dispatch.
  void record(const Event& event);

  TraceLevel level_ = TraceLevel::kCounters;
  std::shared_ptr<Sink> sink_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;

  std::uint64_t events_ = 0;
  std::uint64_t ring_overflow_ = 0;
  std::array<std::uint64_t, kNodePhaseCount> node_phases_{};
  std::array<std::uint64_t, kRejectReasonCount> rejects_{};
  std::array<std::uint64_t, kAcceptViaCount> accepts_{};
  std::array<std::uint64_t, kInjectKindCount> injects_{};

  /// Circular buffer: next_slot_ is the oldest entry once full.
  std::vector<Event> ring_;
  std::size_t next_slot_ = 0;
};

/// Process-wide defaults new Tracers copy at construction. Drivers install
/// them once at startup (obs::apply_obs) before any worker threads exist;
/// reads are mutex-guarded so mid-run construction from trial workers is
/// safe too.
struct TraceDefaults {
  TraceLevel level = TraceLevel::kCounters;
  std::shared_ptr<Sink> sink;
  std::size_t ring_capacity = Tracer::kDefaultRingCapacity;
};

void set_default_trace(const TraceDefaults& defaults);
[[nodiscard]] TraceDefaults default_trace();

}  // namespace snd::obs
