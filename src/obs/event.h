// The typed event vocabulary of the observability pipeline.
//
// Every interesting occurrence in a run -- a transmission, a delivery, a
// drop with its cause, a protocol phase transition, an accept/reject
// decision -- is one fixed-size POD Event. Enum + small-integer payloads
// keep emission allocation-free on the hot path; names exist only at
// export time (JSON lines, BENCH artifacts, the Metrics category shim).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/ids.h"

namespace snd::obs {

/// Traffic category a transmission is charged to. The typed replacement for
/// the historical string categories of sim::Metrics: the hot path indexes a
/// fixed array, and the canonical names below only appear when exporting.
enum class Phase : std::uint8_t {
  kHello = 0,        // "snd.hello"    -- Hello broadcasts
  kAck,              // "snd.ack"      -- HelloAck replies
  kRecord,           // "snd.record"   -- record requests + replies
  kCommit,           // "snd.commit"   -- relation commitments
  kEvidence,         // "snd.evidence" -- evidences (update extension)
  kUpdate,           // "snd.update"   -- record update requests/replies
  kRtt,              // "verify.rtt"   -- direct-verification RTT probes
  kAttack,           // "attack"          -- generic adversary traffic
  kAttackChaff,      // "attack.chaff"    -- chaff floods
  kAttackWormhole,   // "attack.wormhole" -- wormhole-replayed copies
  kOther,            // "other" -- anything without a dedicated phase
};
inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kOther) + 1;

/// Why a packet that was put on the air failed to reach a receiver.
///
/// kOutOfRange counts candidates the receiver-resolution strategy
/// enumerated that turned out to have no radio link; with the spatial grid
/// (the default) that is the 3x3 cell block around the sender, with the
/// linear fallback it is every device. The other causes are strategy-
/// independent and bit-identical across index modes and --jobs counts.
enum class DropCause : std::uint8_t {
  kOutOfRange = 0,  // "out_of_range" -- enumerated candidate, no radio link
  kCollision,       // "collision"    -- sender or receiver inside a jammed area
  kLoss,            // "loss"         -- independent per-delivery channel loss
  kHalfDuplex,      // "half_duplex"  -- receiver transmitting during the airtime
  kSenderDead,      // "sender_dead"  -- sender battery died mid-transmission
  kReceiverDead,    // "receiver_dead" -- receiver dead (or died) at delivery
  // Post-seed causes. Serialized only when non-zero so clean-run BENCH
  // artifacts stay byte-identical to their pre-fault-layer goldens.
  kReplay,    // "replay"   -- delivered, then rejected by the replay window
  kInjected,  // "injected" -- destroyed by an armed fault::Injector rule
};
inline constexpr std::size_t kDropCauseCount =
    static_cast<std::size_t>(DropCause::kInjected) + 1;
/// Causes the radio channel itself charges (everything before kReplay).
/// kReplay is charged by core::Messenger after a successful delivery and
/// kInjected by the fault layer, so conservation checks that balance
/// enumerated delivery candidates against outcomes must treat them apart.
inline constexpr std::size_t kChannelDropCauseCount =
    static_cast<std::size_t>(DropCause::kReplay);

/// Lifecycle milestones of an SndNode (paper section 4.1 timeline).
enum class NodePhase : std::uint8_t {
  kDeployed = 0,   // "deployed"       -- start(): Hello sequence begins
  kDiscoveryDone,  // "discovery_done" -- N(u) frozen, binding record created
  kValidated,      // "validated"      -- threshold checks run, commitments sent
  kKeyErased,      // "key_erased"     -- master key K destroyed
};
inline constexpr std::size_t kNodePhaseCount =
    static_cast<std::size_t>(NodePhase::kKeyErased) + 1;

/// Why the protocol refused an input. These are the explanations figure
/// drivers need for "why was this edge/packet rejected".
enum class RejectReason : std::uint8_t {
  kAuthFailed = 0,   // "auth_failed"       -- MAC/replay check failed
  kParseError,       // "parse_error"       -- payload failed to parse
  kNotTentative,     // "not_tentative"     -- record reply from outside N(u)
  kWrongSubject,     // "wrong_subject"     -- record/reply about the wrong node
  kBadCommitment,    // "bad_commitment"    -- commitment invalid under K
  kStaleVersion,     // "stale_version"     -- record version not newer
  kNoRecord,         // "no_record"         -- neighbor never delivered a record
  kThresholdNotMet,  // "threshold_not_met" -- |N(u) n N(v)| < t + 1
  kCommitMismatch,   // "commit_mismatch"   -- relation commitment != H(K_u|x)
  kVersionMismatch,  // "version_mismatch"  -- evidence/update cites other version
  kUpdateRefused,    // "update_refused"    -- update server declined
};
inline constexpr std::size_t kRejectReasonCount =
    static_cast<std::size_t>(RejectReason::kUpdateRefused) + 1;

/// How a functional-neighbor edge was accepted.
enum class AcceptVia : std::uint8_t {
  kThreshold = 0,  // "threshold"  -- own threshold check passed
  kCommitment,     // "commitment" -- peer's relation commitment verified
};
inline constexpr std::size_t kAcceptViaCount =
    static_cast<std::size_t>(AcceptVia::kCommitment) + 1;

/// What an armed fault::Injector did. Carried in EventKind::kInject events
/// so a trace shows exactly where a fault plan perturbed the run.
enum class InjectKind : std::uint8_t {
  kDrop = 0,   // "drop"      -- delivery candidate destroyed
  kDuplicate,  // "duplicate" -- extra copies scheduled
  kDelay,      // "delay"     -- delivery postponed
  kCorrupt,    // "corrupt"   -- payload mutated in flight
  kCrash,      // "crash"     -- device forced dead mid-protocol
  kReboot,     // "reboot"    -- device revived, agent restarted fresh
  kSkew,       // "skew"      -- per-node clock drift armed
  kBurst,      // "burst"     -- adversary-triggered loss burst hit
};
inline constexpr std::size_t kInjectKindCount =
    static_cast<std::size_t>(InjectKind::kBurst) + 1;

enum class EventKind : std::uint8_t {
  kTx = 0,    // code = Phase;        node = sender,   peer = dst, bytes on air
  kDelivery,  // code = Phase;        node = receiver, peer = claimed src
  kDrop,      // code = DropCause;    node = would-be receiver, peer = sender
  kPhase,     // code = NodePhase;    node = the node; bytes = list size
  kReject,    // code = RejectReason; node = rejecter, peer = offender
  kAccept,    // code = AcceptVia;    node = accepter, peer = new neighbor
  kInject,    // code = InjectKind;   node = affected, peer = other party
};
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kInject) + 1;

/// One trace record. Fixed-size POD: emission never allocates.
struct Event {
  EventKind kind = EventKind::kTx;
  /// Kind-discriminated payload code (Phase, DropCause, NodePhase,
  /// RejectReason, or AcceptVia cast to its underlying integer).
  std::uint8_t code = 0;
  /// Acting identity (sender, receiver, or deciding node; see EventKind).
  NodeId node = kNoNode;
  /// The other party, when there is one.
  NodeId peer = kNoNode;
  /// Wire bytes for radio events; small kind-specific count otherwise.
  std::uint32_t bytes = 0;
  /// Simulation time, integer nanoseconds.
  std::int64_t t_ns = 0;
};

// -- Export-time names ------------------------------------------------------
[[nodiscard]] std::string_view phase_name(Phase phase);
[[nodiscard]] std::string_view drop_cause_name(DropCause cause);
[[nodiscard]] std::string_view node_phase_name(NodePhase phase);
[[nodiscard]] std::string_view reject_reason_name(RejectReason reason);
[[nodiscard]] std::string_view accept_via_name(AcceptVia via);
[[nodiscard]] std::string_view inject_kind_name(InjectKind kind);
[[nodiscard]] std::string_view event_kind_name(EventKind kind);

/// Maps a historical sim::Metrics category string ("snd.hello", ...) to its
/// typed Phase; nullopt for names that never had a dedicated phase.
[[nodiscard]] std::optional<Phase> phase_from_name(std::string_view name);

/// The code's export name given the event kind ("snd.hello", "loss",
/// "validated", ...); "?" for out-of-range codes.
[[nodiscard]] std::string_view event_code_name(EventKind kind, std::uint8_t code);

}  // namespace snd::obs
