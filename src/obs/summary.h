// Per-trial trace summaries and the Registry that folds them into a
// per-sweep summary.
//
// Determinism contract (mirrors runner::TrialRunner): each trial writes its
// summary into the slot owned by its trial index, and fold() merges slots in
// index order after the workers join -- the folded summary, including its
// JSON serialization, is byte-identical for any --jobs count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.h"

namespace snd::obs {

/// Messages/bytes pair for one traffic phase.
struct TxCounter {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Typed counters distilled from one trial's trace: radio traffic per
/// Phase, drops per DropCause, protocol decisions per reason. Plain
/// uint64 adds, so merging is associative and order-insensitive -- the
/// trial-order fold makes determinism obvious rather than argued.
struct TraceSummary {
  std::array<TxCounter, kPhaseCount> tx{};
  std::array<std::uint64_t, kDropCauseCount> drops{};
  std::uint64_t deliveries = 0;

  std::array<std::uint64_t, kNodePhaseCount> node_phases{};
  std::array<std::uint64_t, kRejectReasonCount> rejects{};
  std::array<std::uint64_t, kAcceptViaCount> accepts{};
  /// Fault-layer perturbations per InjectKind; all zero when no FaultPlan
  /// was armed, in which case the block is omitted from to_json() entirely.
  std::array<std::uint64_t, kInjectKindCount> injects{};

  /// Events emitted (all kinds), and ring-buffer overwrites. Overflow is
  /// counted, never silent: ring_overflow > 0 tells you the in-memory ring
  /// was too small for the run (sinks still saw every event).
  std::uint64_t events = 0;
  std::uint64_t ring_overflow = 0;

  /// Trial summaries folded into this one (1 for a fresh capture).
  std::uint64_t trials = 0;

  void merge(const TraceSummary& other);

  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t total_drops() const;

  [[nodiscard]] std::uint64_t total_injects() const;

  /// One-line JSON object: {"trials":..,"deliveries":..,"tx":{...},
  /// "drops":{...},"node_phases":{...},"rejects":{...},"accepts":{...}}.
  /// tx lists only phases with traffic; the small fixed maps (drops,
  /// node_phases, rejects, accepts) always list every key, so downstream
  /// figure drivers can index without existence checks. Two exceptions keep
  /// clean-run artifacts byte-identical to pre-fault-layer goldens: the
  /// "replay"/"injected" drop causes appear only when non-zero, and the
  /// "injects" block appears only when a fault plan actually fired.
  [[nodiscard]] std::string to_json() const;
};

/// Aggregates per-trial traces into a per-sweep summary. record() writes a
/// preallocated slot owned by one trial alone (safe from worker threads,
/// same ownership discipline as TrialRunner's result slots); fold() merges
/// in trial order after the workers join.
class Registry {
 public:
  explicit Registry(std::size_t trials) : slots_(trials) {}

  /// Stores trial `index`'s summary. One writer per slot; out-of-range
  /// indices are ignored (defensive -- the runner never produces them).
  void record(std::size_t index, const TraceSummary& summary);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool recorded(std::size_t index) const {
    return index < slots_.size() && slots_[index].present;
  }

  /// Merges every recorded slot in ascending trial order.
  [[nodiscard]] TraceSummary fold() const;

 private:
  struct Slot {
    bool present = false;
    TraceSummary summary;
  };
  std::vector<Slot> slots_;
};

}  // namespace snd::obs
