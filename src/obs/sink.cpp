#include "obs/sink.h"

#include <array>

namespace snd::obs {

void Sink::on_log(util::LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(util::log_level_name(level).size()),
               util::log_level_name(level).data(), static_cast<int>(message.size()),
               message.data());
}

void CountingSink::on_event(const Event& event) {
  const std::scoped_lock lock(mutex_);
  ++summary_.events;
  const std::size_t code = event.code;
  switch (event.kind) {
    case EventKind::kTx:
      if (code < kPhaseCount) {
        ++summary_.tx[code].messages;
        summary_.tx[code].bytes += event.bytes;
      }
      break;
    case EventKind::kDelivery:
      ++summary_.deliveries;
      break;
    case EventKind::kDrop:
      if (code < kDropCauseCount) ++summary_.drops[code];
      break;
    case EventKind::kPhase:
      if (code < kNodePhaseCount) ++summary_.node_phases[code];
      break;
    case EventKind::kReject:
      if (code < kRejectReasonCount) ++summary_.rejects[code];
      break;
    case EventKind::kAccept:
      if (code < kAcceptViaCount) ++summary_.accepts[code];
      break;
    case EventKind::kInject:
      if (code < kInjectKindCount) ++summary_.injects[code];
      break;
  }
}

TraceSummary CountingSink::summary() const {
  const std::scoped_lock lock(mutex_);
  TraceSummary out = summary_;
  out.trials = 1;
  return out;
}

namespace {

/// JSON string escaping for log messages (event fields are all numeric or
/// fixed identifier names and never need escaping).
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonLinesSink::JsonLinesSink(const std::string& path) {
  if (path == "-") {
    file_ = stdout;
    owns_file_ = false;
  } else {
    file_ = std::fopen(path.c_str(), "w");
    owns_file_ = file_ != nullptr;
  }
}

JsonLinesSink::~JsonLinesSink() {
  if (file_ != nullptr) {
    std::fflush(file_);
    if (owns_file_) std::fclose(file_);
  }
}

std::string JsonLinesSink::to_json(const Event& event) {
  std::string out = "{\"kind\":\"";
  out += event_kind_name(event.kind);
  out += "\",\"t_ns\":" + std::to_string(event.t_ns);
  out += ",\"code\":\"";
  out += event_code_name(event.kind, event.code);
  out += "\"";
  if (event.node != kNoNode) out += ",\"node\":" + std::to_string(event.node);
  if (event.peer != kNoNode) out += ",\"peer\":" + std::to_string(event.peer);
  if (event.bytes != 0) out += ",\"bytes\":" + std::to_string(event.bytes);
  out += "}";
  return out;
}

void JsonLinesSink::on_event(const Event& event) { write_line(to_json(event)); }

void JsonLinesSink::on_log(util::LogLevel level, std::string_view message) {
  std::string line = "{\"kind\":\"log\",\"level\":\"";
  line += util::log_level_name(level);
  line += "\",\"msg\":";
  append_escaped(line, message);
  line += "}";
  write_line(line);
}

void JsonLinesSink::flush() {
  const std::scoped_lock lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void JsonLinesSink::write_line(const std::string& line) {
  const std::scoped_lock lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

}  // namespace snd::obs
