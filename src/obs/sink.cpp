#include "obs/sink.h"

#include <array>
#include <cstring>

#include "util/bytes.h"

namespace snd::obs {

void Sink::on_log(util::LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(util::log_level_name(level).size()),
               util::log_level_name(level).data(), static_cast<int>(message.size()),
               message.data());
}

void CountingSink::on_event(const Event& event) {
  const std::scoped_lock lock(mutex_);
  ++summary_.events;
  const std::size_t code = event.code;
  switch (event.kind) {
    case EventKind::kTx:
      if (code < kPhaseCount) {
        ++summary_.tx[code].messages;
        summary_.tx[code].bytes += event.bytes;
      }
      break;
    case EventKind::kDelivery:
      ++summary_.deliveries;
      break;
    case EventKind::kDrop:
      if (code < kDropCauseCount) ++summary_.drops[code];
      break;
    case EventKind::kPhase:
      if (code < kNodePhaseCount) ++summary_.node_phases[code];
      break;
    case EventKind::kReject:
      if (code < kRejectReasonCount) ++summary_.rejects[code];
      break;
    case EventKind::kAccept:
      if (code < kAcceptViaCount) ++summary_.accepts[code];
      break;
    case EventKind::kInject:
      if (code < kInjectKindCount) ++summary_.injects[code];
      break;
  }
}

TraceSummary CountingSink::summary() const {
  const std::scoped_lock lock(mutex_);
  TraceSummary out = summary_;
  out.trials = 1;
  return out;
}

namespace {

/// JSON string escaping for log messages (event fields are all numeric or
/// fixed identifier names and never need escaping).
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonLinesSink::JsonLinesSink(const std::string& path) {
  if (path == "-") {
    file_ = stdout;
    owns_file_ = false;
  } else {
    file_ = std::fopen(path.c_str(), "w");
    owns_file_ = file_ != nullptr;
  }
}

JsonLinesSink::~JsonLinesSink() {
  if (file_ != nullptr) {
    std::fflush(file_);
    if (owns_file_) std::fclose(file_);
  }
}

std::string JsonLinesSink::to_json(const Event& event) {
  std::string out = "{\"kind\":\"";
  out += event_kind_name(event.kind);
  out += "\",\"t_ns\":" + std::to_string(event.t_ns);
  out += ",\"code\":\"";
  out += event_code_name(event.kind, event.code);
  out += "\"";
  if (event.node != kNoNode) out += ",\"node\":" + std::to_string(event.node);
  if (event.peer != kNoNode) out += ",\"peer\":" + std::to_string(event.peer);
  if (event.bytes != 0) out += ",\"bytes\":" + std::to_string(event.bytes);
  out += "}";
  return out;
}

void JsonLinesSink::on_event(const Event& event) { write_line(to_json(event)); }

void JsonLinesSink::on_log(util::LogLevel level, std::string_view message) {
  std::string line = "{\"kind\":\"log\",\"level\":\"";
  line += util::log_level_name(level);
  line += "\",\"msg\":";
  append_escaped(line, message);
  line += "}";
  write_line(line);
}

void JsonLinesSink::flush() {
  const std::scoped_lock lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void JsonLinesSink::write_line(const std::string& line) {
  const std::scoped_lock lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

namespace {

constexpr char kTraceMagic[8] = {'S', 'N', 'D', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint8_t kLogTag = 0;

}  // namespace

BinaryEventSink::BinaryEventSink(const std::string& path) {
  if (path == "-") return;  // binary stream; refuse stdout
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), file_) != sizeof(kTraceMagic)) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

BinaryEventSink::~BinaryEventSink() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

std::vector<std::uint8_t> BinaryEventSink::encode(const Event& event) {
  util::Bytes out;
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(event.kind) + 1));
  util::put_varint(out, event.code);
  util::put_varint(out, event.node);
  util::put_varint(out, event.peer);
  util::put_varint(out, event.bytes);
  util::put_varint_signed(out, event.t_ns);
  return out;
}

std::optional<BinaryEventSink::Decoded> BinaryEventSink::decode(
    std::span<const std::uint8_t> data, std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<Decoded> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  util::ByteReader reader(data);
  const auto magic = reader.bytes_view(sizeof(kTraceMagic));
  if (!magic || std::memcmp(magic->data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return fail("not a .sndtrace stream (bad magic)");
  }
  Decoded out;
  while (!reader.exhausted()) {
    const auto tag = reader.u8();
    if (!tag) return fail("truncated record tag");
    if (*tag == kLogTag) {
      const auto level = reader.varint();
      const auto len = level ? reader.varint() : std::nullopt;
      const auto text = len ? reader.bytes_view(static_cast<std::size_t>(*len))
                            : std::nullopt;
      if (!text || *level > static_cast<std::uint64_t>(util::LogLevel::kOff)) {
        return fail("truncated or malformed log record");
      }
      out.logs.emplace_back(static_cast<util::LogLevel>(*level),
                            std::string(reinterpret_cast<const char*>(text->data()),
                                        text->size()));
      continue;
    }
    if (*tag > kEventKindCount) {
      return fail("unknown record tag " + std::to_string(*tag));
    }
    Event event;
    event.kind = static_cast<EventKind>(*tag - 1);
    const auto code = reader.varint();
    const auto node = reader.varint();
    const auto peer = reader.varint();
    const auto bytes = reader.varint();
    const auto t_ns = reader.varint_signed();
    if (!t_ns || *code > 0xff || *node > kNoNode || *peer > kNoNode ||
        *bytes > 0xffffffffu) {
      return fail("truncated or malformed event record");
    }
    event.code = static_cast<std::uint8_t>(*code);
    event.node = static_cast<NodeId>(*node);
    event.peer = static_cast<NodeId>(*peer);
    event.bytes = static_cast<std::uint32_t>(*bytes);
    event.t_ns = *t_ns;
    out.events.push_back(event);
  }
  return out;
}

void BinaryEventSink::on_event(const Event& event) { write_record(encode(event)); }

void BinaryEventSink::on_log(util::LogLevel level, std::string_view message) {
  util::Bytes record;
  record.push_back(kLogTag);
  util::put_varint(record, static_cast<std::uint64_t>(level));
  util::put_varint(record, message.size());
  for (char c : message) record.push_back(static_cast<std::uint8_t>(c));
  write_record(record);
}

void BinaryEventSink::flush() {
  const std::scoped_lock lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void BinaryEventSink::write_record(const std::vector<std::uint8_t>& record) {
  const std::scoped_lock lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(record.data(), 1, record.size(), file_);
}

}  // namespace snd::obs
