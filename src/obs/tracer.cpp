#include "obs/tracer.h"

#include <mutex>

namespace snd::obs {

namespace {

std::mutex g_defaults_mutex;
TraceDefaults& defaults_storage() {
  static TraceDefaults defaults;
  return defaults;
}

}  // namespace

void set_default_trace(const TraceDefaults& defaults) {
  const std::scoped_lock lock(g_defaults_mutex);
  defaults_storage() = defaults;
}

TraceDefaults default_trace() {
  const std::scoped_lock lock(g_defaults_mutex);
  return defaults_storage();
}

Tracer::Tracer() {
  const TraceDefaults defaults = default_trace();
  level_ = defaults.level;
  sink_ = defaults.sink;
  ring_capacity_ = defaults.ring_capacity > 0 ? defaults.ring_capacity : 1;
}

Tracer::Tracer(TraceLevel level, std::shared_ptr<Sink> sink, std::size_t ring_capacity)
    : level_(level), sink_(std::move(sink)), ring_capacity_(ring_capacity > 0 ? ring_capacity : 1) {}

void Tracer::record(const Event& event) {
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_slot_] = event;
    next_slot_ = (next_slot_ + 1) % ring_capacity_;
    ++ring_overflow_;
  }
  if (sink_) sink_->on_event(event);
}

std::vector<Event> Tracer::recent() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // next_slot_ points at the oldest entry once the ring has wrapped.
  const std::size_t n = ring_.size();
  const std::size_t start = n == ring_capacity_ ? next_slot_ : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

void Tracer::accumulate_into(TraceSummary& summary) const {
  for (std::size_t i = 0; i < kNodePhaseCount; ++i) summary.node_phases[i] += node_phases_[i];
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) summary.rejects[i] += rejects_[i];
  for (std::size_t i = 0; i < kAcceptViaCount; ++i) summary.accepts[i] += accepts_[i];
  for (std::size_t i = 0; i < kInjectKindCount; ++i) summary.injects[i] += injects_[i];
  summary.events += events_;
  summary.ring_overflow += ring_overflow_;
}

void Tracer::reset() {
  events_ = 0;
  ring_overflow_ = 0;
  node_phases_ = {};
  rejects_ = {};
  accepts_ = {};
  injects_ = {};
  ring_.clear();
  next_slot_ = 0;
}

}  // namespace snd::obs
