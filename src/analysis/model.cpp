#include "analysis/model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/geometry.h"

namespace snd::analysis {

double FieldModel::expected_neighbors() const {
  return density * std::numbers::pi * radio_range * radio_range - 1.0;
}

double FieldModel::expected_common_neighbors(double c) const {
  return util::expected_common_neighbors(density, radio_range, c);
}

double FieldModel::tau_for_threshold(std::size_t t) const {
  const double needed = static_cast<double>(t) + 1.0;
  if (expected_common_neighbors(0.0) < needed) return 0.0;
  if (expected_common_neighbors(2.0) >= needed) return 2.0;

  // N(c) is strictly decreasing on [0, 2]; bisect.
  double lo = 0.0;
  double hi = 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (expected_common_neighbors(mid) >= needed) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double FieldModel::accuracy(std::size_t t) const {
  const double tau = tau_for_threshold(t);
  // Validated neighbors live within tau*R: D*pi*(tau R)^2 - 1 of them on
  // average, out of D*pi*R^2 - 1 actual neighbors.
  const double denominator = expected_neighbors();
  if (denominator <= 0.0) return 0.0;
  const double numerator =
      density * std::numbers::pi * tau * tau * radio_range * radio_range - 1.0;
  return std::clamp(numerator / denominator, 0.0, 1.0);
}

double FieldModel::accuracy_approx(std::size_t t) const {
  const double tau = tau_for_threshold(t);
  return std::min(tau * tau, 1.0);
}

double expected_neighbors_at(const FieldModel& model, const FieldPosition& position) {
  const util::Circle radio{{position.x, position.y}, model.radio_range};
  const util::Rect field{{0.0, 0.0}, {position.field_width, position.field_height}};
  return model.density * util::circle_rect_intersection_area(radio, field) - 1.0;
}

std::size_t FieldModel::max_threshold_for_accuracy(double target) const {
  // accuracy(t) is non-increasing in t; binary search over t.
  std::size_t lo = 0;
  std::size_t hi = static_cast<std::size_t>(std::max(0.0, expected_common_neighbors(0.0))) + 1;
  if (accuracy(lo) < target) return 0;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (accuracy(mid) >= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace snd::analysis
