// Closed-form performance model from paper §4.5.1.
//
// For two tentative neighbors at distance c*R (0 <= c <= 2) in a uniform
// deployment of density D, the expected number of common neighbors is
//   N(c) = D R^2 (2 acos(c/2) - c sqrt(1 - (c/2)^2)) - 2.
// With threshold t, let tau be the distance ratio where N(tau) = t+1; pairs
// closer than tau*R are expected to validate. The fraction of actual
// neighbors kept in the functional list is then
//   f_b = (D pi tau^2 R^2 - 1) / (D pi R^2 - 1)  ~=  tau^2.
#pragma once

#include <cstddef>

namespace snd::analysis {

struct FieldModel {
  double density = 0.02;     // nodes per square meter
  double radio_range = 50.0;  // R, meters

  /// Expected neighbors of a node: D*pi*R^2 - 1.
  [[nodiscard]] double expected_neighbors() const;

  /// Expected common-neighbor count N(c) for two nodes at distance c*R.
  [[nodiscard]] double expected_common_neighbors(double c) const;

  /// tau such that N(tau) = t+1, in [0, 2]. Returns 0 if even coincident
  /// nodes cannot reach t+1 common neighbors at this density; the model
  /// predicts no validations then.
  [[nodiscard]] double tau_for_threshold(std::size_t t) const;

  /// Exact model accuracy f_b for threshold t (clamped to [0, 1]).
  [[nodiscard]] double accuracy(std::size_t t) const;

  /// The paper's tau^2 approximation of f_b.
  [[nodiscard]] double accuracy_approx(std::size_t t) const;

  /// Largest t for which the model predicts accuracy >= `target`.
  /// Inverts the accuracy curve; used for parameter-selection tooling.
  [[nodiscard]] std::size_t max_threshold_for_accuracy(double target) const;
};

struct FieldPosition {
  double x = 0.0;
  double y = 0.0;
  double field_width = 100.0;
  double field_height = 100.0;
};

/// Border-corrected expected neighbor count for a node at `position` in a
/// finite field: density * area(radio disk ∩ field) - 1. The paper's
/// infinite-plane formulas overestimate degrees near the field edge, which
/// is why its simulations measure the center node; this quantifies the gap.
double expected_neighbors_at(const FieldModel& model, const FieldPosition& position);

}  // namespace snd::analysis
