#include "verify/verifier.h"

#include <cmath>
#include <limits>

namespace snd::verify {

namespace {

/// Distance from `verifier` to the nearest alive device carrying the
/// claimed identity's credentials; +inf if none exists.
double distance_to_nearest_credentialed(const sim::Network& network, sim::DeviceId verifier,
                                        NodeId claimed) {
  const util::Vec2 from = network.device(verifier).position;
  double best = std::numeric_limits<double>::infinity();
  for (sim::DeviceId holder : network.devices_with_identity(claimed)) {
    if (holder == verifier) continue;
    best = std::min(best, util::distance(from, network.device(holder).position));
  }
  return best;
}

}  // namespace

bool NaiveVerifier::verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
                           NodeId claimed) {
  (void)network;
  (void)verifier;
  (void)sender;
  (void)claimed;
  // Heard it, believe it: reception itself is the only evidence used.
  return true;
}

bool OracleVerifier::verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
                            NodeId claimed) {
  (void)sender;
  // "Neighbor" means an actual radio link (shadowing models included), so
  // the oracle consults the propagation model, not a nominal-range disk.
  for (sim::DeviceId holder : network.devices_with_identity(claimed)) {
    if (holder != verifier && network.link(verifier, holder)) return true;
  }
  return false;
}

RttVerifier::RttVerifier(double clock_jitter_ns, double slack)
    : clock_jitter_ns_(clock_jitter_ns), slack_(slack) {}

bool RttVerifier::verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
                         NodeId claimed) {
  (void)sender;
  constexpr double kSpeedOfLight = 299'792'458.0;
  const double true_distance = distance_to_nearest_credentialed(network, verifier, claimed);
  if (std::isinf(true_distance)) return false;  // nobody can authenticate the response

  // Round trip with independent timestamping jitter at each end; adversarial
  // delay can only lengthen the estimate, never shorten it.
  const double jitter_ns =
      network.rng().normal(0.0, clock_jitter_ns_) + network.rng().normal(0.0, clock_jitter_ns_);
  const double rtt_ns = 2.0 * true_distance / kSpeedOfLight * 1e9 + std::abs(jitter_ns);
  const double estimated = rtt_ns * 1e-9 * kSpeedOfLight / 2.0;

  return estimated <= network.propagation().nominal_range() * slack_;
}

ImperfectVerifier::ImperfectVerifier(std::shared_ptr<DirectVerifier> inner,
                                     double false_reject_rate, double false_accept_rate)
    : inner_(std::move(inner)),
      false_reject_rate_(false_reject_rate),
      false_accept_rate_(false_accept_rate) {}

bool ImperfectVerifier::verify(sim::Network& network, sim::DeviceId verifier,
                               sim::DeviceId sender, NodeId claimed) {
  const bool genuine = inner_->verify(network, verifier, sender, claimed);
  if (genuine) return !network.rng().chance(false_reject_rate_);
  return network.rng().chance(false_accept_rate_);
}

std::string ImperfectVerifier::name() const {
  return "imperfect(" + inner_->name() + ")";
}

LocationVerifier::LocationVerifier(double measurement_tolerance)
    : measurement_tolerance_(measurement_tolerance) {}

bool LocationVerifier::verify(sim::Network& network, sim::DeviceId verifier,
                              sim::DeviceId sender, NodeId claimed) {
  (void)sender;
  // The credentialed device signs its true position: replicas gain nothing
  // by lying (they really are nearby), benign devices never lie, and an
  // identity with no credentialed device cannot produce a signed claim.
  const double claimed_distance = distance_to_nearest_credentialed(network, verifier, claimed);
  if (std::isinf(claimed_distance)) return false;

  // Signal-strength consistency check with measurement noise.
  const double measured =
      claimed_distance + network.rng().normal(0.0, measurement_tolerance_ / 2.0);
  if (std::abs(measured - claimed_distance) > measurement_tolerance_) return false;

  return claimed_distance <= network.propagation().nominal_range();
}

}  // namespace snd::verify
