#include "verify/rtt_probe.h"

namespace snd::verify {

namespace {
constexpr obs::Phase kCategory = obs::Phase::kRtt;
constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
constexpr std::size_t kChallengeBytes = 8;
constexpr std::size_t kResponseBytes = 8 + crypto::kShortMacSize;
}  // namespace

namespace {
util::Bytes rtt_mac_input(std::uint64_t nonce, NodeId responder) {
  util::Bytes input;
  util::put_var_bytes(input, util::Bytes{'s', 'n', 'd', '.', 'r', 't', 't'});
  util::put_u64(input, nonce);
  util::put_u32(input, responder);
  return input;
}
}  // namespace

crypto::ShortMac rtt_response_mac(const crypto::SymmetricKey& pairwise, std::uint64_t nonce,
                                  NodeId responder) {
  return crypto::short_mac(pairwise, rtt_mac_input(nonce, responder));
}

crypto::ShortMac rtt_response_mac(const crypto::HmacKey& pairwise, std::uint64_t nonce,
                                  NodeId responder) {
  return pairwise.short_mac(rtt_mac_input(nonce, responder));
}

RttResponder::RttResponder(sim::Network& network, sim::DeviceId device, NodeId identity,
                           std::shared_ptr<crypto::KeyPredistribution> keys)
    : network_(network),
      device_(device),
      identity_(identity),
      keys_(std::move(keys)),
      key_cache_(keys_, identity) {}

bool RttResponder::handle(const sim::Packet& packet) {
  if (packet.type != kRttChallengeType || packet.dst != identity_) return false;
  util::ByteReader reader(packet.payload);
  const auto nonce = reader.u64();
  if (!nonce || !reader.exhausted()) return true;  // consumed but malformed

  crypto::ShortMac mac;
  if (crypto::fast_path_enabled()) {
    const crypto::PairKeyCache::Entry& entry = key_cache_.get(packet.src);
    if (!entry.key.present()) return true;  // cannot authenticate a response
    mac = rtt_response_mac(entry.mac, *nonce, identity_);
  } else {
    const auto pairwise = keys_->pairwise(identity_, packet.src);
    if (!pairwise) return true;  // cannot authenticate a response
    mac = rtt_response_mac(*pairwise, *nonce, identity_);
  }

  // Respond after the declared fixed turnaround; the challenger subtracts
  // it from the measured round trip.
  util::Bytes payload;
  util::put_u64(payload, *nonce);
  util::put_bytes(payload, mac);
  const NodeId challenger = packet.src;
  network_.scheduler().schedule_at(
      network_.now() + kRttTurnaround, [this, challenger, payload = std::move(payload)]() {
        network_.transmit(device_,
                          sim::Packet{.src = identity_,
                                      .dst = challenger,
                                      .type = kRttResponseType,
                                      .payload = payload},
                          kCategory);
      });
  return true;
}

RttChallenger::RttChallenger(sim::Network& network, sim::DeviceId device, NodeId identity,
                             std::shared_ptr<crypto::KeyPredistribution> keys)
    : network_(network),
      device_(device),
      identity_(identity),
      keys_(std::move(keys)),
      key_cache_(keys_, identity) {}

void RttChallenger::probe(NodeId target, sim::Time timeout, Callback done) {
  const std::uint64_t nonce = next_nonce_++;
  pending_.emplace(nonce, Pending{target, network_.now(), std::move(done)});

  util::Bytes payload;
  util::put_u64(payload, nonce);
  network_.transmit(
      device_,
      sim::Packet{
          .src = identity_, .dst = target, .type = kRttChallengeType, .payload = payload},
      kCategory);

  network_.scheduler().schedule_at(network_.now() + timeout, [this, nonce]() {
    const auto it = pending_.find(nonce);
    if (it == pending_.end() || it->second.finished) return;
    it->second.finished = true;
    it->second.done(std::nullopt);
    pending_.erase(it);
  });
}

bool RttChallenger::handle(const sim::Packet& packet) {
  if (packet.type != kRttResponseType || packet.dst != identity_) return false;
  util::ByteReader reader(packet.payload);
  const auto nonce = reader.u64();
  const auto mac = reader.bytes_view(crypto::kShortMacSize);
  if (!nonce || !mac || !reader.exhausted()) return true;

  const auto it = pending_.find(*nonce);
  if (it == pending_.end() || it->second.finished) return true;

  if (crypto::fast_path_enabled()) {
    const crypto::PairKeyCache::Entry& entry = key_cache_.get(it->second.target);
    if (!entry.key.present() ||
        !util::constant_time_equal(rtt_response_mac(entry.mac, *nonce, it->second.target),
                                   *mac)) {
      return true;  // forged response: keep waiting for an authentic one
    }
  } else {
    const auto pairwise = keys_->pairwise(identity_, it->second.target);
    if (!pairwise ||
        !util::constant_time_equal(rtt_response_mac(*pairwise, *nonce, it->second.target),
                                   *mac)) {
      return true;  // forged response: keep waiting for an authentic one
    }
  }

  // Subtract every deterministic overhead; what is left is 2x propagation.
  const sim::Time rtt = network_.now() - it->second.sent_at;
  const sim::Time known =
      network_.transmission_time(kChallengeBytes + sim::Packet::kHeaderBytes) +
      network_.transmission_time(kResponseBytes + sim::Packet::kHeaderBytes) +
      kRttTurnaround + network_.channel_config().processing_delay +
      network_.channel_config().processing_delay;
  const double flight_ns = static_cast<double>((rtt - known).ns());
  const double distance = std::max(0.0, flight_ns * 1e-9 * kSpeedOfLight / 2.0);

  it->second.finished = true;
  it->second.done(distance);
  pending_.erase(it);
  return true;
}

}  // namespace snd::verify
