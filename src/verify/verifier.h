// Direct neighbor verification (paper references [8]-[10], [15]).
//
// These mechanisms answer "is the node claiming identity X really close to
// me?" and produce the *tentative* neighbor relations (Definition 1). The
// paper assumes they are perfect between benign nodes and explicitly notes
// that compromised nodes bypass them: a replica carries X's genuine
// credentials and is genuinely nearby, so any proximity check passes.
//
// The decisive modeling question is what a verification exchange actually
// binds to. Authenticated verification (distance bounding with a MAC'd
// response, signed location claims) binds to whoever holds the claimed
// identity's *credentials* -- so a wormhole relaying a far-away node's
// traffic is caught (the credentialed responder is far), and a fabricated
// identity with no credentials at all cannot complete the exchange. The
// implementations here follow that semantics; NaiveVerifier models the
// absence of any direct verification for ablation studies.
#pragma once

#include <memory>
#include <string>

#include "sim/network.h"

namespace snd::verify {

class DirectVerifier {
 public:
  virtual ~DirectVerifier() = default;

  /// Decides whether device `verifier` should accept identity `claimed`,
  /// whose transmission physically originated at `sender`, as a tentative
  /// neighbor. Takes the network mutably for RNG access (measurement noise).
  [[nodiscard]] virtual bool verify(sim::Network& network, sim::DeviceId verifier,
                                    sim::DeviceId sender, NodeId claimed) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Extra messages a single verification costs (for overhead accounting).
  [[nodiscard]] virtual std::size_t messages_per_verification() const = 0;
};

/// No verification at all: accept whatever the radio heard. The ablation
/// baseline -- wormhole relays and fabricated (chaff) identities all pass.
class NaiveVerifier final : public DirectVerifier {
 public:
  bool verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
              NodeId claimed) override;
  [[nodiscard]] std::string name() const override { return "naive"; }
  [[nodiscard]] std::size_t messages_per_verification() const override { return 0; }
};

/// The paper's assumption made literal: accepts iff some alive device
/// carrying the claimed identity's credentials is within radio range of the
/// verifier. Replicas pass (they are credentialed and present); wormhole
/// relays of far-away identities fail; credential-less chaff fails. Zero
/// message overhead.
class OracleVerifier final : public DirectVerifier {
 public:
  bool verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
              NodeId claimed) override;
  [[nodiscard]] std::string name() const override { return "oracle"; }
  [[nodiscard]] std::size_t messages_per_verification() const override { return 0; }
};

/// Authenticated distance bounding via round-trip time (packet-leash style,
/// [9][10]): the challenge response is MAC'd by the claimed identity, so
/// the measured RTT lower-bounds the distance to the nearest credentialed
/// device -- an adversary can delay a response (inflating the estimate) but
/// never answer faster than light, and a relay cannot answer at all.
class RttVerifier final : public DirectVerifier {
 public:
  /// `clock_jitter_ns`: one-sigma timestamping error per measurement.
  /// `slack`: multiplicative tolerance on the nominal range.
  explicit RttVerifier(double clock_jitter_ns = 10.0, double slack = 1.1);

  bool verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
              NodeId claimed) override;
  [[nodiscard]] std::string name() const override { return "rtt"; }
  [[nodiscard]] std::size_t messages_per_verification() const override { return 2; }

 private:
  double clock_jitter_ns_;
  double slack_;
};

/// Imperfect direct verification -- the paper's first future-work question
/// (§6): "the performance of our technique when the direct verification
/// mechanisms cannot guarantee the correct verification of neighbor
/// relations between benign nodes". Wraps another verifier and flips its
/// answer with configurable error rates: a false reject drops a genuine
/// neighbor from the tentative list; a false accept admits a non-neighbor.
/// The verifier_sensitivity bench sweeps both rates.
class ImperfectVerifier final : public DirectVerifier {
 public:
  ImperfectVerifier(std::shared_ptr<DirectVerifier> inner, double false_reject_rate,
                    double false_accept_rate);

  bool verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
              NodeId claimed) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t messages_per_verification() const override {
    return inner_->messages_per_verification();
  }

 private:
  std::shared_ptr<DirectVerifier> inner_;
  double false_reject_rate_;
  double false_accept_rate_;
};

/// Location-based verification ([9][10]): the claimed identity's device
/// signs its position; accept iff the claimed position is in range and
/// consistent with signal measurements. Replicas report their own (nearby)
/// position and pass; relayed or credential-less claims fail.
class LocationVerifier final : public DirectVerifier {
 public:
  explicit LocationVerifier(double measurement_tolerance = 5.0);

  bool verify(sim::Network& network, sim::DeviceId verifier, sim::DeviceId sender,
              NodeId claimed) override;
  [[nodiscard]] std::string name() const override { return "location"; }
  [[nodiscard]] std::size_t messages_per_verification() const override { return 1; }

 private:
  double measurement_tolerance_;
};

}  // namespace snd::verify
