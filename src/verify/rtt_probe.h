// Message-level authenticated distance bounding.
//
// The RttVerifier in verifier.h is an *abstraction* of this protocol: a
// challenger sends a nonce, the claimed identity MACs it back under their
// pairwise key with its (declared, bounded) turnaround time, and the
// challenger converts   RTT - turnaround   into a distance estimate at the
// speed of light. Nothing can answer faster than light, and only a holder
// of the claimed identity's keys can answer at all, so:
//   * genuine neighbors and nearby replicas pass,
//   * wormhole-relayed far identities fail (tunnel latency inflates RTT),
//   * fabricated identities produce no authentic response (timeout).
// This module runs the exchange as real packets over the simulator --
// challenge type 0x21, response type 0x22 -- and exists to validate that
// abstraction; see tests/verify_rtt_probe_test.cpp.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "crypto/hmac.h"
#include "crypto/keypredist.h"
#include "crypto/session_cache.h"
#include "sim/network.h"

namespace snd::verify {

/// Message types used by the probe (outside the core protocol's 1..8).
inline constexpr std::uint8_t kRttChallengeType = 0x21;
inline constexpr std::uint8_t kRttResponseType = 0x22;

/// The fixed turnaround a responder commits to: it answers exactly this
/// long after reception. Receivers subtract it from the measured RTT.
inline constexpr sim::Time kRttTurnaround = sim::Time::microseconds(50);

/// Responder half: answers authenticated challenges addressed to its
/// identity. Attach alongside (or instead of) other per-device handlers.
class RttResponder {
 public:
  RttResponder(sim::Network& network, sim::DeviceId device, NodeId identity,
               std::shared_ptr<crypto::KeyPredistribution> keys);

  /// Handles a packet if it is a challenge for us; returns true if consumed.
  bool handle(const sim::Packet& packet);

 private:
  sim::Network& network_;
  sim::DeviceId device_;
  NodeId identity_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  crypto::PairKeyCache key_cache_;
};

/// Challenger half: issues a challenge to `target` and reports the distance
/// estimate (meters) or std::nullopt on timeout / bad MAC.
class RttChallenger {
 public:
  RttChallenger(sim::Network& network, sim::DeviceId device, NodeId identity,
                std::shared_ptr<crypto::KeyPredistribution> keys);

  using Callback = std::function<void(std::optional<double> distance_m)>;

  /// Starts a probe of `target`; invokes `done` once (response or timeout).
  void probe(NodeId target, sim::Time timeout, Callback done);

  /// Handles a packet if it is a response to one of our probes; returns
  /// true if consumed.
  bool handle(const sim::Packet& packet);

 private:
  struct Pending {
    NodeId target;
    sim::Time sent_at;
    Callback done;
    bool finished = false;
  };

  sim::Network& network_;
  sim::DeviceId device_;
  NodeId identity_;
  std::shared_ptr<crypto::KeyPredistribution> keys_;
  crypto::PairKeyCache key_cache_;
  std::uint64_t next_nonce_ = 1;
  std::map<std::uint64_t, Pending> pending_;
};

/// The expected response MAC: HMAC(K_uv, "snd.rtt" | nonce | responder).
crypto::ShortMac rtt_response_mac(const crypto::SymmetricKey& pairwise, std::uint64_t nonce,
                                  NodeId responder);
/// Midstate variant; bit-identical to the SymmetricKey overload.
crypto::ShortMac rtt_response_mac(const crypto::HmacKey& pairwise, std::uint64_t nonce,
                                  NodeId responder);

}  // namespace snd::verify
