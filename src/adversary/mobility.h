// Mobility and churn models (VANET-style workload for the binding-record
// update path). Not adversaries in the threat-model sense, but they live in
// the scenario subsystem because they are armed the same way and audited by
// the same oracle registry: random-waypoint walks reposition protocol
// devices through Network::set_position (exercising grid re-bucketing under
// live traffic), and churn schedules crash/reboot cycles so neighbor sets
// evolve, boot epochs advance, and record updates fire continuously.
//
// Both draw every decision from their own seeded Rng, so a (config, pool)
// pair reproduces the identical walk/schedule on every run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deployment_driver.h"
#include "sim/network.h"
#include "util/rng.h"

namespace snd::adversary {

/// Random-waypoint walker over a fixed device set. schedule() plants the
/// whole (finite) step program on the scheduler, so run-to-quiescence
/// still terminates.
class WaypointMobility {
 public:
  /// `movers` are the devices to walk (deduplicated, moved in index order
  /// every step -- determinism does not depend on the caller's ordering
  /// draws). Walk parameters: `speed_mps` toward rng waypoints inside
  /// `field`, one repositioning every `step`, `steps` times.
  WaypointMobility(sim::Network& network, util::Rect field, std::vector<sim::DeviceId> movers,
                   double speed_mps, sim::Time step, std::uint32_t steps, std::uint64_t seed);

  WaypointMobility(const WaypointMobility&) = delete;
  WaypointMobility& operator=(const WaypointMobility&) = delete;

  /// Schedules all steps starting one step interval from now. The object
  /// must outlive the scheduled events.
  void schedule();

  [[nodiscard]] std::uint64_t moves_applied() const { return moves_; }
  [[nodiscard]] const std::vector<sim::DeviceId>& movers() const { return movers_; }

 private:
  void step_once();

  sim::Network& network_;
  util::Rect field_;
  std::vector<sim::DeviceId> movers_;
  std::vector<util::Vec2> waypoints_;
  double speed_mps_;
  sim::Time step_;
  std::uint32_t steps_left_;
  util::Rng rng_;
  std::uint64_t moves_ = 0;
};

/// Periodic crash/reboot cycles over a victim pool. Every cycle c the same
/// seeded draw picks `victims` identities, crashes them at
/// first_at + c*period, and reboots them down later (fresh agent, next boot
/// epoch). Victims are drawn up front so the schedule is a pure function of
/// (seed, pool).
class ChurnSchedule {
 public:
  ChurnSchedule(core::SndDeployment& deployment, std::vector<NodeId> pool,
                std::uint32_t victims, std::uint32_t cycles, sim::Time first_at,
                sim::Time period, sim::Time down, std::uint64_t seed);

  ChurnSchedule(const ChurnSchedule&) = delete;
  ChurnSchedule& operator=(const ChurnSchedule&) = delete;

  /// Plants every crash/reboot on the scheduler. The object must outlive
  /// the scheduled events.
  void schedule();

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t reboots() const { return reboots_; }

 private:
  core::SndDeployment& deployment_;
  std::vector<NodeId> pool_;
  std::uint32_t victims_;
  std::uint32_t cycles_;
  sim::Time first_at_;
  sim::Time period_;
  sim::Time down_;
  util::Rng rng_;
  std::uint64_t crashes_ = 0;
  std::uint64_t reboots_ = 0;
};

}  // namespace snd::adversary
