#include "adversary/scenario.h"

#include <cstdio>

#include "adversary/mobility.h"
#include "adversary/replayer.h"
#include "adversary/sybil.h"
#include "adversary/wormhole.h"
#include "util/json.h"

namespace snd::adversary {

namespace {

const RelayConfig kRelayDefaults{};
const SybilConfig kSybilDefaults{};
const ReplayConfig kReplayDefaults{};
const MobilityConfig kMobilityDefaults{};
const ChurnConfig kChurnDefaults{};

void append_number(std::string& out, std::string_view key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void append_number(std::string& out, std::string_view key, std::int64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void append_double(std::string& out, std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += ",\"";
  out += key;
  out += "\":";
  out += buf;
}

/// Starts a family sub-object. Every sub-serializer below emits fields with
/// a leading comma, so the object opens with a placeholder member that also
/// serves as a format tag.
void open_family(std::string& out, bool& first, std::string_view family) {
  if (!first) out += ",";
  first = false;
  out += "\"";
  out += family;
  out += "\":{\"on\":true";
}

bool fraction_ok(double v) { return v >= 0.0 && v <= 1.0; }

std::optional<RelayConfig> parse_relay(const util::JsonValue& v) {
  RelayConfig c;
  if (const auto ax = v.number("ax")) c.ax = *ax;
  if (const auto ay = v.number("ay")) c.ay = *ay;
  if (const auto bx = v.number("bx")) c.bx = *bx;
  if (const auto by = v.number("by")) c.by = *by;
  if (const auto lat = v.i64("latency_ns")) c.tunnel_latency_ns = *lat;
  if (!fraction_ok(c.ax) || !fraction_ok(c.ay) || !fraction_ok(c.bx) || !fraction_ok(c.by)) {
    return std::nullopt;
  }
  if (c.tunnel_latency_ns < 0) return std::nullopt;
  return c;
}

std::optional<SybilConfig> parse_sybil(const util::JsonValue& v) {
  SybilConfig c;
  if (const auto x = v.number("x")) c.x = *x;
  if (const auto y = v.number("y")) c.y = *y;
  if (const auto n = v.u64("identities")) {
    if (*n == 0 || *n > 4096) return std::nullopt;  // flood sanity bound
    c.identities = static_cast<std::uint32_t>(*n);
  }
  if (const auto base = v.u64("base")) {
    if (*base == 0 || *base + 4096 > kNoNode) return std::nullopt;
    c.base = static_cast<NodeId>(*base);
  }
  if (!fraction_ok(c.x) || !fraction_ok(c.y)) return std::nullopt;
  return c;
}

std::optional<ReplayConfig> parse_replay(const util::JsonValue& v) {
  ReplayConfig c;
  if (const auto x = v.number("x")) c.x = *x;
  if (const auto y = v.number("y")) c.y = *y;
  if (const auto delay = v.i64("delay_ns")) c.delay_ns = *delay;
  if (const auto n = v.u64("max_captures")) {
    if (*n == 0 || *n > 65536) return std::nullopt;
    c.max_captures = static_cast<std::uint32_t>(*n);
  }
  if (!fraction_ok(c.x) || !fraction_ok(c.y)) return std::nullopt;
  if (c.delay_ns < 0) return std::nullopt;
  return c;
}

std::optional<MobilityConfig> parse_mobility(const util::JsonValue& v) {
  MobilityConfig c;
  if (const auto n = v.u64("movers")) {
    if (*n == 0 || *n > 1'000'000) return std::nullopt;
    c.movers = static_cast<std::uint32_t>(*n);
  }
  if (const auto s = v.number("speed_mps")) c.speed_mps = *s;
  if (const auto step = v.i64("step_ns")) c.step_ns = *step;
  if (const auto steps = v.u64("steps")) {
    if (*steps == 0 || *steps > 1'000'000) return std::nullopt;
    c.steps = static_cast<std::uint32_t>(*steps);
  }
  if (const auto seed = v.u64("seed")) c.seed = *seed;
  if (c.speed_mps <= 0.0 || c.step_ns <= 0) return std::nullopt;
  return c;
}

std::optional<ChurnConfig> parse_churn(const util::JsonValue& v) {
  ChurnConfig c;
  if (const auto n = v.u64("victims")) {
    if (*n == 0 || *n > 1'000'000) return std::nullopt;
    c.victims = static_cast<std::uint32_t>(*n);
  }
  if (const auto n = v.u64("cycles")) {
    if (*n == 0 || *n > 100'000) return std::nullopt;
    c.cycles = static_cast<std::uint32_t>(*n);
  }
  if (const auto t = v.i64("first_at_ns")) c.first_at_ns = *t;
  if (const auto t = v.i64("period_ns")) c.period_ns = *t;
  if (const auto t = v.i64("down_ns")) c.down_ns = *t;
  if (const auto seed = v.u64("seed")) c.seed = *seed;
  if (c.first_at_ns < 0 || c.period_ns <= 0 || c.down_ns <= 0) return std::nullopt;
  return c;
}

}  // namespace

std::string ScenarioConfig::to_json() const {
  std::string out = "{";
  bool first = true;
  if (relay) {
    open_family(out, first, "relay");
    const RelayConfig& c = *relay;
    if (c.ax != kRelayDefaults.ax) append_double(out, "ax", c.ax);
    if (c.ay != kRelayDefaults.ay) append_double(out, "ay", c.ay);
    if (c.bx != kRelayDefaults.bx) append_double(out, "bx", c.bx);
    if (c.by != kRelayDefaults.by) append_double(out, "by", c.by);
    if (c.tunnel_latency_ns != kRelayDefaults.tunnel_latency_ns) {
      append_number(out, "latency_ns", c.tunnel_latency_ns);
    }
    out += "}";
  }
  if (sybil) {
    open_family(out, first, "sybil");
    const SybilConfig& c = *sybil;
    if (c.x != kSybilDefaults.x) append_double(out, "x", c.x);
    if (c.y != kSybilDefaults.y) append_double(out, "y", c.y);
    if (c.identities != kSybilDefaults.identities) {
      append_number(out, "identities", static_cast<std::uint64_t>(c.identities));
    }
    if (c.base != kSybilDefaults.base) {
      append_number(out, "base", static_cast<std::uint64_t>(c.base));
    }
    out += "}";
  }
  if (replay) {
    open_family(out, first, "replay");
    const ReplayConfig& c = *replay;
    if (c.x != kReplayDefaults.x) append_double(out, "x", c.x);
    if (c.y != kReplayDefaults.y) append_double(out, "y", c.y);
    if (c.delay_ns != kReplayDefaults.delay_ns) append_number(out, "delay_ns", c.delay_ns);
    if (c.max_captures != kReplayDefaults.max_captures) {
      append_number(out, "max_captures", static_cast<std::uint64_t>(c.max_captures));
    }
    out += "}";
  }
  if (mobility) {
    open_family(out, first, "mobility");
    const MobilityConfig& c = *mobility;
    if (c.movers != kMobilityDefaults.movers) {
      append_number(out, "movers", static_cast<std::uint64_t>(c.movers));
    }
    if (c.speed_mps != kMobilityDefaults.speed_mps) append_double(out, "speed_mps", c.speed_mps);
    if (c.step_ns != kMobilityDefaults.step_ns) append_number(out, "step_ns", c.step_ns);
    if (c.steps != kMobilityDefaults.steps) {
      append_number(out, "steps", static_cast<std::uint64_t>(c.steps));
    }
    if (c.seed != kMobilityDefaults.seed) append_number(out, "seed", c.seed);
    out += "}";
  }
  if (churn) {
    open_family(out, first, "churn");
    const ChurnConfig& c = *churn;
    if (c.victims != kChurnDefaults.victims) {
      append_number(out, "victims", static_cast<std::uint64_t>(c.victims));
    }
    if (c.cycles != kChurnDefaults.cycles) {
      append_number(out, "cycles", static_cast<std::uint64_t>(c.cycles));
    }
    if (c.first_at_ns != kChurnDefaults.first_at_ns) {
      append_number(out, "first_at_ns", c.first_at_ns);
    }
    if (c.period_ns != kChurnDefaults.period_ns) append_number(out, "period_ns", c.period_ns);
    if (c.down_ns != kChurnDefaults.down_ns) append_number(out, "down_ns", c.down_ns);
    if (c.seed != kChurnDefaults.seed) append_number(out, "seed", c.seed);
    out += "}";
  }
  out += "}";
  return out;
}

std::optional<ScenarioConfig> ScenarioConfig::parse(std::string_view json) {
  const auto doc = util::JsonValue::parse(json);
  if (!doc) return std::nullopt;
  return from_value(*doc);
}

std::optional<ScenarioConfig> ScenarioConfig::from_value(const util::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  ScenarioConfig config;
  for (const auto& [key, value] : doc.members()) {
    if (!value.is_object()) return std::nullopt;
    if (key == "relay") {
      config.relay = parse_relay(value);
      if (!config.relay) return std::nullopt;
    } else if (key == "sybil") {
      config.sybil = parse_sybil(value);
      if (!config.sybil) return std::nullopt;
    } else if (key == "replay") {
      config.replay = parse_replay(value);
      if (!config.replay) return std::nullopt;
    } else if (key == "mobility") {
      config.mobility = parse_mobility(value);
      if (!config.mobility) return std::nullopt;
    } else if (key == "churn") {
      config.churn = parse_churn(value);
      if (!config.churn) return std::nullopt;
    } else {
      return std::nullopt;  // unknown family
    }
  }
  return config;
}

bool ScenarioConfig::save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size() &&
                  std::fputc('\n', file) != EOF;
  return std::fclose(file) == 0 && ok;
}

std::optional<ScenarioConfig> ScenarioConfig::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return parse(text);
}

bool ScenarioConfig::arm_family(std::string_view family) {
  if (family == "relay") {
    relay = RelayConfig{};
  } else if (family == "sybil") {
    sybil = SybilConfig{};
  } else if (family == "replay") {
    replay = ReplayConfig{};
  } else if (family == "mobility") {
    mobility = MobilityConfig{};
  } else if (family == "churn") {
    churn = ChurnConfig{};
  } else {
    return false;
  }
  return true;
}

util::cli::FlagGroup scenario_flag_group(std::optional<ScenarioConfig>* out) {
  util::cli::FlagGroup group;
  group.title = "Adversary scenarios";
  {
    util::cli::FlagDef def;
    def.name = "adversary";
    def.type = util::cli::FlagType::kString;
    def.value_name = "FAMILIES";
    def.help = "arm adversary/mobility families with default parameters: comma-separated "
               "list of relay, sybil, replay, mobility, churn";
    group.flags.push_back(std::move(def));
  }
  {
    util::cli::FlagDef def;
    def.name = "adversary-config";
    def.type = util::cli::FlagType::kString;
    def.value_name = "PATH";
    def.help = "load a full adversary::ScenarioConfig JSON (excludes --adversary)";
    group.flags.push_back(std::move(def));
  }
  group.resolve = [out](const util::Cli& cli) {
    out->reset();
    const std::string families = cli.get("adversary", "");
    const std::string path = cli.get("adversary-config", "");
    if (!families.empty() && !path.empty()) {
      cli.record_error("--adversary and --adversary-config are mutually exclusive");
      return;
    }
    if (!families.empty()) {
      ScenarioConfig config;
      std::string_view rest = families;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view family = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
        if (family.empty()) continue;
        if (!config.arm_family(family)) {
          cli.record_error("--adversary=" + families + " (unknown family '" +
                           std::string(family) + "')");
          return;
        }
      }
      if (config.empty()) {
        cli.record_error("--adversary=" + families + " (no family named)");
        return;
      }
      *out = std::move(config);
      return;
    }
    if (!path.empty()) {
      *out = ScenarioConfig::load(path);
      if (!*out) {
        cli.record_error("--adversary-config=" + path + " (cannot load scenario config)");
      }
    }
  };
  return group;
}

// -- ScenarioRuntime --------------------------------------------------------

namespace {

util::Vec2 field_point(const util::Rect& field, double fx, double fy) {
  return {field.lo.x + fx * field.width(), field.lo.y + fy * field.height()};
}

}  // namespace

ScenarioRuntime::ScenarioRuntime(core::SndDeployment& deployment, ScenarioConfig config)
    : deployment_(deployment), config_(std::move(config)) {}

ScenarioRuntime::~ScenarioRuntime() = default;

void ScenarioRuntime::arm(const std::vector<NodeId>& pool) {
  if (armed_) return;
  armed_ = true;
  sim::Network& network = deployment_.network();
  const util::Rect field = deployment_.config().field;

  if (config_.relay) {
    const RelayConfig& c = *config_.relay;
    wormhole_ = std::make_unique<Wormhole>(network, field_point(field, c.ax, c.ay),
                                           field_point(field, c.bx, c.by),
                                           sim::Time::nanoseconds(c.tunnel_latency_ns));
    wormhole_->start();
  }
  if (config_.sybil) {
    const SybilConfig& c = *config_.sybil;
    sybil_ = std::make_unique<SybilAttacker>(network, field_point(field, c.x, c.y), c.base,
                                             c.identities);
    sybil_->start();
  }
  if (config_.replay) {
    const ReplayConfig& c = *config_.replay;
    replayer_ = std::make_unique<ReplayAttacker>(network, field_point(field, c.x, c.y),
                                                 sim::Time::nanoseconds(c.delay_ns),
                                                 c.max_captures);
    replayer_->start();
  }
  if (config_.mobility) {
    const MobilityConfig& c = *config_.mobility;
    // Movers are the first `movers` pool identities' live devices; the pool
    // order is the caller's deploy order, so the walk is deterministic.
    std::vector<sim::DeviceId> movers;
    for (const NodeId identity : pool) {
      if (movers.size() >= c.movers) break;
      const auto devices = network.devices_with_identity(identity);
      if (!devices.empty()) movers.push_back(devices.front());
    }
    mobility_ = std::make_unique<WaypointMobility>(network, field, std::move(movers),
                                                   c.speed_mps,
                                                   sim::Time::nanoseconds(c.step_ns), c.steps,
                                                   c.seed);
    mobility_->schedule();
  }
  if (config_.churn) {
    const ChurnConfig& c = *config_.churn;
    churn_ = std::make_unique<ChurnSchedule>(deployment_, pool, c.victims, c.cycles,
                                             sim::Time::nanoseconds(c.first_at_ns),
                                             sim::Time::nanoseconds(c.period_ns),
                                             sim::Time::nanoseconds(c.down_ns), c.seed);
    churn_->schedule();
  }
}

std::uint64_t ScenarioRuntime::relay_tunneled() const {
  return wormhole_ ? wormhole_->packets_tunneled() : 0;
}

std::uint64_t ScenarioRuntime::sybil_sent() const { return sybil_ ? sybil_->packets_sent() : 0; }

std::uint64_t ScenarioRuntime::replay_captured() const {
  return replayer_ ? replayer_->captured() : 0;
}

std::uint64_t ScenarioRuntime::replay_injected() const {
  return replayer_ ? replayer_->injected() : 0;
}

std::uint64_t ScenarioRuntime::moves_applied() const {
  return mobility_ ? mobility_->moves_applied() : 0;
}

std::uint64_t ScenarioRuntime::churn_crashes() const { return churn_ ? churn_->crashes() : 0; }

std::uint64_t ScenarioRuntime::churn_reboots() const { return churn_ ? churn_->reboots() : 0; }

std::uint64_t ScenarioRuntime::attacker_events() const {
  return relay_tunneled() + sybil_sent() + replay_captured() + replay_injected() +
         moves_applied() + churn_crashes() + churn_reboots();
}

}  // namespace snd::adversary
