// Sybil identity flood (Universe Detectors threat class): one compromised
// radio mints a batch of invented identities and speaks for all of them --
// proactive Hello broadcasts at start() plus a burst of HelloAcks for every
// benign Hello heard. Unlike the chaff attacker (which invents a fresh
// identity per ACK to pollute list *sizes*), the Sybil radio presses the
// same small identity set persistently, modeling one captured device
// claiming to be many nodes.
//
// None of the minted identities hold key-predistribution credentials, so
// any authenticated direct verifier must reject them all; the
// sybil.bounded oracle audits that no minted identity reaches a benign
// tentative list when verification is on.
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace snd::adversary {

class SybilAttacker {
 public:
  /// Plants the radio at `position` claiming `base` (the marker identity for
  /// the compromised device itself); minted identities are
  /// base+1 .. base+identities.
  SybilAttacker(sim::Network& network, util::Vec2 position, NodeId base,
                std::uint32_t identities);

  SybilAttacker(const SybilAttacker&) = delete;
  SybilAttacker& operator=(const SybilAttacker&) = delete;
  ~SybilAttacker();

  /// Broadcasts one Hello per minted identity (staggered so half-duplex
  /// radios can hear them all) and starts answering benign Hellos.
  void start();

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] sim::DeviceId device() const { return device_; }
  [[nodiscard]] NodeId base() const { return base_; }
  [[nodiscard]] std::uint32_t identities() const { return identities_; }

  /// True when `identity` is one this attacker mints (base excluded: the
  /// marker identity is the compromised device, not a Sybil).
  [[nodiscard]] bool minted(NodeId identity) const {
    return identity > base_ && identity <= base_ + identities_;
  }

 private:
  void on_packet(const sim::Packet& packet);

  sim::Network& network_;
  sim::DeviceId device_;
  NodeId base_;
  std::uint32_t identities_;
  std::uint64_t sent_ = 0;
};

}  // namespace snd::adversary
