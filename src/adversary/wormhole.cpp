#include "adversary/wormhole.h"

namespace snd::adversary {

namespace {
/// Identity tag for wormhole hardware; it never speaks for itself.
constexpr NodeId kWormholeIdentity = 0xdeadbeef;
}  // namespace

Wormhole::Wormhole(sim::Network& network, util::Vec2 end_a, util::Vec2 end_b,
                   sim::Time tunnel_latency)
    : network_(network),
      end_a_(network.add_device(kWormholeIdentity, end_a)),
      end_b_(network.add_device(kWormholeIdentity, end_b)),
      tunnel_latency_(tunnel_latency) {
  network_.device(end_a_).compromised = true;
  network_.device(end_b_).compromised = true;
}

Wormhole::~Wormhole() {
  network_.set_receiver(end_a_, nullptr);
  network_.set_receiver(end_b_, nullptr);
}

void Wormhole::start() {
  network_.set_receiver(end_a_, [this](const sim::Packet& packet) {
    relay(end_a_, end_b_, packet);
  });
  network_.set_receiver(end_b_, [this](const sim::Packet& packet) {
    relay(end_b_, end_a_, packet);
  });
}

void Wormhole::relay(sim::DeviceId from_end, sim::DeviceId to_end, const sim::Packet& packet) {
  (void)from_end;
  // Never re-tunnel traffic the peer endpoint itself put on the air (the
  // endpoints are out of range of each other, but replicas of relayed
  // traffic must not bounce if that assumption is violated).
  if (network_.device(packet.sender_device).identity == kWormholeIdentity) return;

  ++tunneled_;
  sim::Packet copy = packet;  // same claimed src, payload, type
  network_.scheduler().schedule_at(network_.now() + tunnel_latency_,
                                   [this, to_end, copy = std::move(copy)]() {
                                     network_.transmit(to_end, copy, obs::Phase::kAttackWormhole);
                                   });
}

}  // namespace snd::adversary
