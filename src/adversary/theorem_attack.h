// Constructive attacks realizing the paper's impossibility results.
//
// These operate purely on tentative-topology graphs and a
// ValidationFunction: they are the adversary of Section 3, who controls
// what subgraph a victim node gets to see. No radio simulation is involved
// -- which is the point: *no* topology-only validation function, however it
// gathers its subgraph, survives these constructions.
#pragma once

#include <vector>

#include "core/validation.h"
#include "topology/graph.h"

namespace snd::adversary {

/// Theorem 1: given any F with minimum deployment size m and a network of
/// n >= 2m-1 nodes, builds a tentative topology in which one compromised
/// node w obtains functional acceptance from two benign nodes (u and f(u))
/// that can be placed arbitrarily far apart, violating d-safety for every d.
struct Theorem1Attack {
  /// The honest deployment graph G = G_A ∪ G_B ∪ G_C before the attack.
  topology::Digraph honest_graph;
  /// Relations forged by the attacker after compromising w: G(w).
  topology::Digraph forged_relations;
  /// The view of victim f(u): G_B ∪ G(w).
  topology::Digraph victim_view;
  /// The view of the original neighbor u: G_A.
  topology::Digraph original_view;
  NodeId w = kNoNode;      // the compromised node
  NodeId u = kNoNode;      // accepts w legitimately
  NodeId fu = kNoNode;     // the far-away victim that also accepts w

  /// True iff both F(u, w, original_view) and F(fu, w, victim_view) hold --
  /// i.e. the attack defeated d-safety.
  [[nodiscard]] bool succeeds(const core::ValidationFunction& F) const;
};

/// Builds the Theorem 1 construction for `F` over a network of `n` node IDs
/// starting at `first_id`. Requires n >= 2m - 1; throws std::invalid_argument
/// otherwise (the theorem's precondition).
Theorem1Attack build_theorem1_attack(const core::ValidationFunction& F, std::size_t n,
                                     NodeId first_id = 1);

/// Theorem 2 instantiated against the topology-only common-neighbor rule:
/// the network G is extendable at u (a new node x placed next to u would be
/// accepted), so the attacker compromises a far-away node v that F never
/// consulted, renames x's would-be relations to v, and gets v accepted by u.
struct Theorem2Attack {
  topology::Digraph attacked_graph;  // G plus the forged relations X_{x->v}
  NodeId u = kNoNode;                // the extendable benign node
  NodeId v = kNoNode;                // far-away compromised victim identity

  [[nodiscard]] bool succeeds(const core::ValidationFunction& F) const;
};

/// `u_neighborhood`: identities tentatively adjacent to u in G (the nodes a
/// genuinely new local node would also hear). `v` must not appear in it.
Theorem2Attack build_theorem2_attack(const topology::Digraph& G, NodeId u,
                                     const std::vector<NodeId>& u_neighborhood, NodeId v);

}  // namespace snd::adversary
