#include "adversary/theorem_attack.h"

#include <map>
#include <stdexcept>

namespace snd::adversary {

bool Theorem1Attack::succeeds(const core::ValidationFunction& F) const {
  return F.validate(u, w, original_view) && F.validate(fu, w, victim_view);
}

Theorem1Attack build_theorem1_attack(const core::ValidationFunction& F, std::size_t n,
                                     NodeId first_id) {
  const std::size_t m = F.minimum_deployment_size();
  if (n < 2 * m - 1) {
    throw std::invalid_argument(
        "Theorem 1 requires n >= 2m-1 nodes (below the bound, d-safety can hold)");
  }

  Theorem1Attack attack;

  // A = {first_id .. first_id+m-1} hosts G_A, a copy of the minimum
  // deployment on which F accepts the pair (u, w).
  const auto min_dep = F.minimum_deployment(first_id);
  attack.original_view = min_dep.graph;
  attack.u = min_dep.u;
  attack.w = min_dep.w;

  // B = m-1 fresh IDs; f maps A \ {w} onto B.
  std::map<NodeId, NodeId> f;
  NodeId next_b = first_id + static_cast<NodeId>(m);
  for (NodeId x : min_dep.graph.nodes()) {
    if (x != attack.w) f[x] = next_b++;
  }
  attack.fu = f.at(attack.u);

  // G_B: G_A with w removed, relabeled into B. All-benign, legitimately
  // deployable far away from G_A.
  topology::Digraph ga_minus_w = min_dep.graph;
  ga_minus_w.remove_node(attack.w);
  topology::Digraph gb = ga_minus_w.relabeled([&f](NodeId x) { return f.at(x); });

  // Honest graph G = G_A ∪ G_B ∪ G_C (G_C: any leftover benign nodes,
  // arbitrarily connected among themselves -- a ring here).
  attack.honest_graph = min_dep.graph;
  for (const auto& [src, dst] : gb.edges()) attack.honest_graph.add_edge(src, dst);
  const NodeId c_begin = next_b;
  const auto c_count = static_cast<NodeId>(n - (2 * m - 1));
  for (NodeId i = 0; i < c_count; ++i) {
    const NodeId a = c_begin + i;
    attack.honest_graph.add_node(a);
    if (c_count > 1) attack.honest_graph.add_edge(a, c_begin + (i + 1) % c_count);
  }

  // The attacker compromises w and forges G(w): w's relations transported
  // into B -- {(w, f(x)) : (w,x) in G_A} ∪ {(f(x), w) : (x,w) in G_A}.
  for (NodeId x : min_dep.graph.successors(attack.w)) {
    if (x != attack.w) attack.forged_relations.add_edge(attack.w, f.at(x));
  }
  for (const auto& [src, dst] : min_dep.graph.edges()) {
    if (dst == attack.w && src != attack.w) {
      attack.forged_relations.add_edge(f.at(src), attack.w);
    }
  }

  // f(u)'s view: G_B plus the forged relations == G_A relabeled except w.
  attack.victim_view = gb;
  for (const auto& [src, dst] : attack.forged_relations.edges()) {
    attack.victim_view.add_edge(src, dst);
  }

  return attack;
}

bool Theorem2Attack::succeeds(const core::ValidationFunction& F) const {
  return F.validate(u, v, attacked_graph);
}

Theorem2Attack build_theorem2_attack(const topology::Digraph& G, NodeId u,
                                     const std::vector<NodeId>& u_neighborhood, NodeId v) {
  Theorem2Attack attack;
  attack.u = u;
  attack.v = v;
  attack.attacked_graph = G;

  // A genuinely new node x deployed next to u would tentatively hear u and
  // u's neighborhood; its relation set X is {(x, u)} ∪ {(x, c)} ∪ mirrors.
  // The attacker compromises the remote node v and submits X with x
  // renamed to v (X_{x->v} in the proof). Isomorphism-invariance of F does
  // the rest.
  attack.attacked_graph.add_edge(v, u);
  attack.attacked_graph.add_edge(u, v);
  for (NodeId c : u_neighborhood) {
    if (c == v || c == u) continue;
    attack.attacked_graph.add_edge(v, c);
    attack.attacked_graph.add_edge(c, v);
  }
  return attack;
}

}  // namespace snd::adversary
