#include "adversary/malicious_agent.h"

#include "core/commitment.h"

namespace snd::adversary {

namespace {
constexpr obs::Phase kCatAttack = obs::Phase::kAttack;
using core::MessageType;
}  // namespace

MaliciousAgent::MaliciousAgent(sim::Network& network, sim::DeviceId device,
                               core::SndNode::Secrets stolen_secrets,
                               std::shared_ptr<crypto::KeyPredistribution> keys,
                               core::ProtocolConfig protocol_config, MaliciousBehavior behavior)
    : network_(network),
      device_(device),
      secrets_(std::move(stolen_secrets)),
      protocol_config_(protocol_config),
      behavior_(behavior),
      messenger_(network, device, secrets_.record ? secrets_.record->node
                                                  : network.device(device).identity,
                 std::move(keys)),
      evidence_buffer_(secrets_.evidence_buffer) {}

MaliciousAgent::~MaliciousAgent() { network_.set_receiver(device_, nullptr); }

void MaliciousAgent::start() {
  network_.set_receiver(device_, [this](const sim::Packet& packet) { on_packet(packet); });
}

void MaliciousAgent::note_identity(NodeId id) {
  if (id == identity()) return;
  heard_.insert(id);

  // Master-key attack: mint C(us, id) = H(K_id | us); the victim's own
  // verification key confirms it and the victim adds us unconditionally.
  if (behavior_.push_commitments_with_master && secrets_.master.present() &&
      !commitments_pushed_.contains(id)) {
    commitments_pushed_.insert(id);
    const crypto::Digest commit = core::relation_commitment(
        core::verification_key(secrets_.master, id), identity());
    messenger_.send(id, static_cast<std::uint8_t>(MessageType::kRelationCommit),
                    core::RelationCommitPayload{commit}.serialize(), kCatAttack);
  }
}

void MaliciousAgent::on_packet(const sim::Packet& packet) {
  if (packet.src == identity()) return;

  switch (static_cast<MessageType>(packet.type)) {
    case MessageType::kHello: {
      note_identity(packet.src);
      if (behavior_.respond_to_hello) {
        messenger_.send_unauth(packet.src, static_cast<std::uint8_t>(MessageType::kHelloAck),
                               {}, kCatAttack);
      }
      if (behavior_.creep_with_updates && !secrets_.master.present()) {
        try_creep_update(packet.src);
      }
      return;
    }
    case MessageType::kHelloAck:
      note_identity(packet.src);
      return;
    default:
      break;
  }

  const auto payload = messenger_.open(packet);
  if (!payload) return;
  note_identity(packet.src);

  switch (static_cast<MessageType>(packet.type)) {
    case MessageType::kRecordRequest:
      if (behavior_.serve_record) serve_record_to(packet.src);
      break;
    case MessageType::kEvidence: {
      // Benign new nodes near a replica leave evidence for our identity;
      // hoard it for the creeping attack.
      const auto evidence = core::EvidencePayload::parse(*payload);
      if (evidence && secrets_.record && evidence->record_version == secrets_.record->version) {
        evidence_buffer_.insert_or_assign(packet.src, evidence->evidence);
      }
      break;
    }
    case MessageType::kUpdateReply: {
      const auto reply = core::UpdateReplyPayload::parse(*payload);
      if (reply && secrets_.record && reply->record.node == identity() &&
          reply->record.version == secrets_.record->version + 1) {
        secrets_.record = reply->record;
        evidence_buffer_.clear();
        ++updates_obtained_;
      }
      break;
    }
    default:
      break;
  }
}

void MaliciousAgent::adopt_state(const std::optional<core::BindingRecord>& record,
                                 const std::map<NodeId, crypto::Digest>& evidence) {
  if (record && (!secrets_.record || record->version > secrets_.record->version)) {
    secrets_.record = *record;
  }
  for (const auto& [issuer, digest] : evidence) {
    evidence_buffer_.insert_or_assign(issuer, digest);
  }
}

void MaliciousAgent::serve_record_to(NodeId requester) {
  (void)requester;
  core::BindingRecord to_serve;
  if (behavior_.forge_records_with_master && secrets_.master.present()) {
    // Forge a binding record naming exactly the nodes around this replica:
    // the requester's threshold check will then pass.
    topology::NeighborList forged(heard_.begin(), heard_.end());
    to_serve = core::BindingRecord::make(secrets_.master, identity(), 0, std::move(forged));
  } else if (secrets_.record) {
    to_serve = *secrets_.record;  // replay the stolen record
  } else {
    return;
  }
  // Record replies are local broadcasts (self-authenticating under K).
  messenger_.broadcast(static_cast<std::uint8_t>(MessageType::kRecordReply),
                       to_serve.serialize(), kCatAttack);
}

void MaliciousAgent::try_creep_update(NodeId new_node) {
  if (!secrets_.record || protocol_config_.max_updates == 0) return;
  if (secrets_.record->version >= protocol_config_.max_updates) return;

  core::UpdateRequestPayload request{*secrets_.record, {}};
  for (const auto& [issuer, digest] : evidence_buffer_) {
    if (!topology::contains(secrets_.record->neighbors, issuer)) {
      request.evidences.emplace_back(issuer, digest);
    }
  }
  if (request.evidences.empty()) return;
  messenger_.send(new_node, static_cast<std::uint8_t>(MessageType::kUpdateRequest),
                  request.serialize(), kCatAttack);
}

}  // namespace snd::adversary
