// Chaff attack used by the hostile-performance experiment (§4.5.2): a
// planted radio answers every Hello with HelloAcks under a stream of
// invented identities, trying to pollute tentative neighbor lists and drag
// the accuracy of benign discovery down without jamming. The paper argues
// this cannot work -- a benign pair's decision depends only on their own
// two lists, chaff identities never produce verifiable binding records, and
// list entries cannot be removed -- and the bench confirms it.
#pragma once

#include <cstdint>

#include "core/wire.h"
#include "sim/network.h"

namespace snd::adversary {

class ChaffAttacker {
 public:
  /// `fake_identity_base`: first invented identity (use a range disjoint
  /// from real ones). `fakes_per_hello`: how many fake ACKs per Hello heard.
  ChaffAttacker(sim::Network& network, sim::DeviceId device, NodeId fake_identity_base,
                std::size_t fakes_per_hello);

  ChaffAttacker(const ChaffAttacker&) = delete;
  ChaffAttacker& operator=(const ChaffAttacker&) = delete;
  ~ChaffAttacker();

  void start();

  [[nodiscard]] std::uint64_t fakes_sent() const { return fakes_sent_; }

 private:
  void on_packet(const sim::Packet& packet);

  sim::Network& network_;
  sim::DeviceId device_;
  NodeId next_fake_;
  std::size_t fakes_per_hello_;
  std::uint64_t fakes_sent_ = 0;
};

}  // namespace snd::adversary
