#include "adversary/mobility.h"

#include <algorithm>

namespace snd::adversary {

WaypointMobility::WaypointMobility(sim::Network& network, util::Rect field,
                                   std::vector<sim::DeviceId> movers, double speed_mps,
                                   sim::Time step, std::uint32_t steps, std::uint64_t seed)
    : network_(network),
      field_(field),
      movers_(std::move(movers)),
      speed_mps_(speed_mps),
      step_(step),
      steps_left_(steps),
      rng_(seed) {
  std::sort(movers_.begin(), movers_.end());
  movers_.erase(std::unique(movers_.begin(), movers_.end()), movers_.end());
  waypoints_.reserve(movers_.size());
  for (std::size_t i = 0; i < movers_.size(); ++i) {
    waypoints_.push_back({rng_.uniform(field_.lo.x, field_.hi.x),
                          rng_.uniform(field_.lo.y, field_.hi.y)});
  }
}

void WaypointMobility::schedule() {
  if (movers_.empty() || steps_left_ == 0) return;
  network_.scheduler().schedule_at(network_.now() + step_, [this]() { step_once(); });
}

void WaypointMobility::step_once() {
  const double hop = speed_mps_ * step_.to_seconds();
  for (std::size_t i = 0; i < movers_.size(); ++i) {
    const sim::DeviceId device = movers_[i];
    if (!network_.device(device).alive) continue;  // churned away; keep rng cadence
    const util::Vec2 pos = network_.device(device).position;
    util::Vec2 to_target = waypoints_[i] - pos;
    double remaining = to_target.norm();
    if (remaining <= hop) {
      // Arrive, then immediately head for a fresh waypoint.
      network_.set_position(device, waypoints_[i]);
      waypoints_[i] = {rng_.uniform(field_.lo.x, field_.hi.x),
                       rng_.uniform(field_.lo.y, field_.hi.y)};
    } else {
      network_.set_position(device, pos + to_target * (hop / remaining));
    }
    ++moves_;
  }
  if (--steps_left_ > 0) {
    network_.scheduler().schedule_at(network_.now() + step_, [this]() { step_once(); });
  }
}

ChurnSchedule::ChurnSchedule(core::SndDeployment& deployment, std::vector<NodeId> pool,
                             std::uint32_t victims, std::uint32_t cycles, sim::Time first_at,
                             sim::Time period, sim::Time down, std::uint64_t seed)
    : deployment_(deployment),
      pool_(std::move(pool)),
      victims_(victims),
      cycles_(cycles),
      first_at_(first_at),
      period_(period),
      down_(down),
      rng_(seed) {}

void ChurnSchedule::schedule() {
  if (pool_.empty()) return;
  auto& scheduler = deployment_.network().scheduler();
  const sim::Time now = deployment_.network().now();
  for (std::uint32_t c = 0; c < cycles_; ++c) {
    const sim::Time crash_at =
        now + first_at_ + sim::Time::nanoseconds(static_cast<std::int64_t>(c) * period_.ns());
    // Draw this cycle's victims without replacement (up front, so the
    // schedule does not depend on runtime state).
    std::vector<NodeId> picks = pool_;
    const std::size_t take = std::min<std::size_t>(victims_, picks.size());
    for (std::size_t i = 0; i < take; ++i) {
      std::swap(picks[i], picks[i + rng_.uniform_int(picks.size() - i)]);
    }
    picks.resize(take);
    for (const NodeId victim : picks) {
      scheduler.schedule_at(crash_at, [this, victim]() {
        if (deployment_.crash_node(victim)) ++crashes_;
      });
      scheduler.schedule_at(crash_at + down_, [this, victim]() {
        if (deployment_.reboot_node(victim)) ++reboots_;
      });
    }
  }
}

}  // namespace snd::adversary
