#include "adversary/attacker.h"

namespace snd::adversary {

namespace {
core::SndNode::Secrets copy_secrets(const core::SndNode::Secrets& s) {
  core::SndNode::Secrets out;
  out.master = s.master;
  out.verification_key = s.verification_key;
  out.record = s.record;
  out.tentative = s.tentative;
  out.functional = s.functional;
  out.evidence_buffer = s.evidence_buffer;
  return out;
}
}  // namespace

Attacker::Attacker(core::SndDeployment& deployment, MaliciousBehavior behavior)
    : deployment_(deployment), behavior_(behavior) {}

bool Attacker::compromise(NodeId identity) {
  if (stolen_.contains(identity)) return false;
  core::SndNode* agent = deployment_.agent(identity);
  if (agent == nullptr) return false;

  const sim::DeviceId device = agent->device();
  stolen_.emplace(identity, agent->steal_secrets());
  deployment_.network().device(device).compromised = true;
  deployment_.detach_agent(device);  // the benign stack is gone

  auto malicious = std::make_unique<MaliciousAgent>(
      deployment_.network(), device, copy_secrets(stolen_.at(identity)),
      deployment_.key_scheme(), deployment_.config().protocol, behavior_);
  malicious->start();
  agents_.push_back(std::move(malicious));
  return true;
}

sim::DeviceId Attacker::place_replica(NodeId identity, util::Vec2 position) {
  const auto it = stolen_.find(identity);
  if (it == stolen_.end()) return sim::kNoDevice;

  const sim::DeviceId device = deployment_.network().add_replica(identity, position);
  auto malicious = std::make_unique<MaliciousAgent>(
      deployment_.network(), device, copy_secrets(it->second), deployment_.key_scheme(),
      deployment_.config().protocol, behavior_);
  malicious->start();
  agents_.push_back(std::move(malicious));
  return device;
}

std::vector<NodeId> Attacker::compromised_identities() const {
  std::vector<NodeId> out;
  out.reserve(stolen_.size());
  for (const auto& [identity, secrets] : stolen_) out.push_back(identity);
  return out;
}

const core::SndNode::Secrets* Attacker::stolen_secrets(NodeId identity) const {
  const auto it = stolen_.find(identity);
  return it != stolen_.end() ? &it->second : nullptr;
}

std::vector<const MaliciousAgent*> Attacker::agents_for(NodeId identity) const {
  std::vector<const MaliciousAgent*> out;
  for (const auto& agent : agents_) {
    if (agent->identity() == identity) out.push_back(agent.get());
  }
  return out;
}

void Attacker::sync_replica_state(NodeId identity) {
  std::optional<core::BindingRecord> best;
  std::map<NodeId, crypto::Digest> merged;
  for (const auto& agent : agents_) {
    if (agent->identity() != identity) continue;
    if (agent->record() && (!best || agent->record()->version > best->version)) {
      best = agent->record();
    }
    for (const auto& [issuer, digest] : agent->evidence()) {
      merged.insert_or_assign(issuer, digest);
    }
  }
  for (const auto& agent : agents_) {
    if (agent->identity() == identity) agent->adopt_state(best, merged);
  }
}

bool Attacker::master_key_leaked() const {
  for (const auto& [identity, secrets] : stolen_) {
    if (secrets.master.present()) return true;
  }
  return false;
}

}  // namespace snd::adversary
