// Delayed-replay attacker (RPL replay-demo style): a planted radio records
// authenticated protocol messages it overhears -- record exchanges,
// commitment floods, evidences, updates -- and re-broadcasts each captured
// packet verbatim after a fixed delay.
//
// The replayed copies carry valid MACs (the tag binds src|dst|type|payload|
// nonce, not the transmitting radio), so they pass authentication at every
// receiver that holds the pairwise key. The per-(peer, device) sliding
// replay windows are the only line of defense; the replay.never_accepted
// oracle and the e2e regression assert they hold, including across
// reboot/boot-epoch nonce strides.
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace snd::adversary {

class ReplayAttacker {
 public:
  ReplayAttacker(sim::Network& network, util::Vec2 position,
                 sim::Time delay = sim::Time::milliseconds(50),
                 std::uint32_t max_captures = 256);

  ReplayAttacker(const ReplayAttacker&) = delete;
  ReplayAttacker& operator=(const ReplayAttacker&) = delete;
  ~ReplayAttacker();

  void start();

  [[nodiscard]] std::uint64_t captured() const { return captured_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] sim::DeviceId device() const { return device_; }

 private:
  void on_packet(const sim::Packet& packet);

  sim::Network& network_;
  sim::DeviceId device_;
  sim::Time delay_;
  std::uint32_t max_captures_;
  std::uint64_t captured_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace snd::adversary
