// The attack orchestrator: compromises deployed nodes (respecting erasure
// semantics -- it learns only what is still in memory), creates replicas at
// chosen positions, and installs MaliciousAgents on every device it owns.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "adversary/malicious_agent.h"
#include "core/deployment_driver.h"

namespace snd::adversary {

class Attacker {
 public:
  Attacker(core::SndDeployment& deployment, MaliciousBehavior behavior = {});

  /// Physically compromises the original device of `identity`: steals every
  /// secret still in memory, flags the device, and replaces its protocol
  /// agent with a malicious one. Returns false if the identity is unknown
  /// or already compromised.
  bool compromise(NodeId identity);

  /// Deploys a replica of a previously compromised identity at `position`.
  /// The replica carries a copy of the stolen secrets.
  sim::DeviceId place_replica(NodeId identity, util::Vec2 position);

  [[nodiscard]] std::vector<NodeId> compromised_identities() const;
  [[nodiscard]] const core::SndNode::Secrets* stolen_secrets(NodeId identity) const;
  [[nodiscard]] const std::vector<std::unique_ptr<MaliciousAgent>>& agents() const {
    return agents_;
  }
  /// Agents speaking as `identity` (original device's agent + replicas).
  [[nodiscard]] std::vector<const MaliciousAgent*> agents_for(NodeId identity) const;

  /// Whether any stolen secret set still contained the master key K
  /// (deployment-window violation).
  [[nodiscard]] bool master_key_leaked() const;

  /// Models the adversary's out-of-band channel: every agent speaking as
  /// `identity` adopts the freshest binding record any of them holds and
  /// the union of their harvested evidences. Central to the §4.4 creeping
  /// attack, where updates obtained at one replica site must benefit the
  /// next site.
  void sync_replica_state(NodeId identity);

 private:
  core::SndDeployment& deployment_;
  MaliciousBehavior behavior_;
  std::map<NodeId, core::SndNode::Secrets> stolen_;
  std::vector<std::unique_ptr<MaliciousAgent>> agents_;
};

}  // namespace snd::adversary
