// Pluggable adversary & mobility scenarios.
//
// A ScenarioConfig is pure data describing which attacker/mobility families
// a run arms and with what parameters: a relay/timing attacker (the
// wormhole channel with a configurable tunnel delay), a Sybil identity
// flood, a delayed-replay attacker, random-waypoint mobility, and a
// crash/reboot churn schedule. Configs round-trip through canonical JSON in
// the FaultPlan idiom -- fields at their defaults are omitted, so a
// parse -> to_json cycle is canonicalizing and idempotent -- and the shared
// --adversary / --adversary-config DriverSpec flag group gives every driver
// (fig3/fig4/proptest/bench) the same scenario surface.
//
// A ScenarioRuntime arms one config against a live core::SndDeployment:
// it owns the attacker objects and schedules the mobility/churn events.
// Everything it does is a deterministic function of (config, deployment),
// so armed runs replay bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/deployment_driver.h"
#include "util/driver_spec.h"
#include "util/ids.h"

namespace snd::util {
class JsonValue;
}

namespace snd::adversary {

class Wormhole;
class SybilAttacker;
class ReplayAttacker;
class WaypointMobility;
class ChurnSchedule;

/// Relay/timing attacker: a wormhole whose endpoints sit at field-fraction
/// positions (ax, ay) and (bx, by), tunneling everything heard at one end
/// out of the other after `tunnel_latency_ns`. Against authenticated
/// direct verification the relayed identities are provably far and must be
/// rejected; the relay.bounded oracle audits exactly that.
struct RelayConfig {
  double ax = 0.1, ay = 0.1;
  double bx = 0.9, by = 0.9;
  std::int64_t tunnel_latency_ns = 200'000;  // 200 us
};

/// Sybil identity flood: one compromised radio at field fraction (x, y)
/// minting `identities` credential-less identities -- Hello broadcasts at
/// arm time plus a burst of HelloAcks for every Hello heard. Minted
/// identities are base+1 .. base+identities (the radio itself claims
/// `base`); none hold key-predistribution credentials, so authenticated
/// verification must keep them all out of tentative lists.
struct SybilConfig {
  double x = 0.5, y = 0.5;
  std::uint32_t identities = 8;
  NodeId base = 0x5b110000;
};

/// Delayed-replay attacker: a radio at field fraction (x, y) that captures
/// up to `max_captures` authenticated protocol messages (record exchanges,
/// commitments, evidences, updates) and re-broadcasts each verbatim
/// `delay_ns` later. The copies re-authenticate (the MAC covers payload and
/// nonce, not the sending radio), so only the sliding replay windows stand
/// between the replay and the protocol.
struct ReplayConfig {
  double x = 0.5, y = 0.5;
  std::int64_t delay_ns = 50'000'000;  // 50 ms
  std::uint32_t max_captures = 256;
};

/// Random-waypoint mobility: `movers` protocol devices walk at `speed_mps`
/// toward rng-drawn waypoints, repositioned (Network::set_position) every
/// `step_ns` for `steps` steps. All draws come from `seed`, so a config
/// reproduces the same walk on every run.
struct MobilityConfig {
  std::uint32_t movers = 4;
  double speed_mps = 8.0;
  std::int64_t step_ns = 20'000'000;  // 20 ms
  std::uint32_t steps = 25;
  std::uint64_t seed = 1;
};

/// Join/leave churn: every cycle crashes `victims` rng-drawn nodes at
/// first_at_ns + c * period_ns and reboots them down_ns later, forcing
/// fresh boot epochs, re-discovery, and (with the update extension armed)
/// continuous binding-record updates.
struct ChurnConfig {
  std::uint32_t victims = 1;
  std::uint32_t cycles = 1;
  std::int64_t first_at_ns = 250'000'000;  // 250 ms
  std::int64_t period_ns = 400'000'000;    // 400 ms
  std::int64_t down_ns = 150'000'000;      // 150 ms
  std::uint64_t seed = 1;
};

struct ScenarioConfig {
  std::optional<RelayConfig> relay;
  std::optional<SybilConfig> sybil;
  std::optional<ReplayConfig> replay;
  std::optional<MobilityConfig> mobility;
  std::optional<ChurnConfig> churn;

  [[nodiscard]] bool empty() const {
    return !relay && !sybil && !replay && !mobility && !churn;
  }

  /// Canonical JSON: family sub-objects present only when armed, fields
  /// omitted at their defaults.
  [[nodiscard]] std::string to_json() const;

  /// Parses the canonical form; nullopt on syntax errors, unknown families,
  /// or out-of-range field values.
  [[nodiscard]] static std::optional<ScenarioConfig> parse(std::string_view json);
  [[nodiscard]] static std::optional<ScenarioConfig> from_value(const util::JsonValue& value);

  /// File round-trip helpers (FaultPlan idiom). save() false on I/O errors;
  /// load() nullopt on I/O or parse errors.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<ScenarioConfig> load(const std::string& path);

  /// Arms one family ("relay", "sybil", "replay", "mobility", "churn") with
  /// its default parameters on top of *this; false for unknown names.
  [[nodiscard]] bool arm_family(std::string_view family);
};

/// The shared scenario surface as a DriverSpec flag group:
///   --adversary FAMILIES       comma-separated family presets
///   --adversary-config PATH    full ScenarioConfig JSON (excludes the above)
/// Resolves into `*out` during parse() (nullopt when neither flag is given);
/// unknown families and unreadable/malformed files are validation errors.
[[nodiscard]] util::cli::FlagGroup scenario_flag_group(std::optional<ScenarioConfig>* out);

/// Arms a ScenarioConfig against a live deployment. Construct after the
/// first deploy round, call arm() before run(), and keep the runtime alive
/// until the scheduler quiesces (scheduled mobility/churn events reference
/// it). Destruction detaches every attacker radio.
class ScenarioRuntime {
 public:
  ScenarioRuntime(core::SndDeployment& deployment, ScenarioConfig config);
  ScenarioRuntime(const ScenarioRuntime&) = delete;
  ScenarioRuntime& operator=(const ScenarioRuntime&) = delete;
  ~ScenarioRuntime();

  /// Deploys the armed attackers and schedules mobility/churn. `pool` is
  /// the identity pool mobility movers and churn victims are drawn from
  /// (typically the first deploy round).
  void arm(const std::vector<NodeId>& pool);

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  // -- Telemetry (0 when the family is unarmed) ---------------------------
  [[nodiscard]] std::uint64_t relay_tunneled() const;
  [[nodiscard]] std::uint64_t sybil_sent() const;
  [[nodiscard]] std::uint64_t replay_captured() const;
  [[nodiscard]] std::uint64_t replay_injected() const;
  [[nodiscard]] std::uint64_t moves_applied() const;
  [[nodiscard]] std::uint64_t churn_crashes() const;
  [[nodiscard]] std::uint64_t churn_reboots() const;
  /// Sum of everything above -- the "attacker activity" bench metric.
  [[nodiscard]] std::uint64_t attacker_events() const;

 private:
  core::SndDeployment& deployment_;
  ScenarioConfig config_;
  bool armed_ = false;
  std::unique_ptr<Wormhole> wormhole_;
  std::unique_ptr<SybilAttacker> sybil_;
  std::unique_ptr<ReplayAttacker> replayer_;
  std::unique_ptr<WaypointMobility> mobility_;
  std::unique_ptr<ChurnSchedule> churn_;
};

}  // namespace snd::adversary
