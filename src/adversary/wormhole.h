// Wormhole attack (the threat model behind the paper's direct-verification
// references [8][9][10][15]): two colluding radios connected by an
// out-of-band channel replay everything heard at one end from the other,
// making nodes in two distant regions appear mutually adjacent.
//
// Against NaiveVerifier the relayed Hellos/Acks poison tentative lists on
// both sides; against the authenticated verifiers (oracle/RTT/location) the
// relayed identities fail verification -- the credentialed responder is
// provably far -- which is exactly the division of labor the paper assumes:
// direct verification handles wormholes, SND handles compromised nodes.
#pragma once

#include <cstdint>
#include <set>

#include "sim/network.h"

namespace snd::adversary {

class Wormhole {
 public:
  /// Creates the two tunnel endpoints at the given positions. They must be
  /// mutually out of radio range (otherwise the relay would self-loop).
  Wormhole(sim::Network& network, util::Vec2 end_a, util::Vec2 end_b,
           sim::Time tunnel_latency = sim::Time::microseconds(200));

  Wormhole(const Wormhole&) = delete;
  Wormhole& operator=(const Wormhole&) = delete;
  ~Wormhole();

  void start();

  [[nodiscard]] std::uint64_t packets_tunneled() const { return tunneled_; }
  [[nodiscard]] sim::DeviceId endpoint_a() const { return end_a_; }
  [[nodiscard]] sim::DeviceId endpoint_b() const { return end_b_; }

 private:
  void relay(sim::DeviceId from_end, sim::DeviceId to_end, const sim::Packet& packet);

  sim::Network& network_;
  sim::DeviceId end_a_;
  sim::DeviceId end_b_;
  sim::Time tunnel_latency_;
  std::uint64_t tunneled_ = 0;
};

}  // namespace snd::adversary
