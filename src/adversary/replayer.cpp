#include "adversary/replayer.h"

#include "core/wire.h"

namespace snd::adversary {

namespace {
/// Identity tag for the capture radio; it never speaks for itself.
constexpr NodeId kReplayerIdentity = 0xdeadfeed;
}  // namespace

ReplayAttacker::ReplayAttacker(sim::Network& network, util::Vec2 position, sim::Time delay,
                               std::uint32_t max_captures)
    : network_(network),
      device_(network.add_device(kReplayerIdentity, position)),
      delay_(delay),
      max_captures_(max_captures) {
  network_.device(device_).compromised = true;
}

ReplayAttacker::~ReplayAttacker() { network_.set_receiver(device_, nullptr); }

void ReplayAttacker::start() {
  network_.set_receiver(device_, [this](const sim::Packet& packet) { on_packet(packet); });
}

void ReplayAttacker::on_packet(const sim::Packet& packet) {
  // Only authenticated protocol unicast is worth replaying; Hello/HelloAck
  // carry no MAC and replaying them is indistinguishable from chaff.
  const auto type = static_cast<core::MessageType>(packet.type);
  if (type < core::MessageType::kRecordRequest || type > core::MessageType::kUpdateReply) {
    return;
  }
  // Never re-capture our own injections (delivery loops forever otherwise).
  if (network_.device(packet.sender_device).identity == kReplayerIdentity) return;
  if (captured_ >= max_captures_) return;

  ++captured_;
  sim::Packet copy = packet;  // verbatim: claimed src, dst, payload, MAC trailer
  network_.scheduler().schedule_at(network_.now() + delay_,
                                   [this, copy = std::move(copy)]() {
                                     network_.transmit(device_, copy, obs::Phase::kAttack);
                                     ++injected_;
                                   });
}

}  // namespace snd::adversary
