// The agent the attacker installs on compromised devices and replicas.
//
// Capability model (paper §2): the adversary eavesdrops, forges, replays,
// and fully controls compromised nodes -- but it only knows what it stole.
// The decisive case split is whether the stolen secrets still contained the
// master key K:
//
//   * K absent (the protocol's intended deployment-time guarantee): the
//     agent can only replay the stolen binding record R(w) and stolen
//     identity keys. New nodes near a replica reject w because N(w) names
//     the original neighborhood (no overlap); old nodes reject relation
//     commitments it cannot compute. With the update extension it can run
//     the *creeping* attack: collect legitimate evidences near the replica
//     and have newly deployed nodes re-issue R(w), extending reach by R per
//     update (bounded by m; Theorem 4).
//
//   * K present (trusted-deployment-window violated, paper §6 caveat): the
//     agent forges fresh binding records around any replica and mints
//     relation commitments C(w, x) = H(K_x | w) for every identity it
//     hears, defeating the protocol completely.
#pragma once

#include <memory>
#include <set>

#include "core/messenger.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "crypto/keypredist.h"
#include "sim/network.h"

namespace snd::adversary {

struct MaliciousBehavior {
  /// Answer Hellos so the stolen identity stays discoverable.
  bool respond_to_hello = true;
  /// Serve the (stolen or forged) binding record on request.
  bool serve_record = true;
  /// If K was stolen: forge binding records listing locally heard nodes.
  bool forge_records_with_master = true;
  /// If K was stolen: push relation commitments to every identity heard.
  bool push_commitments_with_master = true;
  /// Run the §4.4 creeping attack: gather evidences, request updates.
  bool creep_with_updates = false;
};

class MaliciousAgent {
 public:
  MaliciousAgent(sim::Network& network, sim::DeviceId device,
                 core::SndNode::Secrets stolen_secrets,
                 std::shared_ptr<crypto::KeyPredistribution> keys,
                 core::ProtocolConfig protocol_config, MaliciousBehavior behavior);

  MaliciousAgent(const MaliciousAgent&) = delete;
  MaliciousAgent& operator=(const MaliciousAgent&) = delete;
  ~MaliciousAgent();

  void start();

  [[nodiscard]] NodeId identity() const { return messenger_.identity(); }
  [[nodiscard]] bool has_master_key() const { return secrets_.master.present(); }
  /// Identities overheard in this device's radio vicinity.
  [[nodiscard]] const std::set<NodeId>& heard_identities() const { return heard_; }
  /// Current (possibly creep-updated or forged) record being served.
  [[nodiscard]] const std::optional<core::BindingRecord>& record() const {
    return secrets_.record;
  }
  [[nodiscard]] std::size_t updates_obtained() const { return updates_obtained_; }
  [[nodiscard]] const std::map<NodeId, crypto::Digest>& evidence() const {
    return evidence_buffer_;
  }

  /// Out-of-band state sync from the attacker: adopt a fresher binding
  /// record (replicas of one identity pool what any of them obtained) and
  /// merge harvested evidences. Unverifiable entries are harmless -- the
  /// update server drops them.
  void adopt_state(const std::optional<core::BindingRecord>& record,
                   const std::map<NodeId, crypto::Digest>& evidence);

 private:
  void on_packet(const sim::Packet& packet);
  void note_identity(NodeId id);
  void serve_record_to(NodeId requester);
  void try_creep_update(NodeId new_node);

  sim::Network& network_;
  sim::DeviceId device_;
  core::SndNode::Secrets secrets_;
  core::ProtocolConfig protocol_config_;
  MaliciousBehavior behavior_;
  core::Messenger messenger_;

  std::set<NodeId> heard_;
  std::set<NodeId> commitments_pushed_;
  std::map<NodeId, crypto::Digest> evidence_buffer_;
  std::size_t updates_obtained_ = 0;
};

}  // namespace snd::adversary
