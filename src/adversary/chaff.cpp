#include "adversary/chaff.h"

namespace snd::adversary {

ChaffAttacker::ChaffAttacker(sim::Network& network, sim::DeviceId device,
                             NodeId fake_identity_base, std::size_t fakes_per_hello)
    : network_(network),
      device_(device),
      next_fake_(fake_identity_base),
      fakes_per_hello_(fakes_per_hello) {}

ChaffAttacker::~ChaffAttacker() { network_.set_receiver(device_, nullptr); }

void ChaffAttacker::start() {
  network_.set_receiver(device_, [this](const sim::Packet& packet) { on_packet(packet); });
}

void ChaffAttacker::on_packet(const sim::Packet& packet) {
  if (static_cast<core::MessageType>(packet.type) != core::MessageType::kHello) return;
  for (std::size_t i = 0; i < fakes_per_hello_; ++i) {
    sim::Packet fake{.src = next_fake_++,
                     .dst = packet.src,
                     .type = static_cast<std::uint8_t>(core::MessageType::kHelloAck),
                     .payload = {}};
    network_.transmit(device_, std::move(fake), obs::Phase::kAttackChaff);
    ++fakes_sent_;
  }
}

}  // namespace snd::adversary
