#include "adversary/sybil.h"

#include "core/wire.h"

namespace snd::adversary {

SybilAttacker::SybilAttacker(sim::Network& network, util::Vec2 position, NodeId base,
                             std::uint32_t identities)
    : network_(network),
      device_(network.add_device(base, position)),
      base_(base),
      identities_(identities) {
  network_.device(device_).compromised = true;
}

SybilAttacker::~SybilAttacker() { network_.set_receiver(device_, nullptr); }

void SybilAttacker::start() {
  network_.set_receiver(device_, [this](const sim::Packet& packet) { on_packet(packet); });
  // Announce every minted identity. Staggered 1 ms apart so the flood is
  // heard even by half-duplex neighbors busy with their own Hellos.
  for (std::uint32_t i = 1; i <= identities_; ++i) {
    const NodeId fake = base_ + i;
    network_.scheduler().schedule_at(
        network_.now() + sim::Time::milliseconds(i), [this, fake]() {
          sim::Packet hello{.src = fake,
                            .dst = kNoNode,
                            .type = static_cast<std::uint8_t>(core::MessageType::kHello),
                            .payload = {}};
          network_.transmit(device_, std::move(hello), obs::Phase::kAttack);
          ++sent_;
        });
  }
}

void SybilAttacker::on_packet(const sim::Packet& packet) {
  if (static_cast<core::MessageType>(packet.type) != core::MessageType::kHello) return;
  if (minted(packet.src) || packet.src == base_) return;  // never answer ourselves
  for (std::uint32_t i = 1; i <= identities_; ++i) {
    sim::Packet ack{.src = base_ + i,
                    .dst = packet.src,
                    .type = static_cast<std::uint8_t>(core::MessageType::kHelloAck),
                    .payload = {}};
    network_.transmit(device_, std::move(ack), obs::Phase::kAttack);
    ++sent_;
  }
}

}  // namespace snd::adversary
