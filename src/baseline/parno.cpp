#include "baseline/parno.h"

#include <algorithm>

#include "apps/georouting.h"
#include "util/bytes.h"

namespace snd::baseline {

namespace {

util::Bytes claim_message(NodeId id, util::Vec2 position) {
  util::Bytes out;
  util::put_u32(out, id);
  util::put_u64(out, static_cast<std::uint64_t>(position.x * 1e6));
  util::put_u64(out, static_cast<std::uint64_t>(position.y * 1e6));
  return out;
}

}  // namespace

ParnoDetector::ParnoDetector(const sim::Network& network,
                             crypto::SimSignatureAuthority& authority, std::uint64_t seed)
    : network_(network), authority_(authority), rng_(seed) {}

DetectionResult ParnoDetector::randomized_multicast(const ParnoConfig& config) {
  return run(config, /*store_along_path=*/false, config.witnesses_per_neighbor);
}

DetectionResult ParnoDetector::line_selected_multicast(const ParnoConfig& config) {
  // Line-selected: the claimer's neighbors launch r lines in total; nodes
  // along each line store the claim.
  return run(config, /*store_along_path=*/true, 1);
}

DetectionResult ParnoDetector::run(const ParnoConfig& config, bool store_along_path,
                                   std::size_t destinations_per_neighbor) {
  DetectionResult result;
  apps::GeoRouter router(network_);

  // Ground truth: identities with several physical devices.
  std::map<NodeId, std::size_t> device_count;
  for (const sim::Device& d : network_.devices()) {
    if (d.alive) ++device_count[d.identity];
  }
  for (const auto& [id, count] : device_count) {
    if (count > 1) ++result.replicated_identities;
  }

  const util::Rect field = [this] {
    util::Rect r{{0, 0}, {0, 0}};
    bool first = true;
    for (const sim::Device& d : network_.devices()) {
      if (first) {
        r = {d.position, d.position};
        first = false;
        continue;
      }
      r.lo.x = std::min(r.lo.x, d.position.x);
      r.lo.y = std::min(r.lo.y, d.position.y);
      r.hi.x = std::max(r.hi.x, d.position.x);
      r.hi.y = std::max(r.hi.y, d.position.y);
    }
    return r;
  }();

  // Per-device claim store: device -> (identity -> positions seen).
  std::vector<std::map<NodeId, std::vector<util::Vec2>>> stores(network_.device_count());

  auto store_claim = [&](sim::DeviceId at, const Claim& claim) {
    ++result.verify_ops;  // witness verifies the signature before storing
    auto& positions = stores[at][claim.id];
    for (const util::Vec2& previous : positions) {
      if (util::distance(previous, claim.position) > config.conflict_distance) {
        result.detected.insert(claim.id);
      }
    }
    positions.push_back(claim.position);
  };

  for (const sim::Device& claimer : network_.devices()) {
    if (!claimer.alive) continue;
    authority_.enroll(claimer.identity);

    const Claim claim{claimer.identity, claimer.position};
    const util::Bytes message = claim_message(claim.id, claim.position);
    (void)authority_.sign(claimer.identity, message);
    ++result.sign_ops;

    // Local broadcast of the claim to the neighbors.
    ++result.messages;
    result.bytes += kClaimBytes + sim::Packet::kHeaderBytes;

    for (sim::DeviceId neighbor : network_.devices_in_range(claimer.id)) {
      ++result.verify_ops;  // neighbor checks the claim before forwarding
      if (!rng_.chance(config.forward_probability)) continue;

      const std::size_t lines =
          store_along_path ? config.lines_per_claim : destinations_per_neighbor;
      for (std::size_t w = 0; w < lines; ++w) {
        const util::Vec2 destination{rng_.uniform(field.lo.x, field.hi.x),
                                     rng_.uniform(field.lo.y, field.hi.y)};
        const apps::Route route = router.route_to_position(neighbor, destination);
        result.messages += route.hops();
        result.bytes += route.hops() * (kClaimBytes + sim::Packet::kHeaderBytes);

        if (store_along_path) {
          for (sim::DeviceId hop : route.path) store_claim(hop, claim);
        } else if (!route.path.empty()) {
          store_claim(route.path.back(), claim);
        }
      }
      if (store_along_path) break;  // r lines total, not per neighbor
    }
  }

  result.detected_identities = 0;
  for (NodeId id : result.detected) {
    if (device_count[id] > 1) ++result.detected_identities;
  }

  std::uint64_t total_stored = 0;
  for (const auto& store : stores) {
    std::size_t stored = 0;
    for (const auto& [id, positions] : store) stored += positions.size();
    total_stored += stored;
    result.max_stored_claims = std::max(result.max_stored_claims, stored);
  }
  result.mean_stored_claims =
      network_.device_count() == 0
          ? 0.0
          : static_cast<double>(total_stored) / static_cast<double>(network_.device_count());

  return result;
}

}  // namespace snd::baseline
