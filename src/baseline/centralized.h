// Centralized neighbor validation -- the strawman the paper's Section 4
// opens with: "have a trusted base station discover the tentative network
// topology G and make a centralized decision for every node", rejected
// because of the communication it costs over unreliable multi-hop links.
//
// This comparator makes that cost concrete. A base station that keeps the
// master key K collects every node's binding record + tentative list over
// greedy geographic routing (convergecast), verifies the records, applies
// the same t+1 common-neighbor rule globally, and routes each node its
// decided functional list. The centralized_vs_localized bench contrasts the
// per-node byte cost and its scaling against the localized protocol.
#pragma once

#include <cstdint>

#include "core/deployment_driver.h"
#include "topology/graph.h"

namespace snd::baseline {

struct CentralizedResult {
  /// Functional topology decided by the base station.
  topology::Digraph functional;
  /// Convergecast cost: every per-hop transmission of a report.
  std::uint64_t uplink_messages = 0;
  std::uint64_t uplink_bytes = 0;
  /// Dissemination cost: routing each node its functional list.
  std::uint64_t downlink_messages = 0;
  std::uint64_t downlink_bytes = 0;
  /// Nodes greedy routing could not connect to the base station; they get
  /// no decisions at all (the reliability argument against centralization).
  std::size_t unreachable_nodes = 0;
  /// Heaviest per-device relay load: bytes forwarded by the busiest node.
  /// Convergecast concentrates traffic on the base station's neighbors --
  /// the energy hotspot that kills centralized designs first.
  std::uint64_t max_relayed_bytes = 0;

  [[nodiscard]] std::uint64_t total_messages() const {
    return uplink_messages + downlink_messages;
  }
  [[nodiscard]] std::uint64_t total_bytes() const { return uplink_bytes + downlink_bytes; }
};

/// Runs one centralized validation round over the deployment's current
/// state. `base_station` must be an existing device (typically placed at a
/// field corner or center before deployment).
CentralizedResult run_centralized_validation(core::SndDeployment& deployment,
                                             sim::DeviceId base_station,
                                             std::size_t threshold_t);

}  // namespace snd::baseline
