// Baseline: distributed detection of node replication attacks, Parno,
// Perrig & Gligor (IEEE S&P 2005) -- the paper's comparison target (§4.5.3).
//
// Both schemes have every node flood a *signed location claim* to parts of
// the network; a witness holding two claims for one identity at two
// distant positions has caught a replica:
//   * randomized multicast: each neighbor of the claimer forwards the claim
//     to g randomly selected witness locations (birthday-paradox overlap);
//   * line-selected multicast: claims travel along r routed lines and every
//     node on the way stores them; two replicas' lines intersecting at any
//     node triggers detection.
//
// This implementation measures what the comparison needs: detection
// probability, total messages/bytes (every geographic-routing hop is one
// transmission), signature operations, and per-node claim storage.
// Signatures are the simulated ECDSA of crypto/sim_signature.h (see
// DESIGN.md §2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "crypto/sim_signature.h"
#include "sim/network.h"
#include "util/rng.h"

namespace snd::baseline {

struct ParnoConfig {
  /// g: witness destinations per forwarding neighbor (randomized multicast).
  std::size_t witnesses_per_neighbor = 3;
  /// p: probability that a neighbor forwards a heard claim.
  double forward_probability = 0.25;
  /// r: line segments per claim (line-selected multicast).
  std::size_t lines_per_claim = 6;
  /// Two claims for one identity at positions farther apart than this
  /// constitute a conflict.
  double conflict_distance = 1.0;
};

struct DetectionResult {
  /// Identities with more than one physical device (ground truth).
  std::size_t replicated_identities = 0;
  /// Of those, how many some witness caught.
  std::size_t detected_identities = 0;
  std::set<NodeId> detected;

  std::uint64_t messages = 0;  // every per-hop transmission
  std::uint64_t bytes = 0;
  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;
  double mean_stored_claims = 0.0;
  std::size_t max_stored_claims = 0;

  [[nodiscard]] double detection_rate() const {
    return replicated_identities == 0
               ? 1.0
               : static_cast<double>(detected_identities) /
                     static_cast<double>(replicated_identities);
  }
};

/// Serialized size of a location claim: id + position + ECDSA signature.
inline constexpr std::size_t kClaimBytes = 4 + 16 + crypto::kSignatureSize;

class ParnoDetector {
 public:
  ParnoDetector(const sim::Network& network, crypto::SimSignatureAuthority& authority,
                std::uint64_t seed);

  DetectionResult randomized_multicast(const ParnoConfig& config);
  DetectionResult line_selected_multicast(const ParnoConfig& config);

 private:
  struct Claim {
    NodeId id;
    util::Vec2 position;
  };

  /// Runs one detection round; `store_along_path` switches between the two
  /// schemes (witness-only storage vs store-at-every-hop).
  DetectionResult run(const ParnoConfig& config, bool store_along_path,
                      std::size_t destinations_per_neighbor);

  const sim::Network& network_;
  crypto::SimSignatureAuthority& authority_;
  util::Rng rng_;
};

}  // namespace snd::baseline
