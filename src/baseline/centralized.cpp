#include "baseline/centralized.h"

#include "apps/georouting.h"
#include "core/validation.h"

namespace snd::baseline {

CentralizedResult run_centralized_validation(core::SndDeployment& deployment,
                                             sim::DeviceId base_station,
                                             std::size_t threshold_t) {
  CentralizedResult result;
  const sim::Network& network = deployment.network();
  const apps::GeoRouter router(network);
  std::vector<std::uint64_t> relayed(network.device_count(), 0);

  // --- Convergecast: every agent reports R(u) to the base station. ---
  std::map<NodeId, topology::NeighborList> reported;
  for (const core::SndNode* agent : deployment.agents()) {
    if (!agent->has_record()) continue;
    const apps::Route route = router.route(agent->device(), base_station);
    if (!route.success) {
      ++result.unreachable_nodes;
      continue;
    }
    const std::size_t report_bytes =
        agent->record().serialize().size() + sim::Packet::kHeaderBytes;
    result.uplink_messages += route.hops();
    result.uplink_bytes += route.hops() * report_bytes;
    // Every hop except the final receiver retransmits the report.
    for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
      relayed[route.path[i]] += report_bytes;
    }

    // The base station holds K and verifies the record before use.
    if (agent->record().verify(deployment.master_key())) {
      reported.emplace(agent->identity(), agent->record().neighbors);
    }
  }

  // --- Global decision: the same threshold rule, full topology view. ---
  topology::Digraph tentative;
  for (const auto& [node, neighbors] : reported) {
    tentative.add_node(node);
    for (NodeId v : neighbors) tentative.add_edge(node, v);
  }
  const core::CommonNeighborValidator validator(threshold_t);
  for (const auto& [u, neighbors] : reported) {
    result.functional.add_node(u);
    for (NodeId v : neighbors) {
      if (!reported.contains(v)) continue;
      if (validator.validate(u, v, tentative)) result.functional.add_edge(u, v);
    }
  }

  // --- Dissemination: each node receives its functional list. ---
  for (const core::SndNode* agent : deployment.agents()) {
    if (!reported.contains(agent->identity())) continue;
    const apps::Route route = router.route(base_station, agent->device());
    if (!route.success) continue;
    const std::size_t list_bytes =
        4 * result.functional.successors(agent->identity()).size() + 8 +
        sim::Packet::kHeaderBytes;
    result.downlink_messages += route.hops();
    result.downlink_bytes += route.hops() * list_bytes;
    for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
      relayed[route.path[i]] += list_bytes;
    }
  }

  for (std::uint64_t b : relayed) result.max_relayed_bytes = std::max(result.max_relayed_bytes, b);
  return result;
}

}  // namespace snd::baseline
