#include "sim/deployment.h"

#include <algorithm>

namespace snd::sim {

std::vector<util::Vec2> deploy_uniform(std::size_t n, const util::Rect& field, util::Rng& rng) {
  std::vector<util::Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(field.lo.x, field.hi.x), rng.uniform(field.lo.y, field.hi.y)});
  }
  return out;
}

std::vector<util::Vec2> deploy_grid(std::size_t nx, std::size_t ny, const util::Rect& field,
                                    double jitter_fraction, util::Rng& rng) {
  std::vector<util::Vec2> out;
  out.reserve(nx * ny);
  const double cell_w = field.width() / static_cast<double>(nx);
  const double cell_h = field.height() / static_cast<double>(ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double cx = field.lo.x + (static_cast<double>(ix) + 0.5) * cell_w;
      const double cy = field.lo.y + (static_cast<double>(iy) + 0.5) * cell_h;
      const double jx = jitter_fraction * cell_w * (rng.uniform() - 0.5);
      const double jy = jitter_fraction * cell_h * (rng.uniform() - 0.5);
      out.push_back({cx + jx, cy + jy});
    }
  }
  return out;
}

std::vector<util::Vec2> deploy_clustered(std::size_t n, std::size_t cluster_count, double spread,
                                         const util::Rect& field, util::Rng& rng) {
  const std::vector<util::Vec2> centers = deploy_uniform(cluster_count, field, rng);
  std::vector<util::Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const util::Vec2& c = centers[i % centers.size()];
    util::Vec2 p{c.x + rng.normal(0.0, spread), c.y + rng.normal(0.0, spread)};
    p.x = std::clamp(p.x, field.lo.x, field.hi.x);
    p.y = std::clamp(p.y, field.lo.y, field.hi.y);
    out.push_back(p);
  }
  return out;
}

}  // namespace snd::sim
