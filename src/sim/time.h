// Simulation time as a strong type (integer nanoseconds). Integer ticks keep
// event ordering exact and runs bit-reproducible across platforms.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace snd::sim {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time nanoseconds(std::int64_t ns) { return Time(ns); }
  static constexpr Time microseconds(std::int64_t us) { return Time(us * 1'000); }
  static constexpr Time milliseconds(std::int64_t ms) { return Time(ms * 1'000'000); }
  static constexpr Time seconds(double s) {
    return Time(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Time zero() { return Time(0); }
  /// Later than every schedulable event.
  static constexpr Time infinity() { return Time(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }

  friend constexpr auto operator<=>(Time, Time) = default;
  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  constexpr Time& operator+=(Time other) {
    ns_ += other.ns_;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace snd::sim
